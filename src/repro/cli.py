"""The ``repro`` console command: one front door to the package's CLIs.

``repro <subcommand> [args...]`` dispatches to the module-level entry
points, so ``repro verify --smoke`` is exactly ``python -m repro.verify
--smoke`` and ``repro run E-T2`` runs the experiments CLI (``repro
experiments`` / ``repro exp`` remain as legacy aliases; ``python -m
repro.experiments`` still works as a deprecation shim).  ``repro jobs``
and ``repro serve`` front the campaign job service (see docs/SERVICE.md).
Installed via ``[project.scripts]`` in ``pyproject.toml``; in a source
checkout the ``python -m`` forms work without installation.

Every subcommand honours one exit-code contract:

* ``0`` — success (all checks passed / work completed);
* ``1`` — findings or failures (verification violations, lint findings);
* ``2`` — usage error (unknown subcommand, bad flags).
"""

from __future__ import annotations

import os
import sys
from typing import Callable

from repro._version import __version__

__all__ = ["main"]


def _run_run(argv: list[str]) -> int:
    from repro.experiments.cli import main

    return main(argv)


def _run_verify(argv: list[str]) -> int:
    from repro.verify.__main__ import main

    return main(argv)


def _run_analyze(argv: list[str]) -> int:
    from repro.analysis.__main__ import main

    return main(argv)


def _run_bench(argv: list[str]) -> int:
    from repro.bench.__main__ import main

    return main(argv)


def _run_jobs(argv: list[str]) -> int:
    from repro.service.cli import jobs_main

    return jobs_main(argv)


def _run_serve(argv: list[str]) -> int:
    from repro.service.cli import serve_main

    return serve_main(argv)


_SUBCOMMANDS: dict[str, tuple[Callable[[list[str]], int], str]] = {
    "run": (_run_run, "run paper experiments or one direct sample"),
    "experiments": (_run_run, "legacy alias for 'run'"),
    "exp": (_run_run, "legacy alias for 'run'"),
    "jobs": (_run_jobs, "submit and inspect durable campaign jobs"),
    "serve": (_run_serve, "drain pending jobs through the campaign service"),
    "verify": (_run_verify, "differential + metamorphic backend verification"),
    "analyze": (_run_analyze, "static analysis: domain lint + schedule verifier"),
    "bench": (_run_bench, "curated benchmark suite + regression gating"),
}


def _usage() -> str:
    lines = ["usage: repro [--version] <subcommand> [args...]", "", "subcommands:"]
    for name, (_, help_text) in _SUBCOMMANDS.items():
        lines.append(f"  {name:12s} {help_text}")
    lines.append("")
    lines.append("run 'repro <subcommand> --help' for subcommand options")
    lines.append("exit codes: 0 ok, 1 findings/failures, 2 usage error")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(_usage())
        return 0 if argv else 2
    if argv[0] in ("--version", "-V"):
        print(f"repro {__version__}")
        return 0
    name, rest = argv[0], argv[1:]
    entry = _SUBCOMMANDS.get(name)
    if entry is None:
        print(f"error: unknown subcommand {name!r}\n\n{_usage()}", file=sys.stderr)
        return 2
    try:
        return entry[0](rest)
    except BrokenPipeError:
        # stdout closed early (e.g. piped into `head`): exit quietly.  Point
        # stdout at devnull so the interpreter's final flush cannot re-raise.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
