"""Local-directory result store: the default cache backend.

Layout (sharded by fingerprint prefix so no directory grows unbounded)::

    <root>/
      index.json                      # {fp: {size, atime, algorithm, side}}
      ab/
        ab12cd34ef567890/
          result.json                 # envelope: integrity hash + payload
          manifest.json               # replayable RunManifest of the producer
      quarantine/
        ab12cd34ef567890-1.json       # corrupted entries, kept for forensics

Durability protocol:

* **Atomic writes.**  ``result.json`` is written to a ``.tmp-<pid>``
  sibling and ``os.replace``d into place, so readers only ever see absent
  or complete entries; a torn write leaves a tmp file that is ignored by
  reads and swept opportunistically.
* **Integrity-hashed.**  The envelope records a blake2b digest of the
  canonical payload JSON.  A read whose recomputed digest differs (bit
  rot, manual edits, torn replacement on non-atomic filesystems) is
  **quarantined** — moved aside, reported as a
  :class:`~repro.obs.events.StoreEvent` ``quarantine`` + ``miss`` — and
  the caller recomputes.  Corruption degrades to a cache miss, never an
  error.
* **LRU-evicted.**  ``index.json`` tracks per-entry payload size and a
  last-access stamp drawn from a persisted logical clock (monotone across
  processes via the index round trip, and deterministic — no wall-clock
  reads); when ``max_bytes`` is set, puts evict least-recently-used
  entries until the total fits.  The index is a rebuildable acceleration
  structure: if it is missing or corrupt it is reconstructed by scanning
  the tree, so deleting it never loses results.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any

from repro.errors import StoreError
from repro.store.base import (
    STORE_SCHEMA_VERSION,
    ResultStore,
    _emit,
    payload_integrity,
)
from repro.store.locks import FileLock

__all__ = ["LocalResultStore"]

_FORMAT = "repro-result-store"
_INDEX_FORMAT = "repro-result-store-index"


class LocalResultStore(ResultStore):
    """Content-addressed result cache in a local directory tree.

    Parameters
    ----------
    root:
        Store directory; created on first write.
    max_bytes:
        Optional size cap over the summed ``result.json`` payload sizes.
        Exceeding it on ``put`` evicts least-recently-used entries (their
        whole entry directory) until the cap holds again.  ``None`` (the
        default) never evicts.
    """

    def __init__(self, root: str | Path, *, max_bytes: int | None = None):
        self.root = Path(root)
        if max_bytes is not None and max_bytes < 1:
            raise StoreError(f"max_bytes must be positive, got {max_bytes}")
        self.max_bytes = max_bytes
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Paths.
    # ------------------------------------------------------------------

    def entry_dir(self, fingerprint: str) -> Path:
        """The directory holding one fingerprint's files."""
        return self.root / fingerprint[:2] / fingerprint

    def result_path(self, fingerprint: str) -> Path:
        """The entry's payload file (``result.json``)."""
        return self.entry_dir(fingerprint) / "result.json"

    @property
    def index_path(self) -> Path:
        return self.root / "index.json"

    @property
    def locks_dir(self) -> Path:
        """Cross-process fingerprint locks (see :meth:`fingerprint_lock`)."""
        return self.root / "locks"

    def lock_path(self, fingerprint: str) -> Path:
        return self.locks_dir / f"{fingerprint}.lock"

    def fingerprint_lock(
        self,
        fingerprint: str,
        *,
        stale_after: float | None = None,
        owner: str | None = None,
    ) -> FileLock:
        """A :class:`~repro.store.locks.FileLock` scoped to one fingerprint.

        Every process sharing this store root that holds the lock while
        *executing* a fingerprint (the service layer does) gets
        cross-process single-flight: the loser waits, then re-reads the
        store and serves the winner's entry instead of recomputing it.
        """
        return FileLock(
            self.lock_path(fingerprint), stale_after=stale_after, owner=owner
        )

    def describe(self) -> str:
        return f"local:{self.root}"

    # ------------------------------------------------------------------
    # Reads.
    # ------------------------------------------------------------------

    def get(self, fingerprint: str) -> dict[str, Any] | None:
        with self._lock:
            payload = self._read_checked(fingerprint)
            if payload is None:
                _emit("miss", fingerprint, self.describe())
                return None
            index, clock = self._load_index()
            self._touch(index, clock, fingerprint)
        _emit("hit", fingerprint, self.describe())
        return payload

    def _read_checked(self, fingerprint: str) -> dict[str, Any] | None:
        """Read + verify one entry; quarantine anything unusable."""
        path = self.result_path(fingerprint)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError:
            return None
        parsed = self._parse_envelope(text)
        if parsed is None:
            self._quarantine(fingerprint, path)
            return None
        payload, recorded, fp = parsed
        if fp != fingerprint or payload_integrity(payload) != recorded:
            self._quarantine(fingerprint, path)
            return None
        return payload

    @staticmethod
    def _parse_envelope(text: str) -> tuple[dict[str, Any], str, str] | None:
        """``(payload, integrity, fingerprint)``; None for anything malformed."""
        try:
            envelope = json.loads(text)
        except ValueError:
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("format") != _FORMAT
            or envelope.get("schema_version") != STORE_SCHEMA_VERSION
        ):
            return None
        payload = envelope.get("payload")
        recorded = envelope.get("integrity")
        fp = envelope.get("fingerprint")
        if not isinstance(payload, dict) or not isinstance(recorded, str):
            return None
        if not isinstance(fp, str):
            return None
        return payload, recorded, fp

    def _quarantine(self, fingerprint: str, path: Path) -> None:
        """Move a corrupted entry aside and drop it from the index."""
        qdir = self.root / "quarantine"
        qdir.mkdir(parents=True, exist_ok=True)
        n = 1
        while (target := qdir / f"{fingerprint}-{n}.json").exists():
            n += 1
        try:
            os.replace(path, target)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
        self._drop_entry_dir(fingerprint)
        index, clock = self._load_index()
        if index.pop(fingerprint, None) is not None:
            self._write_index(index, clock)
        _emit("quarantine", fingerprint, self.describe())

    def __contains__(self, fingerprint: str) -> bool:
        return self.result_path(fingerprint).exists()

    def fingerprints(self) -> list[str]:
        """Every intact-looking entry on disk (no integrity check)."""
        if not self.root.exists():
            return []
        return sorted(
            path.parent.name
            for path in self.root.glob("??/*/result.json")
        )

    # ------------------------------------------------------------------
    # Writes.
    # ------------------------------------------------------------------

    def put(
        self,
        fingerprint: str,
        payload: dict[str, Any],
        *,
        manifest: dict[str, Any] | None = None,
    ) -> Path:
        """Persist ``payload`` atomically; returns the entry's result path.

        ``manifest`` (a :meth:`~repro.obs.manifest.RunManifest.as_dict`
        mapping) is written alongside the payload so every cached result
        names the replayable run that produced it.
        """
        envelope = {
            "format": _FORMAT,
            "schema_version": STORE_SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "integrity": payload_integrity(payload),
            "payload": payload,
        }
        text = json.dumps(envelope, sort_keys=True)
        path = self.result_path(fingerprint)
        with self._lock:
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                self._sweep_tmp(path.parent)
                tmp = path.parent / f"result.json.tmp-{os.getpid()}"
                tmp.write_text(text, encoding="utf-8")
                os.replace(tmp, path)  # atomic: readers never see torn entries
                if manifest is not None:
                    mtmp = path.parent / f"manifest.json.tmp-{os.getpid()}"
                    mtmp.write_text(
                        json.dumps(manifest, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8",
                    )
                    os.replace(mtmp, path.parent / "manifest.json")
            except OSError as exc:
                raise StoreError(
                    f"cannot write store entry {fingerprint} under {self.root}: {exc}"
                ) from exc
            index, clock = self._load_index()
            clock += 1
            meta = payload.get("meta", {}) if isinstance(payload, dict) else {}
            index[fingerprint] = {
                "size": len(text),
                "atime": clock,
                "algorithm": meta.get("algorithm", ""),
                "side": meta.get("side"),
            }
            evicted = self._evict_over_cap(index, keep=fingerprint)
            self._write_index(index, clock)
        _emit("put", fingerprint, self.describe(), len(text))
        for evicted_fp, size in evicted:
            _emit("evict", evicted_fp, self.describe(), size)
        return path

    def delete(self, fingerprint: str) -> bool:
        with self._lock:
            existed = self.result_path(fingerprint).exists()
            self._drop_entry_dir(fingerprint)
            index, clock = self._load_index()
            if index.pop(fingerprint, None) is not None or existed:
                self._write_index(index, clock)
        return existed

    def _drop_entry_dir(self, fingerprint: str) -> None:
        entry = self.entry_dir(fingerprint)
        if not entry.exists():
            return
        for child in entry.iterdir():
            try:
                child.unlink()
            except OSError:
                pass
        try:
            entry.rmdir()
        except OSError:
            pass

    def _sweep_tmp(self, entry_dir: Path) -> None:
        """Remove tmp files a killed writer left behind (torn writes)."""
        for stale in entry_dir.glob("*.tmp-*"):
            try:
                stale.unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Index + eviction.
    # ------------------------------------------------------------------

    def _load_index(self) -> tuple[dict[str, dict[str, Any]], int]:
        """``(entries, clock)``; rebuilt from a tree scan when missing/corrupt.

        ``clock`` is the persisted logical access counter: every put/touch
        increments it and stamps the entry's ``atime`` with the new value,
        so LRU order is deterministic and survives process restarts
        without ever reading the wall clock.
        """
        try:
            doc = json.loads(self.index_path.read_text(encoding="utf-8"))
            if (
                isinstance(doc, dict)
                and doc.get("format") == _INDEX_FORMAT
                and isinstance(doc.get("entries"), dict)
            ):
                entries = dict(doc["entries"])
                clock = doc.get("clock")
                if not isinstance(clock, int):
                    clock = max(
                        (int(e.get("atime", 0)) for e in entries.values()),
                        default=0,
                    )
                return entries, clock
        except (OSError, ValueError):
            pass
        return self._rebuild_index()

    def _rebuild_index(self) -> tuple[dict[str, dict[str, Any]], int]:
        """Reconstruct index + clock by scanning the tree (mtime rank order)."""
        stats: list[tuple[float, str, int]] = []
        for fp in self.fingerprints():
            try:
                stat = self.result_path(fp).stat()
            except OSError:
                continue
            stats.append((stat.st_mtime, fp, stat.st_size))
        stats.sort()
        entries: dict[str, dict[str, Any]] = {}
        for rank, (_, fp, size) in enumerate(stats, start=1):
            entries[fp] = {"size": size, "atime": rank}
        return entries, len(stats)

    def _write_index(self, entries: dict[str, dict[str, Any]], clock: int) -> None:
        doc = {
            "format": _INDEX_FORMAT,
            "schema_version": STORE_SCHEMA_VERSION,
            "clock": clock,
            "entries": entries,
        }
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp = self.root / f"index.json.tmp-{os.getpid()}"
            tmp.write_text(
                json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
            )
            os.replace(tmp, self.index_path)
        except OSError:
            # The index is an acceleration structure; losing an update
            # costs a rebuild scan, never a result.
            pass

    def _touch(
        self, index: dict[str, dict[str, Any]], clock: int, fingerprint: str
    ) -> None:
        """Refresh an entry's LRU stamp after a hit (best-effort)."""
        entry = index.get(fingerprint)
        if entry is None:
            try:
                size = self.result_path(fingerprint).stat().st_size
            except OSError:
                return
            entry = index[fingerprint] = {"size": size}
        clock += 1
        entry["atime"] = clock
        self._write_index(index, clock)

    def _evict_over_cap(
        self, index: dict[str, dict[str, Any]], *, keep: str
    ) -> list[tuple[str, int]]:
        """Evict LRU entries (never ``keep``) until the size cap holds."""
        if self.max_bytes is None:
            return []
        evicted: list[tuple[str, int]] = []
        total = sum(int(e.get("size", 0)) for e in index.values())
        while total > self.max_bytes and len(index) > 1:
            victim = min(
                (fp for fp in index if fp != keep),
                key=lambda fp: index[fp].get("atime", 0.0),
                default=None,
            )
            if victim is None:
                break
            size = int(index[victim].get("size", 0))
            self._drop_entry_dir(victim)
            del index[victim]
            total -= size
            evicted.append((victim, size))
        return evicted

    def total_bytes(self) -> int:
        """Summed payload sizes currently indexed (the eviction currency)."""
        with self._lock:
            entries, _ = self._load_index()
            return sum(int(e.get("size", 0)) for e in entries.values())
