"""Result-store protocol, payload codec, and the store registry.

A result store is a content-addressed cache of completed campaign
results, keyed by :attr:`repro.campaign.spec.CampaignSpec.fingerprint` —
the blake2b digest of exactly the fields that determine the sampled
values (execution knobs excluded).  Because the fingerprint *is* the
identity of the sample, a lookup needs no validation beyond integrity:
two specs with the same fingerprint are guaranteed bit-identical merged
campaigns, for any worker count, so serving the stored payload is
indistinguishable from re-running the campaign.

The layer mirrors :mod:`repro.backends`: :class:`ResultStore` is the
protocol, :func:`register_store` lets third parties plug in a backend
under a URL-style scheme (an object-store backend registers ``"s3"`` and
users pass ``store="s3://bucket/prefix"``), and :func:`resolve_store`
turns whatever the facade was handed — an instance, a plain directory
path, or a ``scheme:location`` string — into a live store.

Two backends ship in-tree:

* ``local`` — :class:`repro.store.local.LocalResultStore`, a directory
  tree with atomic writes, integrity hashing, and LRU eviction (the
  default: any bare path resolves to it);
* ``memory`` — :class:`MemoryResultStore`, a process-local dict keyed by
  name (``"memory:shared"``), used by tests and as the reference second
  backend proving the registry seam works.

Stores report their operations as :class:`~repro.obs.events.StoreEvent`
on the ambient observer stream (hit/miss/put/evict/quarantine), which
:class:`~repro.obs.metrics.MetricsObserver` tallies into the
``repro_service_store_*`` counters.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.errors import StoreError
from repro.obs.context import resolve_observer
from repro.obs.events import StoreEvent

if TYPE_CHECKING:
    from repro.campaign.result import SampleResult

__all__ = [
    "STORE_SCHEMA_VERSION",
    "ResultStore",
    "MemoryResultStore",
    "register_store",
    "available_stores",
    "resolve_store",
    "encode_result",
    "decode_result",
    "payload_integrity",
]

STORE_SCHEMA_VERSION = 1
_FORMAT = "repro-result-store"


# ---------------------------------------------------------------------------
# Payload codec.
# ---------------------------------------------------------------------------


def encode_result(result: "SampleResult") -> dict[str, Any]:
    """The JSON-ready payload a store persists for one completed campaign.

    ``values`` round-trips bit-exactly through JSON: step counts are
    integers, statistic values are IEEE-754 doubles whose ``repr``
    serialization is exact.  ``stats`` is *not* stored — it is a pure
    function of ``values`` and is recomputed on decode, so a stored
    payload can never disagree with its own summary.
    """
    if not result.complete:
        raise StoreError(
            "refusing to store a partial campaign result (complete=False); "
            "resume the campaign to finish its shard plan first"
        )
    meta = {key: value for key, value in result.meta.items() if key != "store"}
    return {
        "values": result.values.tolist(),
        "dtype": str(result.values.dtype),
        "meta": meta,
    }


def decode_result(payload: dict[str, Any]) -> "SampleResult":
    """Rebuild the :class:`~repro.campaign.result.SampleResult` of a payload."""
    from repro.campaign.result import SampleResult

    try:
        values = np.asarray(payload["values"], dtype=payload["dtype"])
        meta = dict(payload["meta"])
    except (KeyError, TypeError, ValueError) as exc:
        raise StoreError(f"undecodable result payload: {exc!r}") from exc
    return SampleResult.from_values(values, meta)


def payload_integrity(payload: dict[str, Any]) -> str:
    """Digest guarding a stored payload against corruption.

    Computed over the canonical (sorted-keys) JSON form, so any bit flip
    in values, dtype, or meta changes the digest and turns the entry into
    a quarantined miss on the next read.
    """
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.blake2b(canonical.encode(), digest_size=16).hexdigest()


def _emit(op: str, fingerprint: str, store: str, nbytes: int | None = None) -> None:
    """Report one store operation on the ambient observer stream."""
    obs = resolve_observer(None)
    if obs is not None:
        obs.on_store_event(
            StoreEvent(op=op, fingerprint=fingerprint, store=store, bytes=nbytes)
        )


# ---------------------------------------------------------------------------
# Protocol.
# ---------------------------------------------------------------------------


class ResultStore:
    """What every result-store backend implements.

    Keys are campaign fingerprints; values are the payload dicts produced
    by :func:`encode_result`.  ``get`` returning ``None`` *is* the miss
    signal — a store must never raise for an absent or corrupted entry
    (corruption is quarantined and reported as a miss), so a degraded
    cache always falls back to recomputation.
    """

    def get(self, fingerprint: str) -> dict[str, Any] | None:
        """The stored payload for ``fingerprint``, or ``None`` on a miss."""
        raise NotImplementedError

    def put(
        self,
        fingerprint: str,
        payload: dict[str, Any],
        *,
        manifest: dict[str, Any] | None = None,
    ) -> Any:
        """Persist ``payload`` under ``fingerprint`` (idempotent overwrite).

        ``manifest`` is the producer's replayable run manifest (an
        :meth:`~repro.obs.manifest.RunManifest.as_dict` mapping); backends
        may persist it alongside the payload or ignore it.
        """
        raise NotImplementedError

    def __contains__(self, fingerprint: str) -> bool:
        """Cheap existence probe; never counts as a hit or miss."""
        raise NotImplementedError

    def delete(self, fingerprint: str) -> bool:
        """Drop an entry; True if one existed."""
        raise NotImplementedError

    def fingerprints(self) -> list[str]:
        """Every stored fingerprint, sorted."""
        raise NotImplementedError

    def describe(self) -> str:
        """Short human-readable identity (used in events and meta)."""
        return type(self).__name__


class MemoryResultStore(ResultStore):
    """Process-local in-memory store — the reference non-filesystem backend.

    Named instances are shared within the process
    (``resolve_store("memory:shared")`` twice returns the same object), so
    concurrent submitters in one process exercise the same cache the way
    they would against a shared object store.
    """

    _instances: dict[str, "MemoryResultStore"] = {}

    def __init__(self, name: str = ""):
        self.name = name
        self._entries: dict[str, str] = {}  # canonical JSON, like a blob store

    @classmethod
    def named(cls, name: str) -> "MemoryResultStore":
        if name not in cls._instances:
            cls._instances[name] = cls(name)
        return cls._instances[name]

    def get(self, fingerprint: str) -> dict[str, Any] | None:
        blob = self._entries.get(fingerprint)
        if blob is None:
            _emit("miss", fingerprint, self.describe())
            return None
        _emit("hit", fingerprint, self.describe())
        return json.loads(blob)

    def put(
        self,
        fingerprint: str,
        payload: dict[str, Any],
        *,
        manifest: dict[str, Any] | None = None,
    ) -> None:
        blob = json.dumps(payload, sort_keys=True)
        self._entries[fingerprint] = blob
        _emit("put", fingerprint, self.describe(), len(blob))

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def delete(self, fingerprint: str) -> bool:
        return self._entries.pop(fingerprint, None) is not None

    def fingerprints(self) -> list[str]:
        return sorted(self._entries)

    def describe(self) -> str:
        return f"memory:{self.name}"


# ---------------------------------------------------------------------------
# Registry.
# ---------------------------------------------------------------------------


def _local_factory(location: str) -> ResultStore:
    from repro.store.local import LocalResultStore

    return LocalResultStore(location)


_FACTORIES: dict[str, Callable[[str], ResultStore]] = {
    "local": _local_factory,
    "memory": lambda name: MemoryResultStore.named(name),
}


def register_store(
    name: str, factory: Callable[[str], ResultStore], *, replace: bool = False
) -> None:
    """Register a store backend under scheme ``name``.

    ``factory`` receives the location part of a ``"name:location"`` store
    spec and returns a live :class:`ResultStore`.  Mirrors
    :func:`repro.backends.register_backend`: re-registering raises unless
    ``replace`` is given.
    """
    if name in _FACTORIES and not replace:
        raise StoreError(
            f"store backend {name!r} is already registered; "
            "pass replace=True to shadow it"
        )
    _FACTORIES[name] = factory


def available_stores() -> tuple[str, ...]:
    """Registered store scheme names, in registration order."""
    return tuple(_FACTORIES)


def resolve_store(spec: "str | Path | ResultStore") -> ResultStore:
    """Turn a store spec into a live store.

    Accepts a :class:`ResultStore` instance (passed through), a
    ``"scheme:location"`` string for any registered backend, or a bare
    directory path (resolved to the ``local`` backend).  Windows-style
    drive letters are not mistaken for schemes: only registered names
    dispatch.
    """
    if isinstance(spec, ResultStore):
        return spec
    if isinstance(spec, Path):
        return _FACTORIES["local"](str(spec))
    if not isinstance(spec, str) or not spec:
        raise StoreError(
            f"store must be a ResultStore, path, or 'scheme:location' string, "
            f"got {spec!r}"
        )
    scheme, sep, location = spec.partition(":")
    if sep and scheme in _FACTORIES:
        return _FACTORIES[scheme](location)
    return _FACTORIES["local"](spec)
