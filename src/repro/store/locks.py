"""Cross-process file locks: the shared primitive behind leases and single-flight.

:class:`FileLock` is an advisory mutual-exclusion lock backed by one file
created with ``O_CREAT | O_EXCL`` — the only cross-process atomic "claim"
primitive that works on every POSIX filesystem without fcntl range-lock
semantics (which NFS historically mishandles and which vanish when *any*
fd on the file closes).  It is the building block for:

* **job leases** — :meth:`repro.service.JobQueue.claim` marks a pending
  job as owned by one ``repro serve`` process, so N daemons partition the
  pending set instead of racing it;
* **fingerprint single-flight** — :meth:`~repro.store.local.LocalResultStore.
  fingerprint_lock` serializes campaign execution per store fingerprint,
  so two services sharing a store never compute the same result twice.

Liveness protocol (a lock holder can die holding the lock):

* The lock file body records the owner — ``{"owner", "host", "pid",
  "heartbeat"}``.  ``heartbeat`` is a **logical counter** the owner bumps
  via :meth:`FileLock.heartbeat` while it works; no wall-clock timestamp
  is ever written (the repo's observability rules route clock reads
  through :mod:`repro.obs.timing`, and cross-host clocks cannot be
  compared anyway).
* A contender deems the lock **stale** when either
  (a) the recorded ``host`` matches its own and the recorded ``pid`` no
  longer exists — on-host liveness is authoritative, so a crashed owner
  is reclaimed immediately and a live-but-slow one never is; or
  (b) the owner is remote/unreadable and the contender has *observed*
  the lock body unchanged (same heartbeat, same inode) for at least
  ``stale_after`` seconds of its own waiting, measured with a
  :class:`~repro.obs.timing.StopWatch`.
* Breaking a stale lock is itself race-free: the contender renames the
  lock file (``os.replace``) to a unique name first, and only the one
  contender whose rename succeeds proceeds — everyone else sees the
  file vanish and retries the ordinary ``O_EXCL`` create.
"""

from __future__ import annotations

import json
import os
import socket
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from repro.errors import LeaseError
from repro.obs.timing import StopWatch

__all__ = ["LOCK_FORMAT", "FileLock"]

LOCK_FORMAT = "repro-lock"


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process on *this* host (signal 0 probe)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        # EPERM and friends: the process exists but is not ours.
        return True
    return True


class FileLock:
    """One advisory cross-process lock file.

    Parameters
    ----------
    path:
        The lock file.  Parent directories are created on first acquire.
    stale_after:
        Observation bound for reclaiming a lock whose owner cannot be
        liveness-probed (remote host, unreadable body): the lock is
        breakable once *this* contender has watched it sit unchanged —
        no heartbeat bump, same inode — for this many seconds.  ``None``
        disables observation-based reclaim (dead on-host owners are
        still reclaimed immediately).
    poll_interval:
        Sleep between :meth:`acquire` attempts.
    owner:
        Free-form owner token recorded in the lock body (defaults to
        ``<host>:pid-<pid>``); surfaces in diagnostics and lease events.

    One instance is intended to persist across retry attempts — the
    staleness observation clock lives on the instance, so handing a fresh
    ``FileLock`` to every poll would never see a lock "sit unchanged".
    """

    def __init__(
        self,
        path: str | Path,
        *,
        stale_after: float | None = None,
        poll_interval: float = 0.05,
        owner: str | None = None,
    ):
        self.path = Path(path)
        if stale_after is not None and stale_after < 0:
            raise LeaseError(f"stale_after must be >= 0, got {stale_after}")
        self.stale_after = stale_after
        self.poll_interval = max(0.001, float(poll_interval))
        self._host = socket.gethostname()
        self.owner = owner or f"{self._host}:pid-{os.getpid()}"
        self._held = False
        self._heartbeat = 0
        #: set by the acquire that followed a stale-lock break, so callers
        #: can report the reclaim (``repro_serve_reclaimed_total``).
        self.reclaimed = False
        # Staleness observation: the last (inode, heartbeat/mtime) we saw
        # and a stopwatch running since we first saw it.
        self._observed: tuple[Any, ...] | None = None
        self._observed_for: StopWatch | None = None

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def held(self) -> bool:
        return self._held

    @property
    def heartbeat_count(self) -> int:
        return self._heartbeat

    def read_owner(self) -> dict[str, Any] | None:
        """The current lock body (``None`` when absent or unreadable)."""
        try:
            doc = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        return doc if isinstance(doc, dict) else None

    # ------------------------------------------------------------------
    # Acquire / release.
    # ------------------------------------------------------------------

    def _body(self) -> str:
        return json.dumps(
            {
                "format": LOCK_FORMAT,
                "owner": self.owner,
                "host": self._host,
                "pid": os.getpid(),
                "heartbeat": self._heartbeat,
            },
            sort_keys=True,
        )

    def try_acquire(self) -> bool:
        """One non-blocking claim attempt; breaks a stale lock if it finds one."""
        if self._held:
            raise LeaseError(f"lock {self.path} is already held by this instance")
        reclaimed = False
        # Two rounds: a failed create may discover a stale lock, break it,
        # and then race other breakers for the fresh create.
        for _ in range(2):
            self.path.parent.mkdir(parents=True, exist_ok=True)
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if self._break_if_stale():
                    reclaimed = True
                    continue
                return False
            self._heartbeat = 0
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(self._body())
            self._held = True
            self.reclaimed = reclaimed
            self._observed = None
            self._observed_for = None
            return True
        return False

    def acquire(self, timeout: float | None = None) -> float:
        """Block until held; returns the seconds spent waiting.

        Raises :class:`~repro.errors.LeaseError` when ``timeout`` elapses
        first (the error carries the current owner token when readable).
        """
        watch = StopWatch().start()
        while True:
            if self.try_acquire():
                return watch.elapsed
            if timeout is not None and watch.elapsed >= timeout:
                owner = (self.read_owner() or {}).get("owner", "<unreadable>")
                raise LeaseError(
                    f"could not acquire {self.path} within {timeout}s "
                    f"(held by {owner})",
                    owner=str(owner),
                )
            time.sleep(self.poll_interval)

    @contextmanager
    def hold(self, timeout: float | None = None) -> Iterator["FileLock"]:
        """``with lock.hold():`` — acquire on entry, release on exit."""
        self.acquire(timeout)
        try:
            yield self
        finally:
            self.release()

    def release(self) -> None:
        """Delete the lock file; a no-op when not held."""
        if not self._held:
            return
        self._held = False
        self._heartbeat = 0
        try:
            self.path.unlink()
        except OSError:
            pass

    def bump(self) -> int:
        """Owner heartbeat: bump the logical counter and rewrite the body.

        Contenders watching the lock see the body change and restart
        their staleness clocks, so a long-running owner that keeps
        bumping is never reclaimed by rule (b).
        """
        if not self._held:
            raise LeaseError(f"cannot heartbeat {self.path}: lock not held")
        self._heartbeat += 1
        tmp = self.path.with_name(f"{self.path.name}.hb-{os.getpid()}")
        try:
            tmp.write_text(self._body(), encoding="utf-8")
            os.replace(tmp, self.path)
        except OSError as exc:
            raise LeaseError(f"cannot heartbeat {self.path}: {exc}") from exc
        return self._heartbeat

    # ------------------------------------------------------------------
    # Staleness.
    # ------------------------------------------------------------------

    def _break_if_stale(self) -> bool:
        """Break the current lock file if its owner is provably gone.

        Returns True when *this* contender won the break (or the file
        vanished on its own) and should retry the ``O_EXCL`` create.
        """
        try:
            stat = os.stat(self.path)
        except OSError:
            return True  # vanished: retry the create immediately
        doc = self.read_owner()
        if doc is not None and doc.get("host") == self._host:
            pid = doc.get("pid")
            if isinstance(pid, int) and pid > 0:
                # On-host liveness is authoritative: reclaim a dead owner
                # now, never reclaim a live one however quiet it is.
                return not _pid_alive(pid) and self._steal()
        if self.stale_after is None:
            return False
        heartbeat = doc.get("heartbeat") if doc is not None else None
        observed = (stat.st_ino, heartbeat, stat.st_mtime_ns if doc is None else None)
        if observed != self._observed:
            self._observed = observed
            self._observed_for = StopWatch().start()
            return False
        assert self._observed_for is not None
        if self._observed_for.elapsed < self.stale_after:
            return False
        return self._steal()

    def _steal(self) -> bool:
        """Rename-then-unlink break: exactly one contender wins."""
        target = self.path.with_name(
            f"{self.path.name}.stale-{os.getpid()}-{id(self):x}"
        )
        try:
            os.replace(self.path, target)
        except OSError:
            return False  # someone else broke it (or the owner released)
        try:
            target.unlink()
        except OSError:
            pass
        self._observed = None
        self._observed_for = None
        return True
