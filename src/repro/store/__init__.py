"""repro.store — content-addressed result store for campaign caching.

A result store maps :attr:`~repro.campaign.spec.CampaignSpec.fingerprint`
to the completed campaign's values + meta, so a repeated ``sample(...,
store=...)`` becomes a lookup instead of a re-run — bit-identical to the
fresh computation, because the fingerprint covers exactly the fields
that determine the merged values (and excludes execution knobs like
backend and worker count, which are cross-validated not to change them).

* :mod:`repro.store.base` — the :class:`ResultStore` protocol, payload
  codec (:func:`encode_result` / :func:`decode_result`), integrity
  hashing, and the scheme registry (:func:`register_store`, mirroring
  :func:`repro.backends.register_backend`);
* :mod:`repro.store.local` — the default directory-tree backend with
  atomic writes, corruption quarantine, and LRU eviction;
* :mod:`repro.store.locks` — :class:`FileLock`, the ``O_EXCL``
  cross-process lock primitive behind job leases and per-fingerprint
  single-flight (``LocalResultStore.fingerprint_lock``).

See docs/SERVICE.md for the full layout and durability protocol.
"""

from repro.store.base import (
    STORE_SCHEMA_VERSION,
    MemoryResultStore,
    ResultStore,
    available_stores,
    decode_result,
    encode_result,
    payload_integrity,
    register_store,
    resolve_store,
)
from repro.store.local import LocalResultStore
from repro.store.locks import LOCK_FORMAT, FileLock

__all__ = [
    "STORE_SCHEMA_VERSION",
    "LOCK_FORMAT",
    "FileLock",
    "ResultStore",
    "LocalResultStore",
    "MemoryResultStore",
    "register_store",
    "available_stores",
    "resolve_store",
    "encode_result",
    "decode_result",
    "payload_integrity",
]
