"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by this library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause without
swallowing unrelated bugs.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DimensionError",
    "UnknownScheduleError",
    "UnsupportedMeshError",
    "ScheduleValidationError",
    "StepLimitExceeded",
    "MissingWireError",
    "CampaignError",
    "CheckpointError",
    "StoreError",
    "ServiceError",
    "LeaseError",
    "AnalysisError",
    "BenchmarkError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class DimensionError(ReproError, ValueError):
    """An input array has the wrong shape, dtype, or contents."""


class UnsupportedMeshError(ReproError, ValueError):
    """An algorithm was asked to run on a mesh side it is not defined for.

    The two row-major algorithms of the paper require an even mesh side
    (``sqrt(N) = 2n``): at odd side the wrap-around comparison would collide
    with the even row-sorting step in the last column.
    """


class UnknownScheduleError(DimensionError, UnsupportedMeshError):
    """A schedule-family lookup failed.

    Raised by :mod:`repro.schedules` when a name does not match any
    registered family (or a family spec string cannot be parsed).  The
    message always lists the registered family names, so CLI surfaces can
    surface valid choices without hardcoding them.  Derives from both
    :class:`DimensionError` (the facade's bad-request contract) and
    :class:`UnsupportedMeshError` (what ``get_algorithm`` historically
    raised for unknown names), so existing ``except`` clauses keep
    working.
    """


class ScheduleValidationError(ReproError, ValueError):
    """A schedule step touches the same cell twice, or is otherwise malformed."""


class StepLimitExceeded(ReproError, RuntimeError):
    """A run hit its step cap before every grid reached the target order.

    Attributes
    ----------
    steps_taken:
        Number of steps executed before giving up.
    unfinished:
        Number of batch elements that had not reached the target order.
    """

    def __init__(
        self, steps_taken: int, unfinished: int, message: str | None = None
    ) -> None:
        self.steps_taken = steps_taken
        self.unfinished = unfinished
        super().__init__(
            message
            or f"step cap of {steps_taken} reached with {unfinished} grid(s) unsorted"
        )


class CampaignError(ReproError, RuntimeError):
    """A Monte-Carlo campaign could not complete.

    Raised by :func:`repro.campaign.run_campaign` when a shard keeps
    failing after its retry budget is exhausted.  Shards completed before
    the failure are preserved in the campaign's checkpoint (when one is
    configured), so a later ``resume=True`` run picks up where this one
    stopped.

    Attributes
    ----------
    failed_shards:
        Indices of the shards that exhausted their retries.
    """

    def __init__(self, failed_shards: list[int], message: str | None = None) -> None:
        self.failed_shards: list[int] = list(failed_shards)
        super().__init__(
            message
            or f"campaign failed on shard(s) {self.failed_shards} after retries"
        )


class CheckpointError(ReproError, RuntimeError):
    """A campaign checkpoint file is unusable for the requested campaign.

    Raised when a checkpoint's header fingerprint does not match the
    campaign spec being resumed (the stored shards were produced by a
    different (algorithm, side, trials, seed, ...) declaration and must
    not be merged), or when the header itself is corrupt.

    Fingerprint mismatches carry the conflict in structured form so the
    service layer can report actionable diagnostics instead of parsing
    the message:

    Attributes
    ----------
    path:
        The offending checkpoint file, or ``None`` for errors not tied to
        a file on disk.
    spec_fingerprint / checkpoint_fingerprint:
        The fingerprint of the campaign being resumed vs the one recorded
        in the file header (``None`` unless the error is a mismatch).
    spec_identity / checkpoint_identity:
        The corresponding :meth:`~repro.campaign.spec.CampaignSpec.identity`
        mappings, when available — the field-level diff is what makes a
        conflict actionable.
    """

    def __init__(
        self,
        message: str,
        *,
        path: object = None,
        spec_fingerprint: str | None = None,
        checkpoint_fingerprint: str | None = None,
        spec_identity: dict | None = None,
        checkpoint_identity: dict | None = None,
    ) -> None:
        self.path = path
        self.spec_fingerprint = spec_fingerprint
        self.checkpoint_fingerprint = checkpoint_fingerprint
        self.spec_identity = spec_identity
        self.checkpoint_identity = checkpoint_identity
        super().__init__(message)


class StoreError(ReproError, RuntimeError):
    """A result-store operation failed (unusable root, undecodable entry, ...).

    Raised by :mod:`repro.store` for problems with the store itself — an
    unwritable root directory, an unregistered store scheme, an entry that
    cannot be serialized.  A *corrupted* stored payload is never raised:
    integrity failures are treated as cache misses (the entry is
    quarantined) so a damaged cache degrades to recomputation, not errors.
    """


class ServiceError(ReproError, RuntimeError):
    """An asynchronous campaign job could not be completed.

    Raised by :class:`repro.service.CampaignService` when fetching the
    result of a job whose underlying campaign failed, or for requests
    about unknown job ids.

    Attributes
    ----------
    job_id:
        The job the error concerns (``""`` when no job was created).
    fingerprint:
        The campaign fingerprint of the failed job, when known.
    """

    def __init__(
        self, message: str, *, job_id: str = "", fingerprint: str = ""
    ) -> None:
        self.job_id = job_id
        self.fingerprint = fingerprint
        super().__init__(message)


class LeaseError(ServiceError):
    """A cross-process lock or job lease could not be acquired or renewed.

    Raised by :class:`repro.store.FileLock` (acquire timeout, heartbeat on
    a lock that is not held) and by the :class:`repro.service.JobQueue`
    lease protocol.  A lease that is merely *contended* is not an error —
    ``try_acquire`` / ``claim`` return ``False`` / ``None`` for that — so
    this class marks genuine protocol violations and exhausted waits.

    Attributes
    ----------
    owner:
        The owner token recorded in the contested lock file, when readable.
    """

    def __init__(
        self,
        message: str,
        *,
        owner: str = "",
        job_id: str = "",
        fingerprint: str = "",
    ) -> None:
        self.owner = owner
        super().__init__(message, job_id=job_id, fingerprint=fingerprint)


class AnalysisError(ReproError, ValueError):
    """A static-analysis run was misconfigured (unknown rule, bad path, ...).

    Raised by :mod:`repro.analysis` for problems with the analysis request
    itself — *findings* in the analyzed code are reported in the returned
    reports, never raised.
    """


class BenchmarkError(ReproError, ValueError):
    """A benchmark request or report is unusable.

    Raised by :mod:`repro.bench` for an unknown case name, a report file
    that is not a ``repro-bench`` document, or a baseline whose schema
    version this code does not understand.  Performance *regressions* are
    findings reported through the comparison result (exit code 1), never
    raised.
    """


class MissingWireError(ReproError, RuntimeError):
    """A comparator was scheduled over a link the mesh does not provide.

    Raised by the processor-level mesh machine when a wrap-around comparison
    is executed on a mesh built without wrap-around wires — the paper's
    "extra wires" requirement for the row-major algorithms.
    """
