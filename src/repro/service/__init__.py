"""repro.service — async campaign jobs over the content-addressed store.

The consolidated public surface of the caching/service tentpole:

* :class:`CampaignService` — ``submit(spec) -> JobHandle``, ``status``,
  ``result``; store cache-hit short-circuiting plus single-flight
  coalescing of concurrent identical submissions;
* :class:`JobHandle` / :class:`JobStatus` / :data:`JOB_STATES` — the job
  lifecycle vocabulary (``pending -> running -> done | failed``);
* :class:`JobQueue` / :func:`spec_from_request` — the durable JSON job
  documents behind ``repro jobs`` and ``repro serve``;
* :class:`JobLease` / :data:`LEASE_STATES` — the cross-process lease
  protocol serve daemons use to partition the pending set (claim via
  ``O_EXCL`` lease files, logical-clock heartbeats, stale reclaim).

See docs/SERVICE.md for the full design.
"""

from repro.service.jobs import JOB_STATES, CampaignService, JobHandle, JobStatus
from repro.service.queue import (
    JOB_SCHEMA_VERSION,
    LEASE_STATES,
    JobLease,
    JobQueue,
    spec_from_request,
)

__all__ = [
    "JOB_STATES",
    "JOB_SCHEMA_VERSION",
    "LEASE_STATES",
    "CampaignService",
    "JobHandle",
    "JobLease",
    "JobStatus",
    "JobQueue",
    "spec_from_request",
]
