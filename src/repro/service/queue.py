"""File-backed job queue: the durable half of ``repro jobs`` / ``repro serve``.

The in-memory :class:`~repro.service.jobs.CampaignService` lives and dies
with one process; the CLI needs submissions to outlive the submitting
command.  :class:`JobQueue` persists each job as one JSON document under
``<root>/jobs/<id>.json`` (atomic tmp + ``os.replace`` updates, the same
durability idiom as the result store), holding the campaign *request* —
the spec fields, not the spec object — so any later ``repro serve``
process can rebuild the spec, run it through a service, and write the
outcome back.

A job document::

    {
      "format": "repro-service-job",
      "schema_version": 1,
      "id": "j000001",
      "state": "pending" | "running" | "done" | "failed",
      "request": {"algorithm": ..., "side": ..., "trials": ..., ...},
      "fingerprint": "...",         # filled when the spec is built
      "cache_hit": false,
      "coalesced": false,
      "error": "",
      "result": {...}               # summary written on completion
    }
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro.campaign.spec import CampaignSpec
from repro.errors import ServiceError

__all__ = ["JOB_SCHEMA_VERSION", "JobQueue", "spec_from_request"]

JOB_SCHEMA_VERSION = 1
_FORMAT = "repro-service-job"

#: Request fields the CLI may set; anything else in a document is rejected
#: so schema drift fails loudly instead of silently sampling the wrong thing.
_REQUEST_FIELDS = (
    "algorithm",
    "side",
    "trials",
    "kind",
    "seed",
    "input_kind",
    "shard_size",
    "max_steps",
    "backend",
)


def spec_from_request(request: dict[str, Any]) -> CampaignSpec:
    """Rebuild the :class:`CampaignSpec` a job document describes.

    The CLI queue carries ``kind="sort_steps"`` requests only (a
    statistic callable does not survive JSON); ``shard_size`` defaults to
    64 to match the :func:`repro.experiments.sample` facade, so queued
    jobs share fingerprints — and store entries — with facade calls.
    """
    unknown = sorted(set(request) - set(_REQUEST_FIELDS))
    if unknown:
        raise ServiceError(f"unknown job request field(s): {', '.join(unknown)}")
    if request.get("kind", "sort_steps") != "sort_steps":
        raise ServiceError(
            "queued jobs support kind='sort_steps' only; statistic "
            "callables cannot be serialized into a job document"
        )
    try:
        return CampaignSpec(
            algorithm=request["algorithm"],
            side=int(request["side"]),
            trials=int(request["trials"]),
            kind="sort_steps",
            input_kind=request.get("input_kind"),
            seed=request.get("seed", 0),
            backend=request.get("backend"),
            max_steps=request.get("max_steps"),
            shard_size=int(request.get("shard_size") or 64),
        )
    except KeyError as exc:
        raise ServiceError(f"job request is missing field {exc.args[0]!r}") from exc


class JobQueue:
    """Durable job documents under ``<root>/jobs/``."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    @property
    def jobs_dir(self) -> Path:
        return self.root / "jobs"

    def job_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    # ------------------------------------------------------------------
    # Submission + updates.
    # ------------------------------------------------------------------

    def submit(self, request: dict[str, Any]) -> dict[str, Any]:
        """Validate ``request``, persist a pending job, return its document."""
        spec = spec_from_request(request)  # fail before touching disk
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        job_id = self._next_id()
        doc = {
            "format": _FORMAT,
            "schema_version": JOB_SCHEMA_VERSION,
            "id": job_id,
            "state": "pending",
            "request": dict(request),
            "fingerprint": spec.fingerprint,
            "cache_hit": False,
            "coalesced": False,
            "error": "",
            "result": None,
        }
        self._write(doc)
        return doc

    def update(self, job_id: str, **fields: Any) -> dict[str, Any]:
        """Merge ``fields`` into a job document atomically."""
        doc = self.load(job_id)
        doc.update(fields)
        self._write(doc)
        return doc

    # ------------------------------------------------------------------
    # Reads.
    # ------------------------------------------------------------------

    def load(self, job_id: str) -> dict[str, Any]:
        try:
            doc = json.loads(self.job_path(job_id).read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise ServiceError(
                f"no job {job_id!r} under {self.jobs_dir}", job_id=job_id
            ) from None
        except (OSError, ValueError) as exc:
            raise ServiceError(
                f"unreadable job document {self.job_path(job_id)}: {exc}",
                job_id=job_id,
            ) from exc
        if not isinstance(doc, dict) or doc.get("format") != _FORMAT:
            raise ServiceError(
                f"{self.job_path(job_id)} is not a job document", job_id=job_id
            )
        return doc

    def list_jobs(self) -> list[dict[str, Any]]:
        """Every job document, in id (submission) order."""
        if not self.jobs_dir.exists():
            return []
        return [
            self.load(path.stem)
            for path in sorted(self.jobs_dir.glob("j*.json"))
        ]

    def pending(self) -> list[dict[str, Any]]:
        return [doc for doc in self.list_jobs() if doc["state"] == "pending"]

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _next_id(self) -> str:
        highest = 0
        for path in self.jobs_dir.glob("j*.json"):
            try:
                highest = max(highest, int(path.stem[1:]))
            except ValueError:
                continue
        return f"j{highest + 1:06d}"

    def _write(self, doc: dict[str, Any]) -> None:
        path = self.job_path(doc["id"])
        tmp = path.parent / f"{path.name}.tmp-{os.getpid()}"
        tmp.write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        os.replace(tmp, path)
