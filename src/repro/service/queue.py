"""File-backed job queue: the durable half of ``repro jobs`` / ``repro serve``.

The in-memory :class:`~repro.service.jobs.CampaignService` lives and dies
with one process; the CLI needs submissions to outlive the submitting
command.  :class:`JobQueue` persists each job as one JSON document under
``<root>/jobs/<id>.json`` (atomic tmp + ``os.replace`` updates, the same
durability idiom as the result store), holding the campaign *request* —
the spec fields, not the spec object — so any later ``repro serve``
process can rebuild the spec, run it through a service, and write the
outcome back.

A job document::

    {
      "format": "repro-service-job",
      "schema_version": 1,
      "id": "j000001",
      "state": "pending" | "running" | "done" | "failed",
      "request": {"algorithm": ..., "side": ..., "trials": ..., ...},
      "fingerprint": "...",         # filled when the spec is built
      "cache_hit": false,
      "coalesced": false,
      "error": "",
      "result": {...}               # summary written on completion
    }

Multi-process protocol (N ``repro serve`` daemons sharing one queue):

* **Id allocation** is race-free: the full document is written to a tmp
  file and hard-linked to ``j<nnnnnn>.json`` — the link fails with
  ``EEXIST`` when a concurrent submitter took the id, and the loser
  retries with the next one.  Ids are claimed atomically *with* their
  complete content, so readers never observe a half-written submission.
* **Claims** go through :meth:`claim` / :meth:`claim_pending`: an
  ``O_EXCL`` lease file under ``jobs/leases/`` (see
  :class:`repro.store.FileLock`) marks a pending job as owned by one
  serve process.  Owners bump a logical-clock heartbeat while they work;
  a lease whose owner died (on-host pid probe) or whose heartbeat has
  sat unchanged for the staleness bound is **reclaimed** by the next
  claimant.
* **Updates** are merge-atomic: :meth:`update` wraps its
  read-modify-write in a per-document lock under ``jobs/locks/``, so two
  concurrent writers interleave whole updates instead of losing fields.
* **Corrupt documents** (torn writes from killed processes) never brick
  the queue: :meth:`list_jobs` quarantines them under
  ``jobs/quarantine/`` and reports a ``state="quarantined"`` marker
  entry, mirroring the result store's corruption-as-miss discipline.
"""

from __future__ import annotations

import errno
import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.campaign.spec import CampaignSpec
from repro.errors import LeaseError, ServiceError
from repro.store.locks import FileLock

__all__ = [
    "JOB_SCHEMA_VERSION",
    "LEASE_STATES",
    "JobLease",
    "JobQueue",
    "spec_from_request",
]

JOB_SCHEMA_VERSION = 1
_FORMAT = "repro-service-job"

#: Lease-transition vocabulary reported as ``JobUpdate.state`` by serve
#: processes (alongside the job lifecycle states): a pending job was
#: ``leased``; a stale lease was ``reclaimed`` from a dead/silent owner
#: before the claim; a lease was ``released`` on completion or drain; a
#: service flight hit the cross-process fingerprint lock (``lock_wait``).
LEASE_STATES = ("leased", "reclaimed", "released", "lock_wait")

#: Request fields the CLI may set; anything else in a document is rejected
#: so schema drift fails loudly instead of silently sampling the wrong thing.
_REQUEST_FIELDS = (
    "algorithm",
    "side",
    "trials",
    "kind",
    "seed",
    "input_kind",
    "shard_size",
    "max_steps",
    "backend",
)

#: Bound on id-allocation retries under contention; hitting it means
#: thousands of submitters raced this one, which is a deployment bug.
_ID_ATTEMPTS = 1000


def spec_from_request(request: dict[str, Any]) -> CampaignSpec:
    """Rebuild the :class:`CampaignSpec` a job document describes.

    The CLI queue carries ``kind="sort_steps"`` requests only (a
    statistic callable does not survive JSON); ``shard_size`` defaults to
    64 to match the :func:`repro.experiments.sample` facade, so queued
    jobs share fingerprints — and store entries — with facade calls.
    """
    unknown = sorted(set(request) - set(_REQUEST_FIELDS))
    if unknown:
        raise ServiceError(f"unknown job request field(s): {', '.join(unknown)}")
    if request.get("kind", "sort_steps") != "sort_steps":
        raise ServiceError(
            "queued jobs support kind='sort_steps' only; statistic "
            "callables cannot be serialized into a job document"
        )
    try:
        return CampaignSpec(
            algorithm=request["algorithm"],
            side=int(request["side"]),
            trials=int(request["trials"]),
            kind="sort_steps",
            input_kind=request.get("input_kind"),
            seed=request.get("seed", 0),
            backend=request.get("backend"),
            max_steps=request.get("max_steps"),
            shard_size=int(request.get("shard_size") or 64),
        )
    except KeyError as exc:
        raise ServiceError(f"job request is missing field {exc.args[0]!r}") from exc


@dataclass
class JobLease:
    """One claimed job: the ticket a serve process holds while working.

    ``reclaimed`` records whether the claim broke a stale lease left by a
    dead or silent owner (surfaced as a ``reclaimed`` lease event and the
    ``repro_serve_reclaimed_total`` counter).
    """

    job_id: str
    lock: FileLock
    reclaimed: bool = False

    @property
    def active(self) -> bool:
        return self.lock.held

    @property
    def owner(self) -> str:
        return self.lock.owner

    def heartbeat(self) -> int:
        """Bump the lease's logical clock; contenders see it as liveness."""
        return self.lock.bump()

    def release(self) -> None:
        """Give the job up (done, failed, or draining); idempotent."""
        self.lock.release()


class JobQueue:
    """Durable job documents under ``<root>/jobs/``.

    Parameters
    ----------
    root:
        The store directory (documents live under ``root/jobs/``).
    owner:
        Owner token recorded in every lease this instance claims;
        defaults to ``<host>:pid-<pid>``.
    """

    def __init__(self, root: str | Path, *, owner: str | None = None):
        self.root = Path(root)
        self.owner = owner
        # Lease locks are cached per job id: observation-based staleness
        # needs the SAME FileLock instance to watch a lease across polls.
        self._lease_locks: dict[str, FileLock] = {}

    @property
    def jobs_dir(self) -> Path:
        return self.root / "jobs"

    @property
    def leases_dir(self) -> Path:
        return self.jobs_dir / "leases"

    @property
    def quarantine_dir(self) -> Path:
        return self.jobs_dir / "quarantine"

    def job_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    def lease_path(self, job_id: str) -> Path:
        return self.leases_dir / f"{job_id}.lease"

    # ------------------------------------------------------------------
    # Submission + updates.
    # ------------------------------------------------------------------

    def submit(self, request: dict[str, Any]) -> dict[str, Any]:
        """Validate ``request``, persist a pending job, return its document.

        Safe against concurrent submitters: the id is claimed by an
        atomic hard-link (``EEXIST`` on collision → retry with the next
        id), so two ``repro jobs submit`` processes can never clobber
        each other's documents.
        """
        spec = spec_from_request(request)  # fail before touching disk
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        doc = {
            "format": _FORMAT,
            "schema_version": JOB_SCHEMA_VERSION,
            "id": "",
            "state": "pending",
            "request": dict(request),
            "fingerprint": spec.fingerprint,
            "cache_hit": False,
            "coalesced": False,
            "error": "",
            "result": None,
        }
        for _ in range(_ID_ATTEMPTS):
            doc["id"] = self._candidate_id()
            if self._create_exclusive(doc):
                return doc
        raise ServiceError(
            f"could not allocate a job id under {self.jobs_dir} after "
            f"{_ID_ATTEMPTS} attempts"
        )

    def _create_exclusive(self, doc: dict[str, Any]) -> bool:
        """Atomically materialize ``doc`` at its id; False on id collision."""
        path = self.job_path(doc["id"])
        text = json.dumps(doc, indent=2, sort_keys=True) + "\n"
        # pid AND thread id: two threads of one process racing on the same
        # candidate id must not share (and mutually unlink) a tmp file.
        tmp = path.parent / (
            f".submit-{os.getpid()}-{threading.get_ident()}-{doc['id']}.tmp"
        )
        tmp.write_text(text, encoding="utf-8")
        try:
            # Hard link = O_EXCL claim of the id + complete content in one
            # atomic step (readers never see a torn submission).
            os.link(tmp, path)
            return True
        except FileExistsError:
            return False
        except OSError as exc:
            if exc.errno not in (errno.EPERM, errno.EOPNOTSUPP, errno.ENOTSUP):
                raise ServiceError(
                    f"cannot create job document {path}: {exc}"
                ) from exc
            # Filesystem without hard links: O_EXCL still claims the id
            # atomically; content atomicity degrades to the quarantine
            # path (a torn write is skipped by list_jobs, never merged).
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                return False
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(text)
            return True
        finally:
            try:
                tmp.unlink()
            except OSError:
                pass

    def _candidate_id(self) -> str:
        highest = 0
        for path in self.jobs_dir.glob("j*.json"):
            try:
                highest = max(highest, int(path.stem[1:]))
            except ValueError:
                continue
        return f"j{highest + 1:06d}"

    def update(self, job_id: str, **fields: Any) -> dict[str, Any]:
        """Merge ``fields`` into a job document atomically.

        The read-modify-write runs under a per-document cross-process
        lock, so concurrent writers serialize whole merges — the document
        always reflects a sequence of complete updates, never a torn
        interleaving that lost one writer's fields.
        """
        lock = FileLock(
            self.jobs_dir / "locks" / f"{job_id}.lock",
            stale_after=5.0,
            poll_interval=0.01,
            owner=self.owner,
        )
        with lock.hold(timeout=30.0):
            doc = self.load(job_id)
            doc.update(fields)
            self._write(doc)
        return doc

    # ------------------------------------------------------------------
    # Leases.
    # ------------------------------------------------------------------

    def claim(
        self, job_id: str, *, stale_after: float | None = None
    ) -> JobLease | None:
        """Try to lease ``job_id``; ``None`` when another owner holds it.

        A lease whose owner is dead (on-host pid probe) is reclaimed
        immediately; one whose heartbeat this queue instance has watched
        sit unchanged for ``stale_after`` seconds is reclaimed as stale
        (``None`` disables the observation rule).
        """
        lock = self._lease_locks.get(job_id)
        if lock is None or lock.held:
            if lock is not None and lock.held:
                # We already own it — claiming twice is a protocol bug.
                raise LeaseError(
                    f"lease for {job_id} is already held by this queue",
                    job_id=job_id,
                    owner=lock.owner,
                )
            lock = FileLock(
                self.lease_path(job_id),
                stale_after=stale_after,
                owner=self.owner,
            )
            self._lease_locks[job_id] = lock
        lock.stale_after = stale_after
        if not lock.try_acquire():
            return None
        return JobLease(job_id=job_id, lock=lock, reclaimed=lock.reclaimed)

    def claim_pending(
        self,
        *,
        limit: int | None = None,
        stale_after: float | None = None,
    ) -> list[tuple[dict[str, Any], JobLease]]:
        """Lease up to ``limit`` pending jobs, in submission order.

        Concurrent serve processes calling this partition the pending set:
        each job's ``O_EXCL`` lease admits exactly one claimant.  Every
        claimed document is re-read under the lease, so a job completed
        between listing and claiming is skipped, not re-run.
        """
        claimed: list[tuple[dict[str, Any], JobLease]] = []
        for doc in self.pending():
            if limit is not None and len(claimed) >= limit:
                break
            lease = self.claim(doc["id"], stale_after=stale_after)
            if lease is None:
                continue
            try:
                current = self.load(doc["id"])
            except ServiceError:
                lease.release()
                continue
            if current["state"] != "pending":
                lease.release()
                continue
            claimed.append((current, lease))
        return claimed

    # ------------------------------------------------------------------
    # Reads.
    # ------------------------------------------------------------------

    def load(self, job_id: str) -> dict[str, Any]:
        try:
            doc = json.loads(self.job_path(job_id).read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise ServiceError(
                f"no job {job_id!r} under {self.jobs_dir}", job_id=job_id
            ) from None
        except (OSError, ValueError) as exc:
            raise ServiceError(
                f"unreadable job document {self.job_path(job_id)}: {exc}",
                job_id=job_id,
            ) from exc
        if not isinstance(doc, dict) or doc.get("format") != _FORMAT:
            raise ServiceError(
                f"{self.job_path(job_id)} is not a job document", job_id=job_id
            )
        return doc

    def list_jobs(self) -> list[dict[str, Any]]:
        """Every job document, in id (submission) order.

        A document that cannot be parsed (torn write from a killed
        process, manual damage) is moved to ``jobs/quarantine/`` and
        reported as a ``state="quarantined"`` marker entry — one bad
        write never bricks the listing or a serve pass.
        """
        if not self.jobs_dir.exists():
            return []
        docs = []
        for path in sorted(self.jobs_dir.glob("j*.json")):
            try:
                docs.append(self.load(path.stem))
            except ServiceError:
                marker = self._quarantine_job(path)
                if marker is not None:
                    docs.append(marker)
        return docs

    def pending(self) -> list[dict[str, Any]]:
        return [doc for doc in self.list_jobs() if doc["state"] == "pending"]

    def _quarantine_job(self, path: Path) -> dict[str, Any] | None:
        """Move a corrupt document aside; a marker entry for the listing.

        Returns ``None`` when the file vanished (a concurrent process
        quarantined — or was still publishing — it); the entry simply
        drops out of this listing.
        """
        if not path.exists():
            return None
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        n = 1
        while (target := self.quarantine_dir / f"{path.stem}-{n}.json").exists():
            n += 1
        try:
            os.replace(path, target)
        except OSError:
            return None
        return {
            "format": _FORMAT,
            "schema_version": JOB_SCHEMA_VERSION,
            "id": path.stem,
            "state": "quarantined",
            "request": {},
            "fingerprint": "",
            "cache_hit": False,
            "coalesced": False,
            "error": f"unreadable job document quarantined to {target}",
            "result": None,
        }

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _write(self, doc: dict[str, Any]) -> None:
        path = self.job_path(doc["id"])
        tmp = path.parent / f"{path.name}.tmp-{os.getpid()}"
        tmp.write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        os.replace(tmp, path)
