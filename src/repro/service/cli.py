"""``repro jobs`` and ``repro serve``: the durable-queue front of the service.

``repro jobs submit`` validates a campaign request and persists it as a
pending job document next to the result store; ``repro serve`` drains the
pending set through an in-process :class:`~repro.service.jobs.CampaignService`
(store short-circuit + single-flight coalescing included) and writes each
outcome back; ``repro jobs status/result/list`` inspect the documents.

One directory (``--store``) holds everything: the content-addressed
result entries, ``index.json``, and the ``jobs/`` queue — so shipping the
directory ships the cache *and* its audit trail.

Exit codes follow the repro CLI contract: 0 ok, 1 failures (a served job
failed; asking for the result of an unfinished/failed job), 2 usage.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from repro.errors import ReproError, ServiceError
from repro.obs.context import use_observer
from repro.obs.metrics import MetricsObserver, MetricsRegistry
from repro.service.jobs import CampaignService
from repro.service.queue import JobQueue, spec_from_request

__all__ = ["jobs_main", "serve_main"]


def _add_store_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        required=True,
        metavar="DIR",
        help="result-store directory (job documents live under DIR/jobs/)",
    )


def _job_line(doc: dict[str, Any]) -> str:
    request = doc.get("request", {})
    line = (
        f"{doc['id']}  {doc['state']:7s}  "
        f"{request.get('algorithm', '?')} side={request.get('side', '?')} "
        f"trials={request.get('trials', '?')}  fp={doc.get('fingerprint', '')}"
    )
    if doc.get("cache_hit"):
        line += "  [cache hit]"
    if doc.get("coalesced"):
        line += "  [coalesced]"
    if doc.get("error"):
        line += f"  error={doc['error']}"
    return line


# ---------------------------------------------------------------------------
# repro jobs
# ---------------------------------------------------------------------------


def jobs_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro jobs",
        description="submit and inspect durable campaign jobs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_submit = sub.add_parser("submit", help="queue one sort_steps campaign")
    p_submit.add_argument("algorithm", help="schedule/algorithm name")
    p_submit.add_argument("--side", type=int, required=True)
    p_submit.add_argument("--trials", type=int, required=True)
    p_submit.add_argument("--seed", type=int, default=0)
    p_submit.add_argument(
        "--shard-size", type=int, default=None,
        help="trials per campaign shard (default 64, matching sample())",
    )
    p_submit.add_argument("--backend", default=None)
    p_submit.add_argument(
        "--input-kind", default=None, choices=("permutation", "zero_one")
    )
    p_submit.add_argument("--max-steps", type=int, default=None)
    _add_store_arg(p_submit)

    p_status = sub.add_parser("status", help="one job's lifecycle state")
    p_status.add_argument("job_id")
    _add_store_arg(p_status)

    p_result = sub.add_parser("result", help="a finished job's result summary")
    p_result.add_argument("job_id")
    _add_store_arg(p_result)

    p_list = sub.add_parser("list", help="every job document, in submit order")
    _add_store_arg(p_list)

    args = parser.parse_args(argv)
    queue = JobQueue(args.store)
    try:
        if args.command == "submit":
            request = {
                "algorithm": args.algorithm,
                "side": args.side,
                "trials": args.trials,
                "kind": "sort_steps",
                "seed": args.seed,
            }
            for key, value in (
                ("shard_size", args.shard_size),
                ("backend", args.backend),
                ("input_kind", args.input_kind),
                ("max_steps", args.max_steps),
            ):
                if value is not None:
                    request[key] = value
            doc = queue.submit(request)
            print(_job_line(doc))
            return 0
        if args.command == "status":
            print(_job_line(queue.load(args.job_id)))
            return 0
        if args.command == "result":
            doc = queue.load(args.job_id)
            if doc["state"] != "done":
                print(
                    f"job {doc['id']} is {doc['state']}, not done"
                    + (f": {doc['error']}" if doc.get("error") else ""),
                    file=sys.stderr,
                )
                return 1
            print(json.dumps(doc["result"], indent=2, sort_keys=True))
            return 0
        # list
        for doc in queue.list_jobs():
            print(_job_line(doc))
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


# ---------------------------------------------------------------------------
# repro serve
# ---------------------------------------------------------------------------


def _result_summary(result: Any) -> dict[str, Any]:
    """The JSON written back into a completed job document."""
    return {
        "count": result.stats.count,
        "mean": result.stats.mean,
        "std": result.stats.std,
        "values_digest": result.values_digest,
        "elapsed": result.meta.get("elapsed"),
        "store": result.meta.get("store"),
    }


def serve_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "drain pending jobs through the campaign service "
            "(store cache + single-flight coalescing)"
        ),
    )
    _add_store_arg(parser)
    parser.add_argument(
        "--once",
        action="store_true",
        help="process the current pending set and exit (the default and, "
        "for now, only mode; the flag documents intent in scripts)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="campaign worker processes per job (default 1)",
    )
    parser.add_argument(
        "--service-workers", type=int, default=2,
        help="concurrent flights in the service pool (default 2)",
    )
    parser.add_argument(
        "--max-jobs", type=int, default=None,
        help="serve at most this many pending jobs",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the service metrics registry snapshot as JSON",
    )
    args = parser.parse_args(argv)

    from repro.campaign.execution import ExecutionOptions
    from repro.store import LocalResultStore

    queue = JobQueue(args.store)
    pending = queue.pending()
    if args.max_jobs is not None:
        pending = pending[: args.max_jobs]
    if not pending:
        print("no pending jobs")
        return 0

    registry = MetricsRegistry()
    observer = MetricsObserver(registry)
    failed = 0
    with use_observer(observer):
        service = CampaignService(
            store=LocalResultStore(args.store),
            execution=ExecutionOptions(workers=args.workers),
            max_workers=args.service_workers,
        )
        with service:
            # Submit the whole batch first so identical pending jobs
            # coalesce onto one flight, then collect in submit order.
            handles = []
            for doc in pending:
                try:
                    spec = spec_from_request(doc["request"])
                except ServiceError as exc:
                    queue.update(doc["id"], state="failed", error=str(exc))
                    failed += 1
                    continue
                queue.update(doc["id"], state="running")
                handles.append((doc, service.submit(spec)))
            for doc, handle in handles:
                try:
                    result = service.result(handle)
                except ServiceError as exc:
                    status = service.status(handle)
                    queue.update(
                        doc["id"], state="failed", error=status.error or str(exc)
                    )
                    failed += 1
                    print(f"{doc['id']}  failed  {status.error or exc}")
                    continue
                status = service.status(handle)
                updated = queue.update(
                    doc["id"],
                    state="done",
                    cache_hit=status.cache_hit,
                    coalesced=status.coalesced,
                    result=_result_summary(result),
                )
                print(_job_line(updated))

    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            json.dump(registry.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
    return 1 if failed else 0
