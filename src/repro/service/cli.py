"""``repro jobs`` and ``repro serve``: the durable-queue front of the service.

``repro jobs submit`` validates a campaign request and persists it as a
pending job document next to the result store; ``repro serve`` claims
pending jobs through the :class:`~repro.service.queue.JobQueue` lease
protocol and drains them through an in-process
:class:`~repro.service.jobs.CampaignService` (store short-circuit +
single-flight coalescing included), writing each outcome back;
``repro jobs status/result/list`` inspect the documents.

``repro serve`` runs as a **daemon** by default: it polls the queue with
jittered backoff while idle, heartbeats the leases it holds, retries jobs
that fail with a transient :class:`~repro.errors.CampaignError`, and
drains gracefully on SIGINT/SIGTERM — in-flight jobs finish, held leases
are released.  ``--once`` serves the currently claimable pending set and
exits.  Because claims are ``O_EXCL`` leases and campaign execution takes
a per-fingerprint lock under ``<store>/locks/``, any number of serve
processes can share one store: they partition the pending set, and each
distinct fingerprint executes exactly once.

One directory (``--store``) holds everything: the content-addressed
result entries, ``index.json``, the ``jobs/`` queue, and the lease/lock
files — so shipping the directory ships the cache *and* its audit trail.

Exit codes follow the repro CLI contract: 0 ok, 1 failures (a served job
failed; asking for the result of an unfinished/failed job), 2 usage.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ReproError, ServiceError
from repro.obs.context import use_observer
from repro.obs.events import JobUpdate, Observer
from repro.obs.metrics import MetricsObserver, MetricsRegistry
from repro.obs.timing import StopWatch
from repro.randomness import as_generator
from repro.service.jobs import CampaignService, JobHandle
from repro.service.queue import JobLease, JobQueue, spec_from_request

__all__ = ["jobs_main", "serve_main"]


def _add_store_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        required=True,
        metavar="DIR",
        help="result-store directory (job documents live under DIR/jobs/)",
    )


def _job_line(doc: dict[str, Any]) -> str:
    request = doc.get("request", {})
    line = (
        f"{doc['id']}  {doc['state']:7s}  "
        f"{request.get('algorithm', '?')} side={request.get('side', '?')} "
        f"trials={request.get('trials', '?')}  fp={doc.get('fingerprint', '')}"
    )
    if doc.get("cache_hit"):
        line += "  [cache hit]"
    if doc.get("coalesced"):
        line += "  [coalesced]"
    if doc.get("error"):
        line += f"  error={doc['error']}"
    return line


# ---------------------------------------------------------------------------
# repro jobs
# ---------------------------------------------------------------------------


def jobs_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro jobs",
        description="submit and inspect durable campaign jobs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_submit = sub.add_parser("submit", help="queue one sort_steps campaign")
    p_submit.add_argument("algorithm", help="schedule/algorithm name")
    p_submit.add_argument("--side", type=int, required=True)
    p_submit.add_argument("--trials", type=int, required=True)
    p_submit.add_argument("--seed", type=int, default=0)
    p_submit.add_argument(
        "--shard-size", type=int, default=None,
        help="trials per campaign shard (default 64, matching sample())",
    )
    p_submit.add_argument("--backend", default=None)
    p_submit.add_argument(
        "--input-kind", default=None, choices=("permutation", "zero_one")
    )
    p_submit.add_argument("--max-steps", type=int, default=None)
    _add_store_arg(p_submit)

    p_status = sub.add_parser("status", help="one job's lifecycle state")
    p_status.add_argument("job_id")
    _add_store_arg(p_status)

    p_result = sub.add_parser("result", help="a finished job's result summary")
    p_result.add_argument("job_id")
    _add_store_arg(p_result)

    p_list = sub.add_parser("list", help="every job document, in submit order")
    _add_store_arg(p_list)

    args = parser.parse_args(argv)
    queue = JobQueue(args.store)
    try:
        if args.command == "submit":
            request = {
                "algorithm": args.algorithm,
                "side": args.side,
                "trials": args.trials,
                "kind": "sort_steps",
                "seed": args.seed,
            }
            for key, value in (
                ("shard_size", args.shard_size),
                ("backend", args.backend),
                ("input_kind", args.input_kind),
                ("max_steps", args.max_steps),
            ):
                if value is not None:
                    request[key] = value
            doc = queue.submit(request)
            print(_job_line(doc))
            return 0
        if args.command == "status":
            print(_job_line(queue.load(args.job_id)))
            return 0
        if args.command == "result":
            doc = queue.load(args.job_id)
            if doc["state"] != "done":
                print(
                    f"job {doc['id']} is {doc['state']}, not done"
                    + (f": {doc['error']}" if doc.get("error") else ""),
                    file=sys.stderr,
                )
                return 1
            print(json.dumps(doc["result"], indent=2, sort_keys=True))
            return 0
        # list
        for doc in queue.list_jobs():
            print(_job_line(doc))
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


# ---------------------------------------------------------------------------
# repro serve
# ---------------------------------------------------------------------------


def _result_summary(result: Any) -> dict[str, Any]:
    """The JSON written back into a completed job document."""
    return {
        "count": result.stats.count,
        "mean": result.stats.mean,
        "std": result.stats.std,
        "values_digest": result.values_digest,
        "elapsed": result.meta.get("elapsed"),
        "store": result.meta.get("store"),
    }


@dataclass
class _Inflight:
    """One claimed job riding the service: lease + handle + retry state."""

    doc: dict[str, Any]
    lease: JobLease
    spec: Any
    handle: JobHandle
    attempts: int = 1
    finished: bool = False


@dataclass
class _ServeSession:
    """One serve process's loop state, shared by --once and daemon mode."""

    queue: JobQueue
    service: CampaignService
    observer: Observer
    args: argparse.Namespace
    stop: threading.Event
    processed: int = 0
    failed: int = 0
    # Seeded per-process so N daemons sharing a queue jitter differently.
    rng: Any = field(default_factory=lambda: as_generator(os.getpid()))

    def _emit(self, state: str, doc: dict[str, Any]) -> None:
        self.observer.on_job_update(
            JobUpdate(
                job_id=doc["id"],
                fingerprint=doc.get("fingerprint", ""),
                state=state,
            )
        )

    def _limit(self) -> int | None:
        if self.args.max_jobs is None:
            return None
        return max(0, self.args.max_jobs - self.processed)

    @property
    def budget_spent(self) -> bool:
        limit = self._limit()
        return limit is not None and limit <= 0

    def serve_pass(self) -> int:
        """Claim + serve one batch of pending jobs; returns jobs claimed."""
        limit = self._limit()
        if limit is not None and limit <= 0:
            return 0
        claimed = self.queue.claim_pending(
            limit=limit, stale_after=self.args.lease_stale_after
        )
        if not claimed:
            return 0
        for doc, lease in claimed:
            if lease.reclaimed:
                self._emit("reclaimed", doc)
            self._emit("leased", doc)
        # Submit the whole batch first so identical pending jobs coalesce
        # onto one flight, then collect in submit order.
        inflight: list[_Inflight] = []
        for doc, lease in claimed:
            if self.stop.is_set():
                # Draining: leave the job pending for another process.
                lease.release()
                self._emit("released", doc)
                continue
            try:
                spec = spec_from_request(doc["request"])
            except ServiceError as exc:
                self._finish(doc, lease, error=str(exc))
                continue
            self.queue.update(doc["id"], state="running", owner=lease.owner)
            handle = self.service.submit(spec)
            inflight.append(_Inflight(doc=doc, lease=lease, spec=spec, handle=handle))
        for job in inflight:
            self._collect(job, inflight)
        return len(claimed)

    def _collect(self, job: _Inflight, inflight: list[_Inflight]) -> None:
        """Wait for one job, heartbeating every held lease while blocked."""
        while True:
            try:
                result = self.service.result(
                    job.handle, timeout=self.args.heartbeat_interval
                )
            except ServiceError as exc:
                status = self.service.status(job.handle)
                if not status.terminal:
                    self._heartbeat_all(inflight)
                    continue
                if (
                    status.error_type == "CampaignError"
                    and job.attempts <= self.args.job_retries
                ):
                    # Transient campaign failure (lost workers, exhausted
                    # shard retries): back off and resubmit the spec.
                    delay = self.args.retry_backoff * (2 ** (job.attempts - 1))
                    job.attempts += 1
                    self.stop.wait(delay * (0.5 + self.rng.random()))
                    self.queue.update(job.doc["id"], attempts=job.attempts)
                    job.handle = self.service.submit(job.spec)
                    continue
                self._finish(job.doc, job.lease, error=status.error or str(exc))
                job.finished = True
                return
            status = self.service.status(job.handle)
            updated = self.queue.update(
                job.doc["id"],
                state="done",
                cache_hit=status.cache_hit,
                coalesced=status.coalesced,
                result=_result_summary(result),
            )
            job.lease.release()
            self._emit("released", job.doc)
            job.finished = True
            self.processed += 1
            print(_job_line(updated))
            return

    def _finish(self, doc: dict[str, Any], lease: JobLease, *, error: str) -> None:
        self.queue.update(doc["id"], state="failed", error=error)
        lease.release()
        self._emit("released", doc)
        self.failed += 1
        self.processed += 1
        print(f"{doc['id']}  failed  {error}")

    def _heartbeat_all(self, inflight: list[_Inflight]) -> None:
        for job in inflight:
            if not job.finished and job.lease.active:
                job.lease.heartbeat()


def _daemon_loop(session: _ServeSession, args: argparse.Namespace) -> None:
    """Poll until stopped: serve, then sleep with jittered idle backoff."""
    idle = StopWatch().start()
    idle_rounds = 0
    while not session.stop.is_set():
        served = session.serve_pass()
        if session.budget_spent:
            return
        if served:
            idle = StopWatch().start()
            idle_rounds = 0
            continue
        if args.idle_exit is not None and idle.elapsed >= args.idle_exit:
            return
        # Jittered backoff: the base interval doubles (up to 8x) while the
        # queue stays empty, and every sleep is randomized +/-50% so N
        # daemons sharing a queue don't stampede the directory in sync.
        backoff = args.poll_interval * min(8, 2 ** min(idle_rounds, 3))
        idle_rounds += 1
        session.stop.wait(backoff * (0.5 + session.rng.random()))


def serve_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "serve pending jobs through the campaign service "
            "(store cache + single-flight coalescing + cross-process leases); "
            "runs as a polling daemon unless --once is given"
        ),
    )
    _add_store_arg(parser)
    parser.add_argument(
        "--once",
        action="store_true",
        help="serve the currently claimable pending set and exit",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="campaign worker processes per job (default 1)",
    )
    parser.add_argument(
        "--service-workers", type=int, default=2,
        help="concurrent flights in the service pool (default 2)",
    )
    parser.add_argument(
        "--max-jobs", type=int, default=None,
        help="serve at most this many pending jobs, then exit",
    )
    parser.add_argument(
        "--poll-interval", type=float, default=0.5, metavar="SECONDS",
        help="base queue poll interval in daemon mode (default 0.5; idle "
        "polls back off up to 8x with +/-50%% jitter)",
    )
    parser.add_argument(
        "--idle-exit", type=float, default=None, metavar="SECONDS",
        help="daemon exits after the queue has been empty this long "
        "(default: run until SIGINT/SIGTERM)",
    )
    parser.add_argument(
        "--lease-stale-after", type=float, default=60.0, metavar="SECONDS",
        help="reclaim another serve's job lease after its heartbeat has "
        "sat unchanged this long (dead on-host owners are reclaimed "
        "immediately; default 60)",
    )
    parser.add_argument(
        "--heartbeat-interval", type=float, default=5.0, metavar="SECONDS",
        help="bump held lease heartbeats this often while jobs run "
        "(default 5)",
    )
    parser.add_argument(
        "--job-retries", type=int, default=1,
        help="re-serve a job this many extra times after a transient "
        "CampaignError (default 1; other failures never retry)",
    )
    parser.add_argument(
        "--retry-backoff", type=float, default=0.5, metavar="SECONDS",
        help="base delay before a job retry; doubles per attempt, "
        "jittered (default 0.5)",
    )
    parser.add_argument(
        "--owner", default=None,
        help="owner token recorded in leases (default <host>:pid-<pid>)",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the service metrics registry snapshot as JSON",
    )
    args = parser.parse_args(argv)
    if args.poll_interval <= 0:
        parser.error("--poll-interval must be positive")
    if args.heartbeat_interval <= 0:
        parser.error("--heartbeat-interval must be positive")
    if args.job_retries < 0:
        parser.error("--job-retries must be >= 0")

    from repro.campaign.execution import ExecutionOptions
    from repro.store import LocalResultStore

    queue = JobQueue(args.store, owner=args.owner)
    registry = MetricsRegistry()
    observer = MetricsObserver(registry)
    stop = threading.Event()

    # Graceful drain: first signal stops claiming and finishes in-flight
    # jobs (their leases are released as they complete); a second signal
    # falls through to the previous handler (default: terminate).
    previous: list[tuple[int, Any]] = []
    if threading.current_thread() is threading.main_thread():

        def _drain(signum: int, frame: Any) -> None:
            if stop.is_set():
                signal.signal(signum, signal.SIG_DFL)
                signal.raise_signal(signum)
            stop.set()

        for sig in (signal.SIGINT, signal.SIGTERM):
            previous.append((sig, signal.signal(sig, _drain)))

    try:
        with use_observer(observer):
            service = CampaignService(
                store=LocalResultStore(args.store),
                execution=ExecutionOptions(workers=args.workers),
                max_workers=args.service_workers,
            )
            with service:
                session = _ServeSession(
                    queue=queue,
                    service=service,
                    observer=observer,
                    args=args,
                    stop=stop,
                )
                if args.once:
                    if session.serve_pass() == 0:
                        leased = sum(
                            1 for d in queue.pending()
                            if queue.lease_path(d["id"]).exists()
                        )
                        if leased:
                            print(
                                f"no claimable pending jobs "
                                f"({leased} leased by other serve processes)"
                            )
                        else:
                            print("no pending jobs")
                else:
                    _daemon_loop(session, args)
    finally:
        for sig, handler in previous:
            signal.signal(sig, handler)

    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            json.dump(registry.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
    return 1 if session.failed else 0
