"""The async campaign job service: submit/status/result over a result store.

:class:`CampaignService` turns :class:`~repro.campaign.spec.CampaignSpec`
submissions into background campaign runs on a thread pool, with two
dedup layers stacked on the spec fingerprint:

* **store short-circuit** — a fingerprint already in the configured
  result store is served from it (:func:`repro.campaign.run_campaign`'s
  ``store=`` path: zero kernel steps, bit-identical values);
* **single-flight coalescing** — concurrent submissions of the same
  fingerprint share one in-flight execution (the same idiom as the
  backend compile cache): the first starts the campaign, the rest attach
  to it, and every attached job observes the one result.

Job lifecycle is ``pending -> running -> done | failed``, reported as
:class:`~repro.obs.events.JobUpdate` events on the observer stream and
tallied by :class:`~repro.obs.metrics.MetricsObserver` into the
``repro_service_jobs_*`` / ``repro_service_cache_hits_total`` counters.

Threading note: ambient observers and profilers are installed via
``ContextVar``, which does **not** propagate into pool threads — the
service captures them at :meth:`~CampaignService.submit` time and
reinstalls them inside the flight thread, so ``with use_observer(...):
service.submit(...)`` behaves exactly like a foreground run.
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any

from repro.campaign.execution import ExecutionOptions
from repro.campaign.runner import run_campaign
from repro.campaign.spec import CampaignSpec
from repro.errors import ServiceError
from repro.obs.context import resolve_observer, use_observer
from repro.obs.events import JobUpdate, Observer
from repro.obs.prof import current_profiler, use_profiler

if TYPE_CHECKING:
    from repro.campaign.result import SampleResult

__all__ = ["JOB_STATES", "JobHandle", "JobStatus", "CampaignService"]

#: The job lifecycle, in order.  ``pending`` and ``running`` are live;
#: ``done`` and ``failed`` are terminal.
JOB_STATES = ("pending", "running", "done", "failed")


@dataclass(frozen=True)
class JobHandle:
    """Opaque ticket for one submission (pass back to status/result)."""

    job_id: str
    fingerprint: str


@dataclass(frozen=True)
class JobStatus:
    """Snapshot of one job's lifecycle state.

    ``error_type`` carries the failure's exception class name (e.g.
    ``"CampaignError"``) so callers — the serve retry loop — can classify
    transient failures without parsing the message.
    """

    job_id: str
    fingerprint: str
    state: str
    cache_hit: bool = False
    coalesced: bool = False
    error: str = ""
    error_type: str = ""

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed")


@dataclass
class _Flight:
    """One in-flight execution of a fingerprint, shared by coalesced jobs.

    ``final_state`` is set (under the service lock) by the terminal
    transition; a submission that attaches *after* that — the window
    between the terminal transition and the flight's removal from the
    live table — replays it instead of staying ``pending`` forever.
    """

    fingerprint: str
    job_ids: list[str] = field(default_factory=list)
    done: threading.Event = field(default_factory=threading.Event)
    result: "SampleResult | None" = None
    error: str = ""
    error_type: str = ""
    final_state: str | None = None
    cache_hit: bool = False


@dataclass
class _JobRecord:
    state: str
    flight: _Flight
    coalesced: bool = False
    cache_hit: bool = False
    error: str = ""
    error_type: str = ""


class CampaignService:
    """Async facade over :func:`~repro.campaign.run_campaign`.

    Parameters
    ----------
    store:
        Result store shared by every job (anything
        :func:`repro.store.resolve_store` accepts).  ``None`` disables
        caching — every distinct submission runs (coalescing still
        applies to concurrent duplicates).
    execution:
        Template :class:`~repro.campaign.execution.ExecutionOptions` for
        every job (worker count, checkpointing, ...).  Its ``store``
        field is overridden by ``store`` when both are given.
    observer:
        Receives :class:`~repro.obs.events.JobUpdate` and all campaign/
        store events from flight threads; falls back to the ambient
        observer captured at each ``submit``.
    max_workers:
        Concurrent flights (distinct fingerprints in execution at once).
    lock_stale_after:
        Staleness bound (seconds) for the **cross-process** fingerprint
        locks taken under ``<store>/locks/`` while a flight executes.  A
        lock whose on-host owner died is reclaimed immediately; a remote
        owner's lock is reclaimed after sitting unchanged this long.
        Only applies when the store is a local directory store.

    The service is a context manager; leaving the block waits for
    in-flight jobs and shuts the pool down.
    """

    def __init__(
        self,
        store: Any = None,
        *,
        execution: ExecutionOptions | None = None,
        observer: Observer | None = None,
        max_workers: int = 2,
        lock_stale_after: float | None = 600.0,
    ):
        if max_workers < 1:
            raise ServiceError(f"max_workers must be >= 1, got {max_workers}")
        options = execution if execution is not None else ExecutionOptions()
        if store is not None:
            options = replace(options, store=store)
        if options.store is not None:
            # Resolve once so every flight shares one live store instance
            # (and a config typo fails at construction, not first submit).
            from repro.store import resolve_store

            options = replace(options, store=resolve_store(options.store))
        self.execution = options
        self.lock_stale_after = lock_stale_after
        self._observer = observer
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-service"
        )
        self._lock = threading.Lock()
        self._flights: dict[str, _Flight] = {}
        self._jobs: dict[str, _JobRecord] = {}
        self._handles: dict[str, JobHandle] = {}
        self._counter = itertools.count(1)
        self._closed = False

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------

    def submit(self, spec: CampaignSpec) -> JobHandle:
        """Queue one campaign; duplicates of a live fingerprint coalesce."""
        fingerprint = spec.fingerprint
        obs = resolve_observer(self._observer)
        profiler = current_profiler()
        with self._lock:
            if self._closed:
                raise ServiceError("service is closed", fingerprint=fingerprint)
            job_id = f"job-{next(self._counter):06d}"
            handle = JobHandle(job_id=job_id, fingerprint=fingerprint)
            flight = self._flights.get(fingerprint)
            coalesced = flight is not None
            if flight is None:
                flight = _Flight(fingerprint=fingerprint)
                self._flights[fingerprint] = flight
            flight.job_ids.append(job_id)
            record = _JobRecord(state="pending", flight=flight, coalesced=coalesced)
            self._jobs[job_id] = record
            self._handles[job_id] = handle
            pending = JobUpdate(
                job_id=job_id,
                fingerprint=fingerprint,
                state="pending",
                coalesced=coalesced,
            )
            # Coalesce-after-completion window: the flight's terminal
            # transition may have already run (it snapshots job_ids under
            # this lock), in which case this late attacher would never be
            # transitioned again — replay the terminal state to it now.
            if flight.final_state is not None:
                record.state = flight.final_state
                record.cache_hit = flight.cache_hit
                record.error = flight.error
                record.error_type = flight.error_type
        if obs is not None:
            obs.on_job_update(pending)
        if record.state != "pending":
            self._emit(obs, handle, record)
        if not coalesced:
            # Started after the pending event so per-job updates arrive in
            # lifecycle order; a concurrent duplicate submitted in this gap
            # already sees the flight in _flights and coalesces onto it.
            try:
                self._pool.submit(self._run_flight, spec, flight, obs, profiler)
            except RuntimeError as exc:  # pool shut down under us
                raise ServiceError(
                    "service is closed",
                    job_id=job_id,
                    fingerprint=fingerprint,
                ) from exc
        return handle

    def status(self, handle: JobHandle) -> JobStatus:
        """The job's current lifecycle snapshot."""
        record = self._record(handle)
        with self._lock:
            return JobStatus(
                job_id=handle.job_id,
                fingerprint=handle.fingerprint,
                state=record.state,
                cache_hit=record.cache_hit,
                coalesced=record.coalesced,
                error=record.error,
                error_type=record.error_type,
            )

    def result(
        self, handle: JobHandle, timeout: float | None = None
    ) -> "SampleResult":
        """Block until the job finishes and return its merged sample.

        Raises :class:`~repro.errors.ServiceError` if the campaign failed
        or ``timeout`` elapsed first.
        """
        record = self._record(handle)
        if not record.flight.done.wait(timeout):
            raise ServiceError(
                f"job {handle.job_id} still {record.state} after {timeout}s",
                job_id=handle.job_id,
                fingerprint=handle.fingerprint,
            )
        if record.flight.result is None:
            raise ServiceError(
                f"job {handle.job_id} failed: {record.flight.error}",
                job_id=handle.job_id,
                fingerprint=handle.fingerprint,
            )
        return record.flight.result

    def jobs(self) -> list[JobStatus]:
        """Status of every job submitted to this service, in submit order."""
        with self._lock:
            handles = [self._handles[job_id] for job_id in sorted(self._jobs)]
        return [self.status(handle) for handle in handles]

    def close(self, wait: bool = True) -> None:
        """Refuse new submissions and (by default) wait for live flights."""
        with self._lock:
            self._closed = True
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "CampaignService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Flight execution.
    # ------------------------------------------------------------------

    def _fingerprint_lock(self, fingerprint: str) -> "Any | None":
        """The cross-process single-flight lock for ``fingerprint``.

        ``None`` when the configured store has no shared directory to
        anchor locks in (memory store, no store) — in-process coalescing
        is the only dedup layer then, exactly as before.
        """
        store = self.execution.store
        fingerprint_lock = getattr(store, "fingerprint_lock", None)
        if fingerprint_lock is None:
            return None
        return fingerprint_lock(fingerprint, stale_after=self.lock_stale_after)

    def _run_flight(
        self,
        spec: CampaignSpec,
        flight: _Flight,
        obs: Observer | None,
        profiler: Any,
    ) -> None:
        self._transition(flight, "running", obs)
        obs_cm = use_observer(obs) if obs is not None else nullcontext()
        prof_cm = use_profiler(profiler) if profiler is not None else nullcontext()
        cache_hit = False
        try:
            # Reinstall the submitter's ambient observer/profiler: the
            # pool thread has a fresh ContextVar context, so without this
            # the campaign (and its store events) would run unobserved.
            with obs_cm, prof_cm:
                result = self._execute_locked(spec, flight, obs)
            cache_hit = bool((result.meta.get("store") or {}).get("hit", False))
            flight.result = result
            state = "done"
        except Exception as exc:
            flight.error = repr(exc)
            flight.error_type = type(exc).__name__
            state = "failed"
        self._transition(flight, state, obs, cache_hit=cache_hit)
        with self._lock:
            if self._flights.get(flight.fingerprint) is flight:
                del self._flights[flight.fingerprint]
        flight.done.set()

    def _execute_locked(
        self, spec: CampaignSpec, flight: _Flight, obs: Observer | None
    ) -> "SampleResult":
        """Run the campaign under the cross-process fingerprint lock.

        Two services sharing a store directory therefore never execute
        the same fingerprint concurrently: the loser blocks here, and by
        the time it enters ``run_campaign`` the winner's entry is in the
        store — the "execution" collapses to a cache hit with zero kernel
        steps.  A contended acquisition is reported as a ``lock_wait``
        job update (``repro_serve_lock_waits_total``).
        """
        lock = self._fingerprint_lock(spec.fingerprint)
        if lock is None:
            return run_campaign(spec, execution=self.execution)
        if not lock.try_acquire():
            if obs is not None:
                with self._lock:
                    job_id = flight.job_ids[0] if flight.job_ids else ""
                obs.on_job_update(
                    JobUpdate(
                        job_id=job_id,
                        fingerprint=flight.fingerprint,
                        state="lock_wait",
                    )
                )
            lock.acquire()
        try:
            return run_campaign(spec, execution=self.execution)
        finally:
            lock.release()

    def _transition(
        self,
        flight: _Flight,
        state: str,
        obs: Observer | None,
        *,
        cache_hit: bool = False,
    ) -> None:
        with self._lock:
            if state in ("done", "failed"):
                # Recorded under the lock so a submit() that attaches
                # after this snapshot can replay the terminal state.
                flight.final_state = state
                flight.cache_hit = cache_hit
            job_ids = list(flight.job_ids)
            for job_id in job_ids:
                record = self._jobs[job_id]
                record.state = state
                record.cache_hit = cache_hit
                record.error = flight.error
                record.error_type = flight.error_type
            handles = [self._handles[job_id] for job_id in job_ids]
            records = [self._jobs[job_id] for job_id in job_ids]
        for handle, record in zip(handles, records):
            self._emit(obs, handle, record)

    def _emit(
        self, obs: Observer | None, handle: JobHandle, record: _JobRecord
    ) -> None:
        if obs is None:
            return
        obs.on_job_update(
            JobUpdate(
                job_id=handle.job_id,
                fingerprint=handle.fingerprint,
                state=record.state,
                cache_hit=record.cache_hit,
                coalesced=record.coalesced,
                error=record.error,
            )
        )

    def _record(self, handle: JobHandle) -> _JobRecord:
        with self._lock:
            record = self._jobs.get(handle.job_id)
        if record is None:
            raise ServiceError(
                f"unknown job {handle.job_id!r}; was it submitted to this "
                "service instance?",
                job_id=handle.job_id,
                fingerprint=handle.fingerprint,
            )
        return record
