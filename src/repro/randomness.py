"""Seeded random inputs for the experiments.

Everything the Monte-Carlo harness consumes comes from here: random
permutation grids (the paper's "random permutation of N numbers, all N!
permutations equally likely") and uniformly random 0-1 matrices with a fixed
number of zeroes (the matrices :math:`\\mathcal{A}^{01}` of the analysis).

All generators take either a :class:`numpy.random.Generator`, a seed, or a
:class:`numpy.random.SeedSequence`, so every experiment is reproducible from
a single recorded root seed, and independent trial streams are spawned with
``SeedSequence.spawn`` (never by incrementing seeds).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionError

__all__ = [
    "as_generator",
    "spawn_generators",
    "as_seed_sequence",
    "seed_provenance",
    "shard_counts",
    "shard_seed_sequence",
    "random_permutation_grid",
    "random_zero_one_grid",
    "random_permutation_mesh",
    "random_zero_one_mesh",
    "paper_zero_count",
    "mesh_zero_count",
]

SeedLike = int | None | np.random.SeedSequence | np.random.Generator


def as_generator(seed: SeedLike) -> np.random.Generator:
    """Coerce ``seed`` to a :class:`numpy.random.Generator`."""
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)

def spawn_generators(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """``count`` independent generators derived from one root seed."""
    if isinstance(seed, np.random.Generator):
        # Derive a fresh SeedSequence from the generator's own stream.
        seed = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    if not isinstance(seed, np.random.SeedSequence):
        seed = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seed.spawn(count)]


def as_seed_sequence(seed: SeedLike | tuple[int, ...]) -> np.random.SeedSequence:
    """Coerce ``seed`` to a :class:`numpy.random.SeedSequence`.

    Accepts ints, tuples of ints (the experiments' ``(root, side, salt)``
    convention), ``None`` (fresh OS entropy), and ``SeedSequence`` itself.
    :class:`numpy.random.Generator` is rejected: a generator is a consumed
    stream, not a replayable seed, and the campaign layer needs seeds that
    can be re-derived identically on every worker.
    """
    if isinstance(seed, np.random.Generator):
        raise DimensionError(
            "a Generator cannot be used as a shardable seed; pass an int, "
            "a tuple of ints, or a SeedSequence"
        )
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(seed)


def seed_provenance(seed: "SeedLike | tuple[int, ...] | list") -> object:
    """A JSON-serializable record of ``seed`` for manifests and result meta.

    Ints, int tuples/lists, and ``None`` pass through (tuples as lists, the
    JSON round-trip form).  A :class:`numpy.random.SeedSequence` is recorded
    as its defining ``{"entropy": ..., "spawn_key": [...]}`` pair — enough
    to reconstruct the exact stream — instead of being silently dropped.  A
    :class:`numpy.random.Generator` is a consumed stream with no replayable
    identity, so it is recorded as the explicit marker ``"<generator>"``
    rather than pretending the run had no seed at all.
    """
    if seed is None or isinstance(seed, (int, np.integer)):
        return None if seed is None else int(seed)
    if isinstance(seed, (tuple, list)):
        return [int(v) for v in seed]
    if isinstance(seed, np.random.SeedSequence):
        entropy = seed.entropy
        if entropy is not None and not isinstance(entropy, (int, np.integer)):
            entropy = [int(v) for v in entropy]
        elif entropy is not None:
            entropy = int(entropy)
        return {
            "entropy": entropy,
            "spawn_key": [int(v) for v in seed.spawn_key],
        }
    if isinstance(seed, np.random.Generator):
        return "<generator>"
    return repr(seed)


def shard_counts(trials: int, shard_size: int) -> list[int]:
    """Trial counts per shard: full shards of ``shard_size`` plus a remainder.

    The plan depends only on ``(trials, shard_size)``, never on worker
    count, which is what makes campaign aggregates worker-count invariant.
    """
    if trials < 1:
        raise DimensionError(f"trials must be positive, got {trials}")
    if shard_size < 1:
        raise DimensionError(f"shard_size must be positive, got {shard_size}")
    full, rest = divmod(trials, shard_size)
    return [shard_size] * full + ([rest] if rest else [])


def shard_seed_sequence(
    seed: SeedLike | tuple[int, ...], index: int
) -> np.random.SeedSequence:
    """The ``index``-th child stream of ``SeedSequence(seed)``.

    Equal to ``as_seed_sequence(seed).spawn(n)[index]`` for any ``n >
    index`` (``SeedSequence.spawn`` keys children only by their spawn
    position), so any worker can re-derive its shard's stream from just
    ``(root seed, shard index)`` — no spawned state needs shipping.
    """
    if index < 0:
        raise DimensionError(f"shard index must be >= 0, got {index}")
    root = as_seed_sequence(seed)
    return np.random.SeedSequence(root.entropy, spawn_key=(*root.spawn_key, index))


def _check_mesh_shape(shape: tuple[int, int]) -> tuple[int, int]:
    try:
        rows, cols = (int(v) for v in shape)
    except (TypeError, ValueError):
        raise DimensionError(
            f"mesh shape must be a (rows, cols) pair, got {shape!r}"
        ) from None
    if rows < 1 or cols < 1:
        raise DimensionError(f"mesh dimensions must be positive, got {shape!r}")
    return rows, cols


def random_permutation_mesh(
    shape: tuple[int, int],
    *,
    batch: int | tuple[int, ...] | None = None,
    rng: SeedLike = None,
    dtype: np.dtype | type = np.int64,
) -> np.ndarray:
    """Uniformly random permutation(s) of ``0 .. rows*cols - 1`` on a mesh.

    Shape-general form of :func:`random_permutation_grid` — linear
    topologies draw ``(1, n)`` arrays from it.  Returns
    ``(rows, cols)`` when ``batch`` is None, else ``(*batch, rows, cols)``.
    The per-trial RNG consumption is one ``Generator.permutation`` call,
    identical to the square-grid function, so square draws are
    byte-identical between the two.
    """
    rows, cols = _check_mesh_shape(shape)
    gen = as_generator(rng)
    n_cells = rows * cols
    if batch is None:
        return gen.permutation(n_cells).reshape(rows, cols).astype(dtype)
    bshape = (batch,) if isinstance(batch, int) else tuple(batch)
    total = int(np.prod(bshape)) if bshape else 1
    out = np.empty((total, n_cells), dtype=dtype)
    base = np.arange(n_cells, dtype=dtype)
    for i in range(total):
        out[i] = gen.permutation(base)
    return out.reshape(*bshape, rows, cols)


def random_permutation_grid(
    side: int,
    *,
    batch: int | tuple[int, ...] | None = None,
    rng: SeedLike = None,
    dtype: np.dtype | type = np.int64,
) -> np.ndarray:
    """Uniformly random permutation(s) of ``0 .. side*side - 1`` on a mesh.

    Returns shape ``(side, side)`` when ``batch`` is None, else
    ``(*batch, side, side)``.
    """
    if side < 1:
        raise DimensionError(f"side must be positive, got {side}")
    return random_permutation_mesh(
        (side, side), batch=batch, rng=rng, dtype=dtype
    )


def paper_zero_count(side: int) -> int:
    """Number of zeroes in the paper's threshold matrix :math:`\\mathcal{A}^{01}`.

    For even side ``2n`` the smallest ``2n^2`` entries become zeroes (half of
    the mesh); for odd side ``2n+1`` the appendix substitutes zeroes for the
    smallest ``2n^2 + 2n + 1 = (N+1)/2`` entries.
    """
    if side < 1:
        raise DimensionError(f"side must be positive, got {side}")
    n_cells = side * side
    return n_cells // 2 if side % 2 == 0 else (n_cells + 1) // 2


def mesh_zero_count(n_cells: int) -> int:
    """Zero count for a threshold matrix on any ``n_cells``-cell mesh.

    ``ceil(n_cells / 2)``: reduces to :func:`paper_zero_count` for square
    meshes of either parity (even side ``2n`` has an even cell count, odd
    side the appendix's ``(N+1)/2``), and gives linear arrays the matching
    half-zeroes convention.
    """
    if n_cells < 1:
        raise DimensionError(f"cell count must be positive, got {n_cells}")
    return (n_cells + 1) // 2


def random_zero_one_mesh(
    shape: tuple[int, int],
    *,
    zeros: int | None = None,
    batch: int | tuple[int, ...] | None = None,
    rng: SeedLike = None,
    dtype: np.dtype | type = np.int8,
) -> np.ndarray:
    """Uniformly random 0-1 meshes with exactly ``zeros`` zeroes.

    Shape-general form of :func:`random_zero_one_grid`; ``zeros`` defaults
    to :func:`mesh_zero_count`.
    """
    rows, cols = _check_mesh_shape(shape)
    n_cells = rows * cols
    if zeros is None:
        zeros = mesh_zero_count(n_cells)
    if not 0 <= zeros <= n_cells:
        raise DimensionError(f"zeros={zeros} out of range for {n_cells} cells")
    gen = as_generator(rng)
    bshape = () if batch is None else ((batch,) if isinstance(batch, int) else tuple(batch))
    total = int(np.prod(bshape)) if bshape else 1
    out = np.ones((total, n_cells), dtype=dtype)
    base = np.concatenate(
        [np.zeros(zeros, dtype=dtype), np.ones(n_cells - zeros, dtype=dtype)]
    )
    for i in range(total):
        out[i] = gen.permutation(base)
    return out.reshape(*bshape, rows, cols)


def random_zero_one_grid(
    side: int,
    *,
    zeros: int | None = None,
    batch: int | tuple[int, ...] | None = None,
    rng: SeedLike = None,
    dtype: np.dtype | type = np.int8,
) -> np.ndarray:
    """Uniformly random 0-1 matrices with exactly ``zeros`` zeroes.

    ``zeros`` defaults to :func:`paper_zero_count`, matching the distribution
    of :math:`\\mathcal{A}^{01}` for a uniformly random permutation.
    """
    if side < 1:
        raise DimensionError(f"side must be positive, got {side}")
    return random_zero_one_mesh(
        (side, side), zeros=zeros, batch=batch, rng=rng, dtype=dtype
    )
