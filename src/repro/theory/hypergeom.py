"""Exact hypergeometric probabilities for random 0-1 meshes.

Every probability in the paper's moment computations reduces to: for a
uniformly random 0-1 matrix with exactly ``Z`` zeroes among ``T`` cells,
what is the probability that a *fixed* set of ``k`` cells shows a specific
pattern containing ``z`` zeroes?  The answer is

.. math::

    \\Pr = \\binom{T - k}{Z - z} \\Big/ \\binom{T}{Z},

independent of which pattern with ``z`` zeroes is asked for.  All values are
:class:`fractions.Fraction` — floats appear only at the presentation layer.
"""

from __future__ import annotations

from fractions import Fraction
from math import comb

from repro.errors import DimensionError

__all__ = [
    "pattern_probability",
    "all_ones_probability",
    "all_zeros_probability",
    "paper_even_counts",
    "paper_odd_counts",
]


def pattern_probability(z: int, k: int, total_zeros: int, total_cells: int) -> Fraction:
    """Probability that ``k`` fixed cells show a *specific* pattern with
    ``z`` zeroes, under a uniform 0-1 fill with exactly ``total_zeros`` zeroes."""
    if not 0 <= k <= total_cells:
        raise DimensionError(f"pattern of {k} cells out of {total_cells}")
    if not 0 <= z <= k:
        raise DimensionError(f"{z} zeroes in a {k}-cell pattern")
    if not 0 <= total_zeros <= total_cells:
        raise DimensionError(f"{total_zeros} zeroes among {total_cells} cells")
    remaining = total_zeros - z
    if remaining < 0 or remaining > total_cells - k:
        return Fraction(0)
    return Fraction(comb(total_cells - k, remaining), comb(total_cells, total_zeros))


def all_ones_probability(k: int, total_zeros: int, total_cells: int) -> Fraction:
    """Probability that ``k`` fixed cells are all ones."""
    return pattern_probability(0, k, total_zeros, total_cells)


def all_zeros_probability(k: int, total_zeros: int, total_cells: int) -> Fraction:
    """Probability that ``k`` fixed cells are all zeroes."""
    return pattern_probability(k, k, total_zeros, total_cells)


def paper_even_counts(n: int) -> tuple[int, int]:
    """``(total_zeros, total_cells)`` for the even-side mesh ``2n``:
    :math:`2n^2` zeroes among :math:`4n^2` cells."""
    if n < 1:
        raise DimensionError(f"n must be positive, got {n}")
    return 2 * n * n, 4 * n * n


def paper_odd_counts(n: int) -> tuple[int, int]:
    """``(total_zeros, total_cells)`` for the odd-side mesh ``2n+1``:
    :math:`2n^2 + 2n + 1` zeroes among :math:`(2n+1)^2` cells (appendix)."""
    if n < 1:
        raise DimensionError(f"n must be positive, got {n}")
    side = 2 * n + 1
    return 2 * n * n + 2 * n + 1, side * side
