"""Odd-side (``sqrt(N) = 2n+1``) theory from the paper's appendix.

The appendix redefines :math:`\\mathcal{A}^{01}` with ``2n^2 + 2n + 1``
zeroes, redefines :math:`Z_1(i)`/:math:`Z_2(i)` (Definitions 12-13 — the
trackers in :mod:`repro.zeroone.trackers` already handle both parities),
and restates the main results:

* Theorem 13 — the potential threshold becomes
  :math:`\\lceil \\alpha (N-1) / (2N) \\rceil`;
* Corollary 4 — the average is lower-bounded by
  ``4 (E[Z1(0)] - ceil((N^2-1)/(4N)) - 1)``;
* Lemma 14 — ``E[Z1(0)] = 3N/8 - sqrt(N)/8 + (N - sqrt(N) - 2)/(8N)``.
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import DimensionError
from repro.theory.hypergeom import all_ones_probability, paper_odd_counts
from repro.theory.moments import (
    expected_from_blocks,
    snake1_z1_blocks,
    variance_from_blocks,
)
from repro.zeroone.trackers import f_threshold_odd

__all__ = [
    "e_z11_odd",
    "e_z11_odd_paper",
    "e_z21_odd",
    "e_Z1_0_snake1_odd",
    "e_Z1_0_snake1_odd_paper",
    "var_Z1_0_snake1_odd",
    "corollary4_average_lower",
    "theorem13_threshold",
]


def _check_odd(side: int) -> int:
    if side < 3 or side % 2 != 1:
        raise DimensionError(f"expected an odd side >= 3, got {side}")
    return side // 2


def e_z11_odd(side: int) -> Fraction:
    """Exact probability that cell (1,1) holds a zero after step 1:
    the pair (1,1),(1,2) of :math:`\\mathcal{A}^{01}` is not all ones."""
    n = _check_odd(side)
    zeros, cells = paper_odd_counts(n)
    return 1 - all_ones_probability(2, zeros, cells)


def e_z11_odd_paper(side: int) -> Fraction:
    """Lemma 14's printed ``3/4 + 3/(4N)``."""
    _check_odd(side)
    return Fraction(3, 4) + Fraction(3, 4 * side * side)


def e_z21_odd(side: int) -> Fraction:
    """``E[z_{2,1}] = (N+1)/(2N)``: cell (2,1) is untouched by step 1 and is
    a zero with the odd-side zero fraction."""
    _check_odd(side)
    n_cells = side * side
    return Fraction(n_cells + 1, 2 * n_cells)


def e_Z1_0_snake1_odd(side: int) -> Fraction:
    """Exact odd-side ``E[Z1(0)]`` via the block decomposition."""
    n = _check_odd(side)
    zeros, cells = paper_odd_counts(n)
    return expected_from_blocks(snake1_z1_blocks(side), zeros, cells)


def e_Z1_0_snake1_odd_paper(side: int) -> Fraction:
    """Lemma 14: ``3N/8 - sqrt(N)/8 + (N - sqrt(N) - 2)/(8N)``."""
    _check_odd(side)
    n_cells = side * side
    return (
        Fraction(3 * n_cells, 8)
        - Fraction(side, 8)
        + Fraction(n_cells - side - 2, 8 * n_cells)
    )


def var_Z1_0_snake1_odd(side: int) -> Fraction:
    """Exact odd-side ``Var[Z1(0)]`` via the block decomposition."""
    n = _check_odd(side)
    zeros, cells = paper_odd_counts(n)
    return variance_from_blocks(snake1_z1_blocks(side), zeros, cells)


def theorem13_threshold(alpha: int, side: int) -> int:
    """Theorem 13's potential threshold ``ceil(alpha (N-1) / (2N))``."""
    _check_odd(side)
    return f_threshold_odd(alpha, side * side)


def corollary4_average_lower(side: int) -> Fraction:
    """Corollary 4: average ``>= 4 (E[Z1(0)] - ceil((N^2-1)/(4N)) - 1)``."""
    _check_odd(side)
    n_cells = side * side
    ceil_term = -((-(n_cells * n_cells - 1)) // (4 * n_cells))
    return 4 * (e_Z1_0_snake1_odd(side) - ceil_term - 1)
