"""Chebyshev concentration bounds (Theorems 3, 5, 8, 11).

The paper's high-probability statements all follow the same pattern: the
step count dominates an affine function of a potential statistic ``X``
measured after the first step, so

.. math::

    \\Pr[\\text{steps} \\le \\gamma N] \\le \\Pr[X \\le x_0(\\gamma)]
    \\le \\frac{\\mathrm{Var}(X)}{(E[X] - x_0(\\gamma))^2}

whenever ``E[X] > x_0(gamma)`` (inequality (1) of the paper).  The functions
here evaluate those tails with the *exact* moments of
:mod:`repro.theory.moments`, so they are valid finite-``n`` bounds rather
than asymptotic estimates.
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import DimensionError
from repro.theory.moments import (
    e_Y1_0_snake2,
    e_Z1_0_snake1,
    e_Z1_col_first,
    e_Z1_row_first,
    var_Y1_0_snake2,
    var_Z1_0_snake1,
    var_Z1_col_first,
    var_Z1_row_first,
)
from repro.zeroone.trackers import f_threshold, y_threshold

__all__ = [
    "chebyshev_lower_tail",
    "theorem3_tail_bound",
    "theorem5_tail_bound",
    "theorem8_tail_bound",
    "theorem11_tail_bound",
]


def chebyshev_lower_tail(mean: Fraction, variance: Fraction, threshold: Fraction) -> Fraction:
    """Inequality (1): ``Pr[X <= threshold] <= Var(X)/(mean - threshold)^2``
    when ``threshold < mean``; returns 1 (the trivial bound) otherwise."""
    if variance < 0:
        raise DimensionError(f"variance must be non-negative, got {variance}")
    gap = mean - Fraction(threshold)
    if gap <= 0:
        return Fraction(1)
    return min(Fraction(variance) / gap**2, Fraction(1))


def _check_even(side: int) -> int:
    if side < 2 or side % 2 != 0:
        raise DimensionError(f"expected an even side, got {side}")
    return side // 2


def theorem3_tail_bound(side: int, gamma: Fraction) -> Fraction:
    """Theorem 3 (row-first): ``Pr[steps <= gamma*N] <= Var(Z1)/(E[Z1] -
    (gamma+1) n - 1)^2`` — vanishes as ``n`` grows for any ``gamma < 1/2``."""
    n = _check_even(side)
    threshold = (Fraction(gamma) + 1) * n + 1
    return chebyshev_lower_tail(e_Z1_row_first(n), var_Z1_row_first(n), threshold)


def theorem5_tail_bound(side: int, gamma: Fraction) -> Fraction:
    """Theorem 5 (column-first): same shape with the column-first Z1;
    non-trivial for ``gamma < 3/8``."""
    n = _check_even(side)
    threshold = (Fraction(gamma) + 1) * n + 1
    return chebyshev_lower_tail(e_Z1_col_first(n), var_Z1_col_first(n), threshold)


def theorem8_tail_bound(side: int, gamma: Fraction) -> Fraction:
    """Theorem 8 (first snakelike): steps ``>= 4 (Z1(0) - f(N/2, N) - 1)``,
    so ``steps <= gamma N`` forces ``Z1(0) <= gamma N/4 + f + 1``."""
    _check_even(side)
    n_cells = side * side
    threshold = Fraction(gamma) * Fraction(n_cells, 4) + f_threshold(n_cells // 2, n_cells) + 1
    return chebyshev_lower_tail(e_Z1_0_snake1(side), var_Z1_0_snake1(side), threshold)


def theorem11_tail_bound(side: int, gamma: Fraction) -> Fraction:
    """Theorem 11 (second snakelike): as Theorem 8 with Y1(0) and
    threshold ``gamma N/4 + ceil(N/4) + 1``."""
    _check_even(side)
    n_cells = side * side
    threshold = Fraction(gamma) * Fraction(n_cells, 4) + y_threshold(n_cells // 2) + 1
    return chebyshev_lower_tail(e_Y1_0_snake2(side), var_Y1_0_snake2(side), threshold)
