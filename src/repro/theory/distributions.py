"""Exact finite-n distributions of the potential statistics.

The paper bounds the lower tails of :math:`Z_1` (Theorems 3, 5) and
:math:`Z_1(0)`, :math:`Y_1(0)` (Theorems 8, 11) by Chebyshev.  Because each
potential is a sum of *block statistics* over pairwise-disjoint raw cell
blocks (see :func:`repro.theory.moments.snake1_z1_blocks`), its exact PMF is
computable by dynamic programming over the blocks: reveal blocks one at a
time, track (zeroes consumed, statistic value), and let the unblocked rest
of the mesh absorb the remaining zeroes.

This yields *exact* tail probabilities — strictly sharper than the paper's
Chebyshev bounds at every finite n — which the E-EXACT experiment compares
against both Chebyshev and Monte Carlo.

Counting is done in big-integer arithmetic and normalized once at the end,
so PMFs are exact rationals represented as floats only on output.
"""

from __future__ import annotations

from fractions import Fraction
from math import comb

import numpy as np

from repro.errors import DimensionError
from repro.theory.hypergeom import paper_even_counts, paper_odd_counts
from repro.theory.moments import snake1_z1_blocks, snake2_y1_blocks

__all__ = [
    "BlockSpec",
    "indicator_block",
    "col_first_block",
    "block_statistic_pmf",
    "z1_row_first_pmf",
    "z1_col_first_pmf",
    "z1_0_snake1_pmf",
    "z1_0_snake1_odd_pmf",
    "y1_0_snake2_pmf",
    "lower_tail",
    "theorem3_tail_exact",
    "theorem5_tail_exact",
    "theorem8_tail_exact",
    "theorem11_tail_exact",
    "theorem13_tail_exact",
]

#: A block statistic: (cells in block, [(zeroes, #patterns, statistic value)]).
BlockSpec = tuple[int, tuple[tuple[int, int, int], ...]]


def indicator_block(size: int) -> BlockSpec:
    """The 'contains a zero' indicator over a ``size``-cell block."""
    if size < 1:
        raise DimensionError(f"block size must be positive, got {size}")
    outcomes = [(0, 1, 0)]
    outcomes += [(z, comb(size, z), 1) for z in range(1, size + 1)]
    return (size, tuple(outcomes))


def col_first_block() -> BlockSpec:
    """Theorem 4's 2x2 block statistic :math:`z_h \\in \\{0, 1, 2\\}`.

    Pattern counts follow :func:`repro.theory.moments.zh_value_col_first`:
    the two vertically-stacked 2-zero patterns score 2, the other four
    score 1.
    """
    return (
        4,
        (
            (0, 1, 0),
            (1, 4, 1),
            (2, 4, 1),
            (2, 2, 2),
            (3, 4, 2),
            (4, 1, 2),
        ),
    )


def block_statistic_pmf(
    blocks: list[BlockSpec], zeros: int, cells: int
) -> np.ndarray:
    """Exact PMF of ``sum_B value_B`` for disjoint blocks on a uniform 0-1
    fill with exactly ``zeros`` zeroes among ``cells`` cells.

    Returns ``pmf`` with ``pmf[x] = Pr[statistic = x]`` (floats obtained
    from an exact big-integer count).
    """
    block_cells = sum(size for size, _ in blocks)
    if block_cells > cells:
        raise DimensionError("blocks cover more cells than the mesh has")
    if not 0 <= zeros <= cells:
        raise DimensionError(f"zeros={zeros} out of range for {cells} cells")
    max_value = sum(max(v for _, _, v in outcomes) for _, outcomes in blocks)
    # ways[z][x] = number of fillings of the processed blocks using z zeroes
    # with statistic x (big ints).
    ways: list[dict[int, int]] = [dict() for _ in range(zeros + 1)]
    ways[0][0] = 1
    for size, outcomes in blocks:
        new: list[dict[int, int]] = [dict() for _ in range(zeros + 1)]
        for z_used, row in enumerate(ways):
            if not row:
                continue
            for z_blk, weight, value in outcomes:
                z_new = z_used + z_blk
                if z_new > zeros:
                    continue
                target = new[z_new]
                for x, count in row.items():
                    target[x + value] = target.get(x + value, 0) + count * weight
        ways = new
    rest = cells - block_cells
    totals = [0] * (max_value + 1)
    for z_used, row in enumerate(ways):
        remaining = zeros - z_used
        if remaining > rest:
            continue
        absorb = comb(rest, remaining)
        if absorb == 0:
            continue
        for x, count in row.items():
            totals[x] += count * absorb
    denom = comb(cells, zeros)
    if sum(totals) != denom:
        raise DimensionError("internal error: block PMF does not normalize")
    return np.array([Fraction(t, denom) for t in totals], dtype=object)


def z1_row_first_pmf(n: int) -> np.ndarray:
    """Exact PMF of Theorem 3's :math:`Z_1` (zeroes in column 1 after the
    first row sort): 2n disjoint 2-cell blocks."""
    zeros, cells = paper_even_counts(n)
    blocks = [indicator_block(2)] * (2 * n)
    return block_statistic_pmf(blocks, zeros, cells)


def z1_col_first_pmf(n: int) -> np.ndarray:
    """Exact PMF of Theorem 5's :math:`Z_1 = \\sum_h z_h` (n 2x2 blocks)."""
    zeros, cells = paper_even_counts(n)
    blocks = [col_first_block()] * n
    return block_statistic_pmf(blocks, zeros, cells)


def z1_0_snake1_pmf(side: int) -> np.ndarray:
    """Exact PMF of :math:`Z_1(0)` for the first snakelike algorithm."""
    if side % 2 != 0:
        raise DimensionError("use the appendix distribution for odd sides")
    zeros, cells = paper_even_counts(side // 2)
    blocks = [indicator_block(s) for s in snake1_z1_blocks(side)]
    return block_statistic_pmf(blocks, zeros, cells)


def z1_0_snake1_odd_pmf(side: int) -> np.ndarray:
    """Exact PMF of :math:`Z_1(0)` at odd side (appendix, Definition 12)."""
    if side % 2 != 1:
        raise DimensionError("this is the odd-side distribution")
    zeros, cells = paper_odd_counts(side // 2)
    blocks = [indicator_block(s) for s in snake1_z1_blocks(side)]
    return block_statistic_pmf(blocks, zeros, cells)


def y1_0_snake2_pmf(side: int) -> np.ndarray:
    """Exact PMF of :math:`Y_1(0)` for the second snakelike algorithm."""
    if side % 2 != 0:
        raise DimensionError("Y1 requires an even side")
    zeros, cells = paper_even_counts(side // 2)
    blocks = [indicator_block(s) for s in snake2_y1_blocks(side)]
    return block_statistic_pmf(blocks, zeros, cells)


def lower_tail(pmf: np.ndarray, threshold: float) -> Fraction:
    """``Pr[X <= threshold]`` for an exact PMF."""
    total = Fraction(0)
    for x, p in enumerate(pmf):
        if x <= threshold:
            total += p
    return total


def theorem3_tail_exact(side: int, gamma: Fraction) -> Fraction:
    """Exact ``Pr[Z_1 <= (gamma+1) n + 1]`` — the quantity Theorem 3 bounds
    by Chebyshev, evaluated exactly."""
    if side % 2 != 0:
        raise DimensionError("Theorem 3 applies to even sides")
    n = side // 2
    threshold = float((Fraction(gamma) + 1) * n + 1)
    return lower_tail(z1_row_first_pmf(n), threshold)


def theorem5_tail_exact(side: int, gamma: Fraction) -> Fraction:
    """Exact version of Theorem 5's tail."""
    if side % 2 != 0:
        raise DimensionError("Theorem 5 applies to even sides")
    n = side // 2
    threshold = float((Fraction(gamma) + 1) * n + 1)
    return lower_tail(z1_col_first_pmf(n), threshold)


def theorem8_tail_exact(side: int, gamma: Fraction) -> Fraction:
    """Exact ``Pr[Z1(0) <= gamma N/4 + f(N/2, N) + 1]`` (Theorem 8)."""
    from repro.zeroone.trackers import f_threshold

    n_cells = side * side
    threshold = float(
        Fraction(gamma) * Fraction(n_cells, 4) + f_threshold(n_cells // 2, n_cells) + 1
    )
    return lower_tail(z1_0_snake1_pmf(side), threshold)


def theorem13_tail_exact(side: int, gamma: Fraction) -> Fraction:
    """Exact odd-side tail via Theorem 13's threshold: the probability that
    ``Z1(0) <= gamma N/4 + ceil(alpha (N-1)/(2N)) + 1`` with the appendix's
    ``alpha = (N+1)/2``."""
    from repro.zeroone.trackers import f_threshold_odd

    if side % 2 != 1:
        raise DimensionError("Theorem 13 applies to odd sides")
    n_cells = side * side
    alpha = (n_cells + 1) // 2
    threshold = float(
        Fraction(gamma) * Fraction(n_cells, 4) + f_threshold_odd(alpha, n_cells) + 1
    )
    return lower_tail(z1_0_snake1_odd_pmf(side), threshold)


def theorem11_tail_exact(side: int, gamma: Fraction) -> Fraction:
    """Exact version of Theorem 11's tail."""
    from repro.zeroone.trackers import y_threshold

    n_cells = side * side
    threshold = float(
        Fraction(gamma) * Fraction(n_cells, 4) + y_threshold(n_cells // 2) + 1
    )
    return lower_tail(y1_0_snake2_pmf(side), threshold)
