"""Exact first and second moments of the paper's potential statistics.

Two complementary implementations are provided for every quantity:

* ``*_paper`` — the closed-form rational functions printed in the paper
  (Lemmas 4, 9, 11 and the computations inside Theorems 3, 5, 8); and
* exact combinatorial evaluations built directly from hypergeometric
  pattern probabilities (:mod:`repro.theory.hypergeom`), which serve as
  ground truth.

The test suite checks the printed forms against the exact ones.  Where the
two *disagree* (the paper's Var[Z1(0)] constant ``17/8`` in Theorem 8 — our
exact computation and Monte Carlo both give ``~n^2/8``), the exact value is
authoritative and the discrepancy is documented in EXPERIMENTS.md; the
theorem's conclusion is unaffected (smaller variance only strengthens the
Chebyshev concentration).

Throughout, the mesh has even side ``2n`` with :math:`2n^2` zeroes among
:math:`4n^2` cells unless stated otherwise; odd-side (appendix) variants
live in :mod:`repro.theory.appendix`.
"""

from __future__ import annotations

from collections import Counter
from fractions import Fraction
from itertools import product

from repro.errors import DimensionError
from repro.theory.hypergeom import (
    all_ones_probability,
    paper_even_counts,
    pattern_probability,
)

__all__ = [
    # row-major, row-first (Lemma 4, Theorem 3)
    "e_z1_row_first",
    "e_z1_row_first_paper",
    "e_z1z2_row_first",
    "e_z1z2_row_first_paper",
    "e_Z1_row_first",
    "var_Z1_row_first",
    "e_M_lower_row_first_paper",
    # row-major, column-first (Theorem 4, Theorem 5)
    "zh_value_col_first",
    "prob_zh_col_first",
    "e_z1_col_first",
    "e_z1_col_first_paper",
    "e_z1sq_col_first",
    "e_z1sq_col_first_paper",
    "e_z1z2_col_first",
    "e_z1z2_col_first_paper",
    "e_Z1_col_first",
    "var_Z1_col_first",
    "e_M_lower_col_first_paper",
    # block machinery + snakelike (Lemmas 9, 11, Theorem 8)
    "snake1_z1_blocks",
    "snake2_y1_blocks",
    "expected_from_blocks",
    "variance_from_blocks",
    "e_Z1_0_snake1",
    "e_Z1_0_snake1_paper",
    "var_Z1_0_snake1",
    "var_Z1_0_snake1_paper",
    "e_Y1_0_snake2",
    "e_Y1_0_snake2_paper",
    "var_Y1_0_snake2",
]


def _check_n(n: int) -> None:
    if n < 1:
        raise DimensionError(f"n must be a positive integer, got {n}")


# ---------------------------------------------------------------------------
# Row-major algorithm beginning with a row sort (Lemma 4 / Theorem 3)
# ---------------------------------------------------------------------------

def e_z1_row_first(n: int) -> Fraction:
    """Exact :math:`E[z_1]`: the probability that cell (1,1) holds a zero
    after the first row sort, i.e. that cells (1,1),(1,2) of
    :math:`\\mathcal{A}^{01}` are not both ones."""
    _check_n(n)
    zeros, cells = paper_even_counts(n)
    return 1 - all_ones_probability(2, zeros, cells)


def e_z1_row_first_paper(n: int) -> Fraction:
    """Lemma 4's printed closed form ``3/4 + 1/(16 n^2 - 4)``."""
    _check_n(n)
    return Fraction(3, 4) + Fraction(1, 16 * n * n - 4)


def e_z1z2_row_first(n: int) -> Fraction:
    """Exact :math:`E[z_1 z_2] = \\Pr[z_1 = z_2 = 1]` by inclusion-exclusion
    over the two row pairs (1,1),(1,2) and (2,1),(2,2)."""
    _check_n(n)
    zeros, cells = paper_even_counts(n)
    q2 = all_ones_probability(2, zeros, cells)
    q4 = all_ones_probability(4, zeros, cells)
    return 1 - 2 * q2 + q4


def e_z1z2_row_first_paper(n: int) -> Fraction:
    """Theorem 3's printed ``9/16 + (n^2 - 3/8)/(32 n^4 - 32 n^2 + 6)``."""
    _check_n(n)
    return Fraction(9, 16) + (Fraction(n * n) - Fraction(3, 8)) / Fraction(
        32 * n**4 - 32 * n**2 + 6
    )


def e_Z1_row_first(n: int) -> Fraction:
    """Exact :math:`E[Z_1] = 2n \\cdot E[z_1]` — expected zeroes in column 1
    after the first row sort."""
    return 2 * n * e_z1_row_first(n)


def var_Z1_row_first(n: int) -> Fraction:
    """Exact :math:`\\mathrm{Var}(Z_1)` (Theorem 3 gives the asymptote
    ``n (3/8 - o(1))``)."""
    ez = e_z1_row_first(n)
    ezz = e_z1z2_row_first(n)
    two_n = 2 * n
    return two_n * ez + two_n * (two_n - 1) * ezz - (two_n * ez) ** 2


def e_M_lower_row_first_paper(n: int) -> Fraction:
    """Lemma 4: ``E[M] >= n/2 + n/(8 n^2 - 2) - 1``."""
    _check_n(n)
    return Fraction(n, 2) + Fraction(n, 8 * n * n - 2) - 1


# ---------------------------------------------------------------------------
# Row-major algorithm beginning with a column sort (Theorems 4-5)
# ---------------------------------------------------------------------------

def zh_value_col_first(pattern: tuple[int, int, int, int]) -> int:
    """The block statistic :math:`z_h \\in \\{0, 1, 2\\}` of Theorem 4.

    ``pattern`` is the raw 2x2 block of :math:`\\mathcal{A}^{01}` in reading
    order ``(a11, a12, a21, a22)``.  After the first column sort and row
    sort, the block becomes a canonical form determined by its zero count —
    except that the two "vertically stacked" 2-zero patterns (01/01) and
    (10/10) sort to (01/01), putting *both* zeroes in the left column.
    ``z_h`` counts the zeroes of the left column of the sorted block.
    """
    if len(pattern) != 4 or any(b not in (0, 1) for b in pattern):
        raise DimensionError(f"pattern must be four bits, got {pattern!r}")
    z = 4 - sum(pattern)
    if z >= 3:
        return 2
    if z == 2:
        return 2 if pattern in ((0, 1, 0, 1), (1, 0, 1, 0)) else 1
    if z == 1:
        return 1
    return 0


def prob_zh_col_first(n: int) -> dict[int, Fraction]:
    """Exact distribution of :math:`z_1` by enumerating all 16 raw blocks."""
    _check_n(n)
    zeros, cells = paper_even_counts(n)
    dist: dict[int, Fraction] = {0: Fraction(0), 1: Fraction(0), 2: Fraction(0)}
    for pattern in product((0, 1), repeat=4):
        z = 4 - sum(pattern)
        dist[zh_value_col_first(pattern)] += pattern_probability(z, 4, zeros, cells)
    return dist


def e_z1_col_first(n: int) -> Fraction:
    """Exact :math:`E[z_1]` for the column-first analysis."""
    dist = prob_zh_col_first(n)
    return dist[1] + 2 * dist[2]


def e_z1_col_first_paper(n: int) -> Fraction:
    """Theorem 4's printed ``11/8 + (n^2 - 9/8)/(16 n^4 - 16 n^2 + 3)``."""
    _check_n(n)
    return Fraction(11, 8) + (Fraction(n * n) - Fraction(9, 8)) / Fraction(
        16 * n**4 - 16 * n**2 + 3
    )


def e_z1sq_col_first(n: int) -> Fraction:
    """Exact :math:`E[z_1^2]`."""
    dist = prob_zh_col_first(n)
    return dist[1] + 4 * dist[2]


def e_z1sq_col_first_paper(n: int) -> Fraction:
    """Theorem 5's printed ``9/4 - 3/(64 n^4 - 64 n^2 + 12)``."""
    _check_n(n)
    return Fraction(9, 4) - Fraction(3, 64 * n**4 - 64 * n**2 + 12)


def e_z1z2_col_first(n: int) -> Fraction:
    """Exact :math:`E[z_1 z_2]` by enumerating all 256 fillings of the two
    disjoint 2x2 blocks (rows 1-4 of columns 1-2)."""
    _check_n(n)
    zeros, cells = paper_even_counts(n)
    total = Fraction(0)
    for bits in product((0, 1), repeat=8):
        block1, block2 = bits[:4], bits[4:]
        v = zh_value_col_first(block1) * zh_value_col_first(block2)
        if v:
            z = 8 - sum(bits)
            total += v * pattern_probability(z, 8, zeros, cells)
    return total


def e_z1z2_col_first_paper(n: int) -> Fraction:
    """Theorem 5's printed
    ``121/64 - (20 n^6 - (219/2) n^4 + 241 n^2 - 12495/64) / (256 n^8 - 1024 n^6 + 1376 n^4 - 704 n^2 + 105)``."""
    _check_n(n)
    num = (
        20 * Fraction(n) ** 6
        - Fraction(219, 2) * Fraction(n) ** 4
        + 241 * Fraction(n) ** 2
        - Fraction(12495, 64)
    )
    den = Fraction(256 * n**8 - 1024 * n**6 + 1376 * n**4 - 704 * n**2 + 105)
    return Fraction(121, 64) - num / den


def e_Z1_col_first(n: int) -> Fraction:
    """Exact :math:`E[Z_1] = n \\cdot E[z_1]` for the column-first analysis."""
    return n * e_z1_col_first(n)


def var_Z1_col_first(n: int) -> Fraction:
    """Exact :math:`\\mathrm{Var}(Z_1)` (Theorem 5: asymptote ``n(23/64 - o(1))``)."""
    ez = e_z1_col_first(n)
    ezsq = e_z1sq_col_first(n)
    ezz = e_z1z2_col_first(n)
    return n * ezsq + n * (n - 1) * ezz - (n * ez) ** 2


def e_M_lower_col_first_paper(n: int) -> Fraction:
    """Theorem 4: ``E[M] >= (3/8) n + (n^3 - (9/8) n)/(16 n^4 - 16 n^2 + 3) - 1``."""
    _check_n(n)
    return (
        Fraction(3 * n, 8)
        + (Fraction(n) ** 3 - Fraction(9, 8) * n) / Fraction(16 * n**4 - 16 * n**2 + 3)
        - 1
    )


# ---------------------------------------------------------------------------
# Block machinery for the snakelike potentials
# ---------------------------------------------------------------------------

def snake1_z1_blocks(side: int) -> list[int]:
    """Disjoint raw-cell block sizes whose "contains a zero" indicators sum
    to :math:`Z_1(0)` for the first snakelike algorithm.

    After step 1 (paper-odd rows: odd bubble step; paper-even rows: even
    reverse step) each cell counted by Definition 4 (even side) or
    Definition 12 (odd side) holds the minimum of a fixed set of one or two
    raw cells, and those sets are pairwise disjoint:

    * paper-odd rows: each counted column-pair cell is ``min`` of a raw
      horizontal pair — one size-2 block per pair;
    * paper-even rows: column 1 is untouched (size-1), interior counted
      cells are ``min`` of the pair to their left (size-2), and the last
      column is untouched for even side (size-1) but paired for odd side
      (size-2, the reverse step's final pair).

    This decomposition makes both moments exactly computable and is verified
    against Monte Carlo and against Lemmas 9/14's closed forms by the tests.
    """
    if side < 2:
        raise DimensionError(f"side must be >= 2, got {side}")
    blocks: list[int] = []
    if side % 2 == 0:
        half = side // 2
        # paper-odd rows (count side/2): counted cells are paper-odd columns
        # 1..side-1 -> one size-2 block per horizontal odd pair.
        blocks += [2] * (half * half)
        # paper-even rows (count side/2): column 1 raw, interior odd columns
        # are min-pairs, last column raw (Definition 4 counts it).
        blocks += ([1] + [2] * (half - 1) + [1]) * half
    else:
        n = side // 2  # side = 2n+1
        # paper-odd rows (count n+1): columns 1,3,...,2n-1 are min of pairs
        # (c, c+1); Definition 12 does not count the last (2n+1-th) column
        # in odd rows.
        blocks += [2] * ((n + 1) * n)
        # paper-even rows (count n): column 1 raw; columns 3..2n-1 are
        # min-pairs; the last column *is* counted (Definition 12's even rows
        # of column 2n+1) and is the min of the reverse step's final pair.
        blocks += ([1] + [2] * (n - 1) + [2]) * n
    return blocks


def snake2_y1_blocks(side: int) -> list[int]:
    """Disjoint block sizes for :math:`Y_1(0)` (Definition 8, even side):
    zeroes in the paper-odd columns after step 1."""
    if side < 2 or side % 2 != 0:
        raise DimensionError(f"Y1 blocks require an even side, got {side}")
    half = side // 2
    blocks: list[int] = []
    blocks += [2] * (half * half)  # paper-odd rows
    blocks += ([1] + [2] * (half - 1)) * half  # paper-even rows: col 1 raw
    return blocks


def expected_from_blocks(sizes: list[int], zeros: int, cells: int) -> Fraction:
    """:math:`E[\\sum_B 1(\\text{block } B \\text{ has a zero})]` for disjoint blocks."""
    counts = Counter(sizes)
    return sum(
        (count * (1 - all_ones_probability(s, zeros, cells)) for s, count in counts.items()),
        Fraction(0),
    )


def variance_from_blocks(sizes: list[int], zeros: int, cells: int) -> Fraction:
    """Exact variance of the same sum, including all cross-block covariances.

    For disjoint blocks ``B, C``: ``E[X_B X_C] = 1 - q_{|B|} - q_{|C|} +
    q_{|B|+|C|}`` with ``q_k`` the probability that ``k`` fixed cells are all
    ones.  Group identical sizes to keep the computation O(#distinct^2).
    """
    counts = Counter(sizes)
    q = {0: Fraction(1)}
    for s in set(counts) | {a + b for a in counts for b in counts}:
        q[s] = all_ones_probability(s, zeros, cells)
    var = Fraction(0)
    for s, count in counts.items():
        p = 1 - q[s]
        var += count * p * (1 - p)
    for s, cs in counts.items():
        for u, cu in counts.items():
            pairs = cs * cu - (cs if s == u else 0)
            if pairs == 0:
                continue
            exy = 1 - q[s] - q[u] + q[s + u]
            cov = exy - (1 - q[s]) * (1 - q[u])
            var += pairs * cov
    return var


# ---------------------------------------------------------------------------
# Snakelike first moments (Lemmas 9 and 11) and second moments (Theorem 8)
# ---------------------------------------------------------------------------

def _even_side_counts(side: int) -> tuple[int, int]:
    if side % 2 != 0:
        raise DimensionError(f"expected an even side, got {side}")
    return paper_even_counts(side // 2)


def e_Z1_0_snake1(side: int) -> Fraction:
    """Exact :math:`E[Z_1(0)]` for the first snakelike algorithm (even side;
    the odd-side variant is :func:`repro.theory.appendix.e_Z1_0_snake1_odd`)."""
    zeros, cells = _even_side_counts(side)
    return expected_from_blocks(snake1_z1_blocks(side), zeros, cells)


def e_Z1_0_snake1_paper(side: int) -> Fraction:
    """Lemma 9: ``3N/8 + sqrt(N)/8 + sqrt(N)/(8 (sqrt(N)+1))``."""
    if side % 2 != 0:
        raise DimensionError(f"Lemma 9 is for even side, got {side}")
    n_cells = side * side
    return (
        Fraction(3 * n_cells, 8)
        + Fraction(side, 8)
        + Fraction(side, 8 * (side + 1))
    )


def var_Z1_0_snake1(side: int) -> Fraction:
    """Exact :math:`\\mathrm{Var}[Z_1(0)]` via the block decomposition.

    Note: the paper's Theorem 8 prints ``n^2 (17/8 + o(1))``; the exact value
    (confirmed by Monte Carlo) is ``~ n^2/8``.  Theorem 8's conclusion is
    unaffected — see EXPERIMENTS.md.
    """
    zeros, cells = _even_side_counts(side)
    return variance_from_blocks(snake1_z1_blocks(side), zeros, cells)


def var_Z1_0_snake1_paper(n: int) -> Fraction:
    """The paper's printed Var[Z1(0)] (Theorem 8):
    ``(17/8) n^2 - (7/16) n + (11 n^2 + 6 n)/(8n+4)^2 + (3/8)(n^2-n)/(8n^2-6)``.

    Kept verbatim for the record; contradicted by :func:`var_Z1_0_snake1`.
    """
    _check_n(n)
    return (
        Fraction(17, 8) * n * n
        - Fraction(7, 16) * n
        + Fraction(11 * n * n + 6 * n, (8 * n + 4) ** 2)
        + Fraction(3, 8) * Fraction(n * n - n, 8 * n * n - 6)
    )


def e_Y1_0_snake2(side: int) -> Fraction:
    """Exact :math:`E[Y_1(0)]` for the second snakelike algorithm."""
    zeros, cells = _even_side_counts(side)
    return expected_from_blocks(snake2_y1_blocks(side), zeros, cells)


def e_Y1_0_snake2_paper(side: int) -> Fraction:
    """Lemma 11: ``3N/8 - sqrt(N)/8 + sqrt(N)/(8 (sqrt(N)+1))``."""
    if side % 2 != 0:
        raise DimensionError(f"Lemma 11 is for even side, got {side}")
    n_cells = side * side
    return (
        Fraction(3 * n_cells, 8)
        - Fraction(side, 8)
        + Fraction(side, 8 * (side + 1))
    )


def var_Y1_0_snake2(side: int) -> Fraction:
    """Exact :math:`\\mathrm{Var}[Y_1(0)]` via the block decomposition."""
    zeros, cells = _even_side_counts(side)
    return variance_from_blocks(snake2_y1_blocks(side), zeros, cells)
