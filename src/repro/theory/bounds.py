"""Per-theorem lower bounds on sorting time (Theorems 1, 2, 4, 6, 7, 9, 10, 12).

Each function returns the paper's lower bound for a mesh of ``N = side^2``
cells.  Values are exact (:class:`fractions.Fraction` or int) so that the
experiments can print them verbatim next to measured step counts.
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import DimensionError
from repro.theory.moments import e_Y1_0_snake2, e_Z1_0_snake1
from repro.zeroone.trackers import f_threshold, y_threshold

__all__ = [
    "diameter_lower_bound",
    "theorem1_additional_steps",
    "corollary2_lower_bound",
    "theorem2_average_lower",
    "theorem4_average_lower",
    "corollary1_worst_case_lower",
    "theorem6_lower_from_potential",
    "theorem7_average_lower",
    "theorem7_average_lower_exact",
    "theorem9_lower_from_potential",
    "theorem10_average_lower",
    "theorem10_average_lower_exact",
    "theorem12_average_lower",
]


def _check_even_side(side: int) -> int:
    if side < 2 or side % 2 != 0:
        raise DimensionError(f"expected an even side >= 2, got {side}")
    return side * side


def diameter_lower_bound(side: int) -> int:
    """The trivial diameter bound ``2 sqrt(N) - 2`` mentioned in Section 1."""
    if side < 1:
        raise DimensionError(f"side must be positive, got {side}")
    return 2 * side - 2


def theorem1_additional_steps(x: int, alpha: int, side: int, *, kind: str) -> int:
    """Theorem 1: additional steps for the row-major algorithms.

    ``kind="zeros"``: an odd-numbered column holds ``x > ceil(alpha/sqrt(N))``
    zeroes; ``kind="ones"``: an even-numbered column has weight
    ``x > ceil((N - alpha)/sqrt(N))``.  Either way the surplus costs
    ``(x - ceil(.) - 1) * 2 sqrt(N)`` more steps.
    """
    n_cells = side * side
    if kind == "zeros":
        ceil_term = -((-alpha) // side)
    elif kind == "ones":
        ceil_term = -((-(n_cells - alpha)) // side)
    else:
        raise DimensionError(f"kind must be 'zeros' or 'ones', got {kind!r}")
    return max((x - ceil_term - 1) * 2 * side, 0)


def corollary2_lower_bound(m_statistic: int, side: int) -> int:
    """Corollary 2: sorting :math:`\\mathcal{A}` takes more than ``4 n M``
    steps, where M is measured after the first row sorting step."""
    _check_even_side(side)
    n = side // 2
    return max(4 * n * m_statistic, 0)


def theorem2_average_lower(side: int) -> Fraction:
    """Theorem 2: row-first average ``>= N/2 - 2 sqrt(N)``."""
    n_cells = _check_even_side(side)
    return Fraction(n_cells, 2) - 2 * side


def theorem4_average_lower(side: int) -> Fraction:
    """Theorem 4: column-first average ``>= 3N/8 - 2 sqrt(N)``."""
    n_cells = _check_even_side(side)
    return Fraction(3 * n_cells, 8) - 2 * side


def corollary1_worst_case_lower(side: int) -> int:
    """Corollary 1: worst case of both row-major algorithms ``>= 2N - 4 sqrt(N)``."""
    n_cells = _check_even_side(side)
    return 2 * n_cells - 4 * side


def theorem6_lower_from_potential(x: int, side: int, *, alpha: int | None = None) -> int:
    """Theorem 6: at potential ``x`` after step 1, at least
    ``4 (x - f(alpha, N) - 1)`` more steps are needed (first snakelike)."""
    n_cells = side * side
    if alpha is None:
        alpha = n_cells // 2
    return max(4 * (x - f_threshold(alpha, n_cells) - 1), 0)


def theorem7_average_lower(side: int) -> Fraction:
    """Theorem 7 as printed: first snakelike average ``>= N/2 - sqrt(N)/2 - 4``.

    (The scanned paper's "N/2 - sqrt(N)/7 - 1" is a typographical garble; the
    value follows from Corollary 3 with Lemma 9's expectation, computed
    exactly by :func:`theorem7_average_lower_exact`, and matches
    ``N/2 - sqrt(N)/2 - 4`` up to o(1).)
    """
    n_cells = _check_even_side(side)
    return Fraction(n_cells, 2) - Fraction(side, 2) - 4


def theorem7_average_lower_exact(side: int) -> Fraction:
    """Corollary 3 evaluated exactly:
    ``4 (E[Z1(0)] - f(N/2, N) - 1)`` with Lemma 9's expectation."""
    n_cells = _check_even_side(side)
    return 4 * (e_Z1_0_snake1(side) - f_threshold(n_cells // 2, n_cells) - 1)


def theorem9_lower_from_potential(x: int, alpha: int) -> int:
    """Theorem 9: second snakelike — ``4 (x - ceil(alpha/2) - 1)`` more steps."""
    return max(4 * (x - y_threshold(alpha) - 1), 0)


def theorem10_average_lower(side: int) -> Fraction:
    """Theorem 10: second snakelike average ``>= N/2 - sqrt(N)/2 - 4``."""
    n_cells = _check_even_side(side)
    return Fraction(n_cells, 2) - Fraction(side, 2) - 4


def theorem10_average_lower_exact(side: int) -> Fraction:
    """Theorem 9's bound evaluated exactly with Lemma 11's expectation:
    ``4 (E[Y1(0)] - N/4 - 1)``."""
    n_cells = _check_even_side(side)
    return 4 * (e_Y1_0_snake2(side) - y_threshold(n_cells // 2) - 1)


def theorem12_average_lower(side: int) -> Fraction:
    """Theorem 12's displacement argument gives an average of at least
    ``E[2m - 3]`` steps with ``m`` uniform on ``1..N``, i.e. ``N - 2``
    (clipping ``2m-3`` at 0 only raises it)."""
    if side < 1:
        raise DimensionError(f"side must be positive, got {side}")
    n_cells = side * side
    # E[max(2m-3, 0)] for m uniform on 1..N: m=1 contributes 0 instead of -1.
    return Fraction(sum(max(2 * m - 3, 0) for m in range(1, n_cells + 1)), n_cells)
