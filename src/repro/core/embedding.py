"""The embedded N-cell linear array inside the row-major algorithms.

Section 1 justifies the O(N) worst case of the row-major algorithms by
noting "there is essentially an N-cell linear array embedded in the mesh of
processors".  This module makes that embedding precise and checkable:

* reading the mesh in row-major order, the **odd row step** performs exactly
  the 1-D odd transposition step on the embedded array (all pairs
  ``(2k, 2k+1)`` are horizontal neighbours because the side is even);
* the **even row step together with the wrap-around comparisons** performs
  exactly the 1-D even transposition step — the wrap wires supply precisely
  the pairs ``(2k+1, 2k+2)`` that straddle a row boundary;
* the column steps are additional comparators that only move values toward
  their target half (distance ``side`` along the embedded array, correctly
  oriented), so they never hurt.

The tests verify the first two claims cell-for-cell, tying the 2-D schedules
to the 1-D substrate in :mod:`repro.linear`.
"""

from __future__ import annotations

import numpy as np

from repro.core.orders import validate_grid
from repro.errors import DimensionError

__all__ = [
    "embedded_index",
    "as_embedded_array",
    "from_embedded_array",
    "embedded_pairs_odd_step",
    "embedded_pairs_even_step",
]


def embedded_index(row: int, col: int, side: int) -> int:
    """Position of mesh cell ``(row, col)`` on the embedded linear array
    (row-major reading order)."""
    if not (0 <= row < side and 0 <= col < side):
        raise DimensionError(f"cell ({row}, {col}) out of range for side {side}")
    return row * side + col


def as_embedded_array(grid: np.ndarray) -> np.ndarray:
    """The mesh contents as the embedded linear array (a copy)."""
    arr = np.asarray(grid)
    side = validate_grid(arr)
    return arr.reshape(*arr.shape[:-2], side * side).copy()


def from_embedded_array(array: np.ndarray, side: int) -> np.ndarray:
    """Inverse of :func:`as_embedded_array`."""
    arr = np.asarray(array)
    if arr.shape[-1] != side * side:
        raise DimensionError(
            f"array of length {arr.shape[-1]} does not fill a {side}x{side} mesh"
        )
    return arr.reshape(*arr.shape[:-1], side, side).copy()


def embedded_pairs_odd_step(side: int) -> list[tuple[tuple[int, int], tuple[int, int]]]:
    """The 1-D odd-step pairs ``(2k, 2k+1)`` as mesh cell pairs.

    For even ``side`` every pair is a horizontal neighbour pair — exactly
    the comparators of the row-major algorithms' odd row step.
    """
    if side % 2 != 0:
        raise DimensionError("the embedding requires an even side")
    pairs = []
    for k in range(side * side // 2):
        a, b = 2 * k, 2 * k + 1
        pairs.append(((a // side, a % side), (b // side, b % side)))
    return pairs


def embedded_pairs_even_step(side: int) -> list[tuple[tuple[int, int], tuple[int, int]]]:
    """The 1-D even-step pairs ``(2k+1, 2k+2)`` as mesh cell pairs.

    Pairs inside a row are the even row step's comparators; pairs that
    straddle a row boundary — ``(h, side-1)`` with ``(h+1, 0)`` — are
    exactly the wrap-around comparisons.
    """
    if side % 2 != 0:
        raise DimensionError("the embedding requires an even side")
    pairs = []
    for k in range(side * side // 2 - 1):
        a, b = 2 * k + 1, 2 * k + 2
        pairs.append(((a // side, a % side), (b // side, b % side)))
    return pairs
