"""Vectorized (batched) executor — compatibility shim over the backend layer.

The strided-slice kernels, the run loops, and the outcome type now live in
:mod:`repro.backends` (one compiler for square and rectangular meshes, one
driver owning caps/completion/timing/events, one :class:`SortOutcome`).
This module keeps the historical entry points — ``CompiledSchedule``,
``run_until_sorted``, ``run_fixed_steps``, ``iter_steps``,
``default_step_cap`` — as thin wrappers so existing imports keep working.

New code should prefer the backend layer directly::

    from repro.backends import run_sort
    outcome = run_sort("vectorized", schedule, grid)
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.backends.base import SortOutcome, step_cap
from repro.backends.compile import CompiledSchedule as _UnifiedCompiledSchedule
from repro.backends.driver import iter_run, run_sort, run_steps
from repro.core.schedule import Schedule
from repro.obs.events import Observer

__all__ = [
    "CompiledSchedule",
    "SortOutcome",
    "default_step_cap",
    "run_until_sorted",
    "run_fixed_steps",
    "iter_steps",
]


class CompiledSchedule(_UnifiedCompiledSchedule):
    """A schedule specialized to a concrete (square) mesh side.

    Kept for compatibility; equivalent to compiling for ``rows == cols ==
    side`` with the unified compiler.  Prefer
    :func:`repro.backends.compiled_schedule`, which memoizes compilations.
    """

    def __init__(self, schedule: Schedule, side: int):
        super().__init__(schedule, side)


def default_step_cap(side: int) -> int:
    """A generous step cap for square meshes (alias of
    :func:`repro.backends.step_cap` with ``rows == cols == side``)."""
    return step_cap(side)


def run_until_sorted(
    schedule: Schedule,
    grid: np.ndarray,
    *,
    max_steps: int | None = None,
    raise_on_cap: bool = False,
    observer: Observer | None = None,
) -> SortOutcome:
    """Run a schedule until every grid in the batch reaches its target order.

    Alias for :func:`repro.backends.run_sort` on the ``"vectorized"``
    backend; see that function for parameter semantics.
    """
    return run_sort(
        "vectorized",
        schedule,
        grid,
        max_steps=max_steps,
        raise_on_cap=raise_on_cap,
        observer=observer,
    )


def run_fixed_steps(
    schedule: Schedule,
    grid: np.ndarray,
    num_steps: int,
    *,
    start_t: int = 1,
    observer: Observer | None = None,
) -> np.ndarray:
    """Return a copy of ``grid`` after exactly ``num_steps`` schedule steps."""
    return run_steps(
        "vectorized", schedule, grid, num_steps, start_t=start_t, observer=observer
    )


def iter_steps(
    schedule: Schedule,
    grid: np.ndarray,
    num_steps: int,
    *,
    start_t: int = 1,
    copy: bool = True,
    observer: Observer | None = None,
) -> Iterator[tuple[int, np.ndarray]]:
    """Yield ``(t, grid_after_step_t)`` for ``num_steps`` consecutive steps.

    Alias for :func:`repro.backends.iter_run` on the ``"vectorized"``
    backend; ``on_run_end`` fires only if the iterator is exhausted.
    """
    return iter_run(
        "vectorized",
        schedule,
        grid,
        num_steps,
        start_t=start_t,
        copy=copy,
        observer=observer,
    )
