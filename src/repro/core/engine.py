"""Vectorized (batched) NumPy executor for mesh comparator schedules.

Following the HPC guides, every odd/even transposition step is executed as a
pair of strided slice views combined with ``np.minimum``/``np.maximum`` —
there are no Python-level loops over cells, and a whole *batch* of
independent grids shaped ``(..., side, side)`` advances in one call, which is
how the Monte-Carlo experiments simulate hundreds of permutations at once.

The executor is semantically identical to the pure-Python oracle in
:mod:`repro.core.reference` and to the processor-level machine in
:mod:`repro.mesh.machine`; the test suite cross-validates all three.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.core.algorithms import check_side
from repro.core.orders import target_grid, validate_grid
from repro.core.schedule import (
    FORWARD,
    LineOp,
    Op,
    Schedule,
    WrapOp,
    lines_slice,
    pair_count,
    validate_schedule,
)
from repro.errors import DimensionError, StepLimitExceeded
from repro.obs.context import resolve_observer
from repro.obs.events import CycleEvent, Observer, RunEnd, RunStart, StepEvent

__all__ = [
    "CompiledSchedule",
    "SortOutcome",
    "default_step_cap",
    "run_until_sorted",
    "run_fixed_steps",
    "iter_steps",
]


def _compile_line_op(op: LineOp, side: int) -> Callable[[np.ndarray], None]:
    """Build an in-place kernel for one transposition op on grids
    shaped ``(..., side, side)``."""
    p = pair_count(op.offset, side)
    ls = lines_slice(op.lines)
    lo_slice = slice(op.offset, op.offset + 2 * p, 2)
    hi_slice = slice(op.offset + 1, op.offset + 2 * p, 2)
    forward = op.direction == FORWARD

    if p == 0:
        def kernel_noop(grid: np.ndarray) -> None:
            return
        return kernel_noop

    if op.axis == "row":
        def kernel(grid: np.ndarray) -> None:
            a = grid[..., ls, lo_slice]
            b = grid[..., ls, hi_slice]
            lo = np.minimum(a, b)
            hi = np.maximum(a, b)
            if forward:
                a[...] = lo
                b[...] = hi
            else:
                a[...] = hi
                b[...] = lo
    else:
        def kernel(grid: np.ndarray) -> None:
            a = grid[..., lo_slice, ls]
            b = grid[..., hi_slice, ls]
            lo = np.minimum(a, b)
            hi = np.maximum(a, b)
            if forward:
                a[...] = lo
                b[...] = hi
            else:
                a[...] = hi
                b[...] = lo

    return kernel


def _compile_wrap_op(side: int) -> Callable[[np.ndarray], None]:
    def kernel(grid: np.ndarray) -> None:
        a = grid[..., : side - 1, side - 1]
        b = grid[..., 1:side, 0]
        lo = np.minimum(a, b)
        hi = np.maximum(a, b)
        a[...] = lo
        b[...] = hi

    return kernel


def _compile_op(op: Op, side: int) -> Callable[[np.ndarray], None]:
    if isinstance(op, WrapOp):
        return _compile_wrap_op(side)
    return _compile_line_op(op, side)


class CompiledSchedule:
    """A schedule specialized to a concrete mesh side.

    Compiling resolves every op into an in-place NumPy kernel; the schedule
    is validated once (step-op disjointness and side-parity constraints).
    """

    def __init__(self, schedule: Schedule, side: int):
        check_side(schedule, side)
        validate_schedule(schedule, side)
        self.schedule = schedule
        self.side = int(side)
        self._steps: list[list[Callable[[np.ndarray], None]]] = [
            [_compile_op(op, side) for op in step] for step in schedule.steps
        ]

    def __len__(self) -> int:
        return len(self._steps)

    def apply_step(self, grid: np.ndarray, t: int) -> None:
        """Execute paper step ``t`` (1-based) in place on ``grid``."""
        if t < 1:
            raise DimensionError(f"step times are 1-based, got {t}")
        for kernel in self._steps[(t - 1) % len(self._steps)]:
            kernel(grid)

    def run(self, grid: np.ndarray, num_steps: int, *, start_t: int = 1) -> None:
        """Execute ``num_steps`` consecutive steps in place, starting at
        paper time ``start_t``."""
        for t in range(start_t, start_t + num_steps):
            self.apply_step(grid, t)


@dataclass
class SortOutcome:
    """Result of :func:`run_until_sorted`.

    Attributes
    ----------
    steps:
        Integer array (batch-shaped; 0-d for a single grid) with the first
        1-based step time after which the grid equals the target order, 0 if
        the input was already sorted, and -1 if the step cap was reached.
    completed:
        Boolean mask of batch elements that reached the target order.
    final:
        The grids after the run.
    max_steps:
        The cap that was in force.
    """

    steps: np.ndarray
    completed: np.ndarray
    final: np.ndarray
    max_steps: int

    @property
    def all_completed(self) -> bool:
        return bool(np.all(self.completed))

    def steps_scalar(self) -> int:
        """The step count for an unbatched run (raises if batched)."""
        if self.steps.ndim != 0:
            raise DimensionError(
                f"steps_scalar() on a batched outcome of shape {self.steps.shape}"
            )
        return int(self.steps)


def default_step_cap(side: int) -> int:
    """A generous cap for runs expected to finish in Theta(N) steps.

    The paper proves worst cases of Theta(N) with small constants (the
    row-major worst case is at least ``2N - 4*sqrt(N)`` and at most ``O(N)``);
    ``8*N + 16*side + 64`` leaves ample slack while still bounding runaway
    runs on buggy schedules.
    """
    n_cells = side * side
    return 8 * n_cells + 16 * side + 64


def run_until_sorted(
    schedule: Schedule,
    grid: np.ndarray,
    *,
    max_steps: int | None = None,
    raise_on_cap: bool = False,
    observer: Observer | None = None,
) -> SortOutcome:
    """Run a schedule until every grid in the batch reaches its target order.

    Parameters
    ----------
    schedule:
        Algorithm schedule (see :mod:`repro.core.algorithms`).
    grid:
        Array shaped ``(side, side)`` or ``(..., side, side)``; not modified.
    max_steps:
        Step cap; defaults to :func:`default_step_cap`.
    raise_on_cap:
        If True, raise :class:`StepLimitExceeded` when the cap is hit with
        unsorted grids; otherwise report ``steps == -1`` for those entries.
    observer:
        Optional :class:`~repro.obs.events.Observer`; falls back to the
        ambient observer installed with :func:`repro.obs.use_observer`.
        With no observer resolved the loop is the original uninstrumented
        fast path; with one, each step additionally diffs the previous grid
        to report an exact per-step swap count.

    Notes
    -----
    Sorted grids are fixed points of every schedule in this package (the
    test suite verifies this), so the first time a grid matches the target it
    stays matched and the recorded step count is exact — this mirrors the
    paper's t_f, the step at which "the sorting algorithm is complete".
    """
    work = np.array(grid, copy=True)
    side = validate_grid(work)
    compiled = CompiledSchedule(schedule, side)
    if max_steps is None:
        max_steps = default_step_cap(side)

    target = target_grid(work, side, schedule.order)
    batch_shape = work.shape[:-2]
    steps = np.full(batch_shape, -1, dtype=np.int64)
    done = np.all(work == target, axis=(-2, -1))
    steps = np.where(done, 0, steps)

    obs = resolve_observer(observer)
    t = 0
    if obs is None:
        while t < max_steps and not np.all(done):
            t += 1
            compiled.apply_step(work, t)
            now = np.all(work == target, axis=(-2, -1))
            newly = now & ~done
            if np.any(newly):
                steps = np.where(newly, t, steps)
                done = done | now
    else:
        cycle_len = len(compiled)
        obs.on_run_start(RunStart(
            executor="engine",
            algorithm=schedule.name,
            side=side,
            batch_shape=tuple(batch_shape),
            max_steps=max_steps,
            order=schedule.order,
        ))
        clock = time.perf_counter()
        while t < max_steps and not np.all(done):
            t += 1
            before = work.copy()
            compiled.apply_step(work, t)
            swaps = int(np.count_nonzero(before != work)) // 2
            obs.on_step(StepEvent(t=t, grid=work, swaps=swaps))
            if t % cycle_len == 0:
                obs.on_cycle(CycleEvent(cycle=t // cycle_len, t=t, grid=work))
            now = np.all(work == target, axis=(-2, -1))
            newly = now & ~done
            if np.any(newly):
                steps = np.where(newly, t, steps)
                done = done | now
        obs.on_run_end(RunEnd(
            steps=np.asarray(steps),
            completed=np.asarray(done),
            wall_time=time.perf_counter() - clock,
        ))

    completed = done if isinstance(done, np.ndarray) else np.asarray(done)
    if raise_on_cap and not np.all(completed):
        raise StepLimitExceeded(max_steps, int(np.sum(~completed)))
    return SortOutcome(
        steps=np.asarray(steps),
        completed=np.asarray(completed),
        final=work,
        max_steps=max_steps,
    )


def run_fixed_steps(
    schedule: Schedule,
    grid: np.ndarray,
    num_steps: int,
    *,
    start_t: int = 1,
    observer: Observer | None = None,
) -> np.ndarray:
    """Return a copy of ``grid`` after exactly ``num_steps`` schedule steps."""
    work = np.array(grid, copy=True)
    side = validate_grid(work)
    compiled = CompiledSchedule(schedule, side)
    obs = resolve_observer(observer)
    if obs is None:
        compiled.run(work, num_steps, start_t=start_t)
        return work

    cycle_len = len(compiled)
    obs.on_run_start(RunStart(
        executor="engine",
        algorithm=schedule.name,
        side=side,
        batch_shape=tuple(work.shape[:-2]),
        max_steps=num_steps,
        order=schedule.order,
    ))
    clock = time.perf_counter()
    for t in range(start_t, start_t + num_steps):
        before = work.copy()
        compiled.apply_step(work, t)
        swaps = int(np.count_nonzero(before != work)) // 2
        obs.on_step(StepEvent(t=t, grid=work, swaps=swaps))
        if t % cycle_len == 0:
            obs.on_cycle(CycleEvent(cycle=t // cycle_len, t=t, grid=work))
    obs.on_run_end(RunEnd(
        steps=num_steps, completed=None, wall_time=time.perf_counter() - clock
    ))
    return work


def iter_steps(
    schedule: Schedule,
    grid: np.ndarray,
    num_steps: int,
    *,
    start_t: int = 1,
    copy: bool = True,
    observer: Observer | None = None,
) -> Iterator[tuple[int, np.ndarray]]:
    """Yield ``(t, grid_after_step_t)`` for ``num_steps`` consecutive steps.

    With ``copy=True`` (default) each yielded grid is an independent
    snapshot, suitable for building traces for the 0-1 trackers; with
    ``copy=False`` the same working buffer is yielded each time (cheaper when
    the consumer only reads per-step statistics).

    An observer (explicit or ambient) receives the same event stream as
    :func:`run_fixed_steps`; ``on_run_end`` fires only if the iterator is
    exhausted.
    """
    work = np.array(grid, copy=True)
    side = validate_grid(work)
    compiled = CompiledSchedule(schedule, side)
    obs = resolve_observer(observer)
    if obs is not None:
        obs.on_run_start(RunStart(
            executor="engine",
            algorithm=schedule.name,
            side=side,
            batch_shape=tuple(work.shape[:-2]),
            max_steps=num_steps,
            order=schedule.order,
        ))
    cycle_len = len(compiled)
    clock = time.perf_counter()
    for t in range(start_t, start_t + num_steps):
        if obs is None:
            compiled.apply_step(work, t)
        else:
            before = work.copy()
            compiled.apply_step(work, t)
            swaps = int(np.count_nonzero(before != work)) // 2
            obs.on_step(StepEvent(t=t, grid=work, swaps=swaps))
            if t % cycle_len == 0:
                obs.on_cycle(CycleEvent(cycle=t // cycle_len, t=t, grid=work))
        yield t, (work.copy() if copy else work)
    if obs is not None:
        obs.on_run_end(RunEnd(
            steps=num_steps, completed=None, wall_time=time.perf_counter() - clock
        ))
