"""Target orders for mesh sorting: row-major and snakelike.

The paper's algorithms finish with the input either in *row-major* order
(the m-th smallest value in row ``floor((m-1)/sqrt(N)) + 1``, column
``((m-1) mod sqrt(N)) + 1``) or in *snakelike* order (odd rows run left to
right, even rows right to left).

This module provides, for each order:

* a *rank grid* — an integer array whose cell ``(r, c)`` holds the 0-based
  rank of the value that belongs there when the sort is complete;
* target-grid construction for arbitrary input values (including ties, which
  occur for the 0-1 matrices used throughout the paper's analysis);
* vectorized sortedness predicates that accept batched grids shaped
  ``(..., side, side)``.

Rows and columns are 0-based in code; the paper's 1-based "odd rows" are the
0-based rows ``0, 2, 4, ...``.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.errors import DimensionError

__all__ = [
    "Order",
    "ORDERS",
    "rank_grid",
    "row_major_rank_grid",
    "snake_rank_grid",
    "position_of_rank",
    "rank_of_position",
    "target_grid",
    "linearize",
    "is_sorted_grid",
    "validate_grid",
]

Order = Literal["row_major", "snake"]

ORDERS: tuple[str, ...] = ("row_major", "snake")


def _check_side(side: int) -> None:
    if not isinstance(side, (int, np.integer)) or side < 1:
        raise DimensionError(f"mesh side must be a positive integer, got {side!r}")


def row_major_rank_grid(side: int) -> np.ndarray:
    """Rank grid for row-major order: cell ``(r, c)`` gets rank ``r*side + c``."""
    _check_side(side)
    return np.arange(side * side, dtype=np.int64).reshape(side, side)


def snake_rank_grid(side: int) -> np.ndarray:
    """Rank grid for snakelike order.

    0-based row ``r`` (paper row ``r+1``): ranks increase left-to-right when
    ``r`` is even (paper-odd rows) and right-to-left when ``r`` is odd.
    """
    _check_side(side)
    grid = np.arange(side * side, dtype=np.int64).reshape(side, side)
    grid[1::2] = grid[1::2, ::-1]
    return grid


def rank_grid(side: int, order: Order) -> np.ndarray:
    """Dispatch to :func:`row_major_rank_grid` or :func:`snake_rank_grid`."""
    if order == "row_major":
        return row_major_rank_grid(side)
    if order == "snake":
        return snake_rank_grid(side)
    raise DimensionError(f"unknown order {order!r}; expected one of {ORDERS}")


def position_of_rank(rank: int, side: int, order: Order) -> tuple[int, int]:
    """0-based cell ``(row, col)`` where the value of 0-based ``rank`` ends up.

    This is the paper's placement rule: the m-th smallest number (m = rank+1)
    appears in row ``floor((m-1)/side) + 1`` and, for the snakelike order, in
    column ``(m-1) mod side + 1`` on paper-odd rows and
    ``side - ((m-1) mod side)`` on paper-even rows.
    """
    _check_side(side)
    if not 0 <= rank < side * side:
        raise DimensionError(f"rank {rank} out of range for side {side}")
    row, offset = divmod(rank, side)
    if order == "row_major":
        return row, offset
    if order == "snake":
        return (row, offset) if row % 2 == 0 else (row, side - 1 - offset)
    raise DimensionError(f"unknown order {order!r}; expected one of {ORDERS}")


def rank_of_position(row: int, col: int, side: int, order: Order) -> int:
    """Inverse of :func:`position_of_rank` for a single cell."""
    _check_side(side)
    if not (0 <= row < side and 0 <= col < side):
        raise DimensionError(f"cell ({row}, {col}) out of range for side {side}")
    return int(rank_grid(side, order)[row, col])


def linearize(grid: np.ndarray, order: Order) -> np.ndarray:
    """Read a (batched) grid in target-order sequence.

    Returns an array shaped ``(..., side*side)`` whose last axis lists the
    grid contents in the order the target layout enumerates cells (rank 0
    first).  A grid is sorted exactly when this sequence is non-decreasing.
    """
    grid = np.asarray(grid)
    if grid.ndim < 2 or grid.shape[-1] != grid.shape[-2]:
        raise DimensionError(f"expected (..., side, side) grid, got shape {grid.shape}")
    side = grid.shape[-1]
    if order == "row_major":
        seq = grid
    elif order == "snake":
        seq = grid.copy()
        seq[..., 1::2, :] = seq[..., 1::2, ::-1]
    else:
        raise DimensionError(f"unknown order {order!r}; expected one of {ORDERS}")
    return seq.reshape(*grid.shape[:-2], side * side)


def is_sorted_grid(grid: np.ndarray, order: Order) -> np.ndarray | bool:
    """Whether each grid in a batch is in the target order.

    Accepts shapes ``(side, side)`` (returns a bool) or ``(..., side, side)``
    (returns a boolean array of the batch shape).  Ties are allowed: the
    predicate asks only for a non-decreasing target-order traversal, which is
    the correct notion for the paper's 0-1 matrices.
    """
    seq = linearize(grid, order)
    ok = (seq[..., 1:] >= seq[..., :-1]).all(axis=-1)
    if ok.ndim == 0:
        return bool(ok)
    return ok


def target_grid(values: np.ndarray, side: int, order: Order) -> np.ndarray:
    """The unique sorted layout of ``values`` on a ``side x side`` mesh.

    ``values`` may be given in any shape with ``side*side`` elements (or a
    batch ``(..., side, side)`` / ``(..., side*side)``); each batch element is
    sorted ascending and placed according to the order's rank grid.
    """
    _check_side(side)
    values = np.asarray(values)
    n_cells = side * side
    flat = values.reshape(*values.shape[: max(values.ndim - 2, 0)], -1)
    if flat.shape[-1] != n_cells:
        # maybe given as (..., n_cells) already; re-check raw size
        flat = values.reshape(-1, n_cells) if values.size % n_cells == 0 else None
        if flat is None:
            raise DimensionError(
                f"values of size {values.size} cannot fill a {side}x{side} mesh"
            )
        flat = flat.reshape(*((values.size // n_cells,) if values.size != n_cells else ()), n_cells)
    sorted_vals = np.sort(flat, axis=-1)
    ranks = rank_grid(side, order)
    out = sorted_vals[..., ranks]
    return out


def validate_grid(grid: np.ndarray) -> int:
    """Check that ``grid`` is a square (optionally batched) array; return side."""
    grid = np.asarray(grid)
    if grid.ndim < 2:
        raise DimensionError(f"grid must be at least 2-D, got ndim={grid.ndim}")
    if grid.shape[-1] != grid.shape[-2]:
        raise DimensionError(
            f"grid must be square in its last two axes, got shape {grid.shape}"
        )
    return int(grid.shape[-1])
