"""Pure-Python reference executor (the semantic oracle).

This executor interprets a :class:`~repro.core.schedule.Schedule` one
comparator at a time using the explicit comparator lists from
:func:`repro.core.schedule.comparator_pairs` (square meshes) or
:func:`repro.analysis.schedule_check.op_comparators` (rectangular meshes,
including ``1 x N`` linear arrays).  It is deliberately slow and simple —
its role is to pin down the intended semantics so the vectorized engine
and the processor-level mesh machine can be property-tested against it on
small meshes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.algorithms import check_side
from repro.core.orders import is_sorted_grid
from repro.core.schedule import Schedule, comparator_pairs, validate_schedule
from repro.errors import DimensionError
from repro.obs.events import Observer

__all__ = ["ReferenceMachine", "reference_sort"]

Grid = list[list[int]]


def _to_grid(array: np.ndarray | Sequence[Sequence[int]]) -> Grid:
    arr = np.asarray(array)
    if arr.ndim != 2 or arr.shape[0] < 1 or arr.shape[1] < 1:
        raise DimensionError(
            "reference machine requires a non-empty rectangular grid, "
            f"got shape {arr.shape}"
        )
    return [list(map(int, row)) for row in arr]


class ReferenceMachine:
    """Cell-by-cell interpreter for a schedule on a single grid.

    Square grids keep the historical validation path (:func:`check_side` +
    :func:`validate_schedule`); rectangular grids — including ``1 x N``
    linear arrays — are validated by the static schedule verifier and
    expanded with its rectangular comparator enumeration.
    """

    def __init__(self, schedule: Schedule, grid: np.ndarray | Sequence[Sequence[int]]):
        self.grid: Grid = _to_grid(grid)
        self.rows = len(self.grid)
        self.cols = len(self.grid[0])
        self.schedule = schedule
        self.t = 0
        # Pre-expand each cycle step into its comparator list.
        if self.rows == self.cols:
            self.side = self.rows
            check_side(schedule, self.side)
            validate_schedule(schedule, self.side)
            self._pairs_per_step = [
                [pair for op in step for pair in comparator_pairs(op, self.side)]
                for step in schedule.steps
            ]
        else:
            from repro.analysis.schedule_check import check_schedule, op_comparators

            check_schedule(schedule, self.rows, self.cols).raise_for_structural()
            self._pairs_per_step = [
                [pair for op in step for pair in op_comparators(op, self.rows, self.cols)]
                for step in schedule.steps
            ]

    def step(self) -> int:
        """Execute the next schedule step on the stored grid.

        Returns the number of swaps the step performed (observability
        callers report it; others may ignore the return value).
        """
        self.t += 1
        pairs = self._pairs_per_step[(self.t - 1) % len(self._pairs_per_step)]
        g = self.grid
        swaps = 0
        for (lr, lc), (hr, hc) in pairs:
            a, b = g[lr][lc], g[hr][hc]
            if a > b:
                g[lr][lc], g[hr][hc] = b, a
                swaps += 1
        return swaps

    def run(self, num_steps: int) -> None:
        for _ in range(num_steps):
            self.step()

    def as_array(self) -> np.ndarray:
        return np.array(self.grid, dtype=np.int64)

    def is_sorted(self) -> bool:
        if self.rows == self.cols:
            return bool(is_sorted_grid(self.as_array(), self.schedule.order))
        from repro.rect.orders import rect_is_sorted

        return bool(rect_is_sorted(self.as_array(), self.schedule.order))


def reference_sort(
    schedule: Schedule,
    grid: np.ndarray | Sequence[Sequence[int]],
    *,
    max_steps: int,
    observer: Observer | None = None,
) -> tuple[int, np.ndarray]:
    """Sort one grid to completion with the reference machine.

    Returns ``(t_f, final_grid)`` where ``t_f`` is the first step after which
    the grid equals the target layout (0 if already sorted).  Raises
    :class:`~repro.errors.StepLimitExceeded` if the cap is reached first.
    Compatibility shim over :func:`repro.backends.run_sort` on the
    ``"reference"`` backend; the shared driver emits the event stream (swap
    counts are a free by-product of the cell-by-cell interpretation).
    """
    from repro.backends.driver import run_sort

    outcome = run_sort(
        "reference",
        schedule,
        np.asarray(grid),
        max_steps=max_steps,
        raise_on_cap=True,
        observer=observer,
    )
    return outcome.steps_scalar(), outcome.final
