"""Pure-Python reference executor (the semantic oracle).

This executor interprets a :class:`~repro.core.schedule.Schedule` one
comparator at a time using the explicit comparator lists from
:func:`repro.core.schedule.comparator_pairs`.  It is deliberately slow and
simple — its role is to pin down the intended semantics so the vectorized
engine and the processor-level mesh machine can be property-tested against
it on small meshes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.algorithms import check_side
from repro.core.orders import is_sorted_grid
from repro.core.schedule import Schedule, comparator_pairs, validate_schedule
from repro.errors import DimensionError
from repro.obs.events import Observer

__all__ = ["ReferenceMachine", "reference_sort"]

Grid = list[list[int]]


def _to_grid(array: np.ndarray | Sequence[Sequence[int]]) -> Grid:
    grid = [list(map(int, row)) for row in np.asarray(array)]
    side = len(grid)
    if side == 0 or any(len(row) != side for row in grid):
        raise DimensionError("reference machine requires a non-empty square grid")
    return grid


class ReferenceMachine:
    """Cell-by-cell interpreter for a schedule on a single grid."""

    def __init__(self, schedule: Schedule, grid: np.ndarray | Sequence[Sequence[int]]):
        self.grid: Grid = _to_grid(grid)
        self.side = len(self.grid)
        check_side(schedule, self.side)
        validate_schedule(schedule, self.side)
        self.schedule = schedule
        self.t = 0
        # Pre-expand each cycle step into its comparator list.
        self._pairs_per_step = [
            [pair for op in step for pair in comparator_pairs(op, self.side)]
            for step in schedule.steps
        ]

    def step(self) -> int:
        """Execute the next schedule step on the stored grid.

        Returns the number of swaps the step performed (observability
        callers report it; others may ignore the return value).
        """
        self.t += 1
        pairs = self._pairs_per_step[(self.t - 1) % len(self._pairs_per_step)]
        g = self.grid
        swaps = 0
        for (lr, lc), (hr, hc) in pairs:
            a, b = g[lr][lc], g[hr][hc]
            if a > b:
                g[lr][lc], g[hr][hc] = b, a
                swaps += 1
        return swaps

    def run(self, num_steps: int) -> None:
        for _ in range(num_steps):
            self.step()

    def as_array(self) -> np.ndarray:
        return np.array(self.grid, dtype=np.int64)

    def is_sorted(self) -> bool:
        return bool(is_sorted_grid(self.as_array(), self.schedule.order))


def reference_sort(
    schedule: Schedule,
    grid: np.ndarray | Sequence[Sequence[int]],
    *,
    max_steps: int,
    observer: Observer | None = None,
) -> tuple[int, np.ndarray]:
    """Sort one grid to completion with the reference machine.

    Returns ``(t_f, final_grid)`` where ``t_f`` is the first step after which
    the grid equals the target layout (0 if already sorted).  Raises
    :class:`~repro.errors.StepLimitExceeded` if the cap is reached first.
    Compatibility shim over :func:`repro.backends.run_sort` on the
    ``"reference"`` backend; the shared driver emits the event stream (swap
    counts are a free by-product of the cell-by-cell interpretation).
    """
    from repro.backends.driver import run_sort

    outcome = run_sort(
        "reference",
        schedule,
        np.asarray(grid),
        max_steps=max_steps,
        raise_on_cap=True,
        observer=observer,
    )
    return outcome.steps_scalar(), outcome.final
