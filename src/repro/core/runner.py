"""High-level sorting API: algorithm names in, step counts out.

This module is the main user entry point of the core library::

    >>> import numpy as np
    >>> from repro.core.runner import sort_grid
    >>> from repro.randomness import random_permutation_grid
    >>> grid = random_permutation_grid(8, rng=0)
    >>> result = sort_grid("snake_1", grid)
    >>> bool(result.completed)
    True

It resolves algorithm names through the registry, picks a safe step cap,
and delegates execution to the vectorized engine (or the pure-Python
reference engine for verification runs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backends import Backend, get_backend, run_sort
from repro.core.engine import SortOutcome, iter_steps, run_fixed_steps
from repro.core.schedule import Schedule
from repro.errors import DimensionError
from repro.obs.events import Observer

__all__ = ["sort_grid", "sort_steps", "SortReport", "describe_algorithm", "resolve_algorithm"]


@dataclass
class SortReport:
    """Outcome of :func:`sort_grid` with the run's provenance attached."""

    algorithm: str
    side: int
    outcome: SortOutcome

    @property
    def steps(self) -> np.ndarray:
        return self.outcome.steps

    @property
    def completed(self) -> np.ndarray:
        return self.outcome.completed

    @property
    def final(self) -> np.ndarray:
        return self.outcome.final

    def steps_scalar(self) -> int:
        return self.outcome.steps_scalar()


def resolve_algorithm(
    algorithm: str | Schedule,
    side: int | None = None,
    *,
    seed: int | None = None,
) -> Schedule:
    """Coerce a family name, family spec, or explicit schedule to a schedule.

    Names resolve through the :mod:`repro.schedules` registry, which
    understands both bare family names (``"snake_1"``, ``"odd_even"``) and
    parameterized specs (``"shearsort[side=8]"``,
    ``"random_network[side=16,seed=7]"``).  ``side`` and ``seed`` fill in
    parameters a sided/seedable family needs when the spec leaves them
    out.  Unknown names raise
    :class:`~repro.errors.UnknownScheduleError`, whose message lists every
    registered family.
    """
    if isinstance(algorithm, Schedule):
        return algorithm
    # Imported lazily: repro.schedules builds on repro.core, not vice versa.
    from repro.schedules import resolve

    return resolve(algorithm, side=side, seed=seed)


_resolve = resolve_algorithm


# Historical ``engine=`` spellings and their backend-registry names.
_ENGINE_TO_BACKEND = {"numpy": "vectorized", "reference": "reference"}


def sort_grid(
    algorithm: str | Schedule,
    grid: np.ndarray,
    *,
    max_steps: int | None = None,
    engine: str = "numpy",
    raise_on_cap: bool = False,
    observer: Observer | None = None,
    backend: str | Backend | None = None,
) -> SortReport:
    """Sort a (possibly batched) grid to completion.

    Parameters
    ----------
    algorithm:
        Registry name (``"snake_1"`` etc.) or an explicit schedule.
    grid:
        ``(side, side)`` or ``(..., side, side)`` array; left unmodified.
    max_steps:
        Step cap; defaults to :func:`repro.backends.step_cap`.
    engine:
        Historical executor selector: ``"numpy"`` (vectorized,
        batch-capable) or ``"reference"`` (pure-Python oracle; single grid
        only, always raises on cap).  Ignored when ``backend`` is given.
    raise_on_cap:
        Raise :class:`~repro.errors.StepLimitExceeded` instead of reporting
        ``steps == -1`` entries.
    observer:
        Optional :class:`~repro.obs.events.Observer` forwarded to the
        driver (ambient observers installed with
        :func:`repro.obs.use_observer` apply without this argument).
    backend:
        Backend-registry name (see :func:`repro.backends.available_backends`)
        or instance; wins over ``engine`` when provided.
    """
    schedule = _resolve(algorithm, int(np.asarray(grid).shape[-1]))
    if backend is None:
        try:
            backend = _ENGINE_TO_BACKEND[engine]
        except KeyError:
            raise DimensionError(
                f"unknown engine {engine!r}; use 'numpy' or 'reference' "
                "(or pass backend=)"
            ) from None
        if engine == "reference":
            # The oracle path has always treated a capped run as an error.
            raise_on_cap = True
        elif engine == "numpy":
            # Linear-topology schedules need the rect kernels; square
            # schedules keep the historical vectorized default.
            from repro.schedules import execution_backend

            backend = execution_backend(schedule)
    outcome = run_sort(
        get_backend(backend),
        schedule,
        grid,
        max_steps=max_steps,
        raise_on_cap=raise_on_cap,
        observer=observer,
    )
    return SortReport(algorithm=schedule.name, side=outcome.rows, outcome=outcome)


def sort_steps(
    algorithm: str | Schedule,
    grid: np.ndarray,
    num_steps: int,
    *,
    start_t: int = 1,
) -> np.ndarray:
    """Grid state after exactly ``num_steps`` steps (vectorized engine)."""
    side = int(np.asarray(grid).shape[-1])
    return run_fixed_steps(_resolve(algorithm, side), grid, num_steps, start_t=start_t)


def trace(algorithm: str | Schedule, grid: np.ndarray, num_steps: int):
    """Iterate ``(t, snapshot)`` over the first ``num_steps`` steps."""
    return iter_steps(_resolve(algorithm, int(np.asarray(grid).shape[-1])), grid, num_steps)


def describe_algorithm(algorithm: str | Schedule) -> str:
    """Human-readable step cycle of an algorithm."""
    return _resolve(algorithm).describe()
