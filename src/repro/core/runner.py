"""High-level sorting API: algorithm names in, step counts out.

This module is the main user entry point of the core library::

    >>> import numpy as np
    >>> from repro.core.runner import sort_grid
    >>> from repro.randomness import random_permutation_grid
    >>> grid = random_permutation_grid(8, rng=0)
    >>> result = sort_grid("snake_1", grid)
    >>> bool(result.completed)
    True

It resolves algorithm names through the registry, picks a safe step cap,
and delegates execution to the vectorized engine (or the pure-Python
reference engine for verification runs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.algorithms import get_algorithm
from repro.core.engine import (
    SortOutcome,
    default_step_cap,
    iter_steps,
    run_fixed_steps,
    run_until_sorted,
)
from repro.core.orders import validate_grid
from repro.core.reference import reference_sort
from repro.core.schedule import Schedule
from repro.errors import DimensionError
from repro.obs.events import Observer

__all__ = ["sort_grid", "sort_steps", "SortReport", "describe_algorithm", "resolve_algorithm"]


@dataclass
class SortReport:
    """Outcome of :func:`sort_grid` with the run's provenance attached."""

    algorithm: str
    side: int
    outcome: SortOutcome

    @property
    def steps(self) -> np.ndarray:
        return self.outcome.steps

    @property
    def completed(self) -> np.ndarray:
        return self.outcome.completed

    @property
    def final(self) -> np.ndarray:
        return self.outcome.final

    def steps_scalar(self) -> int:
        return self.outcome.steps_scalar()


def resolve_algorithm(algorithm: str | Schedule) -> Schedule:
    """Coerce a registry name or an explicit schedule to a schedule."""
    if isinstance(algorithm, Schedule):
        return algorithm
    return get_algorithm(algorithm)


_resolve = resolve_algorithm


def sort_grid(
    algorithm: str | Schedule,
    grid: np.ndarray,
    *,
    max_steps: int | None = None,
    engine: str = "numpy",
    raise_on_cap: bool = False,
    observer: Observer | None = None,
) -> SortReport:
    """Sort a (possibly batched) grid to completion.

    Parameters
    ----------
    algorithm:
        Registry name (``"snake_1"`` etc.) or an explicit schedule.
    grid:
        ``(side, side)`` or ``(..., side, side)`` array; left unmodified.
    max_steps:
        Step cap; defaults to :func:`repro.core.engine.default_step_cap`.
    engine:
        ``"numpy"`` (vectorized, batch-capable) or ``"reference"``
        (pure-Python oracle; single grid only).
    raise_on_cap:
        Raise :class:`~repro.errors.StepLimitExceeded` instead of reporting
        ``steps == -1`` entries.
    observer:
        Optional :class:`~repro.obs.events.Observer` forwarded to the
        selected executor (ambient observers installed with
        :func:`repro.obs.use_observer` apply without this argument).
    """
    schedule = _resolve(algorithm)
    side = validate_grid(grid)
    if engine == "numpy":
        outcome = run_until_sorted(
            schedule, grid, max_steps=max_steps, raise_on_cap=raise_on_cap,
            observer=observer,
        )
    elif engine == "reference":
        arr = np.asarray(grid)
        if arr.ndim != 2:
            raise DimensionError("the reference engine accepts a single grid only")
        cap = max_steps if max_steps is not None else default_step_cap(side)
        t_f, final = reference_sort(schedule, arr, max_steps=cap, observer=observer)
        outcome = SortOutcome(
            steps=np.asarray(t_f, dtype=np.int64),
            completed=np.asarray(True),
            final=final,
            max_steps=cap,
        )
    else:
        raise DimensionError(f"unknown engine {engine!r}; use 'numpy' or 'reference'")
    return SortReport(algorithm=schedule.name, side=side, outcome=outcome)


def sort_steps(
    algorithm: str | Schedule,
    grid: np.ndarray,
    num_steps: int,
    *,
    start_t: int = 1,
) -> np.ndarray:
    """Grid state after exactly ``num_steps`` steps (vectorized engine)."""
    return run_fixed_steps(_resolve(algorithm), grid, num_steps, start_t=start_t)


def trace(algorithm: str | Schedule, grid: np.ndarray, num_steps: int):
    """Iterate ``(t, snapshot)`` over the first ``num_steps`` steps."""
    return iter_steps(_resolve(algorithm), grid, num_steps)


def describe_algorithm(algorithm: str | Schedule) -> str:
    """Human-readable step cycle of an algorithm."""
    return _resolve(algorithm).describe()
