"""Named constructors for the comparator phases used by the paper's algorithms.

These helpers make :mod:`repro.core.algorithms` read like the paper's prose:
``row_odd_bubble("odd")`` is "the odd rows perform an odd step of the bubble
sort".  All parity language follows the paper's 1-based numbering (see
:mod:`repro.core.schedule`).
"""

from __future__ import annotations

from repro.core.schedule import FORWARD, REVERSE, LineOp, Lines, WrapOp

__all__ = [
    "row_odd_bubble",
    "row_even_bubble",
    "row_odd_reverse",
    "row_even_reverse",
    "col_odd_bubble",
    "col_even_bubble",
    "wraparound",
]


def row_odd_bubble(lines: Lines = "all") -> LineOp:
    """Odd step of the ordinary bubble sort along the selected rows."""
    return LineOp(axis="row", offset=0, direction=FORWARD, lines=lines)


def row_even_bubble(lines: Lines = "all") -> LineOp:
    """Even step of the ordinary bubble sort along the selected rows."""
    return LineOp(axis="row", offset=1, direction=FORWARD, lines=lines)


def row_odd_reverse(lines: Lines = "all") -> LineOp:
    """Odd step of the *reverse* bubble sort (Definition 1) along rows."""
    return LineOp(axis="row", offset=0, direction=REVERSE, lines=lines)


def row_even_reverse(lines: Lines = "all") -> LineOp:
    """Even step of the reverse bubble sort along rows."""
    return LineOp(axis="row", offset=1, direction=REVERSE, lines=lines)


def col_odd_bubble(lines: Lines = "all") -> LineOp:
    """Odd step of the bubble sort along the selected columns (smaller on top)."""
    return LineOp(axis="col", offset=0, direction=FORWARD, lines=lines)


def col_even_bubble(lines: Lines = "all") -> LineOp:
    """Even step of the bubble sort along the selected columns."""
    return LineOp(axis="col", offset=1, direction=FORWARD, lines=lines)


def wraparound() -> WrapOp:
    """The row-major algorithms' wrap-around comparisons (extra wires)."""
    return WrapOp()
