"""Fault injection: comparator failures on the mesh.

Two failure models, both executed by a vectorized engine variant:

* **transient** — every comparator firing independently fails (becomes a
  no-op) with probability ``failure_rate``.  Because the schedule repeats
  and a sorted grid is a fixed point, the sort still completes with
  probability 1; the experiments measure the slowdown as the failure rate
  grows.
* **permanent** — a fixed set of *dead cell pairs* never exchanges.  Killing
  the wrap-around wires this way reproduces Section 1's observation
  structurally: the smallest-column adversary can then never be sorted.

The healthy path (``failure_rate=0`` and no dead pairs) is verified to be
step-identical to :mod:`repro.core.engine`.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from repro.core.algorithms import check_side
from repro.core.engine import SortOutcome
from repro.core.orders import target_grid, validate_grid
from repro.core.schedule import (
    FORWARD,
    LineOp,
    Op,
    Schedule,
    WrapOp,
    comparator_pairs,
    lines_slice,
    pair_count,
    validate_schedule,
)
from repro.errors import DimensionError, StepLimitExceeded
from repro.randomness import SeedLike, as_generator

__all__ = ["FaultyCompiledSchedule", "faulty_run_until_sorted"]

Cell = tuple[int, int]
Pair = tuple[Cell, Cell]


def _normalize_pair(pair: Pair) -> Pair:
    a, b = pair
    return (a, b) if a <= b else (b, a)


class FaultyCompiledSchedule:
    """Vectorized executor with transient and/or permanent comparator faults."""

    def __init__(
        self,
        schedule: Schedule,
        side: int,
        *,
        failure_rate: float = 0.0,
        dead_pairs: Iterable[Pair] = (),
        rng: SeedLike = None,
    ):
        check_side(schedule, side)
        validate_schedule(schedule, side)
        if not 0.0 <= failure_rate < 1.0:
            raise DimensionError(
                f"failure_rate must be in [0, 1), got {failure_rate}"
            )
        self.schedule = schedule
        self.side = int(side)
        self.failure_rate = float(failure_rate)
        self.rng = as_generator(rng)
        dead = {_normalize_pair(p) for p in dead_pairs}
        self._steps: list[list[Callable[[np.ndarray], None]]] = [
            [self._compile_op(op, dead) for op in step] for step in schedule.steps
        ]

    # -- compilation -------------------------------------------------------

    def _alive_mask_for(self, op: Op, dead: set[Pair]) -> np.ndarray | None:
        """Static per-pair aliveness of an op (None when nothing is dead)."""
        pairs = comparator_pairs(op, self.side)
        alive = np.array(
            [_normalize_pair(p) not in dead for p in pairs], dtype=bool
        )
        return None if alive.all() else alive

    def _compile_op(self, op: Op, dead: set[Pair]) -> Callable[[np.ndarray], None]:
        side = self.side
        rate = self.failure_rate
        rng = self.rng

        if isinstance(op, WrapOp):
            static_alive = self._alive_mask_for(op, dead)  # shape (side-1,)

            def wrap_kernel(grid: np.ndarray) -> None:
                a = grid[..., : side - 1, side - 1]
                b = grid[..., 1:side, 0]
                lo = np.minimum(a, b)
                hi = np.maximum(a, b)
                alive = np.ones(a.shape, dtype=bool)
                if static_alive is not None:
                    alive &= static_alive
                if rate > 0.0:
                    alive &= rng.random(a.shape) >= rate
                a[...] = np.where(alive, lo, a)
                b[...] = np.where(alive, hi, b)

            return wrap_kernel

        assert isinstance(op, LineOp)
        length = side
        p = pair_count(op.offset, length)
        ls = lines_slice(op.lines)
        lo_slice = slice(op.offset, op.offset + 2 * p, 2)
        hi_slice = slice(op.offset + 1, op.offset + 2 * p, 2)
        forward = op.direction == FORWARD
        if p == 0:
            return lambda grid: None

        # Static dead mask shaped (num_lines, p): comparator_pairs orders
        # pairs line-major, matching this reshape.
        static = self._alive_mask_for(op, dead)
        static_2d = None if static is None else static.reshape(-1, p)

        def kernel(grid: np.ndarray) -> None:
            if op.axis == "row":
                a = grid[..., ls, lo_slice]
                b = grid[..., ls, hi_slice]
            else:
                a = grid[..., lo_slice, ls]
                b = grid[..., hi_slice, ls]
            lo = np.minimum(a, b)
            hi = np.maximum(a, b)
            alive = np.ones(a.shape, dtype=bool)
            if static_2d is not None:
                if op.axis == "row":
                    alive &= static_2d
                else:
                    alive &= static_2d.T
            if rate > 0.0:
                alive &= rng.random(a.shape) >= rate
            if forward:
                a[...] = np.where(alive, lo, a)
                b[...] = np.where(alive, hi, b)
            else:
                a[...] = np.where(alive, hi, a)
                b[...] = np.where(alive, lo, b)

        return kernel

    # -- execution ---------------------------------------------------------

    def apply_step(self, grid: np.ndarray, t: int) -> None:
        if t < 1:
            raise DimensionError(f"step times are 1-based, got {t}")
        for kernel in self._steps[(t - 1) % len(self._steps)]:
            kernel(grid)


def faulty_run_until_sorted(
    schedule: Schedule,
    grid: np.ndarray,
    *,
    max_steps: int,
    failure_rate: float = 0.0,
    dead_pairs: Iterable[Pair] = (),
    rng: SeedLike = None,
    raise_on_cap: bool = False,
) -> SortOutcome:
    """Run to completion under the fault model (mirrors ``run_until_sorted``)."""
    work = np.array(grid, copy=True)
    side = validate_grid(work)
    compiled = FaultyCompiledSchedule(
        schedule, side, failure_rate=failure_rate, dead_pairs=dead_pairs, rng=rng
    )
    target = target_grid(work, side, schedule.order)
    steps = np.full(work.shape[:-2], -1, dtype=np.int64)
    done = np.all(work == target, axis=(-2, -1))
    steps = np.where(done, 0, steps)
    t = 0
    while t < max_steps and not np.all(done):
        t += 1
        compiled.apply_step(work, t)
        now = np.all(work == target, axis=(-2, -1))
        newly = now & ~done
        if np.any(newly):
            steps = np.where(newly, t, steps)
            done = done | now
    completed = np.asarray(done)
    if raise_on_cap and not np.all(completed):
        raise StepLimitExceeded(max_steps, int(np.sum(~completed)))
    return SortOutcome(
        steps=np.asarray(steps), completed=completed, final=work, max_steps=max_steps
    )
