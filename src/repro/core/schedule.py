"""Intermediate representation for mesh comparator schedules.

The five algorithms of the paper (and the shearsort baseline) are *oblivious*
comparison-exchange procedures: at each step, a fixed set of disjoint cell
pairs compare their contents and place the smaller value at a fixed end of
the pair.  This module provides a tiny declarative IR for such procedures:

* :class:`LineOp` — one odd or even transposition step applied along rows or
  columns, restricted to a parity class of lines, with a direction (ordinary
  bubble stores the smaller value at the lower index; *reverse* bubble,
  Definition 1 of the paper, stores it at the higher index);
* :class:`WrapOp` — the wrap-around comparisons of the row-major algorithms:
  for each ``h``, cell ``(h, last column)`` against ``(h+1, first column)``
  with the smaller value kept in column ``last``;
* :class:`PairOp` — a single compare-exchange between two adjacent cells
  (the building block of generated comparator networks such as the random
  sorting networks of Angel–Holroyd–Romik–Virág, where each step fires one
  nearest-neighbour comparator);
* :class:`Step` — a set of ops executed simultaneously (they must touch
  disjoint cells; :func:`validate_schedule` checks this for a concrete side);
* :class:`Schedule` — a named sequence of steps, executed cyclically.

Engines (:mod:`repro.core.engine`, :mod:`repro.core.reference`,
:mod:`repro.mesh.machine`) consume this IR, which guarantees all executors
implement byte-identical semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Literal

import numpy as np

from repro.errors import DimensionError, ScheduleValidationError

__all__ = [
    "Axis",
    "Lines",
    "LineOp",
    "WrapOp",
    "PairOp",
    "Op",
    "Step",
    "Schedule",
    "line_indices",
    "pair_count",
    "touched_cells",
    "validate_schedule",
    "comparator_pairs",
]

Axis = Literal["row", "col"]
Lines = Literal["all", "odd", "even"]

#: Direction constant: smaller value stored at the lower index (left / top).
FORWARD = 1
#: Direction constant: smaller value stored at the higher index (reverse bubble).
REVERSE = -1


def line_indices(lines: Lines, side: int) -> np.ndarray:
    """0-based indices of the selected lines.

    Parity follows the paper's 1-based numbering: ``"odd"`` selects paper
    rows/columns 1, 3, 5, ... which are 0-based indices 0, 2, 4, ...
    """
    if lines == "all":
        return np.arange(side)
    if lines == "odd":
        return np.arange(0, side, 2)
    if lines == "even":
        return np.arange(1, side, 2)
    raise DimensionError(f"unknown line selector {lines!r}")


def lines_slice(lines: Lines) -> slice:
    """The selected lines as a basic slice (so engines can take views)."""
    if lines == "all":
        return slice(None)
    if lines == "odd":
        return slice(0, None, 2)
    if lines == "even":
        return slice(1, None, 2)
    raise DimensionError(f"unknown line selector {lines!r}")


def pair_count(offset: int, side: int) -> int:
    """Number of compare-exchange pairs in a line of length ``side``.

    An odd step (``offset=0``) pairs cells (0,1), (2,3), ...; an even step
    (``offset=1``) pairs (1,2), (3,4), ...
    """
    if offset not in (0, 1):
        raise DimensionError(f"offset must be 0 or 1, got {offset}")
    return max((side - offset) // 2, 0)


@dataclass(frozen=True)
class LineOp:
    """One transposition step along all selected rows or columns.

    Parameters
    ----------
    axis:
        ``"row"`` — comparisons between horizontally adjacent cells within
        each selected row; ``"col"`` — between vertically adjacent cells
        within each selected column.
    offset:
        0 for the paper's *odd* step (pairs (1,2),(3,4),... in 1-based
        numbering), 1 for the *even* step (pairs (2,3),(4,5),...).
    direction:
        ``+1`` stores the smaller value at the lower index (ordinary bubble
        sort: left for rows, top for columns); ``-1`` is the reverse bubble
        sort of Definition 1 (smaller value at the higher index).
    lines:
        Which lines participate: ``"all"``, ``"odd"`` (paper-odd: 1-based
        1,3,5,...), or ``"even"``.
    """

    axis: Axis
    offset: int
    direction: int
    lines: Lines = "all"

    def __post_init__(self) -> None:
        if self.axis not in ("row", "col"):
            raise ScheduleValidationError(f"bad axis {self.axis!r}")
        if self.offset not in (0, 1):
            raise ScheduleValidationError(f"bad offset {self.offset!r}")
        if self.direction not in (FORWARD, REVERSE):
            raise ScheduleValidationError(f"bad direction {self.direction!r}")
        if self.lines not in ("all", "odd", "even"):
            raise ScheduleValidationError(f"bad line selector {self.lines!r}")

    def describe(self) -> str:
        kind = "odd" if self.offset == 0 else "even"
        sort = "bubble" if self.direction == FORWARD else "reverse-bubble"
        return f"{self.lines} {self.axis}s: {kind} {sort} step"


@dataclass(frozen=True)
class WrapOp:
    """Wrap-around comparisons between the last and first columns.

    For ``h = 0 .. side-2`` (0-based), compare cell ``(h, side-1)`` with
    ``(h+1, 0)``; the smaller value is placed in ``(h, side-1)``, i.e. the
    wrap-around wires continue the row-major linear order across row
    boundaries.
    """

    def describe(self) -> str:
        return "wrap-around comparisons (h, last) vs (h+1, first)"


@dataclass(frozen=True)
class PairOp:
    """One compare-exchange between two adjacent cells.

    The smaller value is stored at :attr:`low`, the larger at :attr:`high`.
    The two cells must be nearest neighbours (horizontally or vertically
    adjacent) so the op stays executable on a mesh without extra wires.
    Generated schedule families (e.g. random adjacent-comparator networks
    on a ``1 x N`` linear array) are built from these.
    """

    low: tuple[int, int]
    high: tuple[int, int]

    def __post_init__(self) -> None:
        low = tuple(int(v) for v in self.low)
        high = tuple(int(v) for v in self.high)
        if len(low) != 2 or len(high) != 2:
            raise ScheduleValidationError(
                f"PairOp cells must be (row, col) pairs, got {self.low!r}, {self.high!r}"
            )
        if min(*low, *high) < 0:
            raise ScheduleValidationError(
                f"PairOp cells must be non-negative, got {low} vs {high}"
            )
        if abs(low[0] - high[0]) + abs(low[1] - high[1]) != 1:
            raise ScheduleValidationError(
                f"PairOp cells must be mesh-adjacent, got {low} vs {high}"
            )
        object.__setattr__(self, "low", low)
        object.__setattr__(self, "high", high)

    def describe(self) -> str:
        return f"compare cells {self.low} vs {self.high} (smaller at {self.low})"


Op = LineOp | WrapOp | PairOp


@dataclass(frozen=True)
class Step:
    """A set of ops executed in the same time step.

    Ops within a step must touch pairwise-disjoint cells — checked against a
    concrete mesh side by :func:`validate_schedule`.  Because the cell sets
    are disjoint, engines may apply the ops sequentially.
    """

    ops: tuple[Op, ...]

    def __init__(self, *ops: Op):
        if not ops:
            raise ScheduleValidationError("a step must contain at least one op")
        object.__setattr__(self, "ops", tuple(ops))

    def __iter__(self) -> Iterator[Op]:
        return iter(self.ops)

    def describe(self) -> str:
        return " + ".join(op.describe() for op in self.ops)


@dataclass(frozen=True)
class Schedule:
    """A named, cyclically repeated sequence of steps.

    Attributes
    ----------
    name:
        Registry name of the algorithm (e.g. ``"snake_1"``).
    steps:
        The step cycle.  Step ``t`` (1-based, matching the paper's counting)
        executes ``steps[(t - 1) % len(steps)]``.
    order:
        Target order the schedule sorts into (``"row_major"`` or ``"snake"``).
    requires_even_side:
        True for the row-major algorithms, which are only defined for
        ``sqrt(N) = 2n``.
    uses_wraparound:
        True when any step contains a :class:`WrapOp` (extra wires needed).
    """

    name: str
    steps: tuple[Step, ...]
    order: str
    requires_even_side: bool = False
    metadata: dict[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if not self.steps:
            raise ScheduleValidationError("schedule must contain at least one step")

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def uses_wraparound(self) -> bool:
        return any(isinstance(op, WrapOp) for step in self.steps for op in step)

    def step_at(self, t: int) -> Step:
        """The step executed at 1-based time ``t``."""
        if t < 1:
            raise DimensionError(f"step times are 1-based, got {t}")
        return self.steps[(t - 1) % len(self.steps)]

    def describe(self) -> str:
        lines = [f"schedule {self.name!r} -> {self.order} order"]
        for i, step in enumerate(self.steps, start=1):
            lines.append(f"  cycle step {i}/{len(self.steps)}: {step.describe()}")
        return "\n".join(lines)


def touched_cells(op: Op, side: int) -> np.ndarray:
    """Boolean (side, side) mask of cells an op reads/writes."""
    mask = np.zeros((side, side), dtype=bool)
    if isinstance(op, WrapOp):
        mask[:-1, side - 1] = True
        mask[1:, 0] = True
        return mask
    if isinstance(op, PairOp):
        for r, c in (op.low, op.high):
            if r >= side or c >= side:
                raise ScheduleValidationError(
                    f"PairOp cell ({r}, {c}) out of bounds for side {side}"
                )
            mask[r, c] = True
        return mask
    idx = line_indices(op.lines, side)
    p = pair_count(op.offset, side)
    span = slice(op.offset, op.offset + 2 * p)
    if op.axis == "row":
        mask[np.ix_(idx, np.arange(side)[span])] = True
    else:
        mask[np.ix_(np.arange(side)[span], idx)] = True
    return mask


def comparator_pairs(op: Op, side: int) -> list[tuple[tuple[int, int], tuple[int, int]]]:
    """Explicit comparator list for an op on a concrete side.

    Each element is ``(low_cell, high_cell)`` meaning the *smaller* value is
    placed at ``low_cell``.  Used by the reference engine and the
    processor-level mesh machine.
    """
    pairs: list[tuple[tuple[int, int], tuple[int, int]]] = []
    if isinstance(op, WrapOp):
        for h in range(side - 1):
            pairs.append(((h, side - 1), (h + 1, 0)))
        return pairs
    if isinstance(op, PairOp):
        return [(op.low, op.high)]
    p = pair_count(op.offset, side)
    for line in line_indices(op.lines, side):
        for k in range(p):
            a = op.offset + 2 * k
            b = a + 1
            if op.axis == "row":
                first, second = (line, a), (line, b)
            else:
                first, second = (a, line), (b, line)
            if op.direction == FORWARD:
                pairs.append((first, second))
            else:
                pairs.append((second, first))
    return pairs


def validate_schedule(schedule: Schedule, side: int) -> None:
    """Check a schedule against a concrete mesh side.

    Raises :class:`ScheduleValidationError` if any step's ops touch
    overlapping cells, and :class:`~repro.errors.UnsupportedMeshError` (via
    the caller's constraint) is *not* checked here — engines check side
    parity when instantiating algorithms.
    """
    if side < 1:
        raise DimensionError(f"side must be positive, got {side}")
    for i, step in enumerate(schedule.steps, start=1):
        seen = np.zeros((side, side), dtype=np.int32)
        for op in step:
            seen += touched_cells(op, side)
        if (seen > 1).any():
            rows, cols = np.nonzero(seen > 1)
            cell = (int(rows[0]), int(cols[0]))
            raise ScheduleValidationError(
                f"schedule {schedule.name!r} step {i}: ops overlap at cell {cell} "
                f"for side {side}"
            )
