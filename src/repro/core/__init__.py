"""Core library: the five 2-D bubble sorting algorithms and their executors.

Public surface:

* :mod:`repro.core.algorithms` — the five schedules + registry;
* :mod:`repro.core.schedule` — the comparator IR;
* :mod:`repro.core.engine` — vectorized batched executor;
* :mod:`repro.core.reference` — pure-Python oracle;
* :mod:`repro.core.orders` — row-major / snakelike target orders;
* :mod:`repro.core.runner` — high-level ``sort_grid`` entry point.
"""

from repro.core.algorithms import (
    ALGORITHM_NAMES,
    ALGORITHMS,
    ROW_MAJOR_NAMES,
    SNAKE_NAMES,
    get_algorithm,
)
from repro.core.engine import default_step_cap, run_until_sorted
from repro.core.orders import is_sorted_grid, rank_grid, target_grid
from repro.core.runner import describe_algorithm, sort_grid, sort_steps, trace
from repro.core.schedule import Schedule, Step, LineOp, WrapOp

__all__ = [
    "ALGORITHM_NAMES",
    "ALGORITHMS",
    "ROW_MAJOR_NAMES",
    "SNAKE_NAMES",
    "get_algorithm",
    "default_step_cap",
    "run_until_sorted",
    "is_sorted_grid",
    "rank_grid",
    "target_grid",
    "describe_algorithm",
    "sort_grid",
    "sort_steps",
    "trace",
    "Schedule",
    "Step",
    "LineOp",
    "WrapOp",
]
