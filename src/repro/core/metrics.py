"""Static cost metrics of comparator schedules.

The paper counts time in *word steps*; hardware cost also depends on how
many comparators fire per step and how many wires the schedule needs.  This
module computes those statically from the IR:

* comparators per step and per cycle;
* wires used (with/without wrap) and the wire count of the mesh;
* total comparator firings for a run of ``t`` steps;
* "work" comparisons against the sequential sorting lower bound
  ``N log2 N`` — making precise how much redundant comparison work the
  Θ(N)-step bubble sorts perform.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.schedule import Schedule, WrapOp, comparator_pairs
from repro.errors import DimensionError

__all__ = ["ScheduleMetrics", "schedule_metrics", "firings_for_steps"]


@dataclass(frozen=True)
class ScheduleMetrics:
    """Static cost summary of a schedule on a concrete side."""

    side: int
    steps_per_cycle: int
    comparators_per_step: tuple[int, ...]
    comparators_per_cycle: int
    wires_used: int
    wrap_wires_used: int

    @property
    def n_cells(self) -> int:
        return self.side * self.side

    @property
    def mean_comparators_per_step(self) -> float:
        return self.comparators_per_cycle / self.steps_per_cycle

    def work_ratio(self, steps: int) -> float:
        """Total comparator firings over ``steps`` steps divided by the
        sequential comparison lower bound ``N log2 N``."""
        if steps < 0:
            raise DimensionError(f"steps must be non-negative, got {steps}")
        total = firings_for_steps(self, steps)
        return total / (self.n_cells * math.log2(max(self.n_cells, 2)))


def schedule_metrics(schedule: Schedule, side: int) -> ScheduleMetrics:
    """Compute the static metrics of a schedule at a concrete side."""
    if side < 2:
        raise DimensionError(f"side must be >= 2, got {side}")
    per_step: list[int] = []
    wires: set[frozenset] = set()
    wrap_wires: set[frozenset] = set()
    for step in schedule.steps:
        count = 0
        for op in step:
            pairs = comparator_pairs(op, side)
            count += len(pairs)
            for pair in pairs:
                edge = frozenset(pair)
                wires.add(edge)
                if isinstance(op, WrapOp):
                    wrap_wires.add(edge)
        per_step.append(count)
    return ScheduleMetrics(
        side=side,
        steps_per_cycle=len(schedule.steps),
        comparators_per_step=tuple(per_step),
        comparators_per_cycle=sum(per_step),
        wires_used=len(wires),
        wrap_wires_used=len(wrap_wires),
    )


def firings_for_steps(metrics: ScheduleMetrics, steps: int) -> int:
    """Exact number of comparator firings during the first ``steps`` steps."""
    if steps < 0:
        raise DimensionError(f"steps must be non-negative, got {steps}")
    full_cycles, remainder = divmod(steps, metrics.steps_per_cycle)
    total = full_cycles * metrics.comparators_per_cycle
    total += sum(metrics.comparators_per_step[:remainder])
    return total
