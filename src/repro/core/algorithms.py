"""The five two-dimensional bubble sorting algorithms of the paper.

Each builder returns a :class:`~repro.core.schedule.Schedule` whose four-step
cycle transcribes the paper's step lists verbatim (Section 1).  The registry
maps stable names to builders:

======================== =============================== ==================
name                     paper description               target order
======================== =============================== ==================
``row_major_row_first``  first row-major algorithm       row-major (+wrap)
``row_major_col_first``  second row-major algorithm      row-major (+wrap)
``snake_1``              first snakelike algorithm       snakelike
``snake_2``              second snakelike algorithm      snakelike
``snake_3``              third snakelike algorithm       snakelike
======================== =============================== ==================

The row-major algorithms require an even mesh side (``sqrt(N) = 2n``); use
:func:`check_side` before running one.
"""

from __future__ import annotations

from typing import Callable

from repro.core.phases import (
    col_even_bubble,
    col_odd_bubble,
    row_even_bubble,
    row_even_reverse,
    row_odd_bubble,
    row_odd_reverse,
    wraparound,
)
from repro.core.schedule import Schedule, Step
from repro.errors import UnsupportedMeshError

__all__ = [
    "row_major_row_first",
    "row_major_col_first",
    "snake_1",
    "snake_2",
    "snake_3",
    "ALGORITHMS",
    "ALGORITHM_NAMES",
    "ROW_MAJOR_NAMES",
    "SNAKE_NAMES",
    "get_algorithm",
    "check_side",
]


def row_major_row_first() -> Schedule:
    """First row-major algorithm (begins with a row sort).

    Cycle (paper steps 4i+1 .. 4i+4):

    1. each row: odd bubble step;
    2. each column: odd bubble step (smaller on top);
    3. each row: even bubble step, *plus* the wrap-around comparisons
       between the rightmost and leftmost columns;
    4. each column: even bubble step.
    """
    return Schedule(
        name="row_major_row_first",
        steps=(
            Step(row_odd_bubble()),
            Step(col_odd_bubble()),
            Step(row_even_bubble(), wraparound()),
            Step(col_even_bubble()),
        ),
        order="row_major",
        requires_even_side=True,
    )


def row_major_col_first() -> Schedule:
    """Second row-major algorithm (begins with a column sort).

    Steps ``2i+1`` and ``2i+2`` are steps ``2i+2`` and ``2i+1`` of
    :func:`row_major_row_first`, i.e. the row/column pairs swap places:
    column-odd, row-odd, column-even, row-even + wrap-around.
    """
    return Schedule(
        name="row_major_col_first",
        steps=(
            Step(col_odd_bubble()),
            Step(row_odd_bubble()),
            Step(col_even_bubble()),
            Step(row_even_bubble(), wraparound()),
        ),
        order="row_major",
        requires_even_side=True,
    )


def snake_1() -> Schedule:
    """First snakelike algorithm.

    1. odd rows: odd bubble step; even rows: even reverse-bubble step;
    2. each column: odd bubble step;
    3. odd rows: even bubble step; even rows: odd reverse-bubble step;
    4. each column: even bubble step.
    """
    return Schedule(
        name="snake_1",
        steps=(
            Step(row_odd_bubble("odd"), row_even_reverse("even")),
            Step(col_odd_bubble()),
            Step(row_even_bubble("odd"), row_odd_reverse("even")),
            Step(col_even_bubble()),
        ),
        order="snake",
    )


def snake_2() -> Schedule:
    """Second snakelike algorithm: odd steps of :func:`snake_1`, but the
    column steps split by column parity.

    2. odd columns: odd bubble step; even columns: even bubble step;
    4. odd columns: even bubble step; even columns: odd bubble step.
    """
    return Schedule(
        name="snake_2",
        steps=(
            Step(row_odd_bubble("odd"), row_even_reverse("even")),
            Step(col_odd_bubble("odd"), col_even_bubble("even")),
            Step(row_even_bubble("odd"), row_odd_reverse("even")),
            Step(col_even_bubble("odd"), col_odd_bubble("even")),
        ),
        order="snake",
    )


def snake_3() -> Schedule:
    """Third snakelike algorithm: even steps of :func:`snake_2`, and both
    row steps use the *same* transposition parity in odd and even rows.

    1. odd rows: odd bubble step; even rows: odd reverse-bubble step;
    3. odd rows: even bubble step; even rows: even reverse-bubble step.
    """
    return Schedule(
        name="snake_3",
        steps=(
            Step(row_odd_bubble("odd"), row_odd_reverse("even")),
            Step(col_odd_bubble("odd"), col_even_bubble("even")),
            Step(row_even_bubble("odd"), row_even_reverse("even")),
            Step(col_even_bubble("odd"), col_odd_bubble("even")),
        ),
        order="snake",
    )


ALGORITHMS: dict[str, Callable[[], Schedule]] = {
    "row_major_row_first": row_major_row_first,
    "row_major_col_first": row_major_col_first,
    "snake_1": snake_1,
    "snake_2": snake_2,
    "snake_3": snake_3,
}

ALGORITHM_NAMES: tuple[str, ...] = tuple(ALGORITHMS)
ROW_MAJOR_NAMES: tuple[str, ...] = ("row_major_row_first", "row_major_col_first")
SNAKE_NAMES: tuple[str, ...] = ("snake_1", "snake_2", "snake_3")


def get_algorithm(name: str) -> Schedule:
    """Look up an algorithm schedule by registry name."""
    try:
        return ALGORITHMS[name]()
    except KeyError:
        raise UnsupportedMeshError(
            f"unknown algorithm {name!r}; known: {', '.join(ALGORITHM_NAMES)}"
        ) from None


def check_side(schedule: Schedule, side: int) -> None:
    """Raise :class:`UnsupportedMeshError` if the side violates the schedule's
    parity constraint (the row-major algorithms require an even side)."""
    if side < 2:
        raise UnsupportedMeshError(f"mesh side must be >= 2, got {side}")
    if schedule.requires_even_side and side % 2 != 0:
        raise UnsupportedMeshError(
            f"algorithm {schedule.name!r} is only defined for even mesh sides "
            f"(sqrt(N) = 2n); got side {side}"
        )
