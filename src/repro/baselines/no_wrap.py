"""Deprecated shim — the wire-less row-major variant lives in the registry.

Section 1 of the paper explains *why* the row-major algorithms need the
extra wires: "Suppose that we did not have them and the smallest 2n numbers
were initially stored by the cells in column 1.  Then the smallest 2n
numbers will be forced to stay in the same column at each step and we would
never get the desired ordering."

.. deprecated::
    The schedule moved to :mod:`repro.schedules` as the *pathological*
    family ``"row_major_no_wrap"`` (resolvable by name everywhere, excluded
    from sweeps by default).  :func:`row_major_no_wrap` below delegates to
    the registry builder — same name, same steps, bit-identical behaviour —
    and emits a :class:`DeprecationWarning`.

:func:`smallest_column_adversary` (the demonstrating *input*, not a
schedule) stays here warning-free.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.core.schedule import Schedule
from repro.errors import DimensionError
from repro.schedules.baselines import build_row_major_no_wrap

__all__ = ["row_major_no_wrap", "smallest_column_adversary"]


def row_major_no_wrap() -> Schedule:
    """The first row-major algorithm with the wrap-around comparisons removed.

    .. deprecated:: resolve the registry name ``"row_major_no_wrap"`` (or
       call ``repro.schedules.build_row_major_no_wrap``) instead.
    """
    warnings.warn(
        "repro.baselines.no_wrap.row_major_no_wrap is deprecated; resolve "
        "the registry family 'row_major_no_wrap' via repro.schedules "
        "(identical schedule)",
        DeprecationWarning,
        stacklevel=2,
    )
    return build_row_major_no_wrap()


def smallest_column_adversary(side: int, *, column: int = 0) -> np.ndarray:
    """The paper's adversarial input: the smallest ``side`` values down one
    column, the rest in row-major order elsewhere.

    With wrap-around wires this is (close to) the worst case of Corollary 1;
    without them it can never be sorted into row-major order.
    """
    if side < 2:
        raise DimensionError(f"side must be >= 2, got {side}")
    if not 0 <= column < side:
        raise DimensionError(f"column {column} out of range for side {side}")
    grid = np.empty((side, side), dtype=np.int64)
    rest = iter(range(side, side * side))
    for r in range(side):
        for c in range(side):
            grid[r, c] = r if c == column else next(rest)
    return grid
