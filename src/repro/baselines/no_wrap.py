"""The broken row-major variant without wrap-around wires.

Section 1 of the paper explains *why* the row-major algorithms need the
extra wires: "Suppose that we did not have them and the smallest 2n numbers
were initially stored by the cells in column 1.  Then the smallest 2n
numbers will be forced to stay in the same column at each step and we would
never get the desired ordering."

This module provides the wire-less schedule so the experiments (and tests)
can demonstrate exactly that failure: on the adversarial input the run hits
any step cap with the smallest column pinned in place, while the wired
variant sorts in Θ(N).
"""

from __future__ import annotations

import numpy as np

from repro.core.phases import (
    col_even_bubble,
    col_odd_bubble,
    row_even_bubble,
    row_odd_bubble,
)
from repro.core.schedule import Schedule, Step
from repro.errors import DimensionError

__all__ = ["row_major_no_wrap", "smallest_column_adversary"]


def row_major_no_wrap() -> Schedule:
    """The first row-major algorithm with the wrap-around comparisons removed.

    Not a sorting algorithm: column weights are invariant under all four of
    its steps except for the odd/even row transpositions, which can never
    move values past the column-1/column-2n boundary.
    """
    return Schedule(
        name="row_major_no_wrap",
        steps=(
            Step(row_odd_bubble()),
            Step(col_odd_bubble()),
            Step(row_even_bubble()),
            Step(col_even_bubble()),
        ),
        order="row_major",
        requires_even_side=True,
        metadata={"family": "broken-baseline"},
    )


def smallest_column_adversary(side: int, *, column: int = 0) -> np.ndarray:
    """The paper's adversarial input: the smallest ``side`` values down one
    column, the rest in row-major order elsewhere.

    With wrap-around wires this is (close to) the worst case of Corollary 1;
    without them it can never be sorted into row-major order.
    """
    if side < 2:
        raise DimensionError(f"side must be >= 2, got {side}")
    if not 0 <= column < side:
        raise DimensionError(f"column {column} out of range for side {side}")
    grid = np.empty((side, side), dtype=np.int64)
    rest = iter(range(side, side * side))
    for r in range(side):
        for c in range(side):
            grid[r, c] = r if c == column else next(rest)
    return grid
