"""Baselines on the same machine model: shearsort, broken no-wrap variant."""

from repro.baselines.no_wrap import row_major_no_wrap, smallest_column_adversary
from repro.baselines.shearsort import shearsort, shearsort_step_count

__all__ = [
    "row_major_no_wrap",
    "smallest_column_adversary",
    "shearsort",
    "shearsort_step_count",
]
