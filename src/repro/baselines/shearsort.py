"""Deprecated shim — shearsort now lives in the schedule-family registry.

.. deprecated::
    Shearsort construction moved to :mod:`repro.schedules` (family
    ``"shearsort"``; build instances with
    ``build_schedule("shearsort", side)`` or resolve the spec string
    ``"shearsort[side=8]"`` anywhere an algorithm name is accepted).
    :func:`shearsort` below delegates to the registry builder and emits a
    :class:`DeprecationWarning`; the schedule it returns is step-for-step
    identical to the historical one (only the instance *name* changed, to
    canonical spec syntax), so every run outcome is bit-identical.

The step-count helpers :func:`shearsort_phases` and
:func:`shearsort_step_count` are pure math, re-exported warning-free.
"""

from __future__ import annotations

import warnings

from repro.core.schedule import Schedule
from repro.schedules.baselines import (
    build_shearsort,
    shearsort_phases,
    shearsort_step_count,
)

__all__ = ["shearsort", "shearsort_phases", "shearsort_step_count"]


def shearsort(side: int) -> Schedule:
    """Build the shearsort schedule for a concrete mesh side.

    .. deprecated:: use ``repro.schedules.build_schedule("shearsort", side)``
       (or the spec string ``"shearsort[side=...]"``) instead.
    """
    warnings.warn(
        "repro.baselines.shearsort.shearsort is deprecated; use "
        "repro.schedules.build_schedule('shearsort', side) or the "
        "'shearsort[side=...]' spec string (identical schedule)",
        DeprecationWarning,
        stacklevel=2,
    )
    return build_shearsort(side=side)
