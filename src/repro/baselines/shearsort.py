"""Shearsort on the same machine model (the classic Θ(sqrt(N) log N) contrast).

The paper's headline is that all five bubble-sort generalizations need
Θ(N) steps *on average*, far above the mesh diameter Ω(sqrt(N)).  Shearsort
is the natural comparison point: alternately sort all rows snake-wise and
all columns, ``ceil(log2(side)) + 1`` row phases in total; by the classic
0-1 argument the grid is then in snakelike order.

To keep the cost model identical to the five algorithms, each phase is
expressed in the same comparator IR: a full line sort is ``side`` odd-even
transposition steps (alternating offsets), so one shearsort step costs
exactly one mesh step.  The total schedule length is
``(2 * ceil(log2(side)) + 1) * side`` steps — Θ(sqrt(N) log N).
"""

from __future__ import annotations

import math

from repro.core.schedule import FORWARD, REVERSE, LineOp, Schedule, Step
from repro.errors import DimensionError

__all__ = ["shearsort", "shearsort_step_count"]


def shearsort_phases(side: int) -> int:
    """Number of row phases: ``ceil(log2(side)) + 1``."""
    if side < 2:
        raise DimensionError(f"side must be >= 2, got {side}")
    return math.ceil(math.log2(side)) + 1


def shearsort_step_count(side: int) -> int:
    """Length of the shearsort schedule in mesh steps."""
    phases = shearsort_phases(side)
    return (2 * phases - 1) * side


def shearsort(side: int) -> Schedule:
    """Build the shearsort schedule for a concrete mesh side.

    Unlike the five bubble-sort generalizations, shearsort's schedule is not
    a short cycle — it depends on ``side`` (its length is
    Θ(sqrt(N) log N)).  The returned schedule repeats cyclically, which is
    harmless: the snakelike sorted grid is a fixed point of every step.
    """
    if side < 2:
        raise DimensionError(f"side must be >= 2, got {side}")
    steps: list[Step] = []
    phases = shearsort_phases(side)
    for phase in range(phases):
        # Row phase: sort paper-odd rows ascending, paper-even rows
        # descending (snake direction), via `side` transposition steps.
        for j in range(side):
            steps.append(
                Step(
                    LineOp("row", j % 2, FORWARD, "odd"),
                    LineOp("row", j % 2, REVERSE, "even"),
                )
            )
        if phase < phases - 1:
            # Column phase: sort every column top-down.
            for j in range(side):
                steps.append(Step(LineOp("col", j % 2, FORWARD, "all")))
    return Schedule(
        name=f"shearsort_{side}",
        steps=tuple(steps),
        order="snake",
        metadata={"family": "shearsort", "side": side},
    )
