"""JSONL checkpoint store making interrupted campaigns resumable.

One file per campaign, keyed by the spec fingerprint:
``<checkpoint_dir>/campaign-<fingerprint>.jsonl``.  Line 1 is a header
pinning the campaign identity; every subsequent line records one completed
shard::

    {"format": "repro-campaign-checkpoint", "schema_version": 1,
     "fingerprint": "...", "identity": {...}, "backend": "vectorized", ...}
    {"shard": 0, "trials": 64, "values": [412, 397, ...], "elapsed": 0.21}
    {"shard": 3, "trials": 64, "values": [...], "elapsed": 0.20}

Design notes:

* **Append-only.**  The coordinating process appends one line per finished
  shard (in completion order, which under a worker pool is arbitrary) and
  flushes; a kill at any moment loses at most the line being written.
* **Torn tails are tolerated.**  A truncated final line — the signature of
  a mid-write kill — is skipped on load; every intact line is recovered.
* **Bit-exact round trip.**  Step counts are JSON integers (exact);
  statistic values are JSON floats serialized via ``repr``, which
  round-trips IEEE-754 doubles exactly — so a resumed campaign's merged
  sample is bit-identical to an uninterrupted run's.
* **Optional observability payload.**  Campaigns running with an observer
  or profiler attached also record each shard's worker-side metrics
  snapshot and span tree (``metrics``/``spans`` fields); readers ignore
  unknown fields, so such checkpoints stay loadable everywhere and the
  values round trip is untouched.
* **Identity-checked.**  Loading refuses (``CheckpointError``) a file whose
  header fingerprint differs from the spec being resumed: those shards
  were sampled from a different campaign and must never be merged.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any

import numpy as np

from repro.campaign.spec import CampaignSpec
from repro.errors import CheckpointError

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointStore",
    "ShardRecord",
    "checkpoint_path",
]

CHECKPOINT_SCHEMA_VERSION = 1
_FORMAT = "repro-campaign-checkpoint"


def checkpoint_path(checkpoint_dir: str | Path, spec: CampaignSpec) -> Path:
    """The checkpoint file a campaign with ``spec`` reads and writes."""
    return Path(checkpoint_dir) / f"campaign-{spec.fingerprint}.jsonl"


@dataclass(frozen=True)
class ShardRecord:
    """One checkpointed shard: its values plus optional observability payload.

    ``metrics``/``spans`` are the worker-side registry snapshot and span
    tree recorded when the campaign ran with collection on (an observer or
    profiler attached); they are ``None`` for checkpoints written without
    it.  Restoring them lets a resumed campaign's merged metrics and span
    tree still cover the shards it did not recompute.
    """

    values: np.ndarray
    elapsed: float = 0.0
    metrics: dict[str, Any] | None = None
    spans: dict[str, Any] | None = None


class CheckpointStore:
    """Append-only per-campaign shard store (see module docstring).

    Usage::

        store = CheckpointStore(path, spec)
        completed = store.load()        # {} on a fresh campaign
        store.open(fresh=not resume)    # truncates unless resuming
        store.append(shard_index, values, elapsed)
        ...
        store.close()
    """

    def __init__(self, path: str | Path, spec: CampaignSpec):
        self.path = Path(path)
        self.spec = spec
        self._fh: IO[str] | None = None

    # ------------------------------------------------------------------
    # Reading.
    # ------------------------------------------------------------------

    def load(self) -> dict[int, np.ndarray]:
        """Completed shards recorded so far, as ``{index: values}``.

        Returns ``{}`` when the file does not exist.  Raises
        :class:`CheckpointError` on a fingerprint mismatch or an unusable
        header; silently skips a torn (truncated) trailing line.
        """
        return {
            index: record.values for index, record in self.load_records().items()
        }

    def load_records(self) -> dict[int, ShardRecord]:
        """Like :meth:`load`, but keeps each shard's full :class:`ShardRecord`
        (elapsed time plus any checkpointed metrics/span payloads)."""
        if not self.path.exists():
            return {}
        dtype = np.dtype(self.spec.values_dtype)
        completed: dict[int, ShardRecord] = {}
        with self.path.open("r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        if not lines:
            return {}
        header = self._parse_header(lines[0])
        if header["fingerprint"] != self.spec.fingerprint:
            spec_identity = self.spec.identity()
            checkpoint_identity = header.get("identity")
            conflict = ""
            if isinstance(checkpoint_identity, dict):
                differing = sorted(
                    key
                    for key in set(spec_identity) | set(checkpoint_identity)
                    if spec_identity.get(key) != checkpoint_identity.get(key)
                )
                if differing:
                    conflict = f"; differing identity field(s): {', '.join(differing)}"
            raise CheckpointError(
                f"checkpoint {self.path} was written for campaign "
                f"{header['fingerprint']}, not {self.spec.fingerprint}; "
                "it records a different (algorithm, side, trials, seed, ...) "
                f"declaration and cannot be resumed into this one{conflict}",
                path=self.path,
                spec_fingerprint=self.spec.fingerprint,
                checkpoint_fingerprint=header["fingerprint"],
                spec_identity=spec_identity,
                checkpoint_identity=(
                    checkpoint_identity
                    if isinstance(checkpoint_identity, dict)
                    else None
                ),
            )
        for lineno, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # A torn tail from a mid-write kill: recover what we have.
                if lineno == len(lines):
                    continue
                raise CheckpointError(
                    f"checkpoint {self.path} line {lineno} is corrupt "
                    "(not a torn tail); refusing to guess at its contents"
                ) from None
            index = int(record["shard"])
            values = np.asarray(record["values"], dtype=dtype)
            if values.size != int(record["trials"]):
                raise CheckpointError(
                    f"checkpoint {self.path} shard {index} records "
                    f"{int(record['trials'])} trials but {values.size} values"
                )
            # Duplicate shard lines can only hold identical values (the
            # plan is deterministic), so last-write-wins is safe.
            completed[index] = ShardRecord(
                values=values,
                elapsed=float(record.get("elapsed", 0.0)),
                metrics=record.get("metrics"),
                spans=record.get("spans"),
            )
        return completed

    def _parse_header(self, line: str) -> dict[str, Any]:
        try:
            header = json.loads(line)
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"checkpoint {self.path} has an unreadable header: {exc}"
            ) from exc
        if not isinstance(header, dict) or header.get("format") != _FORMAT:
            raise CheckpointError(
                f"{self.path} is not a campaign checkpoint file"
            )
        if header.get("schema_version") != CHECKPOINT_SCHEMA_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint schema version "
                f"{header.get('schema_version')!r} in {self.path}"
            )
        return header

    # ------------------------------------------------------------------
    # Writing.
    # ------------------------------------------------------------------

    def open(self, *, fresh: bool) -> None:
        """Open for appending; with ``fresh`` (or no file yet) start over."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        mode = "w" if fresh or not self.path.exists() else "a"
        self._fh = self.path.open(mode, encoding="utf-8")
        if mode == "w":
            header = {
                "format": _FORMAT,
                "schema_version": CHECKPOINT_SCHEMA_VERSION,
                "fingerprint": self.spec.fingerprint,
                "identity": self.spec.identity(),
                "backend": self.spec.backend,
                "num_shards": len(self.spec.shards()),
            }
            self._write_line(header)

    def append(
        self,
        index: int,
        values: np.ndarray,
        elapsed: float,
        *,
        metrics: dict[str, Any] | None = None,
        spans: dict[str, Any] | None = None,
    ) -> None:
        """Record one completed shard (flushed immediately).

        ``metrics``/``spans`` attach the shard's worker-side observability
        snapshot when the campaign collected one; readers that predate
        these fields ignore them (the values round trip is unchanged).
        """
        if self._fh is None:
            raise CheckpointError("checkpoint store is not open for writing")
        record: dict[str, Any] = {
            "shard": int(index),
            "trials": int(np.asarray(values).size),
            "values": np.asarray(values).tolist(),
            "elapsed": round(float(elapsed), 6),
        }
        if metrics is not None:
            record["metrics"] = metrics
        if spans is not None:
            record["spans"] = spans
        self._write_line(record)

    def _write_line(self, record: dict[str, Any]) -> None:
        assert self._fh is not None
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CheckpointStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
