"""Campaign declarations: what to sample, how to shard it, how to name it.

A :class:`CampaignSpec` declares a Monte-Carlo estimation campaign —
``(algorithm, side, input_kind, trials, kind, root seed)`` plus execution
knobs — and deterministically induces its **shard plan**: trials are cut
into shards of ``shard_size`` (:func:`repro.randomness.shard_counts`) and
shard ``i`` draws its inputs from the ``i``-th ``SeedSequence.spawn`` child
of the root seed (:func:`repro.randomness.shard_seed_sequence`).

The plan depends only on the spec, never on worker count or scheduling
order, which is what makes campaign aggregates bit-identical across
``workers ∈ {1, 2, 4, ...}`` and across interrupt-then-resume.

Every spec has a :attr:`~CampaignSpec.fingerprint` — a digest of exactly
the fields that determine the sampled values.  The checkpoint store keys
files by it and refuses to merge shards recorded under a different
fingerprint.  ``backend`` is deliberately **excluded**: the backends are
cross-validated to produce bit-identical samples for the same seed (see
``tests/backends/test_montecarlo_parity.py``), so a checkpoint written on
one backend may be resumed on another.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.runner import resolve_algorithm
from repro.core.schedule import Schedule
from repro.errors import DimensionError
from repro.randomness import seed_provenance, shard_counts, shard_seed_sequence

__all__ = ["KINDS", "INPUT_KINDS", "CampaignSpec", "Shard"]

#: The two sampling modes: sort-to-completion step counts, and a statistic
#: of the grid after a fixed number of steps.
KINDS = ("sort_steps", "statistic")

#: The two input distributions the samplers can draw: uniformly random
#: permutations, and the paper's random 0-1 threshold matrices.
INPUT_KINDS = ("permutation", "zero_one")

_DEFAULT_INPUT_KIND = {"sort_steps": "permutation", "statistic": "zero_one"}


@dataclass(frozen=True)
class Shard:
    """One unit of campaign work: ``trials`` draws from child stream ``index``."""

    index: int
    trials: int


def _statistic_label(statistic: Callable | None) -> str:
    if statistic is None:
        return ""
    mod = getattr(statistic, "__module__", "")
    name = getattr(statistic, "__qualname__", repr(statistic))
    return f"{mod}.{name}" if mod else name


@dataclass(frozen=True)
class CampaignSpec:
    """Declaration of one sharded Monte-Carlo campaign.

    Parameters mirror the :func:`repro.experiments.sample` facade.  The
    ``statistic`` callable (``kind="statistic"`` only) must be picklable —
    a module-level function such as the trackers in :mod:`repro.zeroone` —
    because worker processes receive the spec by pickle.  Lambdas work
    only with in-process execution (``workers=1``) and checkpointing off.
    """

    algorithm: str | Schedule
    side: int
    trials: int
    kind: str = "sort_steps"
    input_kind: str | None = None
    seed: int | tuple[int, ...] = 0
    backend: str | None = None
    statistic: Callable | None = field(default=None, compare=False)
    num_steps: int = 1
    max_steps: int | None = None
    shard_size: int = 64
    batch_size: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise DimensionError(
                f"campaign kind must be one of {KINDS}, got {self.kind!r}"
            )
        if self.kind == "statistic" and self.statistic is None:
            raise DimensionError("kind='statistic' requires a statistic callable")
        if self.kind == "sort_steps" and self.statistic is not None:
            raise DimensionError("kind='sort_steps' takes no statistic")
        if self.trials < 1:
            raise DimensionError(f"trials must be positive, got {self.trials}")
        if self.shard_size < 1:
            raise DimensionError(f"shard_size must be positive, got {self.shard_size}")
        if self.input_kind is None:
            object.__setattr__(
                self, "input_kind", _DEFAULT_INPUT_KIND[self.kind]
            )
        elif self.input_kind not in INPUT_KINDS:
            raise DimensionError(
                f"input_kind must be one of {INPUT_KINDS}, got {self.input_kind!r}"
            )
        # Fail fast on unknown algorithms/backends in the coordinating
        # process instead of inside every worker.  Resolution goes through
        # the schedule registry (side-aware, so sided families like
        # shearsort work by bare name) and raises UnknownScheduleError
        # listing the registered families for bad names.
        schedule = resolve_algorithm(self.algorithm, self.side)
        from repro.backends import available_backends, get_backend
        from repro.schedules import execution_backend, mesh_shape

        if self.backend is not None and self.backend not in available_backends():
            raise DimensionError(
                f"unknown backend {self.backend!r}; "
                f"available: {', '.join(available_backends())}"
            )
        rows, cols = mesh_shape(schedule, self.side)
        if rows != cols:
            resolved = execution_backend(schedule, self.backend)
            if not get_backend(resolved).supports_rect:
                raise DimensionError(
                    f"backend {resolved!r} only supports square meshes, but "
                    f"schedule {schedule.name!r} runs on a {rows}x{cols} mesh; "
                    f"use a rect-capable backend or leave backend unset"
                )

    # ------------------------------------------------------------------
    # Shard plan.
    # ------------------------------------------------------------------

    @property
    def algorithm_name(self) -> str:
        """The schedule's resolved instance name (used in fingerprints and
        events).

        Generated families bake their parameters and seed into the name
        (``"random_network[seed=7,side=16,steps=512]"``), so two campaigns
        over different network draws get different fingerprints even though
        every other identity field matches.
        """
        return resolve_algorithm(self.algorithm, self.side).name

    @property
    def resolved_backend(self) -> str:
        """The backend that actually executes this campaign.

        ``backend=None`` auto-selects by topology (square → ``vectorized``,
        non-square → ``rect``), exactly as each worker resolves it; the
        resolved name is what run metadata reports.
        """
        from repro.schedules import execution_backend

        return execution_backend(
            resolve_algorithm(self.algorithm, self.side), self.backend
        )

    def shards(self) -> list[Shard]:
        """The deterministic shard plan: ``ceil(trials / shard_size)`` shards."""
        return [
            Shard(index=i, trials=count)
            for i, count in enumerate(shard_counts(self.trials, self.shard_size))
        ]

    def shard_seed(self, index: int):
        """The ``SeedSequence`` feeding shard ``index`` (see randomness.py)."""
        return shard_seed_sequence(self.seed, index)

    # ------------------------------------------------------------------
    # Identity.
    # ------------------------------------------------------------------

    def identity(self) -> dict[str, Any]:
        """The value-determining fields, as a JSON-stable mapping.

        Everything that changes the sampled numbers is here; execution
        knobs that provably do not (``backend``, worker count,
        ``batch_size`` — draw order is batch-size invariant, see
        ``test_batching_does_not_change_distribution``) are not.
        """
        return {
            "algorithm": self.algorithm_name,
            "side": self.side,
            "trials": self.trials,
            "kind": self.kind,
            "input_kind": self.input_kind,
            # seed_provenance keeps ints/tuples in their historical JSON
            # form (so existing fingerprints are unchanged) and makes
            # SeedSequence seeds serializable instead of crashing json.dumps.
            "seed": seed_provenance(self.seed),
            "num_steps": self.num_steps if self.kind == "statistic" else None,
            "statistic": _statistic_label(self.statistic),
            "max_steps": self.max_steps,
            "shard_size": self.shard_size,
        }

    @property
    def fingerprint(self) -> str:
        """Digest of :meth:`identity` — the campaign's checkpoint key."""
        canonical = json.dumps(self.identity(), sort_keys=True)
        return hashlib.blake2b(canonical.encode(), digest_size=8).hexdigest()

    @property
    def values_dtype(self) -> str:
        """Dtype of the merged sample (int64 step counts, float64 statistics)."""
        return "int64" if self.kind == "sort_steps" else "float64"
