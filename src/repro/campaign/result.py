"""The one result type of the unified sampling API.

Every sampling entry point — the :func:`repro.experiments.sample` facade,
:func:`repro.campaign.run_campaign`, and (via their shims) the historical
samplers — produces a :class:`SampleResult`: the raw per-trial values, a
:class:`~repro.experiments.montecarlo.TrialStats` summary, and enough
manifest metadata to replay or audit the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.obs.manifest import RunManifest, array_digest

if TYPE_CHECKING:
    from repro.experiments.montecarlo import TrialStats

__all__ = ["SampleResult"]


@dataclass
class SampleResult:
    """Values + summary + provenance of one Monte-Carlo sample.

    ``values`` is per-trial, ordered by the draw plan (trial order for
    in-process runs, shard-index order for campaigns) — deterministic for
    a fixed spec, independent of worker count and scheduling.

    For budgeted partial campaign runs (``max_shards``) ``complete`` is
    False and ``values``/``stats`` cover only the completed shards; resume
    the campaign to finish the plan.

    The result is array-like (``np.mean(result)``, ``result / n`` work
    directly) so experiment code can treat it as the sample it wraps.
    """

    values: np.ndarray
    stats: "TrialStats"
    meta: dict[str, Any] = field(default_factory=dict)
    complete: bool = True

    @classmethod
    def from_values(
        cls, values: np.ndarray, meta: dict[str, Any], *, complete: bool = True
    ) -> "SampleResult":
        # Imported here, not at module top: repro.experiments re-exports this
        # class, so a top-level import would be circular.
        from repro.experiments.montecarlo import summarize

        return cls(
            values=values, stats=summarize(values), meta=dict(meta), complete=complete
        )

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        arr = self.values
        if dtype is not None:
            arr = arr.astype(dtype, copy=False)
        if copy:
            arr = arr.copy()
        return arr

    def __len__(self) -> int:
        return int(self.values.size)

    @property
    def values_digest(self) -> str:
        """Bit-exact digest of ``values`` (the determinism test currency)."""
        return array_digest(self.values)

    def to_manifest(self) -> RunManifest:
        """A replayable manifest of this sample.

        ``kind`` is ``"campaign"`` for sharded runs and ``"run"`` for
        in-process ones; ``result_digest`` is the bit-exact values digest,
        so re-running the recorded spec must reproduce it exactly.
        """
        meta = dict(self.meta)
        kind = "campaign" if meta.get("mode") == "campaign" else "run"
        seed = meta.get("seed")
        return RunManifest(
            kind=kind,
            algorithm=str(meta.get("algorithm", "")),
            side=meta.get("side"),
            seed=list(seed) if isinstance(seed, tuple) else seed,
            elapsed_seconds=meta.get("elapsed"),
            result_digest=self.values_digest,
            extra={
                key: value
                for key, value in meta.items()
                if key not in ("algorithm", "side", "seed", "elapsed")
            },
        )
