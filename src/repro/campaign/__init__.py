"""repro.campaign — sharded, resumable, parallel Monte-Carlo campaigns.

A *campaign* is a declared Monte-Carlo estimation job — ``(algorithm,
side, input_kind, trials, kind, root seed)`` — split into deterministic
shards (``SeedSequence.spawn`` children), executed serially or across a
worker-process pool with per-shard retry, checkpointed to a JSONL store
so interrupted runs resume, and merged into one
:class:`~repro.campaign.result.SampleResult`.

The determinism contract: for a fixed :class:`CampaignSpec`, the merged
sample is **bit-identical** regardless of worker count, shard completion
order, backend, or how many interrupt/resume cycles the campaign went
through.  See docs/PERFORMANCE.md ("Parallel campaigns").

Most callers want the :func:`repro.experiments.sample` facade instead of
building specs by hand; this package is the engine underneath it.
"""

from repro.campaign.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointStore,
    ShardRecord,
    checkpoint_path,
)
from repro.campaign.execution import ExecutionOptions
from repro.campaign.result import SampleResult
from repro.campaign.runner import (
    execute_shard,
    execute_shard_observed,
    run_campaign,
)
from repro.campaign.spec import KINDS, CampaignSpec, Shard

__all__ = [
    "KINDS",
    "CampaignSpec",
    "ExecutionOptions",
    "Shard",
    "ShardRecord",
    "SampleResult",
    "run_campaign",
    "execute_shard",
    "execute_shard_observed",
    "CheckpointStore",
    "checkpoint_path",
    "CHECKPOINT_SCHEMA_VERSION",
]
