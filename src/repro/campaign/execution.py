"""Frozen execution options: *how* to run a campaign, separated from *what*.

A :class:`~repro.campaign.spec.CampaignSpec` declares the sample — the
fields that determine the drawn values, and therefore the store
fingerprint.  :class:`ExecutionOptions` carries everything that must
**not** change the values: backend choice, worker count, checkpointing,
result store.  The facade (:func:`repro.experiments.sample`) and
:func:`repro.campaign.run_campaign` both accept one, so a single frozen
object can be threaded through experiment configs, the job service, and
the CLI instead of a drift-prone tuple of loose keyword arguments.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.errors import DimensionError

if TYPE_CHECKING:
    from repro.store import ResultStore

__all__ = ["ExecutionOptions"]


@dataclass(frozen=True)
class ExecutionOptions:
    """How to execute a campaign (never *what* it samples).

    Parameters
    ----------
    backend:
        Executor backend name (``None`` keeps the facade's default).
        Part of execution, not identity: backends are cross-validated to
        produce bit-identical values, so the store fingerprint ignores it.
    workers:
        Degree of process parallelism; ``1`` runs shards in-process.
    shard_size:
        Trials per campaign shard (``None`` keeps the campaign default).
        Forces campaign mode when set.
    checkpoint_dir:
        Directory for the campaign's JSONL checkpoint; ``None`` disables
        checkpointing.
    resume:
        Restore shards already recorded in the checkpoint.  Requires
        ``checkpoint_dir``.
    store:
        Result store for cache-hit short-circuiting: a
        :class:`~repro.store.ResultStore`, a directory path, or a
        ``"scheme:location"`` string (see :func:`repro.store.resolve_store`).
        Forces campaign mode — the fingerprint describes the campaign
        draw plan, not the in-process stream.
    retries:
        Extra attempts per shard after a worker failure.
    max_shards:
        Budgeted partial run: compute at most this many new shards.
        Requires ``checkpoint_dir``.
    """

    backend: str | None = None
    workers: int = 1
    shard_size: int | None = None
    checkpoint_dir: str | Path | None = None
    resume: bool = False
    store: "ResultStore | str | Path | None" = None
    retries: int = 2
    max_shards: int | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise DimensionError(f"workers must be >= 1, got {self.workers}")
        if self.retries < 0:
            raise DimensionError(f"retries must be >= 0, got {self.retries}")
        if self.shard_size is not None and self.shard_size < 1:
            raise DimensionError(
                f"shard_size must be >= 1, got {self.shard_size}"
            )
        if self.max_shards is not None and self.max_shards < 1:
            raise DimensionError(
                f"max_shards must be >= 1, got {self.max_shards}"
            )
        if self.resume and self.checkpoint_dir is None:
            raise DimensionError("resume=True requires checkpoint_dir")
        if self.max_shards is not None and self.checkpoint_dir is None:
            raise DimensionError(
                "max_shards (partial runs) requires checkpoint_dir"
            )

    @property
    def campaign_mode(self) -> bool:
        """Whether these options force the sharded campaign path.

        Any option that only exists at campaign granularity (parallelism,
        explicit sharding, checkpointing, the result store) switches the
        facade from the historical in-process stream to the campaign
        stream.
        """
        return (
            self.workers != 1
            or self.shard_size is not None
            or self.checkpoint_dir is not None
            or self.store is not None
            or self.max_shards is not None
        )

    def describe(self) -> dict[str, Any]:
        """JSON-ready summary (manifests, job records, ``--summary``)."""
        out: dict[str, Any] = {}
        for field in fields(self):
            value = getattr(self, field.name)
            if field.name == "checkpoint_dir" and value is not None:
                value = str(value)
            elif field.name == "store" and value is not None:
                describe = getattr(value, "describe", None)
                value = describe() if callable(describe) else str(value)
            out[field.name] = value
        return out
