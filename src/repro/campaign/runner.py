"""Sharded, fault-tolerant, parallel campaign execution.

:func:`run_campaign` turns a :class:`~repro.campaign.spec.CampaignSpec`
into a merged :class:`~repro.campaign.result.SampleResult`:

1. the spec's deterministic shard plan is computed (``SeedSequence.spawn``
   child ``i`` feeds shard ``i`` — see :mod:`repro.randomness`);
2. shards already recorded in the campaign's checkpoint are restored
   (``resume=True``) instead of recomputed;
3. the rest are executed — in-process and in plan order for ``workers=1``,
   fanned out over a ``concurrent.futures.ProcessPoolExecutor`` otherwise —
   with each shard retried up to ``retries`` extra times on worker failure
   (a crashed pool is rebuilt and the unfinished shards resubmitted);
4. completed shards are appended to the checkpoint as they finish and
   reported through the ambient/explicit observer as campaign-level events
   (:class:`~repro.obs.events.ShardEnd` etc.);
5. shard samples are merged **in shard-index order**, which is what makes
   the aggregate bit-identical across worker counts, completion orders,
   and interrupt-then-resume cycles.

Shard execution is unobserved at the run level from the *coordinator's*
point of view (see :func:`repro.obs.context.no_observer`): per-step events
cannot usefully cross process boundaries.  Instead, when the coordinator
has an observer or ambient profiler attached, each shard runs under a
**worker-local** :class:`~repro.obs.metrics.MetricsObserver` and
:class:`~repro.obs.prof.SpanProfiler` and ships the resulting registry
snapshot and span tree back through the result/checkpoint channel
(:func:`execute_shard_observed`).  The coordinator merges every snapshot
into the observing registry (via :class:`~repro.obs.events.ShardEnd`) and
grafts every shard tree into one cross-process span tree per campaign, so
``--metrics-out`` and the Prometheus exporter finally see worker-side
activity — and the campaign manifest records where the time went.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import nullcontext
from pathlib import Path
from typing import Any

import numpy as np

from repro.campaign.checkpoint import CheckpointStore, ShardRecord, checkpoint_path
from repro.campaign.execution import ExecutionOptions
from repro.campaign.result import SampleResult
from repro.campaign.spec import CampaignSpec, Shard
from repro.errors import CampaignError, DimensionError, StoreError
from repro.obs.context import no_observer, resolve_observer, use_observer
from repro.obs.events import CampaignEnd, CampaignStart, Observer, ShardEnd
from repro.obs.manifest import write_manifest
from repro.obs.metrics import MetricsObserver, MetricsRegistry
from repro.obs.prof import Span, SpanProfiler, current_profiler, use_profiler
from repro.obs.timing import StopWatch
from repro.randomness import as_generator, seed_provenance

__all__ = ["run_campaign", "execute_shard", "execute_shard_observed"]


def _shard_values(spec: CampaignSpec, index: int, trials: int) -> np.ndarray:
    """The sampling body shared by both shard entry points."""
    # Imported here, not at module top: repro.experiments imports this
    # package (for the sample() facade), so a top-level import is circular.
    from repro.experiments.montecarlo import _sort_steps_values, _statistic_values

    rng = as_generator(spec.shard_seed(index))
    if spec.kind == "sort_steps":
        return _sort_steps_values(
            spec.algorithm,
            spec.side,
            trials,
            seed=rng,
            max_steps=spec.max_steps,
            input_kind=spec.input_kind,
            batch_size=spec.batch_size,
            backend=spec.backend,
        )
    return _statistic_values(
        spec.algorithm,
        spec.side,
        trials,
        spec.statistic,
        num_steps=spec.num_steps,
        seed=rng,
        input_kind=spec.input_kind,
        batch_size=spec.batch_size,
        backend=spec.backend,
    ).astype(np.float64)


def execute_shard(spec: CampaignSpec, index: int, trials: int) -> np.ndarray:
    """Sample one shard's values — the unit of work a worker performs.

    Deterministic in ``(spec, index)`` alone: the shard re-derives its
    ``SeedSequence`` child locally, so any worker (or a later resume) that
    runs the same shard produces bit-identical values.
    """
    with no_observer():
        return _shard_values(spec, index, trials)


def execute_shard_observed(
    spec: CampaignSpec, index: int, trials: int
) -> tuple[np.ndarray, dict[str, Any], dict[str, Any]]:
    """Run one shard under worker-local observability collection.

    Identical values to :func:`execute_shard` (the sampling stream never
    depends on observation), plus the worker's metrics registry snapshot
    and its serialized span tree — rooted at a ``shard`` span — for the
    coordinator to merge.
    """
    registry = MetricsRegistry()
    profiler = SpanProfiler()
    with no_observer(), use_observer(MetricsObserver(registry)), \
            use_profiler(profiler):
        with profiler.span("shard"):
            values = _shard_values(spec, index, trials)
    return values, registry.as_dict(), profiler.tree()[0]


def _merge(spec: CampaignSpec, completed: dict[int, np.ndarray]) -> np.ndarray:
    """Concatenate shard samples in shard-index order (the determinism rule)."""
    dtype = np.dtype(spec.values_dtype)
    return np.concatenate(
        [np.asarray(completed[i], dtype=dtype) for i in sorted(completed)]
    )


def run_campaign(
    spec: CampaignSpec,
    *,
    workers: int = 1,
    checkpoint_dir: str | Path | None = None,
    resume: bool = False,
    observer: Observer | None = None,
    retries: int = 2,
    max_shards: int | None = None,
    store: Any = None,
    execution: ExecutionOptions | None = None,
) -> SampleResult:
    """Run (or resume) a campaign and return the merged sample.

    Parameters
    ----------
    workers:
        Degree of process parallelism.  ``1`` runs shards in-process, in
        plan order; any value produces the identical aggregate.
    checkpoint_dir:
        Directory for the campaign's JSONL checkpoint (and, on completion,
        its manifest).  ``None`` disables checkpointing.
    resume:
        Restore shards already recorded in the checkpoint instead of
        recomputing them.  Without ``resume`` an existing checkpoint for
        the same campaign is overwritten.
    observer:
        Receives campaign-level events; falls back to the ambient observer
        (:func:`repro.obs.use_observer`).  Attaching one (or an ambient
        :class:`~repro.obs.prof.SpanProfiler`) turns on worker-side
        collection: shards report their metrics snapshot and span tree
        through :class:`~repro.obs.events.ShardEnd`, the checkpoint, and
        the result ``meta`` (``worker_metrics`` / ``span_tree``).
    retries:
        Extra attempts per shard after a worker failure before the
        campaign gives up with :class:`CampaignError`.  A crashed pool
        (e.g. an OOM-killed worker) counts one attempt against every shard
        that was in flight.
    max_shards:
        Budgeted partial run: compute at most this many new shards, then
        checkpoint and return a partial (``complete=False``) result.
        Requires ``checkpoint_dir`` — a partial run you cannot resume
        would be wasted work.
    store:
        Result store for cache-hit short-circuiting (anything
        :func:`repro.store.resolve_store` accepts).  A stored entry for
        ``spec.fingerprint`` is returned without running a single shard —
        bit-identical to the fresh campaign, because the fingerprint
        covers exactly the value-determining fields.  On a miss, the
        completed campaign is written back (partial results are never
        stored).  ``result.meta["store"]`` records the outcome.
    execution:
        A frozen :class:`~repro.campaign.execution.ExecutionOptions`
        bundling the runtime knobs (``workers``, ``checkpoint_dir``,
        ``resume``, ``retries``, ``max_shards``, ``store``).  Mutually
        exclusive with passing those knobs loose.  Its spec-level fields
        (``backend``, ``shard_size``) are consumed by the
        :func:`~repro.experiments.sample` facade when *building* the
        spec, not here.
    """
    if execution is not None:
        loose = (
            workers != 1
            or checkpoint_dir is not None
            or resume
            or retries != 2
            or max_shards is not None
            or store is not None
        )
        if loose:
            raise DimensionError(
                "pass execution knobs either inside ExecutionOptions or as "
                "loose keywords, not both"
            )
        workers = execution.workers
        checkpoint_dir = execution.checkpoint_dir
        resume = execution.resume
        retries = execution.retries
        max_shards = execution.max_shards
        store = execution.store
    if workers < 1:
        raise DimensionError(f"workers must be >= 1, got {workers}")
    if retries < 0:
        raise DimensionError(f"retries must be >= 0, got {retries}")
    if max_shards is not None and max_shards < 1:
        raise DimensionError(f"max_shards must be >= 1, got {max_shards}")
    if max_shards is not None and checkpoint_dir is None:
        raise DimensionError("max_shards (partial runs) requires checkpoint_dir")

    plan = spec.shards()
    obs = resolve_observer(observer)
    # The campaign's profiler: the ambient one when installed, else a
    # campaign-local one so an observed run still records a span tree for
    # its manifest.  None (no observer, no profiler) keeps the historical
    # zero-collection fast path: workers run fully unobserved.
    profiler = current_profiler()
    if profiler is None and obs is not None:
        profiler = SpanProfiler()
    collect = profiler is not None or obs is not None

    def pspan(name: str):
        return profiler.span(name) if profiler is not None else nullcontext()

    def ambient_obs():
        # Store backends report StoreEvents through the *ambient* observer
        # (they take no observer argument), so an explicitly-passed one is
        # installed around store calls to keep the event stream complete.
        return use_observer(obs) if obs is not None else nullcontext()

    result_store = None
    if store is not None:
        from repro.store import decode_result, resolve_store

        result_store = resolve_store(store)
        with ambient_obs(), pspan("store_lookup"):
            payload = result_store.get(spec.fingerprint)
        if payload is not None:
            try:
                cached = decode_result(payload)
            except StoreError:
                # Undecodable despite passing integrity (e.g. a foreign
                # writer): treat as a miss and recompute.
                cached = None
            if cached is not None:
                cached.meta["store"] = {
                    "hit": True,
                    "store": result_store.describe(),
                    "fingerprint": spec.fingerprint,
                }
                return cached

    watch = StopWatch().start()

    ckpt: CheckpointStore | None = None
    records: dict[int, ShardRecord] = {}
    if checkpoint_dir is not None:
        ckpt = CheckpointStore(checkpoint_path(checkpoint_dir, spec), spec)
        with pspan("checkpoint"):
            if resume:
                records = ckpt.load_records()
            ckpt.open(fresh=not resume)
    resumed = len(records)
    completed: dict[int, np.ndarray] = {
        index: record.values for index, record in records.items()
    }
    # Worker-side registry snapshots by shard index (restored or fresh),
    # merged into meta["worker_metrics"] at the end when collecting.
    shard_metrics: dict[int, dict[str, Any]] = {
        index: record.metrics
        for index, record in records.items()
        if record.metrics is not None
    }

    campaign_cm = (
        profiler.span("campaign", fingerprint=spec.fingerprint)
        if profiler is not None
        else nullcontext()
    )
    with campaign_cm as campaign_span:
        if obs is not None:
            obs.on_campaign_start(
                CampaignStart(
                    campaign=spec.fingerprint,
                    algorithm=spec.algorithm_name,
                    side=spec.side,
                    trials=spec.trials,
                    num_shards=len(plan),
                    shard_size=spec.shard_size,
                    workers=workers,
                    backend=spec.backend,
                    kind=spec.kind,
                    resumed_shards=resumed,
                )
            )
        for index in sorted(records):
            record = records[index]
            if profiler is not None and record.spans is not None:
                profiler.graft(record.spans)
            if obs is not None:
                obs.on_shard_end(
                    ShardEnd(
                        campaign=spec.fingerprint,
                        index=index,
                        trials=int(record.values.size),
                        from_checkpoint=True,
                        metrics=record.metrics,
                        spans=record.spans,
                    )
                )

        todo = [shard for shard in plan if shard.index not in completed]
        if max_shards is not None:
            todo = todo[:max_shards]
        attempts: dict[int, int] = {shard.index: 0 for shard in todo}
        total_retries = 0

        def finish_shard(
            shard: Shard,
            values: np.ndarray,
            elapsed: float,
            metrics: dict[str, Any] | None = None,
            spans: dict[str, Any] | None = None,
        ) -> None:
            completed[shard.index] = values
            if metrics is not None:
                shard_metrics[shard.index] = metrics
            if ckpt is not None:
                with pspan("checkpoint"):
                    ckpt.append(
                        shard.index, values, elapsed, metrics=metrics, spans=spans
                    )
            if profiler is not None and spans is not None:
                profiler.graft(spans)
            if obs is not None:
                obs.on_shard_end(
                    ShardEnd(
                        campaign=spec.fingerprint,
                        index=shard.index,
                        trials=shard.trials,
                        elapsed=elapsed,
                        attempts=attempts[shard.index] + 1,
                        metrics=metrics,
                        spans=spans,
                    )
                )

        try:
            if workers == 1:
                _run_serial(spec, todo, attempts, retries, finish_shard, collect)
            else:
                total_retries = _run_pool(
                    spec, todo, attempts, retries, workers, finish_shard, collect
                )
        finally:
            if ckpt is not None:
                ckpt.close()

        elapsed = watch.elapsed
        complete = len(completed) == len(plan)
        with pspan("merge"):
            values = _merge(spec, completed)
        if obs is not None:
            obs.on_campaign_end(
                CampaignEnd(
                    campaign=spec.fingerprint,
                    completed_shards=len(completed),
                    num_shards=len(plan),
                    trials=int(values.size),
                    elapsed=elapsed,
                    complete=complete,
                )
            )

    meta: dict[str, Any] = {
        "mode": "campaign",
        "campaign": spec.fingerprint,
        "algorithm": spec.algorithm_name,
        "side": spec.side,
        "trials": int(values.size),
        "planned_trials": spec.trials,
        "kind": spec.kind,
        "input_kind": spec.input_kind,
        "seed": seed_provenance(spec.seed),
        "backend": spec.resolved_backend,
        "workers": workers,
        "num_shards": len(plan),
        "shard_size": spec.shard_size,
        "completed_shards": len(completed),
        "resumed_shards": resumed,
        "shard_retries": total_retries,
        "elapsed": elapsed,
        "checkpoint": str(ckpt.path) if ckpt is not None else None,
    }
    if collect:
        meta["worker_metrics"] = _merged_worker_metrics(shard_metrics, completed)
        if isinstance(campaign_span, Span):
            meta["span_tree"] = campaign_span.as_dict()
    result = SampleResult.from_values(values, meta, complete=complete)
    if result_store is not None:
        from repro.store import encode_result

        stored = False
        if complete:
            # Encode before annotating meta so the stored payload never
            # carries the (run-local) "store" outcome key.
            payload = encode_result(result)
            with ambient_obs(), pspan("store_put"):
                result_store.put(
                    spec.fingerprint,
                    payload,
                    manifest=result.to_manifest().as_dict(),
                )
            stored = True
        result.meta["store"] = {
            "hit": False,
            "stored": stored,
            "store": result_store.describe(),
            "fingerprint": spec.fingerprint,
        }
    if ckpt is not None:
        manifest = result.to_manifest()
        write_manifest(ckpt.path.with_suffix(".manifest.json"), manifest)
    return result


def _merged_worker_metrics(
    shard_metrics: dict[int, dict[str, Any]],
    completed: dict[int, np.ndarray],
) -> dict[str, Any] | None:
    """One registry snapshot covering every completed shard that reported
    metrics (merged in shard-index order, like the values)."""
    merged = MetricsRegistry()
    for index in sorted(shard_metrics):
        if index in completed:
            merged.merge(shard_metrics[index])
    return merged.as_dict() if merged.names() else None


def _run_serial(spec, todo, attempts, retries, finish_shard, collect) -> None:
    """Plan-order in-process execution (workers=1)."""
    for shard in todo:
        while True:
            shard_watch = StopWatch().start()
            try:
                if collect:
                    values, metrics, spans = execute_shard_observed(
                        spec, shard.index, shard.trials
                    )
                else:
                    values = execute_shard(spec, shard.index, shard.trials)
                    metrics = spans = None
            except Exception as exc:
                attempts[shard.index] += 1
                if attempts[shard.index] > retries:
                    raise CampaignError(
                        [shard.index],
                        f"shard {shard.index} failed after "
                        f"{attempts[shard.index]} attempt(s): {exc!r}",
                    ) from exc
                continue
            finish_shard(shard, values, shard_watch.elapsed, metrics, spans)
            break


def _run_pool(spec, todo, attempts, retries, workers, finish_shard, collect) -> int:
    """Process-pool execution with per-shard retry and pool rebuild.

    Shards are submitted in rounds: round 1 is the whole todo list; each
    later round resubmits only the shards whose previous attempt failed.
    A broken pool (worker killed hard) fails every in-flight shard at
    once, so the round ends, the ``with`` block reaps the dead pool, and
    the next round starts a fresh one.
    """
    total_retries = 0
    remaining = list(todo)
    while remaining:
        failed_for_good: list[int] = []
        next_round: list[Shard] = []
        with ProcessPoolExecutor(max_workers=workers) as pool:
            future_to_shard = {
                pool.submit(
                    _shard_task, spec, shard.index, shard.trials, collect
                ): (shard, StopWatch().start())
                for shard in remaining
            }
            for future in as_completed(future_to_shard):
                shard, shard_watch = future_to_shard[future]
                try:
                    values, metrics, spans = future.result()
                except Exception:
                    # Worker raised, died, or the whole pool broke
                    # (BrokenProcessPool fails every in-flight future).
                    attempts[shard.index] += 1
                    total_retries += 1
                    if attempts[shard.index] > retries:
                        failed_for_good.append(shard.index)
                    else:
                        next_round.append(shard)
                    continue
                finish_shard(shard, values, shard_watch.elapsed, metrics, spans)
        if failed_for_good:
            raise CampaignError(sorted(failed_for_good))
        # Re-run failures in plan order, in a fresh pool.
        remaining = sorted(next_round, key=lambda shard: shard.index)
    return total_retries


def _shard_task(
    spec: CampaignSpec, index: int, trials: int, collect: bool
) -> tuple[np.ndarray, dict[str, Any] | None, dict[str, Any] | None]:
    """Module-level (hence picklable) worker entry point."""
    if collect:
        return execute_shard_observed(spec, index, trials)
    return execute_shard(spec, index, trials), None, None
