"""Static analysis for the reproduction: schedules and source code.

Two layers, both pure — neither executes a single sort step:

* :mod:`repro.analysis.schedule_check` proves structural properties of a
  :class:`~repro.core.schedule.Schedule` against a concrete mesh
  (comparator disjointness, bounds, wrap-around wiring, family
  consistency, obliviousness) and reports every violation with a rule ID.
  The comparator-network form it certifies is exactly what makes the
  paper's Section 2 0-1 reduction applicable.
* :mod:`repro.analysis.lint` enforces the repo's own conventions on the
  source tree (RNG only via :mod:`repro.randomness`, typed errors at the
  facade, a single observer-emission site, ...) with an AST rule engine.

Both surface through ``repro analyze`` (see :mod:`repro.analysis.__main__`)
and are documented in docs/ANALYSIS.md.
"""

from __future__ import annotations

from repro.analysis.schedule_check import (
    SCHEDULE_RULES,
    ScheduleReport,
    ScheduleViolation,
    check_schedule,
)

__all__ = [
    "check_schedule",
    "ScheduleReport",
    "ScheduleViolation",
    "SCHEDULE_RULES",
]
