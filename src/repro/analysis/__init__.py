"""Static analysis for the reproduction: schedules and source code.

Two layers, both pure — neither executes a single sort step:

* :mod:`repro.analysis.schedule_check` proves structural properties of a
  :class:`~repro.core.schedule.Schedule` against a concrete mesh
  (comparator disjointness, bounds, wrap-around wiring, family
  consistency, obliviousness) and reports every violation with a rule ID.
  The comparator-network form it certifies is exactly what makes the
  paper's Section 2 0-1 reduction applicable.
* :mod:`repro.analysis.lint` enforces the repo's own conventions on the
  source tree (RNG only via :mod:`repro.randomness`, typed errors at the
  facade, a single observer-emission site, ...) with an AST rule engine.
* :mod:`repro.analysis.semantics` certifies *function*: a 0-1-principle
  model checker that decides whether a schedule actually sorts
  (CERTIFIED with a minimal step bound / REFUTED with a minimal 0-1
  counterexample / UNKNOWN), content-addressed so re-analysis is a
  cache hit.

All three surface through ``repro analyze`` (see
:mod:`repro.analysis.__main__`) and are documented in docs/ANALYSIS.md.
"""

from __future__ import annotations

from repro.analysis.schedule_check import (
    SCHEDULE_RULES,
    ScheduleReport,
    ScheduleViolation,
    check_schedule,
)
from repro.analysis.semantics import (
    CertificateStore,
    SortednessCertificate,
    certified_schedule_report,
    certify_sortedness,
    peek_certificate,
    semantics_cache_clear,
    semantics_cache_info,
)

__all__ = [
    "check_schedule",
    "ScheduleReport",
    "ScheduleViolation",
    "SCHEDULE_RULES",
    "SortednessCertificate",
    "certify_sortedness",
    "certified_schedule_report",
    "peek_certificate",
    "CertificateStore",
    "semantics_cache_info",
    "semantics_cache_clear",
]
