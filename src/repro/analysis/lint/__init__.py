"""AST-based domain lint engine for the repo's own conventions.

PRs 1-4 established repo-wide invariants by convention and grep: every RNG
is built by :mod:`repro.randomness`, the public facade raises only
:mod:`repro.errors` types, observer events are constructed in exactly one
place, wall-clock reads go through :mod:`repro.obs.timing`.  This package
enforces them mechanically:

* :mod:`repro.analysis.lint.registry` — the rule base class and registry;
* :mod:`repro.analysis.lint.rules` — the built-in ``RPR1xx`` rules;
* :mod:`repro.analysis.lint.engine` — file walking, parsing, suppression
  comments, and :func:`run_lint`.

Suppress a finding with a trailing ``# repro: allow=RPR104`` comment on the
flagged line (comma-separate several IDs, ``*`` allows all), or a
``# repro: allow-file=RPR106`` comment within a file's first ten lines.
See docs/ANALYSIS.md for the rule catalog.
"""

from __future__ import annotations

from repro.analysis.lint.engine import LintReport, lint_file, run_lint
from repro.analysis.lint.findings import Finding
from repro.analysis.lint.registry import LintRule, all_rules, get_rule

__all__ = [
    "Finding",
    "LintReport",
    "LintRule",
    "all_rules",
    "get_rule",
    "lint_file",
    "run_lint",
]
