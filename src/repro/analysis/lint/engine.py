"""File walking, suppression comments, and the :func:`run_lint` entry point.

The engine parses each ``.py`` file once, derives its dotted module name
from the path (``src/repro/...`` becomes ``repro...``, ``tests/...``
becomes ``tests...``), runs every selected rule over the tree, and filters
findings through the suppression comments:

* line-level — a comment on the flagged line::

      rng = np.random.default_rng(0)  # repro: allow=RPR101
      x = call()  # repro: allow=RPR101,RPR104
      y = call()  # repro: allow=*

* file-level — anywhere in the first ten lines::

      # repro: allow-file=RPR106

Suppressions are counted, not forgotten: :class:`LintReport` reports how
many findings each file silenced so ``repro analyze --json`` can surface
suppression creep.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.lint.findings import Finding
from repro.analysis.lint.registry import LintRule, ModuleContext, all_rules
from repro.errors import AnalysisError

__all__ = ["LintReport", "lint_file", "run_lint"]

_ALLOW_LINE = re.compile(r"#\s*repro:\s*allow=([A-Z0-9*,\s]+)")
_ALLOW_FILE = re.compile(r"#\s*repro:\s*allow-file=([A-Z0-9*,\s]+)")
_FILE_PRAGMA_WINDOW = 10
# "fixtures" keeps rule-trigger fixture files (deliberate violations used
# by the analysis test suite) out of directory sweeps; lint them explicitly
# with lint_file() when the finding itself is the thing under test.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules", "build", "dist", "fixtures"}


@dataclass
class LintReport:
    """Everything one lint run established."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    parse_errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors

    def describe(self) -> str:
        lines = [f.describe() for f in self.findings]
        lines += [f"parse error: {msg}" for msg in self.parse_errors]
        lines.append(
            f"{len(self.findings)} finding(s) in {self.files_checked} file(s)"
            + (f", {self.suppressed} suppressed" if self.suppressed else "")
        )
        return "\n".join(lines)

    def to_json(self) -> dict[str, object]:
        return {
            "findings": [f.to_json() for f in self.findings],
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "parse_errors": list(self.parse_errors),
        }


def _ids(match_text: str) -> set[str]:
    return {part.strip() for part in match_text.split(",") if part.strip()}


def _suppressions(source: str) -> tuple[set[str], dict[int, set[str]]]:
    """``(file_level_ids, line -> ids)`` from the suppression comments."""
    file_ids: set[str] = set()
    line_ids: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "#" not in line:
            continue
        match = _ALLOW_FILE.search(line)
        if match and lineno <= _FILE_PRAGMA_WINDOW:
            file_ids |= _ids(match.group(1))
        match = _ALLOW_LINE.search(line)
        if match:
            line_ids.setdefault(lineno, set()).update(_ids(match.group(1)))
    return file_ids, line_ids


def module_name_for(path: Path) -> str:
    """Dotted module name derived from ``path`` (best effort).

    ``.../src/repro/obs/timing.py`` -> ``repro.obs.timing``;
    ``.../tests/core/test_schedule.py`` -> ``tests.core.test_schedule``;
    anything else falls back to the file stem.
    """
    parts = path.parts
    for anchor in ("src", "tests"):
        if anchor in parts:
            index = len(parts) - 1 - parts[::-1].index(anchor)
            tail = parts[index:] if anchor == "tests" else parts[index + 1:]
            dotted = ".".join(tail)[: -len(".py")] if tail else path.stem
            if dotted.endswith(".__init__"):
                dotted = dotted[: -len(".__init__")]
            return dotted
    return path.stem


def lint_file(
    path: str | Path, rules: Iterable[LintRule] | None = None
) -> tuple[list[Finding], int]:
    """Lint one file.  Returns ``(kept_findings, suppressed_count)``."""
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    ctx = ModuleContext(
        path=path, tree=tree, source=source, module=module_name_for(path)
    )
    selected = list(rules) if rules is not None else list(all_rules().values())
    file_ids, line_ids = _suppressions(source)
    kept: list[Finding] = []
    suppressed = 0
    for rule in selected:
        for finding in rule.check(ctx):
            allowed = file_ids | line_ids.get(finding.line, set())
            if "*" in allowed or finding.rule in allowed:
                suppressed += 1
            else:
                kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return kept, suppressed


def _iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                files.append(path)
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    files.append(candidate)
        else:
            raise AnalysisError(f"no such file or directory: {path}")
    return files


def run_lint(
    paths: Sequence[str | Path], rules: Iterable[LintRule] | None = None
) -> LintReport:
    """Lint every ``.py`` file under ``paths`` with the selected rules.

    A file that fails to parse is recorded in ``parse_errors`` (and fails
    the run) rather than aborting the sweep.
    """
    selected = list(rules) if rules is not None else list(all_rules().values())
    report = LintReport()
    for path in _iter_python_files(paths):
        try:
            findings, suppressed = lint_file(path, selected)
        except SyntaxError as exc:
            report.parse_errors.append(f"{path}: {exc.msg} (line {exc.lineno})")
            continue
        report.files_checked += 1
        report.findings.extend(findings)
        report.suppressed += suppressed
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report
