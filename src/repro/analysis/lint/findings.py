"""The lint engine's diagnostic record."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def describe(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


__all__ = ["Finding"]
