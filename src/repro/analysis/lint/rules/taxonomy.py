"""Error-contract discipline: the facade raises :mod:`repro.errors` types.

PR 4 fixed several facade entry points that leaked bare builtins; callers
are promised that ``except ReproError`` catches every library failure
without swallowing unrelated bugs.  A stray ``raise ValueError`` breaks
that contract invisibly — until a caller's error handling misses it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.findings import Finding
from repro.analysis.lint.registry import LintRule, ModuleContext, register

__all__ = ["BareBuiltinRaise"]


@register
class BareBuiltinRaise(LintRule):
    """RPR102: library code raises the :mod:`repro.errors` taxonomy.

    Flags ``raise ValueError/TypeError/RuntimeError/KeyError/Exception``
    in any ``repro.*`` module (the taxonomy module itself excepted).  Use
    :class:`~repro.errors.DimensionError` for bad inputs and the other
    ``ReproError`` subclasses for the rest; they inherit the matching
    builtin, so existing ``except ValueError`` callers keep working.
    ``NotImplementedError`` (abstract hooks) and re-raises are not flagged.
    """

    id = "RPR102"
    title = "bare builtin exception raised from library code"

    _BUILTINS = {"ValueError", "TypeError", "RuntimeError", "KeyError", "Exception"}
    _ALLOWED_MODULES = {"repro.errors"}

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.is_src or ctx.module in self._ALLOWED_MODULES:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name = ""
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name in self._BUILTINS:
                yield self.finding(
                    ctx, node,
                    f"`raise {name}` from library code; raise a repro.errors "
                    "type (e.g. DimensionError) so `except ReproError` "
                    "catches it",
                )
