"""Randomness discipline: every stream is derived from a recorded seed.

The campaign and verification layers depend on bit-identical replay from a
single root seed (SeedSequence spawning, shard re-derivation, checkpoint
resume).  One stray ``default_rng()`` or global ``seed()`` call breaks that
chain silently, so construction is confined to :mod:`repro.randomness`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.findings import Finding
from repro.analysis.lint.registry import LintRule, ModuleContext, register
from repro.analysis.lint.rules._ast_util import call_name, walk_calls

__all__ = ["RngConstruction", "GlobalSeeding"]

#: RNG entry points that must only be touched by ``repro.randomness``.
_RNG_CONSTRUCTORS = {
    "default_rng",
    "RandomState",
    "SeedSequence",
}
_RNG_MODULES = {"repro.randomness"}


def _is_numpy_random(dotted: str) -> bool:
    return dotted.startswith(("np.random.", "numpy.random.")) or dotted in (
        "default_rng",  # from numpy.random import default_rng
    )


@register
class RngConstruction(LintRule):
    """RPR101: random streams are constructed only by ``repro.randomness``.

    Flags ``import random`` / ``from random import ...`` and any call to
    ``np.random.default_rng`` / ``RandomState`` / ``SeedSequence`` in a
    ``repro.*`` module other than :mod:`repro.randomness`.  Pass seeds (or
    generators obtained from :func:`repro.randomness.as_generator`) instead:
    that keeps every stream re-derivable from the recorded root seed.
    """

    id = "RPR101"
    title = "RNG construction outside repro.randomness"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.is_src or ctx.module in _RNG_MODULES:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            ctx, node,
                            "stdlib `random` imported; use repro.randomness "
                            "(seeded numpy Generators) instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.finding(
                        ctx, node,
                        "stdlib `random` imported; use repro.randomness "
                        "(seeded numpy Generators) instead",
                    )
                elif node.module in ("numpy.random", "np.random"):
                    for alias in node.names:
                        if alias.name in _RNG_CONSTRUCTORS:
                            yield self.finding(
                                ctx, node,
                                f"`{alias.name}` imported from numpy.random; "
                                "construct generators via repro.randomness",
                            )
        for call in walk_calls(ctx.tree):
            dotted = call_name(call)
            if not dotted:
                continue
            tail = dotted.rsplit(".", 1)[-1]
            if tail in _RNG_CONSTRUCTORS and _is_numpy_random(dotted):
                yield self.finding(
                    ctx, call,
                    f"`{dotted}(...)` constructs an RNG outside "
                    "repro.randomness; use as_generator/spawn_generators/"
                    "as_seed_sequence so the stream stays replayable",
                )


@register
class GlobalSeeding(LintRule):
    """RPR108: no process-global RNG seeding, anywhere.

    ``np.random.seed`` / ``random.seed`` mutate interpreter-global state:
    two call sites silently couple, and worker processes inherit whatever
    the parent last set.  Explicit ``Generator`` objects (as enforced by
    RPR101) make seeding local and auditable; the global form is banned in
    src *and* tests.
    """

    id = "RPR108"
    title = "process-global RNG seeding"

    _BANNED = {"np.random.seed", "numpy.random.seed", "random.seed"}

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for call in walk_calls(ctx.tree):
            if call_name(call) in self._BANNED:
                yield self.finding(
                    ctx, call,
                    f"`{call_name(call)}(...)` seeds a process-global RNG; "
                    "pass an explicit seed or Generator instead",
                )
