"""Built-in ``RPR1xx`` lint rules, grouped by theme.

Importing this package registers every built-in rule:

* :mod:`~repro.analysis.lint.rules.purity` — RPR101 (RNG construction
  outside :mod:`repro.randomness`), RPR108 (global seeding);
* :mod:`~repro.analysis.lint.rules.taxonomy` — RPR102 (bare builtin
  exceptions raised from the facade);
* :mod:`~repro.analysis.lint.rules.observability` — RPR103 (observer-event
  construction outside the driver), RPR104 (ad-hoc wall-clock reads);
* :mod:`~repro.analysis.lint.rules.hygiene` — RPR105 (mutable default
  arguments), RPR107 (silent broad excepts);
* :mod:`~repro.analysis.lint.rules.testing` — RPR106 (float equality in
  tests);
* :mod:`~repro.analysis.lint.rules.locks` — RPR109 (lock acquired
  without a guaranteed release path).
"""

from __future__ import annotations

from repro.analysis.lint.rules import (  # noqa: F401  (import registers the rules)
    hygiene,
    locks,
    observability,
    purity,
    taxonomy,
    testing,
)
