"""Small AST helpers shared by the built-in rules."""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = ["dotted_name", "call_name", "walk_calls"]


def dotted_name(node: ast.AST) -> str:
    """``"np.random.default_rng"`` for a pure attribute chain, else ``""``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def call_name(node: ast.Call) -> str:
    """The dotted name a call resolves to (``""`` when not a name chain)."""
    return dotted_name(node.func)


def walk_calls(tree: ast.AST) -> Iterator[ast.Call]:
    """Yield every :class:`ast.Call` in ``tree``."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node
