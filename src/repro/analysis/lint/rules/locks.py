"""Lock hygiene: every acquired lease must have a release path."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.findings import Finding
from repro.analysis.lint.registry import LintRule, ModuleContext, register
from repro.analysis.lint.rules._ast_util import call_name, dotted_name

__all__ = ["UnreleasedLockAcquire"]


@register
class UnreleasedLockAcquire(LintRule):
    """RPR109: no lock acquisition without a guaranteed release path.

    A ``lock.acquire()`` / ``lock.try_acquire()`` whose lock can leak past
    an exception keeps its ``O_EXCL`` lease file on disk until staleness
    reclaim kicks in — other serve processes stall on work that nobody is
    doing.  Within the acquiring function the lock must either be released
    in a ``finally`` block, escape via ``return`` (ownership transfers to
    the caller, e.g. a :class:`~repro.service.queue.JobLease`), or be
    stored on ``self`` (instance-held locks are released by another
    method).  Prefer the ``hold()`` context manager when the critical
    section fits in one function.  Locks held through ``self`` and the
    lock primitives themselves (:mod:`repro.store.locks`) are exempt.
    """

    id = "RPR109"
    title = "lock acquired without a release path"

    _ACQUIRE = {"acquire", "try_acquire"}

    #: The locking primitives themselves: their internal acquire calls are
    #: the implementation of the release discipline, not a use of it.
    _ALLOWED_MODULES = {"repro.store.locks"}

    def _receiver(self, call: ast.Call) -> str:
        """``"lock"`` for ``lock.try_acquire(...)``; ``""`` otherwise."""
        name = call_name(call)
        base, _, attr = name.rpartition(".")
        if attr in self._ACQUIRE and base and "." not in base and base != "self":
            return base
        return ""

    def _released_in_finally(self, func: ast.AST, receiver: str) -> bool:
        for node in ast.walk(func):
            if not isinstance(node, ast.Try):
                continue
            for stmt in node.finalbody:
                for call in ast.walk(stmt):
                    if (
                        isinstance(call, ast.Call)
                        and call_name(call) == f"{receiver}.release"
                    ):
                        return True
        return False

    def _escapes(self, func: ast.AST, receiver: str) -> bool:
        """True when ``receiver`` leaves the function's ownership scope."""
        for node in ast.walk(func):
            if isinstance(node, ast.Return) and node.value is not None:
                if any(
                    isinstance(sub, ast.Name) and sub.id == receiver
                    for sub in ast.walk(node.value)
                ):
                    return True
            if isinstance(node, ast.Assign):
                reads_receiver = any(
                    isinstance(sub, ast.Name) and sub.id == receiver
                    for sub in ast.walk(node.value)
                )
                stores_on_self = any(
                    dotted_name(target).startswith("self.")
                    or (
                        isinstance(target, ast.Subscript)
                        and dotted_name(target.value).startswith("self.")
                    )
                    for target in node.targets
                )
                if reads_receiver and stores_on_self:
                    return True
        return False

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.is_src or ctx.module in self._ALLOWED_MODULES:
            return
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            receivers = {
                self._receiver(call)
                for body_stmt in func.body
                for call in ast.walk(body_stmt)
                if isinstance(call, ast.Call)
            } - {""}
            for receiver in sorted(receivers):
                if self._released_in_finally(func, receiver):
                    continue
                if self._escapes(func, receiver):
                    continue
                site = next(
                    call
                    for call in ast.walk(func)
                    if isinstance(call, ast.Call)
                    and self._receiver(call) == receiver
                )
                yield self.finding(
                    ctx, site,
                    f"`{receiver}` is acquired in `{func.name}` with no "
                    "release path (no finally release, no ownership-"
                    "transferring return, not stored on self); use the "
                    "hold() context manager or add try/finally",
                )
