"""General hygiene rules: the bug classes that survive review most often."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.findings import Finding
from repro.analysis.lint.registry import LintRule, ModuleContext, register

__all__ = ["MutableDefaultArg", "SilentBroadExcept"]


@register
class MutableDefaultArg(LintRule):
    """RPR105: no mutable default arguments, in src or tests.

    A ``def f(x=[])`` default is evaluated once and shared across calls —
    state leaks between callers (and, in this repo, between Monte-Carlo
    trials, which corrupts reproducibility silently).  Use ``None`` plus an
    inside-the-function default.
    """

    id = "RPR105"
    title = "mutable default argument"

    _MUTABLE_CALLS = {"list", "dict", "set"}

    def _is_mutable(self, default: ast.expr) -> bool:
        if isinstance(default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                                ast.DictComp, ast.SetComp)):
            return True
        return (
            isinstance(default, ast.Call)
            and isinstance(default.func, ast.Name)
            and default.func.id in self._MUTABLE_CALLS
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        ctx, default,
                        f"mutable default argument in `{node.name}`; default "
                        "to None and build the container inside the function",
                    )


@register
class SilentBroadExcept(LintRule):
    """RPR107: no silently-swallowed broad excepts.

    ``except Exception: pass`` (or a bare ``except: pass``) hides every
    failure mode including the ones this repo's verification harness
    exists to surface.  Catch the specific :mod:`repro.errors` type, or at
    minimum record why ignoring is safe.
    """

    id = "RPR107"
    title = "silent broad except"

    _BROAD = {"Exception", "BaseException"}

    def _is_broad(self, handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        if isinstance(handler.type, ast.Name):
            return handler.type.id in self._BROAD
        if isinstance(handler.type, ast.Tuple):
            return any(
                isinstance(el, ast.Name) and el.id in self._BROAD
                for el in handler.type.elts
            )
        return False

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            body_is_silent = all(
                isinstance(stmt, ast.Pass)
                or (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant))
                for stmt in node.body
            )
            if body_is_silent and self._is_broad(node):
                yield self.finding(
                    ctx, node,
                    "broad except with an empty body swallows every failure; "
                    "catch the specific error or handle it visibly",
                )
