"""Test-suite discipline rules."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.findings import Finding
from repro.analysis.lint.registry import LintRule, ModuleContext, register

__all__ = ["FloatLiteralEquality"]


@register
class FloatLiteralEquality(LintRule):
    """RPR106: no ``==`` against float expressions in tests.

    Comparing a computed float to a literal with ``==`` usually works until
    an implementation detail reorders the arithmetic; use
    ``pytest.approx``/``math.isclose``/``np.isclose`` with an explicit
    tolerance.  When *bit-exactness is the property under test* (this
    repo's checkpoint round-trip and backend-parity guarantees), keep the
    ``==`` and mark the line ``# repro: allow=RPR106`` so the intent is
    explicit.

    Detection: an ``==``/``!=`` whose comparand contains a non-integral
    float literal outside any call — ``x == 0.5`` and
    ``x == 0.25 + 0.5 / 128`` are flagged, ``x == pytest.approx(0.5)`` and
    ``x == 2`` are not.
    """

    id = "RPR106"
    title = "float literal equality in tests"

    def _has_bare_float(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Call):
            return False  # approx(0.5), isclose(...): the helper owns it
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        return any(
            self._has_bare_float(child)
            for child in ast.iter_child_nodes(node)
            if isinstance(child, ast.expr)
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.is_test:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            for comparand in [node.left, *node.comparators]:
                if self._has_bare_float(comparand):
                    yield self.finding(
                        ctx, node,
                        "float equality against a literal; use pytest.approx "
                        "(or mark `# repro: allow=RPR106` when bit-exactness "
                        "is the property under test)",
                    )
                    break
