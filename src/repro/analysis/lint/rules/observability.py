"""Observability discipline: one emission site, one clock.

PR 2 collapsed four executors' ad-hoc event dispatch into the driver's
``emit_*`` helpers ("single site, grep-verified") and PR 1 deduplicated
timing through :mod:`repro.obs.timing`.  These rules replace the grep.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.lint.findings import Finding
from repro.analysis.lint.registry import LintRule, ModuleContext, register
from repro.analysis.lint.rules._ast_util import call_name, walk_calls

__all__ = ["EventConstruction", "AdHocClock"]


@register
class EventConstruction(LintRule):
    """RPR103: run-level observer events are built only inside the driver.

    Flags construction of ``RunStart``/``StepEvent``/``CycleEvent``/
    ``RunEnd`` outside :mod:`repro.backends.driver` (the single emission
    site) and :mod:`repro.obs.events` (where the classes live and the
    recording observer snapshots them).  Everything else must route through
    the driver's ``emit_*`` helpers so observers see one schema regardless
    of executor.
    """

    id = "RPR103"
    title = "observer-event construction outside the driver"

    _EVENTS = {"RunStart", "StepEvent", "CycleEvent", "RunEnd"}
    _ALLOWED_MODULES = {"repro.backends.driver", "repro.obs.events"}

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.is_src or ctx.module in self._ALLOWED_MODULES:
            return
        for call in walk_calls(ctx.tree):
            dotted = call_name(call)
            if dotted.rsplit(".", 1)[-1] in self._EVENTS:
                yield self.finding(
                    ctx, call,
                    f"`{dotted}(...)` constructs a run-level event outside "
                    "repro.backends.driver; use the driver's emit_* helpers",
                )


@register
class AdHocClock(LintRule):
    """RPR104: wall-clock reads go through :mod:`repro.obs.timing`.

    Flags ``time.time()``/``time.perf_counter()``/``time.monotonic()`` (and
    the ``_ns`` variants) outside the clock-owning observability modules —
    :mod:`repro.obs.timing`, :mod:`repro.obs.metrics`, and the span
    profiler :mod:`repro.obs.prof`.  Use
    :class:`~repro.obs.timing.StopWatch`, a metrics
    :class:`~repro.obs.metrics.Timer`, or a profiler span: they are
    mockable in tests, consistent about which clock they read, and feed
    the ``repro_*_seconds`` instruments.
    """

    id = "RPR104"
    title = "ad-hoc wall-clock read"

    _CLOCKS = {
        "time.time",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
    }
    _ALLOWED_MODULES = {"repro.obs.timing", "repro.obs.metrics", "repro.obs.prof"}

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.is_src or ctx.module in self._ALLOWED_MODULES:
            return
        for call in walk_calls(ctx.tree):
            dotted = call_name(call)
            if dotted in self._CLOCKS:
                yield self.finding(
                    ctx, call,
                    f"`{dotted}()` read outside repro.obs.timing; use "
                    "StopWatch (or a metrics Timer) instead",
                )
