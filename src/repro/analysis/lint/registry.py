"""Rule base class and registry for the domain lint engine.

A rule is a small object with a stable ``RPR1xx`` ID, a docstring that
doubles as its catalog entry, and a :meth:`LintRule.check` method yielding
:class:`~repro.analysis.lint.findings.Finding` records for one parsed
module.  Rules register themselves with the :func:`register` decorator at
import time; :func:`all_rules` imports the built-in rule modules on first
use, so third parties can register additional rules before calling the
engine.
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Type

from repro.analysis.lint.findings import Finding
from repro.errors import AnalysisError

__all__ = ["ModuleContext", "LintRule", "register", "all_rules", "get_rule"]


@dataclass
class ModuleContext:
    """One parsed source file, as seen by every rule."""

    path: Path
    tree: ast.Module
    source: str
    module: str  # dotted module name ("repro.verify.runner", "tests.core.x")

    @property
    def is_src(self) -> bool:
        """True for files inside the ``repro`` package."""
        return self.module == "repro" or self.module.startswith("repro.")

    @property
    def is_test(self) -> bool:
        """True for files under the test suite."""
        return self.module == "tests" or self.module.startswith("tests.")


class LintRule(ABC):
    """One domain rule.  Subclasses set ``id``/``title`` and implement
    :meth:`check`; the class docstring is the rule's catalog entry and
    should state the *why* alongside the *what*."""

    id: str = ""
    title: str = ""

    @abstractmethod
    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield a finding for every violation in ``ctx``."""

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str) -> Finding:
        """A :class:`Finding` anchored at ``node``."""
        return Finding(
            rule=self.id,
            path=str(ctx.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_REGISTRY: dict[str, LintRule] = {}


def register(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator: instantiate and register a rule by its ID."""
    rule = cls()
    if not rule.id or not rule.title:
        raise AnalysisError(f"rule {cls.__name__} must define id and title")
    if rule.id in _REGISTRY:
        raise AnalysisError(f"duplicate lint rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return cls


def _load_builtin_rules() -> None:
    import repro.analysis.lint.rules  # noqa: F401  (registers on import)


def all_rules() -> dict[str, LintRule]:
    """Every registered rule, keyed by ID, built-ins included."""
    _load_builtin_rules()
    return dict(sorted(_REGISTRY.items()))


def get_rule(rule_id: str) -> LintRule:
    """Look up one rule by ID."""
    rules = all_rules()
    try:
        return rules[rule_id]
    except KeyError:
        raise AnalysisError(
            f"unknown lint rule {rule_id!r}; known: {', '.join(rules)}"
        ) from None
