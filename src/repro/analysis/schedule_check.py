"""Static schedule verifier: prove well-formedness without executing a step.

The paper's guarantees hold for *oblivious* comparison-exchange procedures:
every step is a fixed set of disjoint comparator pairs, chosen independently
of the data.  That is a property of the :class:`~repro.core.schedule.Schedule`
IR itself, so it can be certified statically.  :func:`check_schedule`
enumerates every comparator a schedule would fire on a concrete
``rows x cols`` mesh and checks:

========  ==========  ==========================================================
rule      severity    meaning
========  ==========  ==========================================================
SCH001    structural  two comparators in one step touch the same cell
SCH002    structural  mesh out of bounds (fewer than two cells on the longest
                      axis, a comparator cell outside the mesh, or odd columns
                      for a ``requires_even_side`` schedule — the paper's
                      ``sqrt(N) = 2n`` constraint)
SCH003    structural  an op is not part of the comparator IR (or carries
                      invalid fields), so obliviousness cannot be certified
SCH004    policy      wrap-around wiring outside the row-major family (the
                      paper's table grants extra wires only to the two
                      row-major algorithms)
SCH005    policy      a row-major schedule with no wrap-around comparisons
                      (Section 1: without the extra wires the smallest column
                      can never leave column 1)
SCH006    policy      comparator direction inconsistent with the family
                      (row-major: all forward; snake: odd rows forward, even
                      rows reverse per Definition 1; columns always forward)
SCH007    policy      a parity-restricted op with no complementary-parity
                      partner on the same axis in the same step
SCH008    policy      an (axis, line-parity) class that never sees one of the
                      two transposition offsets across the cycle — a
                      single-parity transposition network cannot sort
SCH009    policy      an axis with no comparators at all on a mesh that
                      extends along it
========  ==========  ==========================================================

*Structural* violations are refused by the kernel compiler
(:mod:`repro.backends.compile` raises the historical exception types via
:meth:`ScheduleReport.raise_for_structural`).  *Policy* violations mark a
schedule the paper's lemmas do not cover, but engines can still execute it —
:mod:`repro.verify` uses exactly this to split schedule mutants into
statically-detectable and semantic-only classes.

A clean report certifies comparator-network form, hence the 0-1 principle
(Section 2's reduction of average-case analysis to 0-1 matrices) applies.
This module never imports an executor; detection is entirely static.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Literal

from repro.core.schedule import (
    FORWARD,
    REVERSE,
    LineOp,
    Op,
    PairOp,
    Schedule,
    WrapOp,
    pair_count,
)
from repro.errors import ScheduleValidationError, UnsupportedMeshError

if TYPE_CHECKING:  # pragma: no cover - the certifier imports this module
    from repro.analysis.semantics.checker import SortednessCertificate

__all__ = [
    "SCHEDULE_RULES",
    "Severity",
    "ScheduleViolation",
    "ScheduleReport",
    "op_comparators",
    "check_schedule",
]

Severity = Literal["structural", "policy"]
Cell = tuple[int, int]
Comparator = tuple[Cell, Cell]

#: Rule catalog: ``rule id -> (severity, one-line summary)``.
SCHEDULE_RULES: dict[str, tuple[Severity, str]] = {
    "SCH001": ("structural", "comparators within a step must touch disjoint cells"),
    "SCH002": ("structural", "mesh dimensions violate the schedule's constraints"),
    "SCH003": ("structural", "op is not part of the oblivious comparator IR"),
    "SCH004": ("policy", "wrap-around wiring is reserved for the row-major family"),
    "SCH005": ("policy", "a row-major schedule needs wrap-around comparisons"),
    "SCH006": ("policy", "comparator direction inconsistent with the target order"),
    "SCH007": ("policy", "parity-restricted op lacks its complementary partner"),
    "SCH008": ("policy", "a line class never sees both transposition offsets"),
    "SCH009": ("policy", "an extended axis has no comparators at all"),
}


@dataclass(frozen=True)
class ScheduleViolation:
    """One diagnostic from the static verifier."""

    rule: str
    severity: Severity
    message: str
    step: int | None = None  # 1-based step in the cycle, None = cycle-level

    def describe(self) -> str:
        where = f" (step {self.step})" if self.step is not None else ""
        return f"{self.rule}[{self.severity}]{where}: {self.message}"


@dataclass
class ScheduleReport:
    """Everything :func:`check_schedule` established about one schedule."""

    name: str
    order: str
    rows: int
    cols: int
    depth: int
    comparators_per_cycle: int
    violations: list[ScheduleViolation] = field(default_factory=list)
    #: Sortedness certificate, attached by
    #: :func:`repro.analysis.semantics.certified_schedule_report` (or the
    #: compile-time peek); ``None`` when certification was not requested.
    semantics: "SortednessCertificate | None" = None

    @property
    def ok(self) -> bool:
        """True when no rule fired at all."""
        return not self.violations

    @property
    def structural(self) -> list[ScheduleViolation]:
        return [v for v in self.violations if v.severity == "structural"]

    @property
    def policy(self) -> list[ScheduleViolation]:
        return [v for v in self.violations if v.severity == "policy"]

    @property
    def oblivious(self) -> bool:
        """True when the schedule is a well-formed comparator network.

        Obliviousness is a *structural* property: every step is a fixed set
        of disjoint, in-bounds compare-exchange pairs.  It is what makes the
        0-1 principle (and with it the paper's Section 2 reduction)
        applicable, independently of the policy-level family rules.
        """
        return not self.structural

    def raise_for_structural(self) -> None:
        """Raise the historical exception type for the first structural
        violation (mesh constraints as :class:`UnsupportedMeshError`,
        malformed steps as :class:`ScheduleValidationError`)."""
        for violation in self.structural:
            if violation.rule == "SCH002":
                raise UnsupportedMeshError(violation.message)
        for violation in self.structural:
            raise ScheduleValidationError(violation.message)

    def describe(self) -> str:
        head = (
            f"schedule {self.name!r} on {self.rows}x{self.cols}: "
            f"{self.depth} step(s)/cycle, {self.comparators_per_cycle} "
            f"comparator(s)/cycle, oblivious={self.oblivious}"
        )
        if self.ok:
            body = f"{head}, no violations"
        else:
            lines = [f"{head}, {len(self.violations)} violation(s)"]
            lines += [f"  {v.describe()}" for v in self.violations]
            body = "\n".join(lines)
        if self.semantics is not None:
            body += f"\n  semantics: {self.semantics.describe()}"
        return body

    def to_json(self) -> dict[str, object]:
        """JSON-serializable form for ``repro analyze --json``."""
        return {
            "name": self.name,
            "order": self.order,
            "rows": self.rows,
            "cols": self.cols,
            "depth": self.depth,
            "comparators_per_cycle": self.comparators_per_cycle,
            "oblivious": self.oblivious,
            "violations": [
                {
                    "rule": v.rule,
                    "severity": v.severity,
                    "step": v.step,
                    "message": v.message,
                }
                for v in self.violations
            ],
            "semantics": None
            if self.semantics is None
            else self.semantics.to_json(),
        }


def _line_indices(lines: str, count: int) -> list[int]:
    """Plain-int clone of :func:`repro.core.schedule.line_indices`."""
    if lines == "all":
        return list(range(count))
    if lines == "odd":  # paper-odd: 1-based 1, 3, 5, ... = 0-based 0, 2, 4, ...
        return list(range(0, count, 2))
    return list(range(1, count, 2))


def op_comparators(op: Op, rows: int, cols: int) -> list[Comparator]:
    """Every ``(low_cell, high_cell)`` comparator ``op`` fires on the mesh.

    The rectangular generalization of
    :func:`repro.core.schedule.comparator_pairs`: a row op's pairing is
    governed by the column count, a column op's by the row count.
    """
    if isinstance(op, WrapOp):
        return [((h, cols - 1), (h + 1, 0)) for h in range(rows - 1)]
    if isinstance(op, PairOp):
        return [(op.low, op.high)]
    length = cols if op.axis == "row" else rows
    pool = rows if op.axis == "row" else cols
    pairs: list[Comparator] = []
    for line in _line_indices(op.lines, pool):
        for k in range(pair_count(op.offset, length)):
            a = op.offset + 2 * k
            b = a + 1
            if op.axis == "row":
                first, second = (line, a), (line, b)
            else:
                first, second = (a, line), (b, line)
            pairs.append((first, second) if op.direction == FORWARD else (second, first))
    return pairs


def _valid_line_op(op: LineOp) -> bool:
    return (
        op.axis in ("row", "col")
        and op.offset in (0, 1)
        and op.direction in (FORWARD, REVERSE)
        and op.lines in ("all", "odd", "even")
    )


def _check_structural(
    schedule: Schedule, rows: int, cols: int, out: list[ScheduleViolation]
) -> int:
    """SCH001-SCH003.  Returns the total comparator count per cycle."""
    # Linear arrays (1 x N / N x 1) are first-class meshes — the paper's
    # Section 1 substrate — so only meshes with fewer than two cells on
    # their longest axis are structurally out of bounds.
    if rows < 1 or cols < 1 or max(rows, cols) < 2:
        out.append(
            ScheduleViolation(
                "SCH002",
                "structural",
                f"mesh dimensions must span at least two cells, got {rows}x{cols}",
            )
        )
        return 0
    if schedule.requires_even_side and cols % 2 != 0:
        what = f"side {cols}" if rows == cols else f"{cols} columns"
        out.append(
            ScheduleViolation(
                "SCH002",
                "structural",
                f"schedule {schedule.name!r} requires an even column count "
                f"(the paper's sqrt(N) = 2n), got {what}",
            )
        )

    total = 0
    for index, step in enumerate(schedule.steps, start=1):
        seen: dict[Cell, int] = {}
        for op_index, op in enumerate(step.ops):
            if isinstance(op, LineOp) and not _valid_line_op(op):
                out.append(
                    ScheduleViolation(
                        "SCH003",
                        "structural",
                        f"op {op_index + 1} carries invalid fields: {op!r}",
                        step=index,
                    )
                )
                continue
            if isinstance(op, PairOp):
                oob = [
                    cell
                    for cell in (op.low, op.high)
                    if not (0 <= cell[0] < rows and 0 <= cell[1] < cols)
                ]
                if oob:
                    out.append(
                        ScheduleViolation(
                            "SCH002",
                            "structural",
                            f"op {op_index + 1} compares cell {oob[0]} outside "
                            f"the {rows}x{cols} mesh",
                            step=index,
                        )
                    )
                    continue
            if not isinstance(op, (LineOp, WrapOp, PairOp)):
                out.append(
                    ScheduleViolation(
                        "SCH003",
                        "structural",
                        f"op {op_index + 1} has unknown type "
                        f"{type(op).__name__}; obliviousness cannot be certified",
                        step=index,
                    )
                )
                continue
            comparators = op_comparators(op, rows, cols)
            total += len(comparators)
            for low, high in comparators:
                for cell in (low, high):
                    if cell in seen and seen[cell] != op_index:
                        out.append(
                            ScheduleViolation(
                                "SCH001",
                                "structural",
                                f"ops overlap at cell {cell} on the "
                                f"{rows}x{cols} mesh",
                                step=index,
                            )
                        )
                        break
                    if cell in seen:  # same op touching a cell twice
                        out.append(
                            ScheduleViolation(
                                "SCH001",
                                "structural",
                                f"op {op_index + 1} touches cell {cell} twice",
                                step=index,
                            )
                        )
                        break
                    seen[cell] = op_index
                else:
                    continue
                break
    return total


def _check_wrap_family(
    schedule: Schedule, rows: int, out: list[ScheduleViolation]
) -> None:
    """SCH004 + SCH005: wrap wiring belongs to, and is required by, row-major."""
    for index, step in enumerate(schedule.steps, start=1):
        if any(isinstance(op, WrapOp) for op in step.ops):
            if schedule.order != "row_major":
                out.append(
                    ScheduleViolation(
                        "SCH004",
                        "policy",
                        f"wrap-around comparisons in a {schedule.order!r}-order "
                        "schedule; the paper grants the extra wires only to "
                        "the row-major algorithms",
                        step=index,
                    )
                )
    # A single-row mesh has no row boundaries for values to cross, so the
    # extra wires argument is vacuous there (linear arrays sort row-major
    # by plain odd-even transposition).
    if rows > 1 and schedule.order == "row_major" and not schedule.uses_wraparound:
        out.append(
            ScheduleViolation(
                "SCH005",
                "policy",
                "row-major target order but no wrap-around comparisons in the "
                "cycle; Section 1: without the extra wires the smallest "
                "column values can never cross a row boundary",
            )
        )


def _check_directions(schedule: Schedule, out: list[ScheduleViolation]) -> None:
    """SCH006: direction/axis consistency per algorithm family."""
    for index, step in enumerate(schedule.steps, start=1):
        for op in step.ops:
            if not isinstance(op, LineOp) or not _valid_line_op(op):
                continue
            if op.axis == "col" and op.direction != FORWARD:
                out.append(
                    ScheduleViolation(
                        "SCH006",
                        "policy",
                        "reverse-bubble column step; every algorithm in the "
                        "paper sorts columns smaller-on-top",
                        step=index,
                    )
                )
            elif op.axis == "row" and schedule.order == "row_major":
                if op.direction != FORWARD:
                    out.append(
                        ScheduleViolation(
                            "SCH006",
                            "policy",
                            "reverse-bubble row step in a row-major schedule; "
                            "row-major order sorts every row ascending",
                            step=index,
                        )
                    )
            elif op.axis == "row" and schedule.order == "snake":
                if op.lines == "odd" and op.direction != FORWARD:
                    out.append(
                        ScheduleViolation(
                            "SCH006",
                            "policy",
                            "reverse-bubble step on paper-odd rows; snakelike "
                            "order sorts odd rows ascending (Definition 1)",
                            step=index,
                        )
                    )
                elif op.lines == "even" and op.direction != REVERSE:
                    out.append(
                        ScheduleViolation(
                            "SCH006",
                            "policy",
                            "ordinary bubble step on paper-even rows; snakelike "
                            "order sorts even rows descending (Definition 1)",
                            step=index,
                        )
                    )
                elif op.lines == "all":
                    out.append(
                        ScheduleViolation(
                            "SCH006",
                            "policy",
                            "uniform-direction row step across all rows in a "
                            "snake schedule; odd and even rows must sort in "
                            "opposite directions",
                            step=index,
                        )
                    )


def _check_parity_pairing(schedule: Schedule, out: list[ScheduleViolation]) -> None:
    """SCH007: an odd-lines op needs an even-lines partner in the same step."""
    complement = {"odd": "even", "even": "odd"}
    for index, step in enumerate(schedule.steps, start=1):
        line_ops = [op for op in step.ops if isinstance(op, LineOp) and _valid_line_op(op)]
        for op in line_ops:
            if op.lines == "all":
                continue
            partners = [
                other
                for other in line_ops
                if other is not op
                and other.axis == op.axis
                and other.lines in (complement[op.lines], "all")
            ]
            if not partners:
                out.append(
                    ScheduleViolation(
                        "SCH007",
                        "policy",
                        f"{op.lines} {op.axis}s step with no complementary "
                        f"{complement[op.lines]}-{op.axis}s op in the same step; "
                        "the paper's algorithms always advance both line "
                        "classes together",
                        step=index,
                    )
                )


def _check_offset_completeness(
    schedule: Schedule, rows: int, cols: int, out: list[ScheduleViolation]
) -> None:
    """SCH008 + SCH009: per-cycle transposition coverage.

    Every (axis, line-parity) class that participates at all must see both
    the odd (offset 0) and even (offset 1) transposition step somewhere in
    the cycle — odd-even transposition sort needs the alternation — and a
    mesh that extends along an axis needs comparators on that axis.  The
    even-offset requirement is waived when the line length is 2 (the even
    step is empty there by construction).
    """
    offsets: dict[tuple[str, str], set[int]] = {}
    pair_axes: set[str] = set()
    for step in schedule.steps:
        for op in step.ops:
            if isinstance(op, PairOp):
                pair_axes.add("row" if op.low[0] == op.high[0] else "col")
                # Adjacent pair comparators are single-wire transposition
                # steps, so they participate in the same offset-coverage
                # accounting as LineOps: a pair-built network whose line
                # class only ever fires one offset parity cannot sort.
                d_row = op.high[0] - op.low[0]
                d_col = op.high[1] - op.low[1]
                if d_row == 0 and abs(d_col) == 1:
                    cls = "odd" if op.low[0] % 2 == 0 else "even"
                    boundary = min(op.low[1], op.high[1])
                    offsets.setdefault(("row", cls), set()).add(boundary % 2)
                elif d_col == 0 and abs(d_row) == 1:
                    cls = "odd" if op.low[1] % 2 == 0 else "even"
                    boundary = min(op.low[0], op.high[0])
                    offsets.setdefault(("col", cls), set()).add(boundary % 2)
                continue
            if not isinstance(op, LineOp) or not _valid_line_op(op):
                continue
            classes = ("odd", "even") if op.lines == "all" else (op.lines,)
            for cls in classes:
                offsets.setdefault((op.axis, cls), set()).add(op.offset)

    axes_present = {axis for axis, _ in offsets} | pair_axes
    if schedule.uses_wraparound:
        axes_present.add("row")  # wrap comparisons move values horizontally
    if rows > 1 and "col" not in axes_present:
        out.append(
            ScheduleViolation(
                "SCH009",
                "policy",
                f"no column comparators in the cycle on a {rows}-row mesh",
            )
        )
    if cols > 1 and "row" not in axes_present:
        out.append(
            ScheduleViolation(
                "SCH009",
                "policy",
                f"no row comparators in the cycle on a {cols}-column mesh",
            )
        )

    for (axis, cls), seen in sorted(offsets.items()):
        length = cols if axis == "row" else rows
        needed = {0} if length <= 2 else {0, 1}
        for offset in sorted(needed - seen):
            kind = "odd" if offset == 0 else "even"
            out.append(
                ScheduleViolation(
                    "SCH008",
                    "policy",
                    f"{cls} {axis}s never perform an {kind} transposition "
                    f"step (offset {offset}) anywhere in the cycle; a "
                    "single-parity transposition network cannot sort",
                )
            )


def check_schedule(schedule: Schedule, rows: int, cols: int | None = None) -> ScheduleReport:
    """Statically verify ``schedule`` against a concrete ``rows x cols`` mesh.

    Never executes a comparator: every check is a pure function of the
    schedule IR and the mesh shape.  See the module docstring for the rule
    catalog and docs/ANALYSIS.md for the mapping to the paper's lemmas.
    """
    rows = int(rows)
    cols = rows if cols is None else int(cols)
    violations: list[ScheduleViolation] = []
    total = _check_structural(schedule, rows, cols, violations)
    _check_wrap_family(schedule, rows, violations)
    _check_directions(schedule, violations)
    _check_parity_pairing(schedule, violations)
    _check_offset_completeness(schedule, rows, cols, violations)
    return ScheduleReport(
        name=schedule.name,
        order=schedule.order,
        rows=rows,
        cols=cols,
        depth=len(schedule.steps),
        comparators_per_cycle=total,
        violations=violations,
    )
