"""Command-line entry point: ``python -m repro.analysis`` (``repro analyze``).

Examples::

    repro analyze                      # lint src/ + tests/, verify schedules
    repro analyze src/repro/verify     # lint one subtree
    repro analyze --list-rules         # print the rule catalog
    repro analyze --json               # machine-readable report on stdout
    repro analyze --json-out report.json --quiet

Exit status follows the package-wide contract: 0 when clean, 1 on any
finding or schedule violation, 2 on bad usage.

The schedule layer statically verifies every registered schedule family —
the five paper algorithms, the shearsort baseline, the linear odd-even
sort, and a seeded random-network instance — at representative sides; the
deliberately broken ``row_major_no_wrap`` demo is excluded — it exists to
violate SCH005.
"""

from __future__ import annotations

import argparse
import json
import sys
import textwrap
from pathlib import Path
from typing import Sequence

from repro.analysis.lint import LintReport, all_rules, run_lint
from repro.analysis.schedule_check import SCHEDULE_RULES, ScheduleReport, check_schedule
from repro.errors import AnalysisError
from repro.schedules import available_families, build_schedule, get_family, mesh_shape

__all__ = ["main", "default_paths", "schedule_reports"]

#: Sides the schedule verifier sweeps (odd sides skipped for the
#: ``requires_even_side`` algorithms, mirroring the paper's constraint).
DEFAULT_SIDES = (4, 5, 6)

#: Seed for the seedable families' representative instances (fixed so the
#: sweep verifies the same generated schedules on every run).
_GENERATED_SEED = 0


def default_paths() -> list[Path]:
    """``src`` and ``tests`` under the current directory, when present."""
    return [path for path in (Path("src"), Path("tests")) if path.is_dir()]


def schedule_reports(sides: Sequence[int] = DEFAULT_SIDES) -> list[ScheduleReport]:
    """Static reports for every registered (non-pathological) family.

    Sided families are rebuilt per side; seedable families contribute a
    fixed-seed representative instance, so generated schedules get the
    same static scrutiny as the hand-written ones.
    """
    reports = []
    for name in available_families():
        family = get_family(name)
        for side in sides:
            if family.requires_even_side and side % 2 != 0:
                continue
            schedule = build_schedule(name, side, seed=_GENERATED_SEED)
            reports.append(check_schedule(schedule, *mesh_shape(schedule, side)))
    return reports


def _print_rule_catalog() -> None:
    print("lint rules:")
    for rule_id, rule in all_rules().items():
        doc = textwrap.dedent(rule.__doc__ or "").strip()
        print(f"  {rule_id}  {rule.title}")
        for line in doc.splitlines():
            print(f"      {line}" if line else "")
    print("schedule rules:")
    for rule_id, (severity, summary) in SCHEDULE_RULES.items():
        print(f"  {rule_id}  [{severity}] {summary}")


def _to_json(
    lint: LintReport | None, schedules: list[ScheduleReport], ok: bool
) -> dict[str, object]:
    return {
        "version": 1,
        "ok": ok,
        "lint": lint.to_json() if lint is not None else None,
        "schedules": [report.to_json() for report in schedules],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description="Static analysis: domain lint rules + schedule verification.",
    )
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files/directories to lint (default: src/ and tests/ when present)",
    )
    parser.add_argument(
        "--rules", metavar="IDS", default=None,
        help="comma-separated lint rule IDs to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    parser.add_argument(
        "--no-lint", action="store_true", help="skip the source lint layer"
    )
    parser.add_argument(
        "--no-schedules", action="store_true", help="skip the schedule verifier"
    )
    parser.add_argument(
        "--sides", nargs="+", type=int, metavar="N", default=list(DEFAULT_SIDES),
        help=f"mesh sides for the schedule verifier (default: {DEFAULT_SIDES})",
    )
    parser.add_argument(
        "--json", action="store_true", help="print the report as JSON on stdout"
    )
    parser.add_argument(
        "--json-out", metavar="FILE", default=None,
        help="also write the JSON report to FILE",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="print only the final summary line"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_rule_catalog()
        return 0

    try:
        selected = None
        if args.rules is not None:
            catalog = all_rules()
            wanted = [r.strip() for r in args.rules.split(",") if r.strip()]
            unknown = [r for r in wanted if r not in catalog]
            if unknown:
                raise AnalysisError(
                    f"unknown lint rules {unknown}; known: {', '.join(catalog)}"
                )
            selected = [catalog[r] for r in wanted]

        lint_report: LintReport | None = None
        if not args.no_lint:
            paths = [Path(p) for p in args.paths] if args.paths else default_paths()
            if not paths:
                raise AnalysisError(
                    "no paths given and no src/ or tests/ directory here; "
                    "pass explicit paths"
                )
            lint_report = run_lint(paths, rules=selected)

        schedules: list[ScheduleReport] = []
        if not args.no_schedules:
            schedules = schedule_reports(tuple(args.sides))
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    lint_ok = lint_report.ok if lint_report is not None else True
    schedules_ok = all(report.ok for report in schedules)
    ok = lint_ok and schedules_ok

    if args.json:
        print(json.dumps(_to_json(lint_report, schedules, ok), indent=2))
    if args.json_out:
        out = Path(args.json_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(_to_json(lint_report, schedules, ok), indent=2))
        if not args.json:
            print(f"wrote {out}")

    if not args.json:
        if lint_report is not None and not (args.quiet and lint_ok):
            print(lint_report.describe())
        for report in schedules:
            if not report.ok or not args.quiet:
                print(report.describe())
        n_sched_violations = sum(len(r.violations) for r in schedules)
        print(
            f"{'PASS' if ok else 'FAIL'}: "
            f"{len(lint_report.findings) if lint_report else 0} lint finding(s), "
            f"{n_sched_violations} schedule violation(s) "
            f"across {len(schedules)} schedule report(s)"
        )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
