"""Command-line entry point: ``python -m repro.analysis`` (``repro analyze``).

Examples::

    repro analyze                      # lint src/ + tests/, verify schedules
    repro analyze src/repro/verify     # lint one subtree
    repro analyze --list-rules         # print the rule catalog
    repro analyze --json               # machine-readable report on stdout
    repro analyze --json-out report.json --quiet
    repro analyze --family "random_network[side=8,seed=7]" --no-lint
    repro analyze --certify --sides 2 4      # 0-1 sortedness certification
    repro analyze --certify --family row_major_no_wrap --sides 4

Exit status follows the package-wide contract: 0 when clean, 1 on any
finding or schedule violation, 2 on bad usage.

The schedule layer statically verifies every registered schedule family —
the five paper algorithms, the shearsort baseline, the linear odd-even
sort, and a seeded random-network instance — at representative sides; the
deliberately broken ``row_major_no_wrap`` demo is excluded from sweeps
(it exists to violate SCH005) but can be targeted with ``--family``.
``--certify`` additionally runs the 0-1 sortedness certifier on every
report: a REFUTED schedule, or a family whose declared
``certified_sides`` claim fails, is a finding.
"""

from __future__ import annotations

import argparse
import json
import sys
import textwrap
from pathlib import Path
from typing import Sequence

from repro.analysis.lint import LintReport, all_rules, run_lint
from repro.analysis.schedule_check import SCHEDULE_RULES, ScheduleReport, check_schedule
from repro.analysis.semantics import CertificateStore, certify_sortedness
from repro.errors import AnalysisError, DimensionError, UnknownScheduleError
from repro.schedules import (
    available_families,
    build_schedule,
    get_family,
    mesh_shape,
    parse_spec,
)

__all__ = ["main", "default_paths", "schedule_reports", "semantics_findings"]

#: Sides the schedule verifier sweeps (odd sides skipped for the
#: ``requires_even_side`` algorithms, mirroring the paper's constraint).
DEFAULT_SIDES = (4, 5, 6)

#: Seed for the seedable families' representative instances (fixed so the
#: sweep verifies the same generated schedules on every run).
_GENERATED_SEED = 0


def default_paths() -> list[Path]:
    """``src`` and ``tests`` under the current directory, when present."""
    return [path for path in (Path("src"), Path("tests")) if path.is_dir()]


def schedule_reports(
    sides: Sequence[int] = DEFAULT_SIDES,
    *,
    family: str | None = None,
    certify: bool = False,
    certificate_store: CertificateStore | None = None,
) -> list[ScheduleReport]:
    """Static reports for registered families (or one targeted ``family``).

    Sided families are rebuilt per side; seedable families contribute a
    fixed-seed representative instance, so generated schedules get the
    same static scrutiny as the hand-written ones.  ``family`` accepts a
    bare name or a canonical ``"family[k=v,...]"`` spec string — a spec
    that pins ``side`` yields exactly one report for that instance
    (pathological families are allowed when targeted explicitly).  With
    ``certify``, every report gains a sortedness certificate in its
    ``semantics`` section.
    """
    if family is not None:
        base, params = parse_spec(family)
        get_family(base)  # unknown families fail fast with the catalog
        names = [family]
        chosen_sides: Sequence[int] = (
            (params["side"],) if "side" in params else sides
        )
    else:
        names = list(available_families())
        chosen_sides = sides

    reports = []
    for name in names:
        base, params = parse_spec(name)
        fam = get_family(base)
        for side in chosen_sides:
            if fam.requires_even_side and side % 2 != 0:
                continue
            schedule = build_schedule(name, side, seed=_GENERATED_SEED)
            rows, cols = mesh_shape(schedule, side)
            report = check_schedule(schedule, rows, cols)
            if certify:
                report.semantics = certify_sortedness(
                    schedule, rows, cols, report=report, store=certificate_store
                )
            reports.append(report)
    return reports


def semantics_findings(reports: Sequence[ScheduleReport]) -> list[str]:
    """Certification findings that should fail ``repro analyze --certify``.

    Two kinds gate: a statically **REFUTED** schedule (it can never sort,
    so every dynamic layer built on it is wasted work), and a family
    whose declared ``certified_sides`` claim did not come back CERTIFIED
    on an exhaustive check (the registry is advertising a guarantee the
    certifier cannot reproduce).  UNKNOWN verdicts — sampled meshes,
    exhausted budgets — are reported but do not gate.
    """
    findings: list[str] = []
    for report in reports:
        cert = report.semantics
        if cert is None:
            continue
        where = f"{report.name!r} on {report.rows}x{report.cols}"
        if cert.refuted:
            findings.append(f"{where}: statically REFUTED — {cert.describe()}")
            continue
        try:
            base, _ = parse_spec(report.name)
            fam = get_family(base)
        except UnknownScheduleError:  # explicit Schedule outside the registry
            continue
        side = report.cols if report.rows == 1 else report.rows
        claimed = side in fam.certified_sides
        if claimed and cert.mode == "exhaustive" and not cert.certified:
            findings.append(
                f"{where}: declared in certified_sides but the exhaustive "
                f"0-1 check returned {cert.verdict} ({cert.reason})"
            )
    return findings


def _print_rule_catalog() -> None:
    print("lint rules:")
    for rule_id, rule in all_rules().items():
        doc = textwrap.dedent(rule.__doc__ or "").strip()
        print(f"  {rule_id}  {rule.title}")
        for line in doc.splitlines():
            print(f"      {line}" if line else "")
    print("schedule rules:")
    for rule_id, (severity, summary) in SCHEDULE_RULES.items():
        print(f"  {rule_id}  [{severity}] {summary}")


def _to_json(
    lint: LintReport | None,
    schedules: list[ScheduleReport],
    ok: bool,
    findings: list[str] | None,
) -> dict[str, object]:
    doc: dict[str, object] = {
        "version": 1,
        "ok": ok,
        "lint": lint.to_json() if lint is not None else None,
        "schedules": [report.to_json() for report in schedules],
    }
    if findings is not None:
        doc["semantics_findings"] = findings
    return doc


def _certified_sides_lines() -> list[str]:
    lines = ["declared certified sides:"]
    for name in available_families(include_pathological=True):
        fam = get_family(name)
        sides = ", ".join(str(s) for s in fam.certified_sides) or "-"
        lines.append(f"  {name}: {sides}")
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description="Static analysis: domain lint rules + schedule verification.",
    )
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files/directories to lint (default: src/ and tests/ when present)",
    )
    parser.add_argument(
        "--rules", metavar="IDS", default=None,
        help="comma-separated lint rule IDs to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    parser.add_argument(
        "--no-lint", action="store_true", help="skip the source lint layer"
    )
    parser.add_argument(
        "--no-schedules", action="store_true", help="skip the schedule verifier"
    )
    parser.add_argument(
        "--sides", nargs="+", type=int, metavar="N", default=list(DEFAULT_SIDES),
        help=f"mesh sides for the schedule verifier (default: {DEFAULT_SIDES})",
    )
    parser.add_argument(
        "--family", metavar="SPEC", default=None,
        help="verify one family only; accepts canonical 'family[k=v,...]' "
        "spec strings (a spec pinning side= yields exactly that instance)",
    )
    parser.add_argument(
        "--certify", action="store_true",
        help="run the 0-1 sortedness certifier on every schedule report "
        "(REFUTED schedules and failed certified_sides claims are findings)",
    )
    parser.add_argument(
        "--certificate-dir", metavar="DIR", default=None,
        help="persist certificates content-addressed under DIR",
    )
    parser.add_argument(
        "--json", action="store_true", help="print the report as JSON on stdout"
    )
    parser.add_argument(
        "--json-out", metavar="FILE", default=None,
        help="also write the JSON report to FILE",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="print only the final summary line"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_rule_catalog()
        return 0

    try:
        if args.no_schedules and (args.family or args.certify):
            raise AnalysisError(
                "--family/--certify verify schedules; drop --no-schedules"
            )
        selected = None
        if args.rules is not None:
            catalog = all_rules()
            wanted = [r.strip() for r in args.rules.split(",") if r.strip()]
            unknown = [r for r in wanted if r not in catalog]
            if unknown:
                raise AnalysisError(
                    f"unknown lint rules {unknown}; known: {', '.join(catalog)}"
                )
            selected = [catalog[r] for r in wanted]

        lint_report: LintReport | None = None
        if not args.no_lint:
            paths = [Path(p) for p in args.paths] if args.paths else default_paths()
            if not paths:
                raise AnalysisError(
                    "no paths given and no src/ or tests/ directory here; "
                    "pass explicit paths"
                )
            lint_report = run_lint(paths, rules=selected)

        schedules: list[ScheduleReport] = []
        if not args.no_schedules:
            store = (
                CertificateStore(args.certificate_dir)
                if args.certificate_dir
                else None
            )
            schedules = schedule_reports(
                tuple(args.sides),
                family=args.family,
                certify=args.certify,
                certificate_store=store,
            )
    except (AnalysisError, UnknownScheduleError, DimensionError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    lint_ok = lint_report.ok if lint_report is not None else True
    schedules_ok = all(report.ok for report in schedules)
    findings = semantics_findings(schedules) if args.certify else None
    ok = lint_ok and schedules_ok and not findings

    if args.json:
        print(json.dumps(_to_json(lint_report, schedules, ok, findings), indent=2))
    if args.json_out:
        out = Path(args.json_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(
            json.dumps(_to_json(lint_report, schedules, ok, findings), indent=2)
        )
        if not args.json:
            print(f"wrote {out}")

    if not args.json:
        if lint_report is not None and not (args.quiet and lint_ok):
            print(lint_report.describe())
        for report in schedules:
            if not report.ok or not args.quiet:
                print(report.describe())
        if args.certify:
            if not args.quiet:
                for line in _certified_sides_lines():
                    print(line)
            for finding in findings or []:
                print(f"SEMANTICS: {finding}")
        n_sched_violations = sum(len(r.violations) for r in schedules)
        summary = (
            f"{'PASS' if ok else 'FAIL'}: "
            f"{len(lint_report.findings) if lint_report else 0} lint finding(s), "
            f"{n_sched_violations} schedule violation(s) "
            f"across {len(schedules)} schedule report(s)"
        )
        if args.certify:
            certs = [r.semantics for r in schedules if r.semantics is not None]
            counts = {
                verdict: sum(1 for c in certs if c.verdict == verdict)
                for verdict in ("CERTIFIED", "REFUTED", "UNKNOWN")
            }
            summary += (
                f", certificates: {counts['CERTIFIED']} certified / "
                f"{counts['REFUTED']} refuted / {counts['UNKNOWN']} unknown"
            )
        print(summary)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
