"""Static sortedness certification — the 0-1-principle model checker.

Where :mod:`repro.analysis.schedule_check` certifies comparator-network
*form* (SCH001–SCH009), this package certifies *function*: does the
schedule actually sort?  :func:`certify_sortedness` decides CERTIFIED /
REFUTED / UNKNOWN by running 0-1 batches through a pure NumPy
comparator-IR interpreter — exhaustively for meshes up to
:data:`~repro.analysis.semantics.checker.EXHAUSTIVE_CELL_LIMIT` cells,
by seeded stratified sampling beyond (which never answers a false
CERTIFIED).  Certificates carry the minimal certified step bound or a
minimal 0-1 counterexample, and are content-addressed by schedule value
identity so re-analysis is a cache hit with zero interpreter steps.

Like everything under :mod:`repro.analysis`, this package never imports
an executor — the import-graph test in
``tests/analysis/test_mutant_classification.py`` enforces it.  See
docs/ANALYSIS.md ("Sortedness certification") for the decision table.
"""

from __future__ import annotations

from repro.analysis.semantics.cache import (
    CertificateStore,
    SemanticsCacheInfo,
    certificate_key,
    schedule_digest,
    semantics_cache_clear,
    semantics_cache_info,
)
from repro.analysis.semantics.checker import (
    EXHAUSTIVE_CELL_LIMIT,
    SortednessCertificate,
    certified_schedule_report,
    certify_sortedness,
    peek_certificate,
    step_budget,
)

__all__ = [
    "EXHAUSTIVE_CELL_LIMIT",
    "SortednessCertificate",
    "certify_sortedness",
    "certified_schedule_report",
    "peek_certificate",
    "step_budget",
    "CertificateStore",
    "SemanticsCacheInfo",
    "schedule_digest",
    "certificate_key",
    "semantics_cache_info",
    "semantics_cache_clear",
]
