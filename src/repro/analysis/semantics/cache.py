"""Content-addressed certificate cache: memory LRU + optional disk store.

Certificates are expensive to compute (an exhaustive 0-1 sweep interprets
up to ``2^16`` matrices through every comparator step) and pure functions
of the **schedule value** and mesh shape, so they are cached aggressively:

* :func:`schedule_digest` fingerprints a schedule by *value identity* —
  the comparator IR, target order, and mesh shape, with the display
  ``name`` deliberately excluded.  Two structurally identical schedules
  (a rebuilt spec instance, a mutant that happens to reproduce the
  original steps) share one certificate.
* An in-process LRU (:func:`cache_get` / :func:`cache_put`) makes
  re-analysis within one process a pure lookup; the hit/miss counters and
  the global interpreter-step counter surface through
  :func:`semantics_cache_info`, so tests can assert that a repeated
  certification runs **zero** interpreter steps.
* :class:`CertificateStore` persists certificates on disk with the result
  store's idioms (PR 8): sharded ``<key[:2]>/<key>.json`` layout, atomic
  tmp-file + ``os.replace`` writes, an embedded integrity digest verified
  on read, and quarantine-as-miss for corrupt payloads — a bad file is
  renamed aside and recomputed, never trusted and never fatal.

This module is part of :mod:`repro.analysis` and therefore executor-free:
it imports nothing from the backends, engines, or mesh layers.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING, Any, NamedTuple

from repro.core.schedule import LineOp, Op, PairOp, Schedule, WrapOp

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (checker imports us)
    from repro.analysis.semantics.checker import SortednessCertificate

__all__ = [
    "schedule_digest",
    "certificate_key",
    "CertificateStore",
    "SemanticsCacheInfo",
    "semantics_cache_info",
    "semantics_cache_clear",
]

_DIGEST_SIZE = 16  # 128-bit collision resistance, matching the result store


def _op_doc(op: Op) -> list[Any]:
    """A canonical JSON-stable encoding of one comparator-IR op."""
    if isinstance(op, WrapOp):
        return ["wrap"]
    if isinstance(op, PairOp):
        return ["pair", list(op.low), list(op.high)]
    if isinstance(op, LineOp):
        return ["line", op.axis, int(op.offset), int(op.direction), op.lines]
    # Unknown op types still digest deterministically; the checker reports
    # them as non-oblivious (SCH003) rather than failing here.
    return ["opaque", type(op).__name__, repr(op)]


def schedule_digest(schedule: Schedule, rows: int, cols: int) -> str:
    """Fingerprint ``schedule`` on a ``rows x cols`` mesh by value identity.

    The digest covers exactly what the 0-1 semantics depend on: the step
    list (as comparator IR), the target order, the even-side requirement,
    and the mesh shape.  The display name and metadata are excluded — a
    renamed or rebuilt schedule with identical steps is the same network.
    """
    doc = {
        "order": schedule.order,
        "requires_even_side": bool(schedule.requires_even_side),
        "rows": int(rows),
        "cols": int(cols),
        "steps": [[_op_doc(op) for op in step.ops] for step in schedule.steps],
    }
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(payload.encode(), digest_size=_DIGEST_SIZE).hexdigest()


def certificate_key(digest: str, params: dict[str, Any]) -> str:
    """The cache key for one ``(schedule value, checking mode)`` pair.

    ``params`` pins everything beyond the schedule that can change the
    answer — the checking mode and, for sampled runs, the sample plan —
    so an exhaustive certificate never aliases a sampled one.
    """
    payload = json.dumps(params, sort_keys=True, separators=(",", ":"))
    suffix = hashlib.blake2b(payload.encode(), digest_size=8).hexdigest()
    return f"{digest}-{suffix}"


# ---------------------------------------------------------------------------
# In-process LRU + metrics.
# ---------------------------------------------------------------------------


class SemanticsCacheInfo(NamedTuple):
    """Snapshot of the certificate cache and interpreter-work counters."""

    hits: int
    misses: int
    maxsize: int
    currsize: int
    interpreter_steps: int  # total batch steps executed since last clear


_CACHE_MAXSIZE = 256
_cache: "OrderedDict[str, SortednessCertificate]" = OrderedDict()
_lock = threading.Lock()
_hits = 0
_misses = 0
_interpreter_steps = 0


def cache_get(key: str) -> "SortednessCertificate | None":
    """Look ``key`` up in the in-process cache, counting a hit or miss."""
    global _hits, _misses
    with _lock:
        cert = _cache.get(key)
        if cert is not None:
            _cache.move_to_end(key)
            _hits += 1
            return cert
        _misses += 1
        return None


def cache_peek(key: str) -> "SortednessCertificate | None":
    """Like :func:`cache_get` but without touching the hit/miss counters —
    the compile-time hook peeks for a free certificate and must not skew
    the statistics tests assert on."""
    with _lock:
        return _cache.get(key)


def cache_put(key: str, certificate: "SortednessCertificate") -> None:
    """Insert ``certificate`` under ``key``, evicting least-recently-used."""
    with _lock:
        _cache[key] = certificate
        _cache.move_to_end(key)
        while len(_cache) > _CACHE_MAXSIZE:
            _cache.popitem(last=False)


def add_interpreter_steps(count: int) -> None:
    """Record ``count`` executed batch steps (the certifier's work metric)."""
    global _interpreter_steps
    with _lock:
        _interpreter_steps += int(count)


def semantics_cache_info() -> SemanticsCacheInfo:
    """Hit/miss/size statistics plus the interpreter-step counter."""
    with _lock:
        return SemanticsCacheInfo(
            _hits, _misses, _CACHE_MAXSIZE, len(_cache), _interpreter_steps
        )


def semantics_cache_clear() -> None:
    """Drop every cached certificate and reset all counters."""
    global _hits, _misses, _interpreter_steps
    with _lock:
        _cache.clear()
        _hits = 0
        _misses = 0
        _interpreter_steps = 0


# ---------------------------------------------------------------------------
# Disk store.
# ---------------------------------------------------------------------------


def _payload_integrity(payload: dict[str, Any]) -> str:
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(body.encode(), digest_size=_DIGEST_SIZE).hexdigest()


class CertificateStore:
    """Durable, content-addressed certificate storage under one directory.

    Layout mirrors the local result store: ``<root>/<key[:2]>/<key>.json``,
    each file a JSON document ``{"integrity": ..., "certificate": ...}``.
    Writes are atomic (tmp file + ``os.replace``); reads verify the
    integrity digest and quarantine anything that fails — a corrupt or
    truncated file becomes ``<name>.quarantine`` and the lookup reports a
    miss, so the certifier recomputes instead of trusting bad bytes.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        """The stored certificate payload for ``key``, or ``None``."""
        path = self.path_for(key)
        try:
            doc = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError):
            self._quarantine(path)
            return None
        payload = doc.get("certificate") if isinstance(doc, dict) else None
        if not isinstance(payload, dict) or doc.get(
            "integrity"
        ) != _payload_integrity(payload):
            self._quarantine(path)
            return None
        return payload

    def put(self, key: str, payload: dict[str, Any]) -> Path:
        """Persist ``payload`` under ``key`` atomically; returns the path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {"integrity": _payload_integrity(payload), "certificate": payload}
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        tmp.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)
        return path

    def keys(self) -> list[str]:
        """Every stored certificate key (sorted, quarantined files excluded)."""
        if not self.root.is_dir():
            return []
        return sorted(path.stem for path in self.root.glob("*/*.json"))

    def _quarantine(self, path: Path) -> None:
        try:
            os.replace(path, path.with_name(f"{path.name}.quarantine"))
        except OSError:  # pragma: no cover - racing cleanup is fine
            pass
