"""Static sortedness certification by 0-1-principle model checking.

The paper's Section 2 reduction is the whole foundation of its
average-case analysis: an **oblivious** comparison-exchange procedure
sorts every input iff it sorts every 0-1 input.  The argument is the
classic monotone-threshold one — ``min``/``max`` commute with
thresholding, so for any input ``x``, any level ``z``, and any step
``t``, the state of ``threshold_z(x)`` after ``t`` steps equals
``threshold_z`` of the state of ``x`` after ``t`` steps.  A grid is in
target order iff all of its threshold projections are, which yields the
two directions this module relies on:

* if **all** 0-1 matrices are simultaneously in target order after ``T``
  steps, then *every* input is in target order after ``T`` steps —
  ``T`` is a **certified step bound** (``CERTIFIED``);
* a 0-1 matrix that provably *never* reaches target order is a concrete
  counterexample input the executor could never finish (``REFUTED``).

:func:`certify_sortedness` decides this **without importing an
executor**: the comparator IR is interpreted directly with pure NumPy
``min``/``max`` on one ``(batch, cells)`` int8 array.

Decision procedure
------------------
For meshes up to :data:`EXHAUSTIVE_CELL_LIMIT` cells (sides 2–4, linear
arrays up to ``1 x 16``) the batch is *all* ``2^(rows·cols)`` 0-1
matrices — the verdict is exact.  Beyond that a seeded, stratified 0-1
sample (one stratum per zero-count) can only answer ``REFUTED`` (with a
witness) or ``UNKNOWN`` — never a false ``CERTIFIED``.

The interpreter runs at most :func:`step_budget` steps — a pure mirror
of the driver cap :func:`repro.backends.base.resolve_step_cap` (kept in
that layer because this one must stay executor-free; a unit test pins
the two formulas to each other).  A certified bound therefore never
exceeds the driver's cap: a ``CERTIFIED`` schedule cannot time out under
``run_sort``.  Within the budget, batch states are fingerprinted at
every cycle boundary; a recurrence proves the dynamics periodic, at
which point any never-sorted input is a genuine *never sorts* witness
(the fixpoint/periodicity pre-pass — broken schedules typically reach a
fixed point within a few cycles, long before the budget).

Witness minimality: in exhaustive mode the reported counterexample is
the global minimum over all never-sorting 0-1 matrices (fewest ones,
then lexicographically least), so no smaller witness exists; sampled
witnesses are greedily shrunk by 1-bit flips until locally minimal.

Certificates are cached by schedule *value* identity
(:mod:`repro.analysis.semantics.cache`): re-certifying the same network
is a pure lookup with zero interpreter steps.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Literal

import numpy as np

from repro.analysis.schedule_check import (
    ScheduleReport,
    check_schedule,
    op_comparators,
)
from repro.analysis.semantics.cache import (
    CertificateStore,
    add_interpreter_steps,
    cache_get,
    cache_peek,
    cache_put,
    certificate_key,
    schedule_digest,
)
from repro.core.schedule import Schedule
from repro.errors import AnalysisError
from repro.randomness import as_generator, as_seed_sequence

__all__ = [
    "EXHAUSTIVE_CELL_LIMIT",
    "SortednessCertificate",
    "certify_sortedness",
    "certified_schedule_report",
    "peek_certificate",
    "step_budget",
]

Verdict = Literal["CERTIFIED", "REFUTED", "UNKNOWN"]

#: Largest mesh (in cells) checked exhaustively: ``2^16`` 0-1 matrices is
#: one 65536 x 16 int8 batch (~1 MiB) — covers sides 2–4 and ``1 x N``
#: linear arrays up to ``N = 16``.
EXHAUSTIVE_CELL_LIMIT = 16

_MODES = ("auto", "exhaustive", "sampled")


def step_budget(schedule: Schedule, rows: int, cols: int) -> int:
    """Interpreter step budget: a pure mirror of ``resolve_step_cap``.

    ``8·N + 8·(rows+cols) + 64`` generously over-covers the paper's
    Θ(√N)–Θ(√N log N) bounds, loosened by a schedule's
    ``step_cap_hint`` metadata exactly like the driver cap.  The formula
    is duplicated (not imported) because :mod:`repro.analysis` must stay
    executor-free; ``tests/analysis/test_semantics.py`` pins it to
    :func:`repro.backends.base.resolve_step_cap`.
    """
    cells = rows * cols
    base = 8 * cells + 8 * (rows + cols) + 64
    hint = schedule.metadata.get("step_cap_hint")
    return max(base, int(hint)) if hint is not None else base


@dataclass(frozen=True)
class SortednessCertificate:
    """The certifier's verdict on one ``(schedule, mesh)`` pair.

    ``CERTIFIED`` carries the minimal simultaneous step bound
    (:attr:`step_bound`); ``REFUTED`` carries a minimal 0-1 counterexample
    (:attr:`witness`, ``rows x cols`` nested tuples); ``UNKNOWN`` carries
    the reason the checker could not decide (sampling, budget, or a
    non-oblivious schedule the 0-1 principle does not apply to).
    """

    verdict: Verdict
    name: str
    order: str
    rows: int
    cols: int
    mode: Literal["exhaustive", "sampled"]
    digest: str
    inputs_checked: int
    cycle_len: int
    budget: int
    step_bound: int | None = None
    witness: tuple[tuple[int, ...], ...] | None = None
    witness_ones: int | None = None
    reason: str = ""
    sample_seed: int | None = None

    @property
    def certified(self) -> bool:
        return self.verdict == "CERTIFIED"

    @property
    def refuted(self) -> bool:
        return self.verdict == "REFUTED"

    @property
    def witness_array(self) -> "np.ndarray | None":
        """The counterexample as a ``rows x cols`` int array (or ``None``)."""
        if self.witness is None:
            return None
        return np.asarray(self.witness, dtype=np.int64)

    def describe(self) -> str:
        head = (
            f"{self.verdict} [{self.mode}, {self.inputs_checked} 0-1 input(s)]"
        )
        if self.certified:
            return f"{head}: sorts every input within {self.step_bound} step(s)"
        if self.refuted:
            rows = ["".join(str(v) for v in row) for row in self.witness or ()]
            return f"{head}: witness {'/'.join(rows)} never sorts"
        return f"{head}: {self.reason}"

    def to_json(self) -> dict[str, Any]:
        """JSON-serializable form (inverse of :meth:`from_json`)."""
        return {
            "verdict": self.verdict,
            "name": self.name,
            "order": self.order,
            "rows": self.rows,
            "cols": self.cols,
            "mode": self.mode,
            "digest": self.digest,
            "inputs_checked": self.inputs_checked,
            "cycle_len": self.cycle_len,
            "budget": self.budget,
            "step_bound": self.step_bound,
            "witness": [list(row) for row in self.witness]
            if self.witness is not None
            else None,
            "witness_ones": self.witness_ones,
            "reason": self.reason,
            "sample_seed": self.sample_seed,
        }

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "SortednessCertificate":
        witness = payload.get("witness")
        return cls(
            verdict=payload["verdict"],
            name=str(payload["name"]),
            order=str(payload["order"]),
            rows=int(payload["rows"]),
            cols=int(payload["cols"]),
            mode=payload["mode"],
            digest=str(payload["digest"]),
            inputs_checked=int(payload["inputs_checked"]),
            cycle_len=int(payload["cycle_len"]),
            budget=int(payload["budget"]),
            step_bound=None
            if payload.get("step_bound") is None
            else int(payload["step_bound"]),
            witness=None
            if witness is None
            else tuple(tuple(int(v) for v in row) for row in witness),
            witness_ones=None
            if payload.get("witness_ones") is None
            else int(payload["witness_ones"]),
            reason=str(payload.get("reason", "")),
            sample_seed=None
            if payload.get("sample_seed") is None
            else int(payload["sample_seed"]),
        )


# ---------------------------------------------------------------------------
# The pure comparator-IR interpreter.
# ---------------------------------------------------------------------------


def _order_permutation(order: str, rows: int, cols: int) -> np.ndarray:
    """Flat-cell permutation that linearizes the mesh in target order."""
    idx = np.arange(rows * cols).reshape(rows, cols)
    if order == "snake":
        idx = idx.copy()
        idx[1::2] = idx[1::2, ::-1]  # paper-even rows read right-to-left
    return idx.reshape(-1)


def _step_programs(
    schedule: Schedule, rows: int, cols: int
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Per step, the flat ``(low, high)`` index arrays of its comparators."""
    programs: list[tuple[np.ndarray, np.ndarray]] = []
    for step in schedule.steps:
        lows: list[int] = []
        highs: list[int] = []
        for op in step.ops:
            for (lr, lc), (hr, hc) in op_comparators(op, rows, cols):
                lows.append(lr * cols + lc)
                highs.append(hr * cols + hc)
        programs.append(
            (np.asarray(lows, dtype=np.intp), np.asarray(highs, dtype=np.intp))
        )
    return programs


def _sorted_mask(state: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """Which batch rows are in target order (nondecreasing along ``perm``)."""
    seq = state[:, perm]
    return np.all(seq[:, 1:] >= seq[:, :-1], axis=1)


@dataclass
class _BatchOutcome:
    """What one budgeted batch run established."""

    all_sorted_at: int | None  # minimal t with every input sorted at once
    ever_sorted: np.ndarray  # per input: sorted at *some* step <= budget
    periodic: bool  # cycle-boundary state recurrence proven
    steps_run: int


def _run_batch(
    programs: list[tuple[np.ndarray, np.ndarray]],
    perm: np.ndarray,
    state: np.ndarray,
    budget: int,
) -> _BatchOutcome:
    """Interpret the cycle on ``state`` in place until every input is
    simultaneously sorted, the dynamics provably repeat, or ``budget``
    steps have run — whichever comes first."""
    mask = _sorted_mask(state, perm)
    ever = mask.copy()
    if bool(mask.all()):
        return _BatchOutcome(0, ever, False, 0)
    seen: set[bytes] = set()
    seen.add(hashlib.blake2b(state.tobytes()).digest())
    t = 0
    while t < budget:
        for low, high in programs:
            t += 1
            if low.size:
                a = state[:, low]
                b = state[:, high]
                state[:, low] = np.minimum(a, b)
                state[:, high] = np.maximum(a, b)
            mask = _sorted_mask(state, perm)
            ever |= mask
            if bool(mask.all()):
                return _BatchOutcome(t, ever, False, t)
            if t >= budget:
                break
        key = hashlib.blake2b(state.tobytes()).digest()
        if key in seen:
            return _BatchOutcome(None, ever, True, t)
        seen.add(key)
    return _BatchOutcome(None, ever, False, t)


def _exhaustive_inputs(cells: int) -> np.ndarray:
    """All ``2^cells`` 0-1 assignments as one ``(2^cells, cells)`` batch."""
    codes = np.arange(1 << cells, dtype=np.uint32)[:, None]
    return ((codes >> np.arange(cells, dtype=np.uint32)) & 1).astype(np.int8)


def _stratified_inputs(
    cells: int, samples_per_stratum: int, max_strata: int, seed: int
) -> np.ndarray:
    """A seeded 0-1 sample stratified by zero-count.

    Constant (all-0 / all-1) inputs are trivially sorted, so strata cover
    zero-counts ``1 .. cells-1``; when there are more strata than
    ``max_strata`` an evenly spaced subset (always including ``1``,
    ``cells // 2``, and ``cells - 1``) is drawn.
    """
    strata = list(range(1, cells))
    if len(strata) > max_strata:
        picks = np.linspace(1, cells - 1, num=max_strata)
        chosen = sorted({int(round(z)) for z in picks} | {1, cells // 2, cells - 1})
        strata = chosen
    rows: list[np.ndarray] = []
    for zeros in strata:
        rng = as_generator(as_seed_sequence((int(seed), cells, zeros)))
        for _ in range(samples_per_stratum):
            vec = np.ones(cells, dtype=np.int8)
            vec[:zeros] = 0
            rows.append(rng.permutation(vec))
    return np.unique(np.stack(rows), axis=0)


def _never_sorts(
    vec: np.ndarray,
    programs: list[tuple[np.ndarray, np.ndarray]],
    perm: np.ndarray,
    budget: int,
) -> bool:
    """True only when ``vec`` *provably* never sorts (periodicity proof)."""
    outcome = _run_batch(programs, perm, vec[None, :].copy(), budget)
    add_interpreter_steps(outcome.steps_run)
    return outcome.periodic and not bool(outcome.ever_sorted[0])


def _minimize_witness(
    vec: np.ndarray,
    programs: list[tuple[np.ndarray, np.ndarray]],
    perm: np.ndarray,
    budget: int,
) -> np.ndarray:
    """Greedy 1-bit shrink: flip ones to zeros while the refutation holds."""
    current = vec.copy()
    improved = True
    while improved:
        improved = False
        for index in np.nonzero(current == 1)[0]:
            candidate = current.copy()
            candidate[index] = 0
            if _never_sorts(candidate, programs, perm, budget):
                current = candidate
                improved = True
    return current


def _pick_minimal(inputs: np.ndarray, never: np.ndarray) -> np.ndarray:
    """The canonical minimal witness: fewest ones, then lexicographically
    least (reading the flat row-major bit string as a number)."""
    candidates = inputs[never]
    ones = candidates.sum(axis=1)
    weights = 1 << np.arange(candidates.shape[1])[::-1]
    lex = candidates @ weights
    order = np.lexsort((lex, ones))
    return candidates[order[0]]


# ---------------------------------------------------------------------------
# The decision procedure.
# ---------------------------------------------------------------------------


def certify_sortedness(
    schedule: Schedule,
    rows: int,
    cols: int | None = None,
    *,
    mode: str = "auto",
    sample_seed: int = 0,
    samples_per_stratum: int = 8,
    max_strata: int = 16,
    report: ScheduleReport | None = None,
    use_cache: bool = True,
    store: CertificateStore | None = None,
) -> SortednessCertificate:
    """Decide CERTIFIED / REFUTED / UNKNOWN for ``schedule`` on the mesh.

    Parameters
    ----------
    mode:
        ``"auto"`` (exhaustive up to :data:`EXHAUSTIVE_CELL_LIMIT` cells,
        sampled beyond), ``"exhaustive"``, or ``"sampled"``.  Requesting
        an exhaustive check beyond the cell limit is a usage error — the
        batch would not fit in memory.
    report:
        An existing :func:`~repro.analysis.schedule_check.check_schedule`
        report for the same mesh, to avoid re-checking.  Structural
        violations make the schedule non-oblivious, so the 0-1 principle
        does not apply and the verdict is ``UNKNOWN``.
    use_cache / store:
        Certificates are looked up in (and written back to) the
        in-process cache and, when given, the on-disk
        :class:`~repro.analysis.semantics.cache.CertificateStore` — both
        keyed by schedule *value*, so a cache hit costs zero interpreter
        steps.
    """
    rows = int(rows)
    cols = rows if cols is None else int(cols)
    cells = rows * cols
    if mode not in _MODES:
        raise AnalysisError(f"mode must be one of {_MODES}, got {mode!r}")
    if mode == "exhaustive" and cells > EXHAUSTIVE_CELL_LIMIT:
        raise AnalysisError(
            f"exhaustive 0-1 checking is limited to {EXHAUSTIVE_CELL_LIMIT} "
            f"cells (2^{cells} inputs would not fit); use mode='sampled'"
        )
    exhaustive = (
        mode == "exhaustive"
        or (mode == "auto" and cells <= EXHAUSTIVE_CELL_LIMIT)
    )

    digest = schedule_digest(schedule, rows, cols)
    params: dict[str, Any] = {"mode": "exhaustive" if exhaustive else "sampled"}
    if not exhaustive:
        params.update(
            seed=int(sample_seed),
            samples_per_stratum=int(samples_per_stratum),
            max_strata=int(max_strata),
        )
    key = certificate_key(digest, params)

    if use_cache:
        cached = cache_get(key)
        if cached is not None:
            # Backfill the persistent store: a memory hit must still leave
            # an artifact behind when the caller asked for one.
            if store is not None and not store.path_for(key).exists():
                store.put(key, cached.to_json())
            return cached
        if store is not None:
            payload = store.get(key)
            if payload is not None:
                cert = SortednessCertificate.from_json(payload)
                cache_put(key, cert)
                return cert

    certificate = _compute_certificate(
        schedule,
        rows,
        cols,
        digest=digest,
        exhaustive=exhaustive,
        sample_seed=int(sample_seed),
        samples_per_stratum=int(samples_per_stratum),
        max_strata=int(max_strata),
        report=report,
    )
    if use_cache:
        cache_put(key, certificate)
    if store is not None:
        store.put(key, certificate.to_json())
    return certificate


def _compute_certificate(
    schedule: Schedule,
    rows: int,
    cols: int,
    *,
    digest: str,
    exhaustive: bool,
    sample_seed: int,
    samples_per_stratum: int,
    max_strata: int,
    report: ScheduleReport | None,
) -> SortednessCertificate:
    cells = rows * cols
    mode: Literal["exhaustive", "sampled"] = (
        "exhaustive" if exhaustive else "sampled"
    )
    seed = None if exhaustive else sample_seed
    budget = step_budget(schedule, rows, cols)
    base = dict(
        name=schedule.name,
        order=schedule.order,
        rows=rows,
        cols=cols,
        mode=mode,
        digest=digest,
        cycle_len=len(schedule.steps),
        budget=budget,
        sample_seed=seed,
    )

    if report is None:
        report = check_schedule(schedule, rows, cols)
    if report.structural:
        return SortednessCertificate(
            verdict="UNKNOWN",
            inputs_checked=0,
            reason=(
                "schedule is not an oblivious comparator network "
                f"({len(report.structural)} structural violation(s)); "
                "the 0-1 principle does not apply"
            ),
            **base,  # type: ignore[arg-type]
        )

    perm = _order_permutation(schedule.order, rows, cols)
    programs = _step_programs(schedule, rows, cols)
    inputs = (
        _exhaustive_inputs(cells)
        if exhaustive
        else _stratified_inputs(cells, samples_per_stratum, max_strata, sample_seed)
    )
    outcome = _run_batch(programs, perm, inputs.copy(), budget)
    add_interpreter_steps(outcome.steps_run)
    checked = int(inputs.shape[0])

    if outcome.all_sorted_at is not None:
        if exhaustive:
            return SortednessCertificate(
                verdict="CERTIFIED",
                inputs_checked=checked,
                step_bound=outcome.all_sorted_at,
                reason=(
                    f"all {checked} 0-1 matrices reach target order "
                    f"simultaneously at step {outcome.all_sorted_at}"
                ),
                **base,  # type: ignore[arg-type]
            )
        return SortednessCertificate(
            verdict="UNKNOWN",
            inputs_checked=checked,
            step_bound=outcome.all_sorted_at,
            reason=(
                f"all {checked} sampled 0-1 inputs sort, but sampling "
                "cannot certify — rerun exhaustively on a smaller mesh"
            ),
            **base,  # type: ignore[arg-type]
        )

    if outcome.periodic:
        never = ~outcome.ever_sorted
        if bool(never.any()):
            witness = _pick_minimal(inputs, never)
            if not exhaustive:
                witness = _minimize_witness(witness, programs, perm, budget)
            grid = tuple(
                tuple(int(v) for v in row) for row in witness.reshape(rows, cols)
            )
            return SortednessCertificate(
                verdict="REFUTED",
                inputs_checked=checked,
                witness=grid,
                witness_ones=int(witness.sum()),
                reason=(
                    "cycle dynamics are periodic and the witness is never "
                    "in target order at any step"
                ),
                **base,  # type: ignore[arg-type]
            )
        return SortednessCertificate(
            verdict="UNKNOWN",
            inputs_checked=checked,
            reason=(
                "every 0-1 input is transiently sorted but never all at "
                "once within one period; no certified bound exists"
            ),
            **base,  # type: ignore[arg-type]
        )

    return SortednessCertificate(
        verdict="UNKNOWN",
        inputs_checked=checked,
        reason=(
            f"step budget ({budget}) exhausted before simultaneous "
            "sortedness or a periodicity proof"
        ),
        **base,  # type: ignore[arg-type]
    )


def certified_schedule_report(
    schedule: Schedule,
    rows: int,
    cols: int | None = None,
    *,
    store: CertificateStore | None = None,
    **certify_kwargs: Any,
) -> ScheduleReport:
    """:func:`check_schedule` plus an attached sortedness certificate.

    The one-stop entry ``repro analyze --certify`` uses: the structural /
    policy report gains a :attr:`~ScheduleReport.semantics` section.
    """
    rows = int(rows)
    cols = rows if cols is None else int(cols)
    report = check_schedule(schedule, rows, cols)
    report.semantics = certify_sortedness(
        schedule, rows, cols, report=report, store=store, **certify_kwargs
    )
    return report


def peek_certificate(
    schedule: Schedule, rows: int, cols: int | None = None
) -> SortednessCertificate | None:
    """A previously computed auto-mode certificate, or ``None`` — never
    computes and never touches the hit/miss statistics.

    This is the compile-time hook: :class:`repro.backends.compile.
    CompiledSchedule` attaches whatever certificate analysis has already
    paid for, at zero cost, without the executor ever importing the
    certifier's compute path.
    """
    rows = int(rows)
    cols = rows if cols is None else int(cols)
    cells = rows * cols
    digest = schedule_digest(schedule, rows, cols)
    if cells <= EXHAUSTIVE_CELL_LIMIT:
        params: dict[str, Any] = {"mode": "exhaustive"}
    else:
        params = {
            "mode": "sampled",
            "seed": 0,
            "samples_per_stratum": 8,
            "max_strata": 16,
        }
    return cache_peek(certificate_key(digest, params))
