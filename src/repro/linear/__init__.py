"""1-D odd-even transposition sort substrate (paper Section 1)."""

from repro.linear.analysis import (
    average_lower_order,
    average_lower_smallest_element,
    expected_min_displacement,
    worst_case_upper,
)
from repro.linear.odd_even import (
    LinearSortOutcome,
    odd_even_sort_steps,
    sort_linear,
    transposition_step,
    worst_case_input,
)

__all__ = [
    "average_lower_order",
    "average_lower_smallest_element",
    "expected_min_displacement",
    "worst_case_upper",
    "LinearSortOutcome",
    "odd_even_sort_steps",
    "sort_linear",
    "transposition_step",
    "worst_case_input",
]
