"""Analytic facts about the 1-D odd-even transposition sort (paper Section 1).

The paper's introduction recalls:

* the sort finishes in at most ``N`` steps on any input;
* the average over random permutations is at least ``(N-1)/2`` steps, via
  the displacement of the smallest element; and
* the expected running time is in fact ``N - O(sqrt(N))``, because one of
  the ``O(sqrt(N))`` smallest items is likely to start in one of the
  rightmost ``O(sqrt(N))`` positions.

This module provides those bounds as callables plus an exact computation of
the smallest-element displacement expectation, for use by the E-1D
experiment and its tests.
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import DimensionError

__all__ = [
    "worst_case_upper",
    "average_lower_smallest_element",
    "average_lower_order",
    "expected_min_displacement",
]


def worst_case_upper(n: int) -> int:
    """Upper bound on steps for any input of size ``n`` (classical result)."""
    if n < 1:
        raise DimensionError(f"n must be positive, got {n}")
    return n


def average_lower_smallest_element(n: int) -> Fraction:
    """The paper's ``(N-1)/2`` average-case lower bound.

    If the smallest number starts in cell ``d`` it needs at least ``d-1``
    steps to reach cell 1, and ``d`` is uniform on ``1..N``:
    ``(1/N) * sum_{d=1}^{N} (d-1) = (N-1)/2``.
    """
    if n < 1:
        raise DimensionError(f"n must be positive, got {n}")
    return Fraction(n - 1, 2)


def expected_min_displacement(n: int) -> Fraction:
    """Exact expectation of the smallest element's initial displacement.

    Identical to :func:`average_lower_smallest_element`; kept as a separate
    name because the experiments estimate this quantity directly by Monte
    Carlo and compare against it.
    """
    return average_lower_smallest_element(n)


def average_lower_order(n: int) -> float:
    """The sharper ``N - O(sqrt(N))`` heuristic bound, as ``N - 2*sqrt(N)``.

    The paper states the expected running time is at least ``N - O(sqrt(N))``
    without fixing the constant; the experiments check that measured averages
    exceed ``N - c*sqrt(N)`` for a small ``c`` (we use 2) and approach ``N``.
    """
    if n < 1:
        raise DimensionError(f"n must be positive, got {n}")
    return n - 2.0 * n**0.5
