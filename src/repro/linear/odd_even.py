"""The 1-D odd-even transposition sort (bubble sort) on a linear array.

This is the substrate the paper generalizes (Section 1): cells are numbered
``1 .. N`` left to right; at odd steps cells (1,2), (3,4), ... compare and
swap so the smaller value lands in the leftmost cell; at even steps cells
(2,3), (4,5), ... do the same.  Definition 1's *reverse* bubble sort stores
the smaller value in the rightmost cell instead.

.. deprecated::
    The sorter is now the registry family ``"odd_even"`` — a linear-topology
    schedule executed as a ``1 × N`` mesh by the shared backend/driver
    stack, so campaigns, verify, analysis, and bench all see it.
    :func:`sort_linear` and :func:`odd_even_sort_steps` remain as
    :class:`DeprecationWarning` shims routing through that stack; the shim
    tests in ``tests/schedules`` assert their outcomes are bit-identical to
    the historical pure-NumPy loop (including ``direction=-1``, the
    already-sorted fast path, and cap behaviour).

:func:`transposition_step` (the semantic spec of one step) and
:func:`worst_case_input` are pure functions and stay warning-free.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.errors import DimensionError

__all__ = [
    "transposition_step",
    "LinearSortOutcome",
    "sort_linear",
    "odd_even_sort_steps",
    "worst_case_input",
]


def transposition_step(
    array: np.ndarray, t: int, *, direction: int = 1
) -> None:
    """Apply paper step ``t`` (1-based) of the (reverse) bubble sort in place.

    Odd ``t`` pairs cells (1,2),(3,4),...; even ``t`` pairs (2,3),(4,5),....
    ``direction=+1`` stores the smaller value at the lower index (ordinary
    bubble sort); ``direction=-1`` stores it at the higher index (reverse
    bubble sort, Definition 1).
    """
    if t < 1:
        raise DimensionError(f"step times are 1-based, got {t}")
    if direction not in (1, -1):
        raise DimensionError(f"direction must be +1 or -1, got {direction}")
    n = array.shape[-1]
    offset = (t - 1) % 2
    p = (n - offset) // 2
    if p <= 0:
        return
    a = array[..., offset : offset + 2 * p : 2]
    b = array[..., offset + 1 : offset + 2 * p : 2]
    lo = np.minimum(a, b)
    hi = np.maximum(a, b)
    if direction == 1:
        a[...] = lo
        b[...] = hi
    else:
        a[...] = hi
        b[...] = lo


@dataclass
class LinearSortOutcome:
    """Result of :func:`sort_linear` (mirrors the 2-D ``SortOutcome``)."""

    steps: np.ndarray
    completed: np.ndarray
    final: np.ndarray
    max_steps: int

    def steps_scalar(self) -> int:
        if self.steps.ndim != 0:
            raise DimensionError("steps_scalar() on a batched outcome")
        return int(self.steps)


def _driver_sort_linear(
    array: np.ndarray,
    *,
    direction: int = 1,
    max_steps: int | None = None,
    raise_on_cap: bool = False,
) -> LinearSortOutcome:
    """Warning-free core of :func:`sort_linear`, routed through the
    registry's ``odd_even`` family on the rect backend.

    The ``1 × N`` execution reproduces the historical pure-NumPy loop bit
    for bit: the odd/even ``LineOp`` cycle equals :func:`transposition_step`
    at every ``t``, the driver records 0 steps for already-sorted inputs and
    -1 for capped ones, and :class:`~repro.errors.StepLimitExceeded` carries
    the same ``(max_steps, unfinished)``.  ``direction=-1`` runs the forward
    sort on the negated array — ``x -> -x`` is strictly monotone decreasing,
    so the trajectory is the exact mirror of the reverse bubble sort and
    negating the result restores it.
    """
    if direction not in (1, -1):
        raise DimensionError(f"direction must be +1 or -1, got {direction}")
    work = np.array(array, copy=True)
    if work.ndim < 1 or work.shape[-1] < 1:
        raise DimensionError(f"expected a non-empty (..., N) array, got {work.shape}")
    n = work.shape[-1]
    if max_steps is None:
        max_steps = n + 2
    batch_shape = work.shape[:-1]

    if n == 1:
        # A one-cell array is always sorted; the mesh stack requires at
        # least two cells, so keep the historical fast path inline.
        steps = np.zeros(batch_shape, dtype=np.int64)
        return LinearSortOutcome(
            steps=steps,
            completed=np.ones(batch_shape, dtype=bool),
            final=work,
            max_steps=max_steps,
        )

    from repro.backends import run_sort
    from repro.schedules import build_odd_even

    signed = work if direction == 1 else -work
    outcome = run_sort(
        "rect",
        build_odd_even(),
        signed.reshape(*batch_shape, 1, n),
        max_steps=max_steps,
        raise_on_cap=raise_on_cap,
    )
    final = outcome.final.reshape(*batch_shape, n)
    if direction == -1:
        final = -final
    return LinearSortOutcome(
        steps=np.asarray(outcome.steps),
        completed=np.asarray(outcome.completed),
        final=final,
        max_steps=max_steps,
    )


def sort_linear(
    array: np.ndarray,
    *,
    direction: int = 1,
    max_steps: int | None = None,
    raise_on_cap: bool = False,
) -> LinearSortOutcome:
    """Run the (reverse) odd-even transposition sort to completion.

    .. deprecated:: resolve the registry family ``"odd_even"`` through
       :func:`repro.core.runner.sort_grid` / :func:`repro.experiments.sample`
       on a ``(..., 1, N)`` mesh instead (identical values).

    ``steps`` records, per batch element, the first 1-based step after which
    the array is sorted (ascending for ``direction=+1``, descending for
    ``direction=-1``); 0 when already sorted.  The classical result proven in
    [Leighton 1992] guarantees completion within N steps, so the default cap
    is ``N + 2`` and hitting it indicates a bug.
    """
    warnings.warn(
        "repro.linear.odd_even.sort_linear is deprecated; run the registry "
        "family 'odd_even' through sort_grid/sample on a (..., 1, N) mesh "
        "(identical values)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _driver_sort_linear(
        array, direction=direction, max_steps=max_steps, raise_on_cap=raise_on_cap
    )


def odd_even_sort_steps(array: np.ndarray, *, direction: int = 1) -> int:
    """Step count for a single 1-D input (convenience wrapper).

    .. deprecated:: see :func:`sort_linear`.
    """
    warnings.warn(
        "repro.linear.odd_even.odd_even_sort_steps is deprecated; run the "
        "registry family 'odd_even' through sort_grid/sample instead",
        DeprecationWarning,
        stacklevel=2,
    )
    arr = np.asarray(array)
    if arr.ndim != 1:
        raise DimensionError("odd_even_sort_steps expects a single 1-D array")
    return _driver_sort_linear(arr, direction=direction).steps_scalar()


def worst_case_input(n: int) -> np.ndarray:
    """An input on which the bubble sort needs close to the full N steps.

    Placing the smallest element in the rightmost cell forces at least
    ``N - 1`` steps, since the element moves at most one cell per step.
    """
    if n < 1:
        raise DimensionError(f"n must be positive, got {n}")
    out = np.arange(1, n + 1, dtype=np.int64)
    out[-1] = 0
    return out
