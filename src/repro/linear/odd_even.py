"""The 1-D odd-even transposition sort (bubble sort) on a linear array.

This is the substrate the paper generalizes (Section 1): cells are numbered
``1 .. N`` left to right; at odd steps cells (1,2), (3,4), ... compare and
swap so the smaller value lands in the leftmost cell; at even steps cells
(2,3), (4,5), ... do the same.  Definition 1's *reverse* bubble sort stores
the smaller value in the rightmost cell instead.

The implementation is batched and vectorized like the 2-D engine: arrays
shaped ``(..., N)`` advance one transposition step per call.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DimensionError, StepLimitExceeded

__all__ = [
    "transposition_step",
    "LinearSortOutcome",
    "sort_linear",
    "odd_even_sort_steps",
    "worst_case_input",
]


def transposition_step(
    array: np.ndarray, t: int, *, direction: int = 1
) -> None:
    """Apply paper step ``t`` (1-based) of the (reverse) bubble sort in place.

    Odd ``t`` pairs cells (1,2),(3,4),...; even ``t`` pairs (2,3),(4,5),....
    ``direction=+1`` stores the smaller value at the lower index (ordinary
    bubble sort); ``direction=-1`` stores it at the higher index (reverse
    bubble sort, Definition 1).
    """
    if t < 1:
        raise DimensionError(f"step times are 1-based, got {t}")
    if direction not in (1, -1):
        raise DimensionError(f"direction must be +1 or -1, got {direction}")
    n = array.shape[-1]
    offset = (t - 1) % 2
    p = (n - offset) // 2
    if p <= 0:
        return
    a = array[..., offset : offset + 2 * p : 2]
    b = array[..., offset + 1 : offset + 2 * p : 2]
    lo = np.minimum(a, b)
    hi = np.maximum(a, b)
    if direction == 1:
        a[...] = lo
        b[...] = hi
    else:
        a[...] = hi
        b[...] = lo


@dataclass
class LinearSortOutcome:
    """Result of :func:`sort_linear` (mirrors the 2-D ``SortOutcome``)."""

    steps: np.ndarray
    completed: np.ndarray
    final: np.ndarray
    max_steps: int

    def steps_scalar(self) -> int:
        if self.steps.ndim != 0:
            raise DimensionError("steps_scalar() on a batched outcome")
        return int(self.steps)


def sort_linear(
    array: np.ndarray,
    *,
    direction: int = 1,
    max_steps: int | None = None,
    raise_on_cap: bool = False,
) -> LinearSortOutcome:
    """Run the (reverse) odd-even transposition sort to completion.

    ``steps`` records, per batch element, the first 1-based step after which
    the array is sorted (ascending for ``direction=+1``, descending for
    ``direction=-1``); 0 when already sorted.  The classical result proven in
    [Leighton 1992] guarantees completion within N steps, so the default cap
    is ``N + 2`` and hitting it indicates a bug.
    """
    work = np.array(array, copy=True)
    if work.ndim < 1 or work.shape[-1] < 1:
        raise DimensionError(f"expected a non-empty (..., N) array, got {work.shape}")
    n = work.shape[-1]
    if max_steps is None:
        max_steps = n + 2
    target = np.sort(work, axis=-1)
    if direction == -1:
        target = target[..., ::-1]

    batch_shape = work.shape[:-1]
    steps = np.full(batch_shape, -1, dtype=np.int64)
    done = np.all(work == target, axis=-1)
    steps = np.where(done, 0, steps)

    t = 0
    while t < max_steps and not np.all(done):
        t += 1
        transposition_step(work, t, direction=direction)
        now = np.all(work == target, axis=-1)
        newly = now & ~done
        if np.any(newly):
            steps = np.where(newly, t, steps)
            done = done | now

    completed = np.asarray(done)
    if raise_on_cap and not np.all(completed):
        raise StepLimitExceeded(max_steps, int(np.sum(~completed)))
    return LinearSortOutcome(
        steps=np.asarray(steps), completed=completed, final=work, max_steps=max_steps
    )


def odd_even_sort_steps(array: np.ndarray, *, direction: int = 1) -> int:
    """Step count for a single 1-D input (convenience wrapper)."""
    arr = np.asarray(array)
    if arr.ndim != 1:
        raise DimensionError("odd_even_sort_steps expects a single 1-D array")
    return sort_linear(arr, direction=direction).steps_scalar()


def worst_case_input(n: int) -> np.ndarray:
    """An input on which the bubble sort needs close to the full N steps.

    Placing the smallest element in the rightmost cell forces at least
    ``N - 1`` steps, since the element moves at most one cell per step.
    """
    if n < 1:
        raise DimensionError(f"n must be positive, got {n}")
    out = np.arange(1, n + 1, dtype=np.int64)
    out[-1] = 0
    return out
