"""Hierarchical span profiler: where a run's time (and memory) goes.

The metrics registry answers "how many / how long in total"; this module
answers "in which phase".  A :class:`SpanProfiler` records a tree of named
spans — ``span("compile")``, ``span("kernel")``, ``span("merge")``,
``span("checkpoint")`` — each carrying wall time, CPU time, an invocation
count, and (opt-in) the tracemalloc peak while the span was open.

Repeated siblings **fold**: closing a second ``span("kernel")`` under the
same parent accumulates into the first instead of growing the tree, so a
Monte-Carlo shard that executes hundreds of runs produces a fixed-size
profile (``count`` records how many invocations folded in).

Installation mirrors the observer context (:mod:`repro.obs.context`)::

    prof = SpanProfiler()
    with use_profiler(prof):
        run_sort("vectorized", schedule, grid)   # driver spans recorded
    print(render_spans(prof.roots))

Instrumented code calls the module-level :func:`span`; with no profiler
installed it returns a shared no-op context manager, so the cost of an
unprofiled ``with span(...)`` block is one ContextVar read — the package's
zero-overhead-when-disabled guarantee extends to profiling.

Span trees serialize to plain dicts (:meth:`Span.as_dict` /
:func:`span_from_dict`), which is how campaign workers ship their trees to
the coordinator through the shard result/checkpoint channel; the
coordinator grafts them (:meth:`SpanProfiler.graft`) into one
cross-process tree per campaign.  See docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import time
import tracemalloc
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.errors import DimensionError

__all__ = [
    "Span",
    "SpanProfiler",
    "span",
    "use_profiler",
    "current_profiler",
    "span_from_dict",
    "aggregate_spans",
    "render_spans",
]


@dataclass
class Span:
    """One node of a profile tree: a named phase and its accumulated cost.

    ``wall``/``cpu`` are seconds summed over every folded invocation;
    ``count`` is how many invocations folded into this node;
    ``alloc_peak`` is the largest tracemalloc peak (bytes) observed during
    any single invocation, or ``None`` when allocation tracing was off.
    """

    name: str
    wall: float = 0.0
    cpu: float = 0.0
    count: int = 0
    alloc_peak: int | None = None
    meta: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    def child(self, name: str) -> Optional["Span"]:
        """The direct child named ``name``, if any (folding lookup)."""
        for node in self.children:
            if node.name == name:
                return node
        return None

    def self_wall(self) -> float:
        """Wall seconds not attributed to any child span."""
        return max(0.0, self.wall - sum(c.wall for c in self.children))

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-ready, the cross-process wire format)."""
        out: dict[str, Any] = {
            "name": self.name,
            "wall": self.wall,
            "cpu": self.cpu,
            "count": self.count,
        }
        if self.alloc_peak is not None:
            out["alloc_peak"] = self.alloc_peak
        if self.meta:
            out["meta"] = dict(self.meta)
        if self.children:
            out["children"] = [c.as_dict() for c in self.children]
        return out

    def merge(self, other: "Span") -> None:
        """Fold ``other`` (same name) into this node, recursively by name."""
        if other.name != self.name:
            raise DimensionError(
                f"cannot merge span {other.name!r} into {self.name!r}"
            )
        self.wall += other.wall
        self.cpu += other.cpu
        self.count += other.count
        if other.alloc_peak is not None:
            self.alloc_peak = max(self.alloc_peak or 0, other.alloc_peak)
        for key, value in other.meta.items():
            self.meta.setdefault(key, value)
        for theirs in other.children:
            mine = self.child(theirs.name)
            if mine is None:
                self.children.append(theirs)
            else:
                mine.merge(theirs)


def span_from_dict(data: dict[str, Any]) -> Span:
    """Rebuild a :class:`Span` tree from :meth:`Span.as_dict` output."""
    if not isinstance(data, dict) or "name" not in data:
        raise DimensionError(f"not a serialized span: {data!r}")
    return Span(
        name=str(data["name"]),
        wall=float(data.get("wall", 0.0)),
        cpu=float(data.get("cpu", 0.0)),
        count=int(data.get("count", 0)),
        alloc_peak=(
            int(data["alloc_peak"]) if data.get("alloc_peak") is not None else None
        ),
        meta=dict(data.get("meta", {})),
        children=[span_from_dict(c) for c in data.get("children", ())],
    )


class _NullSpan:
    """Shared no-op context manager returned when no profiler is installed."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager recording one invocation of a (possibly folded) span."""

    __slots__ = ("_profiler", "_node", "_wall0", "_cpu0", "_alloc_window")

    def __init__(self, profiler: "SpanProfiler", node: Span):
        self._profiler = profiler
        self._node = node

    def __enter__(self) -> Span:
        prof = self._profiler
        prof._stack.append(self._node)
        if prof.trace_alloc:
            # Per-span peak needs its own window; nested spans re-arm it on
            # exit so the parent's window resumes from the current level.
            tracemalloc.reset_peak()
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self._node

    def __exit__(self, *exc_info) -> None:
        prof = self._profiler
        node = self._node
        node.wall += time.perf_counter() - self._wall0
        node.cpu += time.process_time() - self._cpu0
        node.count += 1
        if prof.trace_alloc:
            peak = tracemalloc.get_traced_memory()[1]
            node.alloc_peak = max(node.alloc_peak or 0, peak)
            tracemalloc.reset_peak()
        popped = prof._stack.pop()
        assert popped is node, "span stack corrupted (overlapping exits)"


class SpanProfiler:
    """Record a folded tree of named spans (see module docstring).

    Parameters
    ----------
    trace_alloc:
        Also record the tracemalloc *peak* (bytes) per span.  Starts
        tracemalloc if it is not already tracing (and stops it again in
        that case when the profiler is used as a context manager);
        allocation tracing slows Python allocation by an order of
        magnitude, so it is strictly opt-in.

    Not thread-safe: one profiler records one logical call stack.  Give
    concurrent workers their own profiler and :meth:`graft` the serialized
    trees together (the campaign coordinator does exactly this).
    """

    def __init__(self, *, trace_alloc: bool = False):
        self.trace_alloc = bool(trace_alloc)
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._started_tracemalloc = False
        if self.trace_alloc and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True

    # ------------------------------------------------------------------
    # Recording.
    # ------------------------------------------------------------------

    def span(self, name: str, **meta: Any) -> _SpanContext:
        """Open (or fold into) the span ``name`` under the current parent."""
        if not name:
            raise DimensionError("span names must be nonempty")
        siblings = self._stack[-1].children if self._stack else self.roots
        node = None
        for existing in siblings:
            if existing.name == name:
                node = existing
                break
        if node is None:
            node = Span(name=name, meta=dict(meta))
            siblings.append(node)
        else:
            for key, value in meta.items():
                node.meta.setdefault(key, value)
        return _SpanContext(self, node)

    def graft(self, tree: Span | dict[str, Any]) -> Span:
        """Attach a (deserialized) span tree under the current span.

        Used by the campaign coordinator to splice each worker's shard
        profile into the campaign's own tree.  Folds into an existing
        same-named sibling when one exists; returns the attached node.
        """
        node = span_from_dict(tree) if isinstance(tree, dict) else tree
        siblings = self._stack[-1].children if self._stack else self.roots
        for existing in siblings:
            if existing.name == node.name:
                existing.merge(node)
                return existing
        siblings.append(node)
        return node

    # ------------------------------------------------------------------
    # Reading.
    # ------------------------------------------------------------------

    def tree(self) -> list[dict[str, Any]]:
        """The recorded roots as plain dicts (JSON/manifest-ready)."""
        return [root.as_dict() for root in self.roots]

    def close(self) -> None:
        """Stop tracemalloc if this profiler was the one that started it."""
        if self._started_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._started_tracemalloc = False

    def __enter__(self) -> "SpanProfiler":
        self._token = _ACTIVE_PROFILER.set(self)
        return self

    def __exit__(self, *exc_info) -> None:
        _ACTIVE_PROFILER.reset(self._token)
        self.close()


_ACTIVE_PROFILER: ContextVar[SpanProfiler | None] = ContextVar(
    "repro_obs_profiler", default=None
)


@contextmanager
def use_profiler(profiler: SpanProfiler) -> Iterator[SpanProfiler]:
    """Install ``profiler`` as the ambient profiler for the ``with`` body."""
    token = _ACTIVE_PROFILER.set(profiler)
    try:
        yield profiler
    finally:
        _ACTIVE_PROFILER.reset(token)


def current_profiler() -> SpanProfiler | None:
    """The ambient :class:`SpanProfiler`, or ``None``."""
    return _ACTIVE_PROFILER.get()


def span(name: str, **meta: Any) -> _SpanContext | _NullSpan:
    """Record ``name`` on the ambient profiler; no-op when none installed.

    This is what instrumented library code calls — the driver wraps its
    compile and kernel phases, the campaign runner its merge and
    checkpoint phases.  The unprofiled path returns a shared singleton, so
    the per-call cost without a profiler is a single ContextVar read.
    """
    prof = _ACTIVE_PROFILER.get()
    if prof is None:
        return _NULL_SPAN
    return prof.span(name, **meta)


# ---------------------------------------------------------------------------
# Reporting helpers.
# ---------------------------------------------------------------------------

def aggregate_spans(
    roots: list[Span] | list[dict[str, Any]],
) -> dict[str, dict[str, float]]:
    """Flatten a span tree into per-name totals.

    Returns ``{name: {"wall": s, "cpu": s, "count": n}}`` summed over every
    node with that name anywhere in the tree — the per-phase breakdown the
    bench harness records per case.
    """
    totals: dict[str, dict[str, float]] = {}

    def visit(node: Span) -> None:
        entry = totals.setdefault(
            node.name, {"wall": 0.0, "cpu": 0.0, "count": 0}
        )
        entry["wall"] += node.wall
        entry["cpu"] += node.cpu
        entry["count"] += node.count
        for child in node.children:
            visit(child)

    for root in roots:
        visit(span_from_dict(root) if isinstance(root, dict) else root)
    return totals


def render_spans(
    roots: list[Span] | list[dict[str, Any]], *, indent: int = 2
) -> str:
    """Human-readable profile tree (for ``--profile`` CLI output)."""
    from repro.obs.timing import format_seconds

    lines: list[str] = []

    def visit(node: Span, depth: int) -> None:
        pad = " " * (indent * depth)
        extras = [f"x{node.count}"] if node.count > 1 else []
        if node.cpu:
            extras.append(f"cpu {format_seconds(node.cpu)}")
        if node.alloc_peak is not None:
            extras.append(f"peak {node.alloc_peak / 1024:.0f}KiB")
        suffix = f" ({', '.join(extras)})" if extras else ""
        lines.append(f"{pad}{node.name:<12s} {format_seconds(node.wall)}{suffix}")
        for child in node.children:
            visit(child, depth + 1)

    for root in roots:
        visit(span_from_dict(root) if isinstance(root, dict) else root, 0)
    return "\n".join(lines) if lines else "(no spans recorded)"
