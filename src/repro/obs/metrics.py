"""Metrics registry: counters, gauges, histograms, timers, and exporters.

A :class:`MetricsRegistry` is a named collection of instruments.  The
instruments follow the Prometheus data model closely enough that
:meth:`MetricsRegistry.to_prometheus_text` emits valid exposition-format
text, while :meth:`MetricsRegistry.to_json` keeps the full structured state
(including histogram extrema) for offline analysis.

Two observers bridge the event stream into a registry:

* :class:`MetricsObserver` tallies runs, steps, per-step swap/comparison
  counts, and kernel wall-time;
* :class:`PotentialObserver` records the paper's potential trajectories
  (M for the row-major family, Z1/Y1 for the snakes) per cycle.

:func:`record_link_stats` folds a mesh machine's per-wire
:class:`~repro.mesh.machine.LinkStats` into a registry after a run.
"""

from __future__ import annotations

import json
import time
from bisect import bisect_left
from pathlib import Path
from typing import Any

from repro.errors import DimensionError
from repro.obs.events import (
    CampaignEnd,
    CampaignStart,
    CycleEvent,
    JobUpdate,
    Observer,
    RunEnd,
    RunStart,
    ShardEnd,
    StepEvent,
    StoreEvent,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "MetricsObserver",
    "PotentialObserver",
    "record_link_stats",
]

# Default histogram buckets: step/swap-count scales for meshes up to ~64x64.
DEFAULT_BUCKETS = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000)


def _check_name(name: str) -> str:
    if not name or any(ch for ch in name if not (ch.isalnum() or ch in "_:")):
        raise DimensionError(
            f"metric names must be nonempty [A-Za-z0-9_:] strings, got {name!r}"
        )
    return name


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = _check_name(name)
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise DimensionError(f"counter {self.name} cannot decrease (got {amount})")
        self.value += amount

    def as_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "help": self.help, "value": self.value}


class Gauge:
    """A value that can go up and down (last write wins)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = _check_name(name)
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def as_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "help": self.help, "value": self.value}


class Histogram:
    """Cumulative-bucket histogram with count/sum/min/max."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "", buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        self.name = _check_name(name)
        self.help = help
        if not buckets or list(buckets) != sorted(buckets):
            raise DimensionError(f"histogram {name} needs sorted, nonempty buckets")
        self.buckets = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * len(self.buckets)  # non-cumulative, per bucket
        self.overflow = 0
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect_left(self.buckets, value)
        if idx < len(self.buckets):
            self.bucket_counts[idx] += 1
        else:
            self.overflow += 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def cumulative_counts(self) -> list[int]:
        """Prometheus-style cumulative counts per upper bound (excl. +Inf)."""
        out, running = [], 0
        for c in self.bucket_counts:
            running += c
            out.append(running)
        return out

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "help": self.help,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {str(b): c for b, c in zip(self.buckets, self.cumulative_counts())},
        }


class Timer:
    """Wall-time instrument: a histogram of seconds plus a running total.

    Usable as a context manager::

        with registry.timer("phase_seconds").time():
            run_phase()
    """

    kind = "timer"

    # Sub-second to minutes-scale latency buckets.
    TIME_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0)

    def __init__(self, name: str, help: str = ""):
        self.name = _check_name(name)
        self.help = help
        self.histogram = Histogram(name, help, buckets=self.TIME_BUCKETS)

    def observe(self, seconds: float) -> None:
        if seconds < 0:
            raise DimensionError(f"timer {self.name} got negative duration {seconds}")
        self.histogram.observe(seconds)

    def time(self) -> "_TimerContext":
        return _TimerContext(self)

    @property
    def total(self) -> float:
        return self.histogram.sum

    @property
    def count(self) -> int:
        return self.histogram.count

    def as_dict(self) -> dict[str, Any]:
        d = self.histogram.as_dict()
        d["kind"] = self.kind
        return d


class _TimerContext:
    def __init__(self, timer: Timer):
        self.timer = timer
        self.elapsed = 0.0

    def __enter__(self) -> "_TimerContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start
        self.timer.observe(self.elapsed)


class MetricsRegistry:
    """A named collection of instruments with idempotent registration."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram | Timer] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise DimensionError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = cls(name, help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def timer(self, name: str, help: str = "") -> Timer:
        return self._get_or_create(Timer, name, help)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getitem__(self, name: str) -> Counter | Gauge | Histogram | Timer:
        return self._metrics[name]

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def as_dict(self) -> dict[str, Any]:
        return {name: self._metrics[name].as_dict() for name in self.names()}

    def merge(self, other: "MetricsRegistry | dict[str, Any]") -> None:
        """Fold another registry (or an :meth:`as_dict` snapshot) into this one.

        This is the cross-process aggregation primitive: campaign shard
        workers snapshot their registry with :meth:`as_dict`, ship it over
        the result/checkpoint channel, and the coordinator merges every
        snapshot here so exporters finally see worker-side activity.

        Merge semantics per instrument kind:

        * **counter** — values add;
        * **gauge** — last write wins (the incoming value replaces ours);
        * **histogram / timer** — per-bucket counts, total count, and sum
          add; min/max combine; bucket layouts must match exactly
          (:class:`DimensionError` otherwise).

        Instruments we have not registered yet are created from the
        snapshot (same kind, help text, and bucket layout).
        """
        snapshot = other.as_dict() if isinstance(other, MetricsRegistry) else other
        for name in sorted(snapshot):
            data = snapshot[name]
            kind = data.get("kind")
            help_text = data.get("help", "")
            if kind == "counter":
                self.counter(name, help_text).inc(float(data["value"]))
            elif kind == "gauge":
                self.gauge(name, help_text).set(float(data["value"]))
            elif kind in ("histogram", "timer"):
                incoming_buckets = tuple(
                    float(b) for b in sorted(data["buckets"], key=float)
                )
                if kind == "timer":
                    mine = self.timer(name, help_text).histogram
                else:
                    mine = self.histogram(name, help_text, buckets=incoming_buckets)
                _merge_histogram_snapshot(name, mine, data, incoming_buckets)
            else:
                raise DimensionError(
                    f"cannot merge metric {name!r} of unknown kind {kind!r}"
                )

    def to_json(self, path: str | Path | None = None, *, indent: int = 2) -> str:
        """Serialize the registry; also write it to ``path`` when given."""
        text = json.dumps(self.as_dict(), indent=indent, sort_keys=True)
        if path is not None:
            path = Path(path)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text + "\n")
        return text

    def to_prometheus_text(self) -> str:
        """Prometheus exposition format (text version 0.0.4)."""
        lines: list[str] = []
        for name in self.names():
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            if isinstance(metric, (Counter, Gauge)):
                lines.append(f"# TYPE {name} {metric.kind}")
                lines.append(f"{name} {_fmt_value(metric.value)}")
            else:
                hist = metric.histogram if isinstance(metric, Timer) else metric
                lines.append(f"# TYPE {name} histogram")
                for bound, cum in zip(hist.buckets, hist.cumulative_counts()):
                    lines.append(f'{name}_bucket{{le="{_fmt_value(bound)}"}} {cum}')
                lines.append(f'{name}_bucket{{le="+Inf"}} {hist.count}')
                lines.append(f"{name}_sum {_fmt_value(hist.sum)}")
                lines.append(f"{name}_count {hist.count}")
        return "\n".join(lines) + "\n"


def _fmt_value(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else repr(float(value))


def _merge_histogram_snapshot(
    name: str,
    mine: Histogram,
    data: dict[str, Any],
    incoming_buckets: tuple[float, ...],
) -> None:
    """Fold one serialized histogram into ``mine`` (shared by timer merge).

    ``as_dict`` publishes *cumulative* per-bound counts and no explicit
    overflow, so both are reconstructed here: de-cumulate adjacent bounds,
    and recover overflow as ``count - last_cumulative``.
    """
    if mine.buckets != incoming_buckets:
        raise DimensionError(
            f"cannot merge metric {name!r}: bucket layout "
            f"{incoming_buckets} does not match {mine.buckets}"
        )
    cumulative = [int(data["buckets"][key]) for key in sorted(data["buckets"], key=float)]
    previous = 0
    for idx, value in enumerate(cumulative):
        mine.bucket_counts[idx] += value - previous
        previous = value
    count = int(data["count"])
    mine.overflow += count - previous
    mine.count += count
    mine.sum += float(data["sum"])
    if data.get("min") is not None:
        mine.min = (
            float(data["min"]) if mine.min is None else min(mine.min, float(data["min"]))
        )
    if data.get("max") is not None:
        mine.max = (
            float(data["max"]) if mine.max is None else max(mine.max, float(data["max"]))
        )


class MetricsObserver(Observer):
    """Tally run/step/swap/wall-time metrics from the event stream.

    Metric names (all prefixed ``repro_``): ``repro_runs_total``,
    ``repro_steps_total``, ``repro_swaps_total``,
    ``repro_comparisons_total``, ``repro_step_swaps`` (histogram),
    ``repro_run_steps`` (histogram), ``repro_run_seconds`` (timer).

    Campaign-level events add ``repro_campaigns_total``,
    ``repro_campaign_shards_total`` / ``repro_campaign_shard_retries_total``
    / ``repro_campaign_shards_resumed_total``,
    ``repro_campaign_trials_total``, and the ``repro_shard_seconds`` timer
    (checkpoint-restored shards are counted but not timed).  A
    :class:`~repro.obs.events.ShardEnd` carrying a worker-side registry
    snapshot is folded in via :meth:`MetricsRegistry.merge`, so run/step
    counters cover shard activity executed in worker processes too.

    Service-layer events (:class:`~repro.obs.events.StoreEvent`,
    :class:`~repro.obs.events.JobUpdate`) add the ``repro_service_*``
    family: ``repro_service_store_{hits,misses,puts,evictions,
    quarantined}_total`` for the content-addressed result store, and
    ``repro_service_jobs_total`` / ``repro_service_jobs_{coalesced,
    completed,failed}_total`` / ``repro_service_cache_hits_total`` for the
    async job service.  A repeated campaign served from the store shows up
    as a ``repro_service_store_hits_total`` increment with **zero** new
    ``repro_runs_total`` / ``repro_steps_total`` activity — that pairing is
    how the cache-hit acceptance test proves no kernel work happened.

    Swap tallies on the vectorized backends require diffing the whole grid
    every step, so they are off by default there — run/step counts and
    wall-time stay cheap.  Pass ``swap_detail=True`` to opt into exact
    per-step swap metrics (cell-level backends report swaps either way).
    """

    def __init__(
        self, registry: MetricsRegistry | None = None, *, swap_detail: bool = False
    ):
        self.wants_swap_detail = bool(swap_detail)
        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        self._runs = reg.counter("repro_runs_total", "executor runs observed")
        self._steps = reg.counter("repro_steps_total", "schedule steps executed")
        self._swaps = reg.counter("repro_swaps_total", "comparator swaps performed")
        self._comparisons = reg.counter(
            "repro_comparisons_total", "comparator firings performed"
        )
        self._step_swaps = reg.histogram(
            "repro_step_swaps", "swaps per schedule step"
        )
        self._run_steps = reg.histogram(
            "repro_run_steps", "steps per completed run"
        )
        self._run_seconds = reg.timer(
            "repro_run_seconds", "kernel wall-time per run"
        )
        self._campaigns = reg.counter(
            "repro_campaigns_total", "Monte-Carlo campaigns observed"
        )
        self._shards = reg.counter(
            "repro_campaign_shards_total", "campaign shards completed"
        )
        self._shard_retries = reg.counter(
            "repro_campaign_shard_retries_total",
            "extra shard attempts after worker failures",
        )
        self._shards_resumed = reg.counter(
            "repro_campaign_shards_resumed_total",
            "campaign shards restored from checkpoints",
        )
        self._campaign_trials = reg.counter(
            "repro_campaign_trials_total", "trials aggregated by campaigns"
        )
        self._shard_seconds = reg.timer(
            "repro_shard_seconds", "wall-time per computed campaign shard"
        )
        self._store_ops = {
            "hit": reg.counter(
                "repro_service_store_hits_total",
                "result-store lookups answered from the cache",
            ),
            "miss": reg.counter(
                "repro_service_store_misses_total",
                "result-store lookups that fell through to execution",
            ),
            "put": reg.counter(
                "repro_service_store_puts_total", "results written to the store"
            ),
            "evict": reg.counter(
                "repro_service_store_evictions_total",
                "entries evicted to hold the store size cap",
            ),
            "quarantine": reg.counter(
                "repro_service_store_quarantined_total",
                "corrupted payloads quarantined and treated as misses",
            ),
        }
        self._jobs = reg.counter(
            "repro_service_jobs_total", "campaign jobs submitted"
        )
        self._jobs_coalesced = reg.counter(
            "repro_service_jobs_coalesced_total",
            "submissions coalesced onto an in-flight job (single-flight)",
        )
        self._jobs_completed = reg.counter(
            "repro_service_jobs_completed_total", "jobs finished successfully"
        )
        self._jobs_failed = reg.counter(
            "repro_service_jobs_failed_total", "jobs that ended in failure"
        )
        self._cache_hits = reg.counter(
            "repro_service_cache_hits_total",
            "jobs answered from the result store without executing a campaign",
        )
        self._serve_leases = reg.counter(
            "repro_serve_leases_total",
            "pending-job leases claimed by serve processes",
        )
        self._serve_reclaimed = reg.counter(
            "repro_serve_reclaimed_total",
            "stale job leases reclaimed from dead or silent owners",
        )
        self._serve_lock_waits = reg.counter(
            "repro_serve_lock_waits_total",
            "flights that waited on the cross-process fingerprint lock",
        )

    def on_run_start(self, event: RunStart) -> None:
        self._runs.inc()

    def on_step(self, event: StepEvent) -> None:
        self._steps.inc()
        if event.swaps is not None:
            self._swaps.inc(event.swaps)
            self._step_swaps.observe(event.swaps)
        if event.comparisons is not None:
            self._comparisons.inc(event.comparisons)

    def on_run_end(self, event: RunEnd) -> None:
        self._run_seconds.observe(max(0.0, event.wall_time))
        steps = event.steps
        if steps is None:
            return
        # Accept scalars, 0-d arrays, and batch arrays alike.
        try:
            flat = [int(v) for v in _iter_steps_values(steps)]
        except (TypeError, ValueError):
            return
        for v in flat:
            if v >= 0:
                self._run_steps.observe(v)

    def on_campaign_start(self, event: CampaignStart) -> None:
        self._campaigns.inc()

    def on_shard_end(self, event: ShardEnd) -> None:
        self._shards.inc()
        if event.attempts > 1:
            self._shard_retries.inc(event.attempts - 1)
        if event.from_checkpoint:
            self._shards_resumed.inc()
        else:
            self._shard_seconds.observe(max(0.0, event.elapsed))
        if event.metrics is not None:
            # Worker-side registry snapshot: fold it in so run/step/swap
            # counters cover shard activity, not just the coordinator's.
            self.registry.merge(event.metrics)

    def on_campaign_end(self, event: CampaignEnd) -> None:
        self._campaign_trials.inc(event.trials)

    def on_store_event(self, event: StoreEvent) -> None:
        counter = self._store_ops.get(event.op)
        if counter is not None:
            counter.inc()

    def on_job_update(self, event: JobUpdate) -> None:
        if event.state == "pending":
            self._jobs.inc()
            if event.coalesced:
                self._jobs_coalesced.inc()
        elif event.state == "done":
            self._jobs_completed.inc()
            if event.cache_hit:
                self._cache_hits.inc()
        elif event.state == "failed":
            self._jobs_failed.inc()
        elif event.state == "leased":
            self._serve_leases.inc()
        elif event.state == "reclaimed":
            self._serve_reclaimed.inc()
        elif event.state == "lock_wait":
            self._serve_lock_waits.inc()


def _iter_steps_values(steps: Any):
    import numpy as np

    arr = np.asarray(steps)
    return arr.reshape(-1).tolist()


class PotentialObserver(Observer):
    """Record the paper's potential trajectory once per cycle.

    The potential is chosen the way the diagnostics module does: the M
    surplus statistic for row-major-order schedules, Y1 for ``snake_2``,
    Z1 otherwise.  The trajectory is available as ``trajectory`` (a list of
    ``(t, value)`` pairs) and, when a registry is given, as the
    ``repro_potential`` gauge plus the ``repro_cycle_potential`` histogram.

    Only meaningful for unbatched runs (a batch has no single potential);
    batched cycle events are ignored.
    """

    def __init__(
        self,
        algorithm: str = "",
        order: str = "",
        registry: MetricsRegistry | None = None,
    ):
        self.algorithm = algorithm
        self.order = order
        self.registry = registry
        self.trajectory: list[tuple[int, int]] = []
        if registry is not None:
            self._gauge = registry.gauge("repro_potential", "current cycle potential")
            self._hist = registry.histogram(
                "repro_cycle_potential", "potential observed at cycle ends"
            )

    def on_run_start(self, event: RunStart) -> None:
        # Pick up the schedule identity from the run when not preset.
        if not self.algorithm:
            self.algorithm = event.algorithm
        if not self.order:
            self.order = event.order

    def _potential(self, grid) -> int | None:
        # zeroone imports are deferred: obs must stay importable from the
        # executors without creating an import cycle through diagnostics.
        from repro.zeroone.threshold import threshold_matrix
        from repro.zeroone.trackers import y1_statistic, z1_statistic
        from repro.zeroone.weights import m_statistic

        if grid is None or grid.ndim != 2:
            return None
        grid01 = threshold_matrix(grid)
        if self.order == "row_major":
            return int(m_statistic(grid01))
        if self.algorithm == "snake_2":
            return int(y1_statistic(grid01))
        return int(z1_statistic(grid01))

    def on_cycle(self, event: CycleEvent) -> None:
        value = event.info.get("potential")
        if value is None:
            value = self._potential(event.grid)
        if value is None:
            return
        self.trajectory.append((event.t, int(value)))
        if self.registry is not None:
            self._gauge.set(value)
            self._hist.observe(value)


def record_link_stats(registry: MetricsRegistry, stats, *, top_k: int = 5) -> None:
    """Fold a :class:`~repro.mesh.machine.LinkStats` into ``registry``.

    Adds ``repro_wire_comparisons_total`` / ``repro_wire_swaps_total``
    counters, a ``repro_wire_traffic`` histogram (comparisons per wire),
    and a ``repro_busiest_wire_comparisons`` gauge for the hottest wire.
    """
    registry.counter(
        "repro_wire_comparisons_total", "comparator firings over all wires"
    ).inc(stats.total_comparisons())
    registry.counter(
        "repro_wire_swaps_total", "swaps over all wires"
    ).inc(stats.total_swaps())
    traffic = registry.histogram(
        "repro_wire_traffic", "comparator firings per individual wire"
    )
    for _, count in stats.comparisons.items():
        traffic.observe(count)
    busiest = stats.busiest_links(top_k)
    if busiest:
        registry.gauge(
            "repro_busiest_wire_comparisons", "firings on the busiest wire"
        ).set(busiest[0][1])
