"""Event model of the observability subsystem.

Every backend — vectorized, reference, mesh, rect — reports through the
same four lifecycle events, dispatched from a single site: the unified
run-loop driver (:mod:`repro.backends.driver`).  The diagnostics runner and
the mesh machine's manual-stepping mode route through the driver's
``emit_*`` helpers as well, so an :class:`Observer` sees one schema no
matter how a run was executed:

``on_run_start``
    Once per run, before the first step, with the run's static facts
    (executor, algorithm, side, batch shape, step cap).
``on_step``
    Once per executed schedule step, after the step's comparators have
    fired.  Carries the 1-based step time, a *read-only view* of the live
    working grid, and (when the executor can account them cheaply) the
    number of swaps and comparisons that step performed.
``on_cycle``
    Once per completed schedule cycle (every ``len(schedule.steps)`` steps),
    optionally carrying derived per-cycle statistics in ``info``.
``on_run_end``
    Once per run with the outcome: step counts, completion, wall time.

Observers must treat event grids as immutable; executors pass their live
working buffers to avoid copies on the hot path.  Dispatch is guarded at
the run level — an executor given no observer runs its original uninstrumented
loop, which is the package's zero-overhead-when-disabled guarantee (see
docs/OBSERVABILITY.md).

On top of the run-level stream, the sharded campaign layer
(:mod:`repro.campaign`) reports three **campaign-level** events, emitted by
the campaign runner in the coordinating process (never from workers — a
shard executing in a worker process is deliberately unobserved at the run
level, since its events could not reach the parent's observer anyway):

``on_campaign_start``
    Once per campaign, with the shard plan (trials, shards, workers,
    backend) and how many shards were restored from a checkpoint.
``on_shard_end``
    Once per shard as it completes — whether computed fresh, retried after
    a worker failure (``attempts > 1``), or restored from a checkpoint.
``on_campaign_end``
    Once per campaign with the completion tally and wall time.

The campaign *service* layer (:mod:`repro.store` / :mod:`repro.service`)
adds two more event kinds on the same stream:

``on_store_event``
    One content-addressed result-store operation — a cache ``hit`` or
    ``miss`` keyed by campaign fingerprint, a ``put`` of a fresh result,
    an LRU ``evict``, or a ``quarantine`` of a corrupted payload.
``on_job_update``
    One async-job state transition (``pending`` → ``running`` →
    ``done``/``failed``), including whether the job short-circuited on a
    cache hit or was coalesced onto another in-flight submission of the
    same fingerprint.  Serve processes additionally report job-lease
    transitions (``leased``/``reclaimed``/``released``) and
    cross-process fingerprint-lock waits (``lock_wait``) on the same
    event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = [
    "RunStart",
    "StepEvent",
    "CycleEvent",
    "RunEnd",
    "CampaignStart",
    "ShardEnd",
    "CampaignEnd",
    "StoreEvent",
    "JobUpdate",
    "Observer",
    "CompositeObserver",
    "RecordingObserver",
]


@dataclass(frozen=True)
class RunStart:
    """Static facts of a run, dispatched before the first step.

    ``rows``/``cols`` carry the mesh shape for rectangular runs; they
    default to ``side`` so square-only constructions keep working (and
    ``side`` mirrors ``rows`` for historical consumers).
    """

    executor: str
    algorithm: str
    side: int
    batch_shape: tuple[int, ...] = ()
    max_steps: int | None = None
    order: str = ""
    rows: int = -1
    cols: int = -1

    def __post_init__(self) -> None:
        if self.rows < 0:
            object.__setattr__(self, "rows", self.side)
        if self.cols < 0:
            object.__setattr__(self, "cols", self.side)


@dataclass(frozen=True)
class StepEvent:
    """One executed schedule step.

    ``grid`` is the executor's live working buffer (or ``None`` for
    executors that do not expose one); observers must not mutate it.
    ``swaps``/``comparisons`` are per-step tallies when the executor tracks
    them (the mesh machine and the instrumented engine do), else ``None``.
    """

    t: int
    grid: np.ndarray | None = None
    swaps: int | None = None
    comparisons: int | None = None


@dataclass(frozen=True)
class CycleEvent:
    """End of one full schedule cycle (``cycle`` is 1-based)."""

    cycle: int
    t: int
    grid: np.ndarray | None = None
    info: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class RunEnd:
    """Outcome of a run.

    ``steps`` mirrors :attr:`repro.core.engine.SortOutcome.steps` for
    sort-to-completion runs (batch-shaped; -1 where the cap was hit) and is
    the executed step count for fixed-step runs.
    """

    steps: Any = None
    completed: Any = None
    wall_time: float = 0.0


@dataclass(frozen=True)
class CampaignStart:
    """Static facts of a sharded Monte-Carlo campaign, before any shard runs.

    ``campaign`` is the spec fingerprint (also the checkpoint file key);
    ``resumed_shards`` counts shards restored from a checkpoint rather than
    recomputed.
    """

    campaign: str
    algorithm: str
    side: int
    trials: int
    num_shards: int
    shard_size: int
    workers: int
    backend: str
    kind: str = "sort_steps"
    resumed_shards: int = 0


@dataclass(frozen=True)
class ShardEnd:
    """One shard of a campaign finished (fresh, retried, or from checkpoint).

    ``attempts`` is 1 for a first-try success and grows with per-shard
    retries after worker failures; ``from_checkpoint`` marks shards whose
    values were restored rather than recomputed (their ``elapsed`` is 0).

    ``metrics``/``spans`` carry the worker-side observability snapshot
    when the coordinator requested collection (an observer or profiler was
    attached): ``metrics`` is the worker registry's
    :meth:`~repro.obs.metrics.MetricsRegistry.as_dict` form (merged by
    :class:`~repro.obs.metrics.MetricsObserver`), ``spans`` the shard's
    serialized :class:`~repro.obs.prof.Span` tree.  Both are ``None`` for
    unobserved campaigns and for shards restored from checkpoints that
    were written without collection.
    """

    campaign: str
    index: int
    trials: int
    elapsed: float = 0.0
    attempts: int = 1
    from_checkpoint: bool = False
    metrics: dict[str, Any] | None = None
    spans: dict[str, Any] | None = None


@dataclass(frozen=True)
class CampaignEnd:
    """Outcome of a campaign: how much of the shard plan completed.

    ``complete`` is False for budgeted partial runs (``max_shards``) —
    a later ``resume=True`` run finishes the plan.
    """

    campaign: str
    completed_shards: int
    num_shards: int
    trials: int
    elapsed: float = 0.0
    complete: bool = True


#: The result-store operations a :class:`StoreEvent` can report.
STORE_OPS = ("hit", "miss", "put", "evict", "quarantine")


@dataclass(frozen=True)
class StoreEvent:
    """One operation against a content-addressed result store.

    ``fingerprint`` is the :attr:`~repro.campaign.spec.CampaignSpec.fingerprint`
    the operation was keyed on; ``store`` names the store instance (the
    local backend reports its root directory).  ``bytes`` carries the
    payload size where the store knows it (puts and evictions).
    """

    op: str
    fingerprint: str
    store: str = ""
    bytes: int | None = None


@dataclass(frozen=True)
class JobUpdate:
    """One state transition of an asynchronous campaign job.

    ``state`` is one of :data:`repro.service.JOB_STATES`
    (``pending``/``running``/``done``/``failed``) or, on the durable-queue
    side, one of :data:`repro.service.LEASE_STATES` — ``leased`` /
    ``reclaimed`` / ``released`` for job-lease transitions made by serve
    processes, and ``lock_wait`` for a flight that blocked on the
    cross-process fingerprint lock.  ``cache_hit`` marks jobs that
    short-circuited on the result store without executing any campaign;
    ``coalesced`` marks submissions that attached to an
    already-in-flight job for the same fingerprint (single-flight).
    ``error`` carries the failure ``repr`` for ``failed`` transitions.
    """

    job_id: str
    fingerprint: str
    state: str
    cache_hit: bool = False
    coalesced: bool = False
    error: str = ""


class Observer:
    """Base observer: all hooks are no-ops; subclass and override.

    Executors duck-type against this interface, so any object with the four
    ``on_*`` methods works; subclassing just spares you the boilerplate.

    ``wants_swap_detail`` tells the driver whether to pay for per-step swap
    counts on backends where accounting them costs a full grid diff
    (cell-level backends report swaps regardless).  Observers that consume
    ``StepEvent.swaps`` should set it to True.
    """

    wants_swap_detail = False

    def on_run_start(self, event: RunStart) -> None:  # pragma: no cover - no-op
        pass

    def on_step(self, event: StepEvent) -> None:  # pragma: no cover - no-op
        pass

    def on_cycle(self, event: CycleEvent) -> None:  # pragma: no cover - no-op
        pass

    def on_run_end(self, event: RunEnd) -> None:  # pragma: no cover - no-op
        pass

    def on_campaign_start(self, event: CampaignStart) -> None:  # pragma: no cover - no-op
        pass

    def on_shard_end(self, event: ShardEnd) -> None:  # pragma: no cover - no-op
        pass

    def on_campaign_end(self, event: CampaignEnd) -> None:  # pragma: no cover - no-op
        pass

    def on_store_event(self, event: StoreEvent) -> None:  # pragma: no cover - no-op
        pass

    def on_job_update(self, event: JobUpdate) -> None:  # pragma: no cover - no-op
        pass


class CompositeObserver(Observer):
    """Fan one event stream out to several observers, in order."""

    def __init__(self, observers: list[Observer] | tuple[Observer, ...]):
        self.observers = list(observers)

    @property
    def wants_swap_detail(self) -> bool:
        return any(
            getattr(obs, "wants_swap_detail", False) for obs in self.observers
        )

    def on_run_start(self, event: RunStart) -> None:
        for obs in self.observers:
            obs.on_run_start(event)

    def on_step(self, event: StepEvent) -> None:
        for obs in self.observers:
            obs.on_step(event)

    def on_cycle(self, event: CycleEvent) -> None:
        for obs in self.observers:
            obs.on_cycle(event)

    def on_run_end(self, event: RunEnd) -> None:
        for obs in self.observers:
            obs.on_run_end(event)

    def on_campaign_start(self, event: CampaignStart) -> None:
        for obs in self.observers:
            obs.on_campaign_start(event)

    def on_shard_end(self, event: ShardEnd) -> None:
        for obs in self.observers:
            obs.on_shard_end(event)

    def on_campaign_end(self, event: CampaignEnd) -> None:
        for obs in self.observers:
            obs.on_campaign_end(event)

    def on_store_event(self, event: StoreEvent) -> None:
        for obs in self.observers:
            obs.on_store_event(event)

    def on_job_update(self, event: JobUpdate) -> None:
        for obs in self.observers:
            obs.on_job_update(event)


class RecordingObserver(Observer):
    """Keep every event in memory — the test-suite workhorse.

    Grids attached to step/cycle events are live buffers, so they are
    snapshotted (copied) on receipt when ``copy_grids`` is true.  Recording
    is for inspection, so it opts into per-step swap detail.
    """

    wants_swap_detail = True

    def __init__(self, *, copy_grids: bool = False):
        self.copy_grids = copy_grids
        self.run_starts: list[RunStart] = []
        self.steps: list[StepEvent] = []
        self.cycles: list[CycleEvent] = []
        self.run_ends: list[RunEnd] = []
        self.campaign_starts: list[CampaignStart] = []
        self.shard_ends: list[ShardEnd] = []
        self.campaign_ends: list[CampaignEnd] = []
        self.store_events: list[StoreEvent] = []
        self.job_updates: list[JobUpdate] = []

    def on_run_start(self, event: RunStart) -> None:
        self.run_starts.append(event)

    def on_step(self, event: StepEvent) -> None:
        if self.copy_grids and event.grid is not None:
            event = StepEvent(
                t=event.t,
                grid=event.grid.copy(),
                swaps=event.swaps,
                comparisons=event.comparisons,
            )
        self.steps.append(event)

    def on_cycle(self, event: CycleEvent) -> None:
        if self.copy_grids and event.grid is not None:
            event = CycleEvent(
                cycle=event.cycle, t=event.t, grid=event.grid.copy(), info=event.info
            )
        self.cycles.append(event)

    def on_run_end(self, event: RunEnd) -> None:
        self.run_ends.append(event)

    def on_campaign_start(self, event: CampaignStart) -> None:
        self.campaign_starts.append(event)

    def on_shard_end(self, event: ShardEnd) -> None:
        self.shard_ends.append(event)

    def on_campaign_end(self, event: CampaignEnd) -> None:
        self.campaign_ends.append(event)

    def on_store_event(self, event: StoreEvent) -> None:
        self.store_events.append(event)

    def on_job_update(self, event: JobUpdate) -> None:
        self.job_updates.append(event)

    @property
    def step_times(self) -> list[int]:
        return [ev.t for ev in self.steps]
