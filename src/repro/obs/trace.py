"""JSONL trace sink: a durable, schema-stable record of executor events.

Each event becomes one JSON object per line (gzip-compressed when the
path ends in ``.gz``).  Grids are never dumped raw
(a 32x32 batch would drown the file); instead step and cycle events carry a
``grid_digest`` — a short BLAKE2 digest of the working buffer — which is
enough to assert that a replayed run (same seed, same config) visits the
identical sequence of states.

Schema (version 1): every record has ``{"v": 1, "seq": int, "event": str}``
plus per-event fields:

========== ==============================================================
event      fields
========== ==============================================================
run_start  executor, algorithm, side, rows?, cols?, batch_shape, max_steps, order
step       t, swaps?, comparisons?, grid_digest?
cycle      cycle, t, grid_digest?, info?
run_end    steps (int | list | null), completed (bool | null), wall_time
========== ==============================================================
"""

from __future__ import annotations

import gzip
import hashlib
import json
from pathlib import Path
from typing import IO, Any

import numpy as np

from repro.errors import DimensionError
from repro.obs.events import CycleEvent, Observer, RunEnd, RunStart, StepEvent

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "grid_digest",
    "JsonlTraceSink",
    "read_trace",
    "validate_trace_events",
]

TRACE_SCHEMA_VERSION = 1

_EVENT_FIELDS: dict[str, set[str]] = {
    "run_start": {
        "executor", "algorithm", "side", "rows", "cols",
        "batch_shape", "max_steps", "order",
    },
    "step": {"t", "swaps", "comparisons", "grid_digest"},
    "cycle": {"cycle", "t", "grid_digest", "info"},
    "run_end": {"steps", "completed", "wall_time"},
}
_REQUIRED_FIELDS: dict[str, set[str]] = {
    "run_start": {"executor", "algorithm", "side"},
    "step": {"t"},
    "cycle": {"cycle", "t"},
    "run_end": {"wall_time"},
}


def grid_digest(grid: np.ndarray) -> str:
    """Short stable digest of a grid's contents (dtype-independent)."""
    arr = np.ascontiguousarray(np.asarray(grid, dtype=np.int64))
    h = hashlib.blake2b(digest_size=8)
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())
    return h.hexdigest()


def _json_safe(value: Any) -> Any:
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


class JsonlTraceSink(Observer):
    """Write every event as one JSON line to ``path``.

    Usable as a context manager; :meth:`close` flushes and releases the
    file handle.  With ``digest_grids`` (default on) step/cycle events get a
    ``grid_digest`` field; turn it off for very hot loops where even
    digesting is too much.

    A path ending in ``.gz`` (conventionally ``.jsonl.gz``) is written
    gzip-compressed; :func:`read_trace` transparently reads either form, so
    a compressed trace replays identically to a plain one.
    """

    wants_swap_detail = True

    def __init__(self, path: str | Path, *, digest_grids: bool = True):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.digest_grids = digest_grids
        self._fh: IO[str] | None = _open_trace(self.path, "wt")
        self._seq = 0

    def _emit(self, event: str, fields: dict[str, Any]) -> None:
        if self._fh is None:
            raise DimensionError(f"trace sink {self.path} is closed")
        record = {"v": TRACE_SCHEMA_VERSION, "seq": self._seq, "event": event}
        record.update({k: _json_safe(v) for k, v in fields.items() if v is not None})
        self._fh.write(json.dumps(record) + "\n")
        self._seq += 1

    def on_run_start(self, event: RunStart) -> None:
        self._emit(
            "run_start",
            {
                "executor": event.executor,
                "algorithm": event.algorithm,
                "side": event.side,
                # Only worth a field when the mesh is not square.
                "rows": event.rows if event.rows != event.cols else None,
                "cols": event.cols if event.rows != event.cols else None,
                "batch_shape": list(event.batch_shape),
                "max_steps": event.max_steps,
                "order": event.order or None,
            },
        )

    def on_step(self, event: StepEvent) -> None:
        digest = None
        if self.digest_grids and event.grid is not None:
            digest = grid_digest(event.grid)
        self._emit(
            "step",
            {
                "t": event.t,
                "swaps": event.swaps,
                "comparisons": event.comparisons,
                "grid_digest": digest,
            },
        )

    def on_cycle(self, event: CycleEvent) -> None:
        digest = None
        if self.digest_grids and event.grid is not None:
            digest = grid_digest(event.grid)
        self._emit(
            "cycle",
            {
                "cycle": event.cycle,
                "t": event.t,
                "grid_digest": digest,
                "info": event.info or None,
            },
        )

    def on_run_end(self, event: RunEnd) -> None:
        steps = event.steps
        if steps is not None:
            steps = _json_safe(np.asarray(steps)) if not isinstance(steps, int) else steps
        completed = event.completed
        if completed is not None and not isinstance(completed, bool):
            arr = np.asarray(completed)
            completed = bool(arr.all())
        self._emit(
            "run_end",
            {"steps": steps, "completed": completed, "wall_time": event.wall_time},
        )

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _open_trace(path: Path, mode: str) -> IO[str]:
    """Text handle for ``path``; gzip-compressed when it ends in ``.gz``."""
    if path.suffix == ".gz":
        return gzip.open(path, mode, encoding="utf-8")
    return path.open(mode, encoding="utf-8")


def read_trace(path: str | Path) -> list[dict[str, Any]]:
    """Load and validate a JSONL trace (plain or ``.gz``); returns the
    event records."""
    with _open_trace(Path(path), "rt") as fh:
        lines = fh.read().splitlines()
    events = [json.loads(line) for line in lines if line.strip()]
    validate_trace_events(events)
    return events


def validate_trace_events(events: list[dict[str, Any]]) -> None:
    """Raise :class:`DimensionError` if ``events`` violate the schema."""
    for i, record in enumerate(events):
        if record.get("v") != TRACE_SCHEMA_VERSION:
            raise DimensionError(
                f"trace record {i}: unsupported schema version {record.get('v')!r}"
            )
        if record.get("seq") != i:
            raise DimensionError(
                f"trace record {i}: bad sequence number {record.get('seq')!r}"
            )
        event = record.get("event")
        if event not in _EVENT_FIELDS:
            raise DimensionError(f"trace record {i}: unknown event {event!r}")
        fields = set(record) - {"v", "seq", "event"}
        unknown = fields - _EVENT_FIELDS[event]
        if unknown:
            raise DimensionError(
                f"trace record {i} ({event}): unknown fields {sorted(unknown)}"
            )
        missing = _REQUIRED_FIELDS[event] - fields
        if missing:
            raise DimensionError(
                f"trace record {i} ({event}): missing fields {sorted(missing)}"
            )
