"""Lightweight progress reporting for long CLI runs.

:class:`ProgressPrinter` is an observer that prints one line when a run
starts and one when it ends (with step count and wall time), throttled so
batched Monte-Carlo sweeps — hundreds of runs per experiment — do not flood
the terminal: after the first ``verbose_runs`` runs it only reports every
``every``-th run plus a final tally via :meth:`summary`.

Campaign shard lines additionally carry a rolling completion rate and an
ETA (computed from shards actually executed this session — restored
checkpoint shards are excluded, they replay instantly).
"""

from __future__ import annotations

import sys
from typing import TextIO

import numpy as np

from repro.obs.events import (
    CampaignEnd,
    CampaignStart,
    Observer,
    RunEnd,
    RunStart,
    ShardEnd,
)
from repro.obs.timing import StopWatch, format_seconds

__all__ = ["ProgressPrinter"]


class ProgressPrinter(Observer):
    def __init__(
        self,
        stream: TextIO | None = None,
        *,
        every: int = 25,
        verbose_runs: int = 3,
        prefix: str = "  ",
    ):
        self.stream = stream if stream is not None else sys.stderr
        self.every = max(1, every)
        self.verbose_runs = verbose_runs
        self.prefix = prefix
        self.runs_started = 0
        self.runs_finished = 0
        self.steps_total = 0
        self.shards_finished = 0
        self._current: RunStart | None = None
        self._campaign_shards = 0
        self._fresh_shards = 0
        self._campaign_watch: StopWatch | None = None

    def _say(self, message: str) -> None:
        print(f"{self.prefix}{message}", file=self.stream, flush=True)

    def on_run_start(self, event: RunStart) -> None:
        self.runs_started += 1
        self._current = event
        if self.runs_started <= self.verbose_runs:
            batch = (
                f" x{int(np.prod(event.batch_shape))}" if event.batch_shape else ""
            )
            self._say(
                f"run {self.runs_started}: {event.executor} {event.algorithm} "
                f"side={event.side}{batch}"
            )

    def on_run_end(self, event: RunEnd) -> None:
        self.runs_finished += 1
        if event.steps is not None:
            arr = np.asarray(event.steps).reshape(-1)
            self.steps_total += int(arr[arr >= 0].sum())
        if (
            self.runs_finished <= self.verbose_runs
            or self.runs_finished % self.every == 0
        ):
            self._say(
                f"run {self.runs_finished} done in {format_seconds(event.wall_time)} "
                f"({self.steps_total} steps observed so far)"
            )

    def on_campaign_start(self, event: CampaignStart) -> None:
        self.shards_finished = 0
        self._fresh_shards = 0
        self._campaign_shards = event.num_shards
        self._campaign_watch = StopWatch().start()
        resumed = (
            f", {event.resumed_shards} from checkpoint"
            if event.resumed_shards
            else ""
        )
        self._say(
            f"campaign {event.campaign[:12]}: {event.algorithm} "
            f"side={event.side} trials={event.trials} "
            f"({event.num_shards} shards x{event.workers} workers{resumed})"
        )

    def _shard_pace(self) -> str:
        """Rolling rate + ETA over the *fresh* shards of this campaign.

        Checkpoint-restored shards replay instantly and would inflate the
        rate (and collapse the ETA) if counted, so only shards actually
        computed this session feed the estimate.
        """
        if self._campaign_watch is None or self._fresh_shards == 0:
            return ""
        elapsed = self._campaign_watch.elapsed
        if elapsed <= 0:
            return ""
        rate = self._fresh_shards / elapsed
        remaining = self._campaign_shards - self.shards_finished
        if remaining <= 0:
            return f", {rate:.1f} shards/s"
        return f", {rate:.1f} shards/s, eta {format_seconds(remaining / rate)}"

    def on_shard_end(self, event: ShardEnd) -> None:
        self.shards_finished += 1
        if not event.from_checkpoint:
            self._fresh_shards += 1
        # Shards are coarse (seconds each), so throttle far less than runs.
        if (
            event.from_checkpoint
            or self.shards_finished % max(1, self.every // 5) == 0
            or self.shards_finished == self._campaign_shards
        ):
            source = "checkpoint" if event.from_checkpoint else (
                format_seconds(event.elapsed)
                + (f", attempt {event.attempts}" if event.attempts > 1 else "")
            )
            self._say(
                f"shard {event.index} done ({event.trials} trials, {source}) "
                f"[{self.shards_finished}/{self._campaign_shards}"
                f"{self._shard_pace()}]"
            )

    def on_campaign_end(self, event: CampaignEnd) -> None:
        state = "complete" if event.complete else (
            f"partial: {event.completed_shards}/{event.num_shards} shards"
        )
        self._say(
            f"campaign {event.campaign[:12]} {state}: {event.trials} trials "
            f"in {format_seconds(event.elapsed)}"
        )

    def summary(self) -> str:
        return (
            f"{self.runs_finished} runs, {self.steps_total} steps observed"
        )
