"""repro.obs — structured tracing, metrics, and run manifests.

The observability subsystem shared by all three executors (vectorized
engine, reference oracle, mesh machine) and the Monte-Carlo harness:

* :mod:`repro.obs.events` — the :class:`Observer` hook protocol and event
  dataclasses (``RunStart``/``StepEvent``/``CycleEvent``/``RunEnd``);
* :mod:`repro.obs.context` — ambient observer installation
  (:func:`use_observer`) so deep call stacks need no plumbing;
* :mod:`repro.obs.metrics` — counters/gauges/histograms/timers with JSON
  and Prometheus-text exporters, mergeable across processes;
* :mod:`repro.obs.prof` — hierarchical span profiler (``span("compile")``
  ... ``span("checkpoint")``) with cross-process tree grafting;
* :mod:`repro.obs.trace` — JSONL (optionally gzipped) trace sinks with
  grid digests;
* :mod:`repro.obs.manifest` — replayable run manifests;
* :mod:`repro.obs.timing` — stopwatch/phase-timer helpers for the CLI;
* :mod:`repro.obs.progress` — throttled progress printing.

Overhead guarantee: with no observer attached (no argument, no ambient
context), every executor runs its original uninstrumented loop — dispatch is
guarded per run, not per cell.  See docs/OBSERVABILITY.md.
"""

from repro.obs.context import (
    get_active_observer,
    no_observer,
    resolve_observer,
    use_observer,
)
from repro.obs.events import (
    CampaignEnd,
    CampaignStart,
    CompositeObserver,
    CycleEvent,
    JobUpdate,
    Observer,
    RecordingObserver,
    RunEnd,
    RunStart,
    ShardEnd,
    StepEvent,
    StoreEvent,
)
from repro.obs.manifest import (
    RunManifest,
    array_digest,
    load_manifest,
    replay_command,
    table_digest,
    write_manifest,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsObserver,
    MetricsRegistry,
    PotentialObserver,
    Timer,
    record_link_stats,
)
from repro.obs.prof import (
    Span,
    SpanProfiler,
    aggregate_spans,
    current_profiler,
    render_spans,
    span,
    span_from_dict,
    use_profiler,
)
from repro.obs.progress import ProgressPrinter
from repro.obs.timing import PhaseTimer, StopWatch, format_seconds
from repro.obs.trace import (
    JsonlTraceSink,
    grid_digest,
    read_trace,
    validate_trace_events,
)

__all__ = [
    # events
    "Observer",
    "RunStart",
    "StepEvent",
    "CycleEvent",
    "RunEnd",
    "CampaignStart",
    "ShardEnd",
    "CampaignEnd",
    "StoreEvent",
    "JobUpdate",
    "CompositeObserver",
    "RecordingObserver",
    # context
    "use_observer",
    "no_observer",
    "get_active_observer",
    "resolve_observer",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "MetricsObserver",
    "PotentialObserver",
    "record_link_stats",
    # timing
    "StopWatch",
    "PhaseTimer",
    "format_seconds",
    # prof
    "Span",
    "SpanProfiler",
    "span",
    "use_profiler",
    "current_profiler",
    "span_from_dict",
    "aggregate_spans",
    "render_spans",
    # trace
    "JsonlTraceSink",
    "grid_digest",
    "read_trace",
    "validate_trace_events",
    # manifest
    "RunManifest",
    "write_manifest",
    "load_manifest",
    "replay_command",
    "table_digest",
    "array_digest",
    # progress
    "ProgressPrinter",
]
