"""Wall-clock helpers shared by the CLI, the report writer, and tests.

:class:`StopWatch` replaces the ad-hoc ``time.perf_counter()`` pairs that
used to be copy-pasted around experiment invocations; :class:`PhaseTimer`
accumulates named phases (one per experiment) so summaries can report where
a run's time went, and can mirror each phase into a
:class:`~repro.obs.metrics.MetricsRegistry` timer.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

__all__ = ["StopWatch", "PhaseTimer", "format_seconds"]


def format_seconds(seconds: float) -> str:
    """Human-readable duration: ``0.034s``, ``12.3s``, ``3m41s``."""
    if seconds < 0.1:
        return f"{seconds:.3f}s"
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, rest = divmod(seconds, 60.0)
    return f"{int(minutes)}m{rest:02.0f}s"


class StopWatch:
    """Stopwatch usable as a context manager or via explicit :meth:`start`;
    ``elapsed`` is valid during and after either form."""

    def __init__(self) -> None:
        self._start: float | None = None
        self._elapsed = 0.0

    def start(self) -> "StopWatch":
        """Begin (or restart) timing and return ``self`` for chaining:
        ``watch = StopWatch().start()``."""
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """Freeze and return the elapsed time (no-op if never started)."""
        if self._start is not None:
            self._elapsed = time.perf_counter() - self._start
            self._start = None
        return self._elapsed

    def __enter__(self) -> "StopWatch":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def elapsed(self) -> float:
        if self._start is not None:
            return time.perf_counter() - self._start
        return self._elapsed

    def __str__(self) -> str:
        return format_seconds(self.elapsed)


class PhaseTimer:
    """Accumulate named, ordered phases of a larger run.

    >>> timer = PhaseTimer()
    >>> with timer.phase("E-T2"):
    ...     pass
    >>> [name for name, _ in timer.phases]
    ['E-T2']
    """

    def __init__(self, registry: "MetricsRegistry | None" = None):
        self.phases: list[tuple[str, float]] = []
        self.registry = registry

    def phase(self, name: str) -> "_PhaseContext":
        return _PhaseContext(self, name)

    def record(self, name: str, elapsed: float) -> None:
        self.phases.append((name, elapsed))
        if self.registry is not None:
            # One shared timer keeps the exporter output bounded; the
            # per-phase split lives in .phases / render_table().
            self.registry.timer(
                "repro_phase_seconds", "wall-time per named phase"
            ).observe(elapsed)

    @property
    def total(self) -> float:
        return sum(elapsed for _, elapsed in self.phases)

    def render_table(self) -> str:
        """Fixed-width phase/seconds table (for summaries and --progress)."""
        if not self.phases:
            return "(no phases recorded)"
        width = max(len(name) for name, _ in self.phases + [("total", 0.0)])
        lines = [
            f"{name:<{width}s}  {format_seconds(elapsed):>8s}"
            for name, elapsed in self.phases
        ]
        lines.append(f"{'total':<{width}s}  {format_seconds(self.total):>8s}")
        return "\n".join(lines)


class _PhaseContext:
    def __init__(self, timer: PhaseTimer, name: str):
        self._timer = timer
        self._name = name
        self.elapsed = 0.0

    def __enter__(self) -> "_PhaseContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start
        self._timer.record(self._name, self.elapsed)
