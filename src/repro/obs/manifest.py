"""Run manifests: enough recorded configuration to replay any result.

A :class:`RunManifest` pins down everything that determines an experiment's
output — the experiment id, root seed, scale, package version, and the exact
CLI argv — plus a digest of the produced table.  Because every run in this
package is deterministic given (seed, scale), replaying the manifest's
:func:`replay_command` must reproduce the digest bit-for-bit; the test suite
asserts this round trip.

Manifests are written next to trace files by ``python -m repro.experiments
--trace DIR`` so every table under ``results/`` can name the manifest that
produced it.
"""

from __future__ import annotations

import hashlib
import json
import sys
from dataclasses import asdict, dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any

from repro._version import __version__
from repro.errors import DimensionError

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "RunManifest",
    "table_digest",
    "array_digest",
    "write_manifest",
    "load_manifest",
    "replay_command",
]

MANIFEST_SCHEMA_VERSION = 1


def table_digest(table) -> str:
    """Stable digest of a result table's rendered text."""
    return hashlib.blake2b(table.to_text().encode(), digest_size=8).hexdigest()


def array_digest(values) -> str:
    """Stable digest of a numeric sample (dtype + shape + raw bytes).

    Used by campaign manifests and the determinism tests: two samples get
    the same digest iff they are bit-identical arrays, which is exactly
    the "same aggregate regardless of worker count / resume" guarantee.
    """
    import numpy as np

    arr = np.ascontiguousarray(values)
    h = hashlib.blake2b(digest_size=8)
    h.update(str(arr.dtype).encode())
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())
    return h.hexdigest()


@dataclass
class RunManifest:
    """Reproducibility record of one experiment (or raw executor) run."""

    kind: str  # "experiment" | "run" | "campaign" | "verify"
    exp_id: str = ""
    algorithm: str = ""
    # Campaign manifests may carry the experiments' composite (root, side,
    # salt) seed tuples (JSON round-trips them as lists); explicit
    # SeedSequence/Generator seeds are recorded via
    # :func:`repro.randomness.seed_provenance` as an entropy/spawn-key
    # mapping or the "<generator>" marker.
    seed: int | tuple[int, ...] | list[int] | dict | str | None = None
    scale: str = ""
    side: int | None = None
    elapsed_seconds: float | None = None
    result_digest: str = ""
    argv: list[str] = field(default_factory=list)
    python: str = ""
    package_version: str = __version__
    schema_version: int = MANIFEST_SCHEMA_VERSION
    created: str = ""
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in ("experiment", "run", "campaign", "verify"):
            raise DimensionError(
                "manifest kind must be 'experiment', 'run', 'campaign', or "
                f"'verify', got {self.kind!r}"
            )
        if not self.created:
            self.created = datetime.now(timezone.utc).isoformat(timespec="seconds")
        if not self.python:
            self.python = sys.version.split()[0]

    def as_dict(self) -> dict[str, Any]:
        return asdict(self)


def write_manifest(path: str | Path, manifest: RunManifest) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest.as_dict(), indent=2, sort_keys=True) + "\n")
    return path


def load_manifest(path: str | Path) -> RunManifest:
    data = json.loads(Path(path).read_text())
    version = data.get("schema_version")
    if version != MANIFEST_SCHEMA_VERSION:
        raise DimensionError(f"unsupported manifest schema version {version!r}")
    return RunManifest(**data)


def replay_command(manifest: RunManifest) -> str:
    """The CLI invocation that reproduces the manifest's result digest."""
    if manifest.kind != "experiment" or not manifest.exp_id:
        raise DimensionError("replay_command needs an experiment manifest")
    parts = ["python", "-m", "repro.experiments", manifest.exp_id]
    if manifest.scale:
        parts += ["--scale", manifest.scale]
    if manifest.seed is not None:
        parts += ["--seed", str(manifest.seed)]
    return " ".join(parts)
