"""Ambient (context-scoped) observer installation.

Experiments call deep into the executors through several layers
(``registry -> experiment -> montecarlo -> engine``), and threading an
``observer=`` argument through every experiment signature would couple all
of them to observability.  Instead the CLI (and any caller) can install an
observer for a dynamic extent::

    with use_observer(sink):
        run_experiment("E-T2", cfg)   # every executor run inside is traced

Executors resolve their effective observer with :func:`resolve_observer`:
an explicit ``observer=`` argument wins, otherwise the innermost active
context observer is used, otherwise ``None`` (uninstrumented fast path).

The stack is a :class:`contextvars.ContextVar`, so concurrent threads and
asyncio tasks each see their own installation.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.events import Observer

__all__ = ["use_observer", "no_observer", "get_active_observer", "resolve_observer"]

_ACTIVE: ContextVar[tuple["Observer", ...]] = ContextVar("repro_obs_active", default=())


@contextmanager
def use_observer(observer: "Observer") -> Iterator["Observer"]:
    """Install ``observer`` as the ambient observer for the ``with`` body."""
    token = _ACTIVE.set(_ACTIVE.get() + (observer,))
    try:
        yield observer
    finally:
        _ACTIVE.reset(token)


@contextmanager
def no_observer() -> Iterator[None]:
    """Suppress any ambient observer for the ``with`` body.

    Campaign shard execution runs under this: a forked worker process
    inherits the parent's ambient observer stack, and letting a shard's
    thousands of per-step events stream into (say) the parent's JSONL sink
    from several processes at once would interleave garbage.  Shards are
    therefore unobserved at the run level; the campaign runner reports
    shard-granular progress from the coordinating process instead.
    """
    token = _ACTIVE.set(())
    try:
        yield
    finally:
        _ACTIVE.reset(token)


def get_active_observer() -> Optional["Observer"]:
    """The innermost ambient observer, or ``None``."""
    stack = _ACTIVE.get()
    return stack[-1] if stack else None


def resolve_observer(observer: Optional["Observer"]) -> Optional["Observer"]:
    """Effective observer for an executor run: explicit beats ambient."""
    if observer is not None:
        return observer
    return get_active_observer()
