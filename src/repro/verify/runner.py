"""The verification orchestrator behind ``repro verify``.

:func:`run_verify` sweeps the whole property surface in one call:

* **differential** — every deterministic input case from
  :mod:`repro.verify.inputs` through every backend, cell-for-cell
  (:mod:`repro.verify.differential`);
* **static** — the schedule-shape verifier from
  :mod:`repro.analysis.schedule_check` on each (algorithm, side) cell,
  proving the schedule well-formed without executing a comparator;
* **metamorphic** — 0-1 threshold consistency and relabeling invariance on
  the permutation cases, the live lemma observer on the 0-1 cases
  (:mod:`repro.verify.metamorphic`);
* **corpus** — replay of every shrunk reproducer committed under
  ``tests/verify/corpus/`` (:mod:`repro.verify.corpus`).

Budgets pick the sweep size: ``smoke`` is the CI gate (small sides, one
case per family, sampled thresholds — seconds), ``deep`` is the nightly
sweep (more sides including odd ones, full threshold sweeps — minutes).

Every failing check is minimized with :mod:`repro.verify.shrink` and, when
``failure_dir`` is set, serialized as a :class:`~repro.verify.corpus
.Reproducer` for triage.  Progress lands in ``repro_verify_*`` metrics on
the given :class:`~repro.obs.metrics.MetricsRegistry`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.analysis.schedule_check import check_schedule
from repro.backends import available_backends, get_backend
from repro.errors import DimensionError
from repro.obs.metrics import MetricsRegistry
from repro.obs.timing import StopWatch
from repro.randomness import mesh_zero_count
from repro.schedules import (
    available_families,
    build_schedule,
    get_family,
    mesh_shape,
    parse_spec,
)
from repro.verify.corpus import Reproducer, load_corpus, replay_reproducer, save_reproducer
from repro.verify.differential import differential_run
from repro.verify.inputs import generate_cases, generate_linear_cases
from repro.verify.metamorphic import (
    check_relabeling_invariance,
    check_threshold_consistency,
    run_with_invariants,
)
from repro.verify.shrink import shrink_case

__all__ = ["BUDGETS", "VerifyConfig", "CheckRecord", "VerifyReport", "run_verify"]

#: Sweep sizes per budget.  ``thresholds_cap`` bounds the number of z values
#: per threshold-consistency check (None = the full N-1 sweep, which is the
#: only mode that can assert the 0-1 principle's *exact* equality).
BUDGETS = {
    "smoke": {
        "sides": (4, 6),
        "permutations": 1,
        "zero_ones": 1,
        "near_sorted": 1,
        "thresholds_cap": 4,
        "metamorphic_cases": 1,
    },
    "deep": {
        "sides": (4, 5, 6, 8),
        "permutations": 3,
        "zero_ones": 3,
        "near_sorted": 2,
        "thresholds_cap": None,
        "metamorphic_cases": None,  # all eligible cases
    },
}


@dataclass
class VerifyConfig:
    """One verification sweep's shape."""

    budget: str = "smoke"
    algorithms: tuple[str, ...] = field(default_factory=available_families)
    backends: tuple[str, ...] | None = None  # None = every registered backend
    seed: int = 0
    corpus_dir: str | Path | None = None  # replay these reproducers
    failure_dir: str | Path | None = None  # save shrunk counterexamples here
    shrink: bool = True
    max_shrink_evaluations: int = 300

    def __post_init__(self) -> None:
        if self.budget not in BUDGETS:
            raise DimensionError(
                f"budget must be one of {', '.join(BUDGETS)}, got {self.budget!r}"
            )
        for name in self.algorithms:
            # Family names and bracketed specs both validate; unknown names
            # raise UnknownScheduleError listing the registered families.
            get_family(parse_spec(name)[0])
        names = available_backends()
        if self.backends is not None:
            missing = set(self.backends) - set(names)
            if missing:
                raise DimensionError(
                    f"unknown backends {sorted(missing)}; available: {', '.join(names)}"
                )

    @property
    def resolved_backends(self) -> tuple[str, ...]:
        return tuple(self.backends) if self.backends else tuple(available_backends())

    def sides_for(self, algorithm: str) -> tuple[int, ...]:
        """Budgeted sides, honouring ``requires_even_side``.

        A spec that pins its own side (``"shearsort[side=8]"``) sweeps just
        that side — the budget's list would silently rebuild the same
        pinned instance against differently sized inputs.
        """
        base, params = parse_spec(algorithm)
        family = get_family(base)
        if "side" in params:
            return (int(params["side"]),)
        sides = BUDGETS[self.budget]["sides"]
        if family.requires_even_side:
            sides = tuple(s for s in sides if s % 2 == 0)
        return sides


@dataclass
class CheckRecord:
    """One property checked on one (algorithm, side, case)."""

    prop: str  # "differential" | "threshold_consistency" | ...
    algorithm: str
    side: int
    case: str  # input-case name, or corpus filename stem
    violations: list[str] = field(default_factory=list)
    shrunk: str = ""  # ShrinkResult.describe() when a failure was minimized
    saved_to: str = ""  # reproducer path when one was written

    @property
    def ok(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        head = f"{self.prop} {self.algorithm} side={self.side} case={self.case}"
        if self.ok:
            return f"{head}: ok"
        lines = [f"{head}: {len(self.violations)} violation(s)"]
        lines += [f"  {v}" for v in self.violations]
        if self.shrunk:
            lines.append(f"  shrunk to {self.shrunk}")
        if self.saved_to:
            lines.append(f"  reproducer saved to {self.saved_to}")
        return "\n".join(lines)


@dataclass
class VerifyReport:
    """Everything one :func:`run_verify` sweep established."""

    budget: str
    algorithms: tuple[str, ...]
    backends: tuple[str, ...]
    records: list[CheckRecord] = field(default_factory=list)
    corpus_entries: int = 0
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.records)

    @property
    def failures(self) -> list[CheckRecord]:
        return [r for r in self.records if not r.ok]

    def counts_by_property(self) -> dict[str, tuple[int, int]]:
        """``prop -> (checks, failures)`` in insertion order."""
        out: dict[str, tuple[int, int]] = {}
        for record in self.records:
            checks, fails = out.get(record.prop, (0, 0))
            out[record.prop] = (checks + 1, fails + (0 if record.ok else 1))
        return out

    def summary(self) -> str:
        lines = [
            f"verify[{self.budget}] algorithms={','.join(self.algorithms)} "
            f"backends={','.join(self.backends)}"
        ]
        for prop, (checks, fails) in self.counts_by_property().items():
            status = "ok" if fails == 0 else f"{fails} FAILED"
            lines.append(f"  {prop}: {checks} checks, {status}")
        if self.corpus_entries:
            lines.append(f"  corpus: {self.corpus_entries} reproducer(s) replayed")
        lines.append(
            f"{'PASS' if self.ok else 'FAIL'}: "
            f"{len(self.records) - len(self.failures)}/{len(self.records)} checks "
            f"in {self.elapsed_seconds:.2f}s"
        )
        if not self.ok:
            lines += [r.describe() for r in self.failures]
        return "\n".join(lines)

    def to_table(self):
        """The sweep as a :class:`repro.experiments.tables.Table`."""
        from repro.experiments.tables import Table  # avoid an import cycle

        table = Table(
            title=f"repro verify --{self.budget}",
            headers=["property", "checks", "failures"],
        )
        for prop, (checks, fails) in sorted(self.counts_by_property().items()):
            table.add_row(prop, checks, fails)
        table.add_note(
            f"algorithms={','.join(self.algorithms)}; "
            f"backends={','.join(self.backends)}; "
            f"corpus entries replayed={self.corpus_entries}"
        )
        return table


def _threshold_subset(n_cells: int, cap: int | None) -> list[int] | None:
    """A small, spread set of z values for the smoke budget (None = full)."""
    if cap is None:
        return None
    picks = {1, n_cells // 4, mesh_zero_count(n_cells), n_cells - 1}
    return sorted(p for p in picks if 1 <= p < n_cells)[:cap]


def _record(
    report: VerifyReport,
    metrics: "_VerifyMetrics",
    record: CheckRecord,
) -> CheckRecord:
    report.records.append(record)
    metrics.checks.inc()
    if not record.ok:
        metrics.violations.inc(len(record.violations))
    return record


class _VerifyMetrics:
    """The ``repro_verify_*`` instrument family on one registry."""

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        self.checks = registry.counter(
            "repro_verify_checks_total", "verification checks executed"
        )
        self.violations = registry.counter(
            "repro_verify_violations_total", "property violations observed"
        )
        self.counterexamples = registry.counter(
            "repro_verify_counterexamples_total", "shrunk counterexamples produced"
        )
        self.corpus_replays = registry.counter(
            "repro_verify_corpus_replays_total", "corpus reproducers replayed"
        )
        self.seconds = registry.timer(
            "repro_verify_seconds", "wall-time per verification sweep"
        )


def _shrink_failure(
    config: VerifyConfig,
    metrics: _VerifyMetrics,
    record: CheckRecord,
    fails,
    grid: np.ndarray,
    order: str,
) -> None:
    """Minimize a failing grid and optionally persist the reproducer."""
    if not config.shrink:
        return
    grid = np.asarray(grid)
    if grid.ndim != 2 or grid.shape[0] != grid.shape[1]:
        return  # the shrinker's side-reduction machinery is square-only
    try:
        result = shrink_case(
            fails, grid, order=order, max_evaluations=config.max_shrink_evaluations
        )
    except DimensionError:
        return  # flaky predicate (no longer fails): keep the raw record
    record.shrunk = result.describe()
    metrics.counterexamples.inc()
    if config.failure_dir is None:
        return
    rep = Reproducer(
        prop=record.prop,
        algorithm=record.algorithm,
        grid=result.grid.tolist(),
        detail=record.violations[0] if record.violations else "",
        source=f"shrunk from {record.case} side={record.side} ({record.shrunk})",
    )
    record.saved_to = str(save_reproducer(config.failure_dir, rep))


def run_verify(
    config: VerifyConfig | None = None,
    *,
    registry: MetricsRegistry | None = None,
) -> VerifyReport:
    """Run the configured verification sweep and report every check."""
    config = config or VerifyConfig()
    registry = registry or MetricsRegistry()
    metrics = _VerifyMetrics(registry)
    budget = BUDGETS[config.budget]
    backends = config.resolved_backends
    report = VerifyReport(
        budget=config.budget, algorithms=tuple(config.algorithms), backends=backends
    )
    watch = StopWatch().start()

    with metrics.seconds.time():
        for name in config.algorithms:
            for side in config.sides_for(name):
                schedule = build_schedule(name, side, seed=config.seed)
                rows, cols = mesh_shape(schedule, side)
                if rows == cols:
                    cases = generate_cases(
                        side,
                        schedule.order,
                        seed=config.seed,
                        permutations=budget["permutations"],
                        zero_ones=budget["zero_ones"],
                        near_sorted=budget["near_sorted"],
                    )
                else:
                    cases = generate_linear_cases(
                        cols,
                        seed=config.seed,
                        permutations=budget["permutations"],
                        zero_ones=budget["zero_ones"],
                        near_sorted=budget["near_sorted"],
                    )
                _verify_cell(
                    config, metrics, report, schedule, side, (rows, cols), cases
                )

        if config.corpus_dir is not None:
            for rep in load_corpus(config.corpus_dir):
                metrics.corpus_replays.inc()
                report.corpus_entries += 1
                _record(
                    report,
                    metrics,
                    CheckRecord(
                        prop=f"corpus:{rep.prop}",
                        algorithm=rep.algorithm,
                        side=rep.side,
                        case=f"{rep.prop}-{rep.digest}",
                        violations=replay_reproducer(rep),
                    ),
                )

    report.elapsed_seconds = watch.stop()
    return report


def _verify_cell(
    config: VerifyConfig,
    metrics: _VerifyMetrics,
    report: VerifyReport,
    schedule,
    side: int,
    shape: tuple[int, int],
    cases,
) -> None:
    """All properties for one (family instance, side) cell.

    ``schedule`` is the concrete registry-built instance; its name (which
    bakes in any generator parameters and seed) labels every record.
    """
    rows, cols = shape
    name = schedule.name
    square = rows == cols
    backends = config.resolved_backends
    if not square:
        backends = tuple(b for b in backends if get_backend(b).supports_rect)
        if not backends:
            return  # the chosen backends cannot execute this topology
    budget = BUDGETS[config.budget]
    n_cells = rows * cols

    # Static: the schedule-shape verifier, before any comparator runs.
    # A clean report also certifies obliviousness, which is what licenses
    # the 0-1-principle-based metamorphic checks below.
    static = check_schedule(schedule, rows, cols)
    _record(
        report,
        metrics,
        CheckRecord(
            prop="static_schedule",
            algorithm=name,
            side=side,
            case="schedule",
            violations=[f"{v.rule}[{v.severity}]: {v.message}" for v in static.violations],
        ),
    )

    # Differential: every case through every (topology-capable) backend.
    for case in cases:
        diff = differential_run(schedule, case.grid, backends=backends)
        record = _record(
            report,
            metrics,
            CheckRecord(
                prop="differential",
                algorithm=name,
                side=side,
                case=case.name,
                violations=[m.describe() for m in diff.mismatches],
            ),
        )
        if not record.ok:
            _shrink_failure(
                config,
                metrics,
                record,
                lambda g: not differential_run(schedule, g, backends=backends).ok,
                case.grid,
                schedule.order,
            )

    # Metamorphic: permutation-shaped cases only (both checks need ranks).
    perms = [
        c
        for c in cases
        if sorted(np.asarray(c.grid).reshape(-1).tolist()) == list(range(n_cells))
    ]
    cap = budget["metamorphic_cases"]
    zs = _threshold_subset(n_cells, budget["thresholds_cap"])
    for case in perms if cap is None else perms[:cap]:
        record = _record(
            report,
            metrics,
            CheckRecord(
                prop="threshold_consistency",
                algorithm=name,
                side=side,
                case=case.name,
                violations=check_threshold_consistency(
                    schedule, case.grid, thresholds=zs
                ),
            ),
        )
        if not record.ok:
            _shrink_failure(
                config,
                metrics,
                record,
                lambda g: bool(
                    check_threshold_consistency(schedule, g, thresholds=zs)
                ),
                case.grid,
                schedule.order,
            )
        record = _record(
            report,
            metrics,
            CheckRecord(
                prop="relabeling_invariance",
                algorithm=name,
                side=side,
                case=case.name,
                violations=check_relabeling_invariance(
                    schedule, case.grid, seed=config.seed
                ),
            ),
        )
        if not record.ok:
            _shrink_failure(
                config,
                metrics,
                record,
                lambda g: bool(
                    check_relabeling_invariance(schedule, g, seed=config.seed)
                ),
                case.grid,
                schedule.order,
            )

    # Live lemma invariants on every 0-1 case.  The lemmas are statements
    # about square runs; the observer deactivates on 1 x N meshes, so the
    # property is only claimed where it can actually be checked.
    if not square:
        return
    zero_ones = [
        c for c in cases if set(np.unique(np.asarray(c.grid)).tolist()) <= {0, 1}
    ]
    for case in zero_ones:
        record = _record(
            report,
            metrics,
            CheckRecord(
                prop="lemma_invariants",
                algorithm=name,
                side=side,
                case=case.name,
                violations=run_with_invariants(schedule, case.grid),
            ),
        )
        if not record.ok:
            _shrink_failure(
                config,
                metrics,
                record,
                lambda g: bool(run_with_invariants(schedule, g)),
                case.grid,
                schedule.order,
            )
