"""Regression corpus: shrunk counterexamples, serialized and replayable.

Every failing input the verification harness minimizes is worth keeping: a
schedule transcription bug that slipped in once can slip in again, and a
six-cell grid that caught it re-runs in microseconds.  A corpus entry is a
small JSON document — property name, algorithm, grid, and the failure it
reproduced — written under ``tests/verify/corpus/`` with a content-derived
filename (re-saving the same reproducer is idempotent).

Replaying an entry runs the named property against the *current* code:
entries must pass (the recorded bug stays fixed).  The committed corpus is
replayed both by ``repro verify`` runs and by the test suite.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.errors import DimensionError
from repro.obs.manifest import array_digest

__all__ = ["Reproducer", "save_reproducer", "load_corpus", "replay_reproducer"]

#: Properties a corpus entry may name, and how replay checks them.
_REPLAYABLE_PROPERTIES = (
    "differential",
    "threshold_consistency",
    "relabeling_invariance",
    "lemma_invariants",
)


@dataclass
class Reproducer:
    """One minimized counterexample with enough context to replay it."""

    prop: str  # one of _REPLAYABLE_PROPERTIES
    algorithm: str  # registry name
    grid: list[list[int]]
    detail: str = ""  # what failed when this was recorded
    source: str = ""  # e.g. "shrunk from perm-1 side=8 (fault: drop-step)"
    backend: str = "vectorized"
    schema_version: int = 1

    def __post_init__(self) -> None:
        if self.prop not in _REPLAYABLE_PROPERTIES:
            raise DimensionError(
                f"unknown corpus property {self.prop!r}; "
                f"known: {', '.join(_REPLAYABLE_PROPERTIES)}"
            )
        arr = np.asarray(self.grid)
        if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
            raise DimensionError(
                f"corpus grids must be square, got shape {arr.shape}"
            )

    @property
    def side(self) -> int:
        return len(self.grid)

    @property
    def array(self) -> np.ndarray:
        return np.asarray(self.grid, dtype=np.int64)

    @property
    def digest(self) -> str:
        return array_digest(self.array)


def save_reproducer(directory: str | Path, rep: Reproducer) -> Path:
    """Write ``rep`` under ``directory`` with a content-addressed filename."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{rep.prop}-{rep.algorithm}-s{rep.side}-{rep.digest}.json"
    path.write_text(json.dumps(asdict(rep), indent=2, sort_keys=True) + "\n")
    return path


def load_corpus(directory: str | Path) -> list[Reproducer]:
    """Load every corpus entry under ``directory`` (sorted by filename)."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    entries = []
    for path in sorted(directory.glob("*.json")):
        data = json.loads(path.read_text())
        version = data.pop("schema_version", 1)
        if version != 1:
            raise DimensionError(
                f"unsupported corpus schema version {version!r} in {path}"
            )
        entries.append(Reproducer(schema_version=version, **data))
    return entries


def replay_reproducer(rep: Reproducer) -> list[str]:
    """Re-run the recorded property on the current code.

    Returns the list of violations the property reports *today* — empty
    means the recorded bug stays fixed.  Imported lazily to keep the corpus
    module free of heavy dependencies.
    """
    from repro.verify.differential import differential_run
    from repro.verify.metamorphic import (
        check_relabeling_invariance,
        check_threshold_consistency,
        run_with_invariants,
    )

    grid = rep.array
    if rep.prop == "differential":
        report = differential_run(rep.algorithm, grid)
        return [m.describe() for m in report.mismatches]
    if rep.prop == "threshold_consistency":
        return check_threshold_consistency(rep.algorithm, grid, backend=rep.backend)
    if rep.prop == "relabeling_invariance":
        return check_relabeling_invariance(rep.algorithm, grid, backend=rep.backend)
    if rep.prop == "lemma_invariants":
        return run_with_invariants(
            rep.algorithm, grid.astype(np.int8), backend=rep.backend
        )
    raise DimensionError(f"unknown corpus property {rep.prop!r}")
