"""Metamorphic properties grounded in the paper's combinatorial structure.

Three families of properties that must hold for *any* correct transcription
of the five algorithms, checked on live runs:

**0-1 threshold consistency** (Section 2).  An oblivious comparison-exchange
schedule sorts a permutation grid :math:`\\mathcal{A}` at step ``t`` iff it
has sorted every threshold projection :math:`\\mathcal{A}^{01}_z` (zeros at
the ``z`` smallest entries, ``z = 1 .. N-1``) by step ``t``.  So the
permutation's sorting time must equal the *maximum* over the thresholds'
sorting times, and sorting must commute with thresholding
(:func:`check_threshold_consistency`).

**Order-isomorphism / relabeling invariance.**  Compare-exchange networks
see only the relative order of values: applying any strictly increasing map
``f`` to every entry must leave the step count unchanged and map the final
grid through the same ``f`` (:func:`check_relabeling_invariance`).

**Lemma invariants on live traces.**  The statically-tested lemma checkers
of :mod:`repro.zeroone.invariants` (Lemmas 1-3 for the row-major
algorithms, the Z/Y monotone chains of Lemmas 5-8 and 10 for the snakelike
ones) are wired into any observed run through :class:`InvariantObserver`,
so every 0-1 execution — including the ones the differential runner and
the Monte-Carlo samplers perform anyway — doubles as a lemma check.

All check functions return a list of human-readable violation strings —
empty when the property holds — matching the ``check_lemma*`` convention.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.backends import get_backend, run_sort
from repro.backends.base import resolve_step_cap
from repro.core.runner import resolve_algorithm
from repro.core.schedule import LineOp, Schedule
from repro.errors import DimensionError
from repro.obs.context import no_observer
from repro.randomness import as_generator, as_seed_sequence
from repro.obs.events import Observer, RunEnd, RunStart, StepEvent
from repro.schedules import execution_backend
from repro.zeroone.invariants import (
    check_lemma1_column_sort,
    check_lemma2_odd_row_sort,
    check_lemma3_even_row_sort,
    check_lemma10,
    check_lemmas_5_to_8,
)
from repro.zeroone.threshold import is_zero_one

__all__ = [
    "check_threshold_consistency",
    "check_relabeling_invariance",
    "monotone_relabelings",
    "InvariantObserver",
    "run_with_invariants",
]


def _mesh_dims(grid: np.ndarray, what: str) -> tuple[int, int, int]:
    """Validate an unbatched square or ``1 × N`` grid → (rows, cols, side).

    ``side`` is the registry's notion: the row count on squares, the array
    length on linear (``1 × N``) meshes — exactly what
    :func:`repro.core.runner.resolve_algorithm` needs to resolve sided
    families against this grid.
    """
    if grid.ndim != 2 or (grid.shape[0] != grid.shape[1] and grid.shape[0] != 1):
        raise DimensionError(
            f"{what} takes one unbatched square or 1xN grid, "
            f"got shape {grid.shape}"
        )
    rows, cols = (int(v) for v in grid.shape)
    return rows, cols, cols if rows == 1 else rows


def _threshold(grid: np.ndarray, zeros: int) -> np.ndarray:
    """Rank-threshold projection for any mesh shape.

    Same semantics as :func:`repro.zeroone.threshold.threshold_at` (0 at
    the positions of the ``zeros`` smallest entries) without that helper's
    square-grid validation, so linear ``1 × N`` grids project too.
    """
    arr = np.asarray(grid)
    if zeros == 0:
        return np.ones_like(arr, dtype=np.int8)
    kth = np.sort(arr.reshape(-1))[zeros - 1]
    return (arr > kth).astype(np.int8)


def _sorting_times(
    algorithm: str | Schedule, grids: np.ndarray, backend: str, max_steps: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(steps, completed, finals) for a stack of single grids on ``backend``."""
    be = get_backend(backend)
    schedule = resolve_algorithm(algorithm)
    with no_observer():
        if be.supports_batch:
            outcome = run_sort(be, schedule, grids, max_steps=max_steps)
            return (
                np.atleast_1d(np.asarray(outcome.steps)),
                np.atleast_1d(np.asarray(outcome.completed)),
                np.asarray(outcome.final).reshape(grids.shape),
            )
        steps, completed, finals = [], [], []
        for grid in grids:
            outcome = run_sort(be, schedule, grid, max_steps=max_steps)
            steps.append(int(np.asarray(outcome.steps)))
            completed.append(bool(np.all(outcome.completed)))
            finals.append(np.asarray(outcome.final))
        return np.asarray(steps), np.asarray(completed), np.stack(finals)


def check_threshold_consistency(
    algorithm: str | Schedule,
    grid: np.ndarray,
    *,
    backend: str | None = None,
    thresholds: list[int] | None = None,
    max_steps: int | None = None,
) -> list[str]:
    """Section 2's reduction, as an executable property of one run.

    For a permutation grid with sorting time ``t_f``, every threshold
    projection must (a) sort within ``t_f`` steps, (b) equal the threshold
    of the sorted permutation afterwards, and — when all ``N-1`` thresholds
    are checked — (c) the slowest projection must take *exactly* ``t_f``
    steps.

    Accepts square and linear (``1 × N``) grids; ``backend=None`` picks
    the schedule's default execution backend.
    """
    grid = np.asarray(grid)
    rows, cols, side = _mesh_dims(grid, "threshold consistency")
    n_cells = rows * cols
    if len(np.unique(grid)) != n_cells:
        raise DimensionError("threshold consistency needs distinct entries")

    schedule = resolve_algorithm(algorithm, side)
    backend = execution_backend(schedule, backend)
    if max_steps is None:
        max_steps = resolve_step_cap(schedule, rows, cols)
    perm_steps, perm_done, perm_final = _sorting_times(
        schedule, grid[None], backend, max_steps
    )
    violations: list[str] = []
    if not bool(perm_done[0]):
        return [f"permutation run hit the step cap ({max_steps}) unsorted"]
    t_f = int(perm_steps[0])

    full_sweep = thresholds is None
    zs = list(range(1, n_cells)) if full_sweep else sorted(set(thresholds))
    if any(z < 1 or z >= n_cells for z in zs):
        raise DimensionError(f"thresholds must lie in 1..{n_cells - 1}")

    projected = np.stack([_threshold(grid, z) for z in zs])
    steps, completed, finals = _sorting_times(schedule, projected, backend, max_steps)
    for z, z_steps, z_done, z_final in zip(zs, steps, completed, finals):
        if not bool(z_done):
            violations.append(f"threshold z={z} hit the step cap unsorted")
            continue
        if int(z_steps) > t_f:
            violations.append(
                f"threshold z={z} took {int(z_steps)} steps > permutation's {t_f}"
            )
        expected = _threshold(perm_final[0], int(z))
        if not np.array_equal(z_final, expected):
            violations.append(
                f"threshold z={z}: sorted projection differs from projected sort"
            )
    if full_sweep and np.all(completed) and int(steps.max(initial=0)) != t_f:
        violations.append(
            f"slowest threshold took {int(steps.max())} steps but the "
            f"permutation took {t_f} — the 0-1 reduction says they must match"
        )
    return violations


def monotone_relabelings(n_cells: int, *, seed: int = 0) -> list[tuple[str, Callable]]:
    """Named strictly increasing value maps used by the relabeling check."""
    rng = as_generator(as_seed_sequence((seed, n_cells, 97)))
    table = np.sort(rng.choice(10 * n_cells, size=n_cells, replace=False))

    def affine(values: np.ndarray) -> np.ndarray:
        return 3 * values + 7

    def tabulated(values: np.ndarray) -> np.ndarray:
        return table[values]

    return [("affine-3v+7", affine), ("random-monotone-table", tabulated)]


def check_relabeling_invariance(
    algorithm: str | Schedule,
    grid: np.ndarray,
    *,
    backend: str | None = None,
    seed: int = 0,
    max_steps: int | None = None,
) -> list[str]:
    """Order-isomorphism: a strictly monotone relabeling of the values must
    not change the network's behaviour.

    The relabeled run must take exactly the same number of steps, and its
    final grid must be the relabeling of the original final grid.  Requires
    a permutation grid of ``0..N-1`` (the relabeling tables index by rank).
    Accepts square and linear (``1 × N``) grids; ``backend=None`` picks
    the schedule's default execution backend.
    """
    grid = np.asarray(grid)
    rows, cols, side = _mesh_dims(grid, "relabeling invariance")
    n_cells = rows * cols
    if sorted(grid.reshape(-1).tolist()) != list(range(n_cells)):
        raise DimensionError("relabeling invariance needs a 0..N-1 permutation grid")

    schedule = resolve_algorithm(algorithm, side)
    backend = execution_backend(schedule, backend)
    if max_steps is None:
        max_steps = resolve_step_cap(schedule, rows, cols)
    base_steps, base_done, base_final = _sorting_times(
        schedule, grid[None], backend, max_steps
    )
    violations: list[str] = []
    if not bool(base_done[0]):
        return [f"base run hit the step cap ({max_steps}) unsorted"]
    for name, fn in monotone_relabelings(n_cells, seed=seed):
        relabeled = fn(grid)
        r_steps, r_done, r_final = _sorting_times(
            schedule, relabeled[None], backend, max_steps
        )
        if not bool(r_done[0]):
            violations.append(f"{name}: relabeled run hit the step cap unsorted")
            continue
        if int(r_steps[0]) != int(base_steps[0]):
            violations.append(
                f"{name}: {int(r_steps[0])} steps != base {int(base_steps[0])}"
            )
        if not np.array_equal(r_final[0], fn(base_final[0])):
            violations.append(f"{name}: final grid is not the relabeled base final")
    return violations


def _col_only_step(step) -> bool:
    return all(
        isinstance(op, LineOp) and op.axis == "col" for op in step
    )


#: Step-phase (1-based) to lemma checker for the two row-major algorithms.
_ROW_MAJOR_PHASE_CHECKS = {
    "row_major_row_first": {
        1: ("Lemma 2", check_lemma2_odd_row_sort),
        2: ("Lemma 1", check_lemma1_column_sort),
        3: ("Lemma 3", check_lemma3_even_row_sort),
        4: ("Lemma 1", check_lemma1_column_sort),
    },
    "row_major_col_first": {
        1: ("Lemma 1", check_lemma1_column_sort),
        2: ("Lemma 2", check_lemma2_odd_row_sort),
        3: ("Lemma 1", check_lemma1_column_sort),
        4: ("Lemma 3", check_lemma3_even_row_sort),
    },
}


class InvariantObserver(Observer):
    """Check the paper's lemmas on every observed 0-1 run, live.

    Attach it (directly or via :func:`repro.obs.use_observer`) to any run of
    a registered algorithm on a single 0-1 grid and it applies, per step:

    * Lemma 1 on every column-only step (any algorithm — a column sort
      cannot change column weights);
    * Lemmas 2 and 3 on the row-sort phases of the two row-major
      algorithms (even sides, matching the paper's setting);

    and, when the run ends, the trace-level monotone chains:

    * Lemmas 5-8 (the Z statistics) for ``snake_1``;
    * Lemma 10 (the Y statistics) for ``snake_2``.

    Runs it cannot judge — batched runs, non-0-1 grids, backends that do
    not expose per-step grids — are skipped silently (``checked_steps``
    stays 0), so the observer is safe to leave attached globally.
    ``initial_grid`` supplies the pre-step-1 state so the first step's
    before/after lemmas can be checked too.

    Violations accumulate in :attr:`violations` across runs.
    """

    def __init__(
        self,
        *,
        initial_grid: np.ndarray | None = None,
        max_trace_steps: int = 4096,
    ):
        self.violations: list[str] = []
        self.checked_steps = 0
        self.completed_runs = 0
        self._initial = None if initial_grid is None else np.array(initial_grid)
        self._max_trace = int(max_trace_steps)
        self._reset()

    def _reset(self) -> None:
        self._active = False
        self._algorithm = ""
        self._side = 0
        self._cycle_len = 0
        self._prev: np.ndarray | None = None
        self._trace: list[np.ndarray] = []
        self._schedule: Schedule | None = None

    # ------------------------------------------------------------------
    # Observer hooks.
    # ------------------------------------------------------------------

    def on_run_start(self, event: RunStart) -> None:
        self._reset()
        if event.batch_shape not in ((), None) or event.rows != event.cols:
            return
        try:
            self._schedule = resolve_algorithm(event.algorithm)
        except Exception:
            return  # not a registry algorithm; nothing to assert
        self._active = True
        self._algorithm = event.algorithm
        self._side = event.side
        self._cycle_len = len(self._schedule.steps)
        if self._initial is not None and self._initial.shape == (
            event.side,
            event.side,
        ):
            self._prev = self._initial

    def on_step(self, event: StepEvent) -> None:
        if not self._active:
            return
        if event.grid is None:
            self._active = False  # backend exposes no per-step grids
            return
        grid = np.array(event.grid)
        if not is_zero_one(grid):
            self._active = False  # lemmas are statements about A^01 runs
            return
        phase = (event.t - 1) % self._cycle_len + 1
        prev, self._prev = self._prev, grid
        if len(self._trace) < self._max_trace:
            self._trace.append(grid)

        if prev is None or prev.shape != grid.shape:
            return
        even_side = self._side % 2 == 0
        checks = []
        if self._algorithm in _ROW_MAJOR_PHASE_CHECKS:
            if even_side:
                checks.append(_ROW_MAJOR_PHASE_CHECKS[self._algorithm][phase])
        elif _col_only_step(self._schedule.steps[phase - 1]):
            checks.append(("Lemma 1", check_lemma1_column_sort))
        for label, checker in checks:
            self.checked_steps += 1
            for msg in checker(prev, grid):
                self.violations.append(
                    f"{self._algorithm} side={self._side} t={event.t} {label}: {msg}"
                )

    def on_run_end(self, event: RunEnd) -> None:
        if not self._active:
            return
        if self._side % 2 == 0 and len(self._trace) >= 4:
            if self._algorithm == "snake_1":
                for msg in check_lemmas_5_to_8(self._trace):
                    self.violations.append(
                        f"snake_1 side={self._side} Lemmas 5-8: {msg}"
                    )
            elif self._algorithm == "snake_2":
                for msg in check_lemma10(self._trace):
                    self.violations.append(
                        f"snake_2 side={self._side} Lemma 10: {msg}"
                    )
        self.completed_runs += 1
        self._reset()


def run_with_invariants(
    algorithm: str | Schedule,
    grid: np.ndarray,
    *,
    backend: str | None = None,
    max_steps: int | None = None,
) -> list[str]:
    """Sort one 0-1 grid with an :class:`InvariantObserver` attached and
    return the lemma violations it observed (empty when all hold).

    ``backend=None`` picks the schedule's default execution backend."""
    grid = np.asarray(grid)
    if not is_zero_one(grid):
        raise DimensionError("run_with_invariants takes a 0-1 grid")
    schedule = resolve_algorithm(algorithm, int(np.asarray(grid).shape[-1]))
    observer = InvariantObserver(initial_grid=grid)
    run_sort(execution_backend(schedule, backend), schedule, grid,
             max_steps=max_steps, observer=observer)
    return observer.violations
