"""repro.verify: differential and metamorphic verification harness.

The executors are cross-checked three ways, all driven from deterministic
inputs so any failure replays from a seed:

* :mod:`repro.verify.differential` — every backend must produce the same
  trajectory, cell for cell, on the same input;
* :mod:`repro.verify.metamorphic` — properties any correct transcription
  must satisfy: the Section 2 0-1 threshold reduction, order-isomorphism
  under monotone relabelings, and the paper's lemma invariants checked on
  live runs via :class:`~repro.verify.metamorphic.InvariantObserver`;
* :mod:`repro.verify.shrink` / :mod:`repro.verify.corpus` — failing inputs
  are minimized to small reproducers and committed to a replayable
  regression corpus under ``tests/verify/corpus/``.

Run the whole sweep with ``repro verify --smoke`` (CI gate) or ``--deep``
(nightly), or programmatically via :func:`repro.verify.run_verify`.
"""

from repro.verify.corpus import (
    Reproducer,
    load_corpus,
    replay_reproducer,
    save_reproducer,
)
from repro.verify.differential import DifferentialReport, Mismatch, differential_run
from repro.verify.inputs import InputCase, generate_cases, reversed_grid, sorted_target
from repro.verify.metamorphic import (
    InvariantObserver,
    check_relabeling_invariance,
    check_threshold_consistency,
    monotone_relabelings,
    run_with_invariants,
)
from repro.verify.mutations import (
    MUTATIONS,
    all_mutants,
    classify_mutants,
    classify_mutants_semantic,
    mutate_schedule,
)
from repro.verify.runner import (
    BUDGETS,
    CheckRecord,
    VerifyConfig,
    VerifyReport,
    run_verify,
)
from repro.verify.shrink import ShrinkResult, shrink_case, shrink_entries

__all__ = [
    "BUDGETS",
    "CheckRecord",
    "DifferentialReport",
    "InputCase",
    "InvariantObserver",
    "MUTATIONS",
    "Mismatch",
    "Reproducer",
    "ShrinkResult",
    "VerifyConfig",
    "VerifyReport",
    "all_mutants",
    "classify_mutants",
    "classify_mutants_semantic",
    "check_relabeling_invariance",
    "check_threshold_consistency",
    "differential_run",
    "generate_cases",
    "load_corpus",
    "monotone_relabelings",
    "mutate_schedule",
    "replay_reproducer",
    "reversed_grid",
    "run_verify",
    "run_with_invariants",
    "save_reproducer",
    "shrink_case",
    "shrink_entries",
    "sorted_target",
]
