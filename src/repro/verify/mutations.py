"""Schedule mutations: deliberately broken algorithms for harness self-test.

A verification harness that has never caught a bug proves nothing.  These
operators produce *minimally* wrong variants of a schedule — one dropped
op, one flipped comparator direction, one swapped step pair — modelled on
the transcription mistakes that are actually easy to make when copying the
paper's step lists.  The test suite injects them and asserts the
differential and metamorphic suites flag every mutant; the shrinker demo
minimizes one mutant's failure into the committed corpus.

Mutants keep the original registry ``name`` on purpose: a transcription
bug would too, and the phase-keyed lemma checks must fire against the
mutant exactly as they would against the genuine article.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.schedule import LineOp, PairOp, Schedule, Step
from repro.errors import DimensionError

if TYPE_CHECKING:
    from repro.analysis.semantics import SortednessCertificate

__all__ = [
    "MUTATIONS",
    "mutate_schedule",
    "all_mutants",
    "classify_mutants",
    "classify_mutants_semantic",
]


def _drop_op(schedule: Schedule, step_index: int) -> Schedule:
    """Remove the last op of one step (e.g. forget the wrap-around)."""
    steps = list(schedule.steps)
    ops = steps[step_index].ops
    if len(ops) == 1:
        raise DimensionError(
            f"step {step_index + 1} has a single op; dropping it would empty the step"
        )
    steps[step_index] = Step(*ops[:-1])
    return replace(schedule, steps=tuple(steps))


def _flip_direction(schedule: Schedule, step_index: int) -> Schedule:
    """Reverse the comparator direction of one step's first line op."""
    steps = list(schedule.steps)
    ops = list(steps[step_index].ops)
    for i, op in enumerate(ops):
        if isinstance(op, LineOp):
            ops[i] = replace(op, direction=-op.direction)
            steps[step_index] = Step(*ops)
            return replace(schedule, steps=tuple(steps))
    raise DimensionError(f"step {step_index + 1} has no line op to flip")


def _flip_offset(schedule: Schedule, step_index: int) -> Schedule:
    """Turn an odd transposition step into an even one (or vice versa)."""
    steps = list(schedule.steps)
    ops = list(steps[step_index].ops)
    for i, op in enumerate(ops):
        if isinstance(op, LineOp):
            ops[i] = replace(op, offset=1 - op.offset)
            steps[step_index] = Step(*ops)
            return replace(schedule, steps=tuple(steps))
    raise DimensionError(f"step {step_index + 1} has no line op to re-offset")


def _swap_steps(schedule: Schedule, step_index: int) -> Schedule:
    """Exchange a step with its successor (cyclic order transcription slip)."""
    steps = list(schedule.steps)
    j = (step_index + 1) % len(steps)
    steps[step_index], steps[j] = steps[j], steps[step_index]
    return replace(schedule, steps=tuple(steps))


def _shift_pair(schedule: Schedule, step_index: int) -> Schedule:
    """Slide a step's first pair comparator one cell toward the origin.

    The classic off-by-one transcription slip for generated adjacent
    networks: ``(p, p+1)`` copied as ``(p-1, p)``.  The mutant is still a
    perfectly well-formed adjacent comparator, so the shape rules cannot
    object — but the comparator sequence no longer covers what the
    generator proved it covers, which is exactly the kind of bug only the
    0-1 sortedness certifier (or a dynamic run) can catch.
    """
    steps = list(schedule.steps)
    ops = list(steps[step_index].ops)
    for i, op in enumerate(ops):
        if not isinstance(op, PairOp):
            continue
        (low_r, low_c), (high_r, high_c) = op.low, op.high
        if low_r == high_r and low_c > 0:
            ops[i] = PairOp((low_r, low_c - 1), (high_r, high_c - 1))
        elif low_c == high_c and low_r > 0:
            ops[i] = PairOp((low_r - 1, low_c), (high_r - 1, high_c))
        else:
            continue
        steps[step_index] = Step(*ops)
        return replace(schedule, steps=tuple(steps))
    raise DimensionError(
        f"step {step_index + 1} has no pair op that can shift toward the origin"
    )


MUTATIONS = {
    "drop-op": _drop_op,
    "flip-direction": _flip_direction,
    "flip-offset": _flip_offset,
    "swap-steps": _swap_steps,
    "shift-pair": _shift_pair,
}


def mutate_schedule(schedule: Schedule, mutation: str, step_index: int = 0) -> Schedule:
    """Apply one named mutation to ``schedule`` at ``step_index`` (0-based)."""
    if mutation not in MUTATIONS:
        raise DimensionError(
            f"unknown mutation {mutation!r}; known: {', '.join(MUTATIONS)}"
        )
    if not 0 <= step_index < len(schedule.steps):
        raise DimensionError(
            f"step_index {step_index} out of range for {len(schedule.steps)} steps"
        )
    return MUTATIONS[mutation](schedule, step_index)


def all_mutants(schedule: Schedule) -> list[tuple[str, Schedule]]:
    """Every applicable ``(label, mutant)`` of ``schedule``.

    Mutations that do not apply at a given step (e.g. dropping the only op)
    are skipped; mutants identical to the original (a symmetric step swap)
    are filtered out.
    """
    mutants: list[tuple[str, Schedule]] = []
    for name in MUTATIONS:
        for index in range(len(schedule.steps)):
            try:
                mutant = mutate_schedule(schedule, name, index)
            except DimensionError:
                continue
            if mutant.steps == schedule.steps:
                continue
            mutants.append((f"{name}@{index + 1}", mutant))
    return mutants


def classify_mutants(
    schedule: Schedule, rows: int, cols: int | None = None
) -> list[tuple[str, Schedule, str]]:
    """Triage every mutant of ``schedule`` with the static verifier.

    Returns ``(label, mutant, kind)`` triples where ``kind`` is

    * ``"static"`` — the mutant violates the schedule shape rules of
      :mod:`repro.analysis.schedule_check` and is caught *without executing
      a single comparator* (dropped wraps, flipped directions/offsets);
    * ``"semantic"`` — the mutant is a perfectly well-formed schedule that
      merely sorts wrong (step-order swaps); only the differential and
      metamorphic suites can catch it.

    The division tells the harness self-test what each layer must prove:
    the dynamic suites are only *required* for the semantic residue.
    """
    from repro.analysis.schedule_check import check_schedule

    out: list[tuple[str, Schedule, str]] = []
    for label, mutant in all_mutants(schedule):
        report = check_schedule(mutant, rows, cols)
        out.append((label, mutant, "static" if report.violations else "semantic"))
    return out


def classify_mutants_semantic(
    schedule: Schedule,
    rows: int,
    cols: int | None = None,
    *,
    corpus_dir: str | Path | None = None,
) -> list[tuple[str, Schedule, str, "SortednessCertificate | None"]]:
    """Triage every mutant with the full static stack, certifier included.

    Refines :func:`classify_mutants` (which stays as the cheap two-way
    split) into ``(label, mutant, kind, certificate)`` where ``kind`` is

    * ``"structural"`` — the shape rules of
      :mod:`repro.analysis.schedule_check` reject the mutant outright; no
      certificate is attempted (``certificate`` is ``None`` when the
      0-1 reduction does not even apply);
    * ``"statically-refuted"`` — well-formed and oblivious, but the
      0-1 certifier *proves* it never sorts and carries a minimal 0-1
      counterexample in ``certificate.witness``;
    * ``"semantic-only"`` — everything static passes (the certificate is
      CERTIFIED or UNKNOWN); only the dynamic differential/metamorphic
      suites can catch it, so that is the residue they must cover.

    With ``corpus_dir``, each square statically-refuted witness is saved
    as a ``differential`` reproducer under the *parent* schedule's name:
    replaying it runs the genuine algorithm, which must sort the witness
    — a permanent regression input born from a static refutation.
    """
    from repro.analysis.schedule_check import check_schedule
    from repro.analysis.semantics import certify_sortedness

    out: list[tuple[str, Schedule, str, "SortednessCertificate | None"]] = []
    for label, mutant in all_mutants(schedule):
        report = check_schedule(mutant, rows, cols)
        if report.structural:
            out.append((label, mutant, "structural", None))
            continue
        cert = certify_sortedness(mutant, report.rows, report.cols, report=report)
        if cert.refuted:
            if corpus_dir is not None and cert.witness is not None:
                if report.rows == report.cols:
                    from repro.verify.corpus import Reproducer, save_reproducer

                    save_reproducer(
                        corpus_dir,
                        Reproducer(
                            prop="differential",
                            algorithm=schedule.name,
                            grid=[list(row) for row in cert.witness],
                            detail=(
                                f"0-1 witness on which mutant {label} of "
                                f"{schedule.name!r} never sorts"
                            ),
                            source=(
                                f"static 0-1 refutation of {label} "
                                f"(semantics certifier)"
                            ),
                        ),
                    )
            out.append((label, mutant, "statically-refuted", cert))
        else:
            out.append((label, mutant, "semantic-only", cert))
    return out
