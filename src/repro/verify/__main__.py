"""Command-line entry point: ``python -m repro.verify`` (or ``repro verify``).

Examples::

    python -m repro.verify --smoke
    python -m repro.verify --deep --algorithms snake_1 snake_2
    python -m repro.verify --smoke --backends vectorized reference \\
        --manifest out/manifest.json --metrics-out out/metrics.json \\
        --failures out/counterexamples

Exit status 0 when every check passes, 1 on any violation, 2 on bad usage.
``--manifest`` records a replayable ``kind="verify"`` run manifest;
``--metrics-out`` dumps the ``repro_verify_*`` instrument family (JSON, or
Prometheus text when the filename ends in ``.prom``); ``--failures DIR``
saves shrunk counterexamples as corpus-format reproducers for triage.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import DimensionError
from repro.schedules import available_families
from repro.obs.manifest import RunManifest, table_digest, write_manifest
from repro.obs.metrics import MetricsRegistry
from repro.verify.runner import VerifyConfig, run_verify

#: The committed regression corpus, replayed by default when it exists.
DEFAULT_CORPUS = Path(__file__).resolve().parents[3] / "tests" / "verify" / "corpus"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro verify",
        description="Differential + metamorphic verification of every backend.",
    )
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--smoke", action="store_true",
        help="CI-sized sweep: small sides, one case per family (default)",
    )
    group.add_argument(
        "--deep", action="store_true",
        help="nightly-sized sweep: more sides, full threshold sweeps",
    )
    parser.add_argument(
        "--algorithms", nargs="+", metavar="NAME", default=None,
        help="schedule families to verify — bare names or specs like "
             "'random_network[side=8,seed=3]' "
             f"(default: all of {', '.join(available_families())})",
    )
    parser.add_argument(
        "--backends", nargs="+", metavar="NAME", default=None,
        help="backends to cross-check (default: every registered backend)",
    )
    parser.add_argument("--seed", type=int, default=0, help="input-generation seed")
    parser.add_argument(
        "--corpus", metavar="DIR", default=None,
        help=f"regression corpus to replay (default: {DEFAULT_CORPUS} when present; "
             "pass an empty string to skip)",
    )
    parser.add_argument(
        "--failures", metavar="DIR", default=None,
        help="save shrunk counterexamples of any failing check under DIR",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="report failures raw instead of minimizing them",
    )
    parser.add_argument(
        "--manifest", metavar="FILE", default=None,
        help="write a kind='verify' run manifest to FILE",
    )
    parser.add_argument(
        "--metrics-out", metavar="FILE", default=None,
        help="write repro_verify_* metrics to FILE (JSON, or Prometheus "
             "text when FILE ends in .prom)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="print only the final summary line"
    )
    args = parser.parse_args(argv)

    budget = "deep" if args.deep else "smoke"
    if args.corpus is None:
        corpus_dir = DEFAULT_CORPUS if DEFAULT_CORPUS.is_dir() else None
    else:
        corpus_dir = Path(args.corpus) if args.corpus else None

    try:
        config = VerifyConfig(
            budget=budget,
            algorithms=tuple(args.algorithms) if args.algorithms
            else available_families(),
            backends=tuple(args.backends) if args.backends else None,
            seed=args.seed,
            corpus_dir=corpus_dir,
            failure_dir=args.failures,
            shrink=not args.no_shrink,
        )
    except DimensionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.metrics_out:
        # Create (and probe) the destination directory before the expensive
        # verification sweep, so a bad path fails in milliseconds.
        out_parent = Path(args.metrics_out).parent
        try:
            out_parent.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            print(
                f"error: --metrics-out directory {out_parent} is not "
                f"writable: {exc}",
                file=sys.stderr,
            )
            return 2

    registry = MetricsRegistry()
    report = run_verify(config, registry=registry)

    summary = report.summary()
    print(summary.splitlines()[-1] if args.quiet and report.ok else summary)

    if args.metrics_out:
        out = Path(args.metrics_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        if out.suffix == ".prom":
            out.write_text(registry.to_prometheus_text())
        else:
            registry.to_json(out)
        print(f"wrote {out}")

    if args.manifest:
        manifest = RunManifest(
            kind="verify",
            exp_id="E-VERIFY",
            seed=config.seed,
            scale=budget,
            elapsed_seconds=report.elapsed_seconds,
            result_digest=table_digest(report.to_table()),
            argv=list(argv) if argv is not None else sys.argv[1:],
            extra={
                "budget": budget,
                "algorithms": list(report.algorithms),
                "backends": list(report.backends),
                "checks": len(report.records),
                "failures": len(report.failures),
                "corpus_entries": report.corpus_entries,
                "counts_by_property": {
                    prop: {"checks": checks, "failures": fails}
                    for prop, (checks, fails) in report.counts_by_property().items()
                },
            },
        )
        path = write_manifest(args.manifest, manifest)
        print(f"wrote {path}")

    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
