"""Deterministic input generation for the verification harness.

Every verification run draws its inputs from here, so a failing check can
always be replayed from ``(seed, side, order)`` alone.  Four families are
covered:

* ``permutation`` — uniformly random permutation grids (the paper's
  average-case input model);
* ``zero_one`` — random threshold matrices :math:`\\mathcal{A}^{01}` with
  the paper's zero count (the reduction every lemma is stated on);
* ``adversarial`` — structured worst-case-shaped inputs: the target order
  reversed, transposed, and rotated, plus extreme 0-1 patterns
  (checkerboard, anti-sorted block) whose long travel distances exercise
  the wrap-around comparisons;
* ``near_sorted`` — the sorted target perturbed by a few random adjacent
  transpositions, probing the completion-detection edge (runs that finish
  in O(1) steps).

The draw is deterministic in ``(seed, side, order)``: families are
generated from independent ``SeedSequence.spawn``-style child streams, so
adding cases to one family never shifts another family's draws.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.orders import target_grid
from repro.errors import DimensionError
from repro.randomness import (
    as_generator,
    mesh_zero_count,
    paper_zero_count,
    random_permutation_grid,
    random_permutation_mesh,
    random_zero_one_grid,
    random_zero_one_mesh,
    shard_seed_sequence,
)

__all__ = [
    "InputCase",
    "generate_cases",
    "generate_linear_cases",
    "sorted_target",
    "reversed_grid",
]

#: Stable per-family child-stream indices (appending families keeps old draws).
_FAMILY_STREAM = {"permutation": 0, "zero_one": 1, "near_sorted": 2}

#: Seed-key discriminator for linear draws, so a 1 x N array and an N x N
#: square never share a stream even at equal ``(seed, side)``.
_LINEAR_KEY = 1


@dataclass(frozen=True)
class InputCase:
    """One verification input: a grid plus enough naming to replay it."""

    name: str
    family: str  # "permutation" | "zero_one" | "adversarial" | "near_sorted"
    grid: np.ndarray

    @property
    def side(self) -> int:
        return int(self.grid.shape[-1])


def sorted_target(side: int, order: str) -> np.ndarray:
    """The sorted permutation grid ``0..N-1`` in ``order``."""
    return target_grid(np.arange(side * side, dtype=np.int64), side, order)


def reversed_grid(side: int, order: str) -> np.ndarray:
    """The target order traversed backwards — every element maximally far
    from home along the sorting direction."""
    target = sorted_target(side, order)
    n_cells = side * side
    return (n_cells - 1 - target).astype(np.int64)


def _family_rng(seed: int, side: int, family: str):
    stream = _FAMILY_STREAM[family]
    return as_generator(shard_seed_sequence((seed, side), stream))


def _linear_family_rng(seed: int, length: int, family: str):
    stream = _FAMILY_STREAM[family]
    return as_generator(shard_seed_sequence((seed, length, _LINEAR_KEY), stream))


def generate_cases(
    side: int,
    order: str,
    *,
    seed: int = 0,
    permutations: int = 2,
    zero_ones: int = 2,
    near_sorted: int = 2,
    adversarial: bool = True,
) -> list[InputCase]:
    """The deterministic case list for one ``(side, order)`` cell.

    ``permutations``/``zero_ones``/``near_sorted`` set the per-family count
    (0 disables a family); ``adversarial`` toggles the structured cases.
    """
    if side < 2:
        raise DimensionError(f"verification needs side >= 2, got {side}")
    cases: list[InputCase] = []

    rng = _family_rng(seed, side, "permutation")
    for i in range(permutations):
        cases.append(
            InputCase(f"perm-{i}", "permutation", random_permutation_grid(side, rng=rng))
        )

    rng = _family_rng(seed, side, "zero_one")
    for i in range(zero_ones):
        cases.append(
            InputCase(f"zero-one-{i}", "zero_one", random_zero_one_grid(side, rng=rng))
        )

    if adversarial:
        target = sorted_target(side, order)
        cases.append(InputCase("reversed", "adversarial", reversed_grid(side, order)))
        cases.append(
            InputCase("transposed", "adversarial", np.ascontiguousarray(target.T))
        )
        cases.append(
            InputCase("rotated", "adversarial", np.ascontiguousarray(target[::-1, ::-1]))
        )
        if side % 2 == 0:
            # 0-1 extremes share the paper's zero count, so they stay inside
            # the A^01 distribution's support.
            checker = np.indices((side, side)).sum(axis=0) % 2
            cases.append(
                InputCase("checkerboard", "adversarial", checker.astype(np.int8))
            )
        zeros = paper_zero_count(side)
        block = np.ones(side * side, dtype=np.int8)
        block[-zeros:] = 0  # zeroes packed at the end: maximal travel
        cases.append(
            InputCase("anti-block", "adversarial", block.reshape(side, side))
        )

    rng = _family_rng(seed, side, "near_sorted")
    target = sorted_target(side, order)
    n_cells = side * side
    for i in range(near_sorted):
        grid = target.copy().reshape(-1)
        for _ in range(max(1, side)):
            j = int(rng.integers(0, n_cells - 1))
            grid[j], grid[j + 1] = grid[j + 1], grid[j]
        cases.append(
            InputCase(f"near-sorted-{i}", "near_sorted", grid.reshape(side, side))
        )
    return cases


def generate_linear_cases(
    length: int,
    *,
    seed: int = 0,
    permutations: int = 2,
    zero_ones: int = 2,
    near_sorted: int = 2,
    adversarial: bool = True,
) -> list[InputCase]:
    """The deterministic case list for one linear (``1 × length``) cell.

    The linear-topology sibling of :func:`generate_cases`, for registry
    families that sort ``1 × N`` arrays (``odd_even``, the random sorting
    networks).  Same four input families, with the 2-D structured cases
    replaced by their 1-D analogues: the reversed array, the alternating
    0-1 pattern, and the zeroes-packed-at-the-end block.  Draws are keyed
    on ``(seed, length)`` in streams disjoint from the square generator's.
    """
    if length < 2:
        raise DimensionError(f"verification needs length >= 2, got {length}")
    shape = (1, int(length))
    cases: list[InputCase] = []

    rng = _linear_family_rng(seed, length, "permutation")
    for i in range(permutations):
        cases.append(
            InputCase(
                f"perm-{i}", "permutation", random_permutation_mesh(shape, rng=rng)
            )
        )

    rng = _linear_family_rng(seed, length, "zero_one")
    for i in range(zero_ones):
        cases.append(
            InputCase(
                f"zero-one-{i}", "zero_one", random_zero_one_mesh(shape, rng=rng)
            )
        )

    if adversarial:
        cases.append(
            InputCase(
                "reversed",
                "adversarial",
                np.arange(length - 1, -1, -1, dtype=np.int64).reshape(shape),
            )
        )
        # Alternating 0-1 has exactly the mesh zero count, so it sits inside
        # the A^01 distribution's support; the packed block maximizes travel.
        alternating = (np.arange(length) % 2).astype(np.int8)
        cases.append(InputCase("alternating", "adversarial", alternating.reshape(shape)))
        zeros = mesh_zero_count(length)
        block = np.ones(length, dtype=np.int8)
        block[-zeros:] = 0
        cases.append(InputCase("anti-block", "adversarial", block.reshape(shape)))

    rng = _linear_family_rng(seed, length, "near_sorted")
    for i in range(near_sorted):
        grid = np.arange(length, dtype=np.int64)
        for _ in range(max(1, length // 2)):
            j = int(rng.integers(0, length - 1))
            grid[j], grid[j + 1] = grid[j + 1], grid[j]
        cases.append(InputCase(f"near-sorted-{i}", "near_sorted", grid.reshape(shape)))
    return cases
