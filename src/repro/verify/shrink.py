"""Counterexample minimization: from a failing grid to a tiny reproducer.

When a differential or metamorphic check fails, the raw failing input is
usually a big random grid — true but useless for debugging.  The shrinker
reduces it along two axes, in order:

1. **side** — candidate inputs at smaller mesh sides (supplied by a
   caller-provided generator, typically :func:`repro.verify.inputs
   .generate_cases` plus the structured adversarial grids) are tried
   smallest-first; the first side with any failing candidate wins;
2. **entries** — at the chosen side, the grid is greedily walked toward
   its sorted target one value-preserving transposition at a time (the
   multiset of values never changes, so permutations stay permutations and
   0-1 matrices keep their zero count), keeping every move that still
   fails.  The fixpoint is 1-minimal: no single transposition toward the
   target preserves the failure.

The predicate is treated as a black box; an evaluation budget bounds the
work on expensive properties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from repro.core.orders import target_grid, validate_grid
from repro.errors import DimensionError

__all__ = ["ShrinkResult", "shrink_entries", "shrink_case"]

Predicate = Callable[[np.ndarray], bool]


@dataclass
class ShrinkResult:
    """A minimized failing input plus how much work finding it took."""

    grid: np.ndarray
    side: int
    evaluations: int
    side_shrunk: bool  # a smaller side than the original still failed
    distance: int  # cells still differing from the sorted target

    def describe(self) -> str:
        return (
            f"side={self.side} distance-to-sorted={self.distance} "
            f"({self.evaluations} predicate evaluations)"
        )


class _Budget:
    def __init__(self, limit: int):
        self.limit = int(limit)
        self.used = 0

    def spent(self) -> bool:
        return self.used >= self.limit

    def check(self, fails: Predicate, grid: np.ndarray) -> bool:
        if self.spent():
            return False
        self.used += 1
        return bool(fails(grid))


def shrink_entries(
    fails: Predicate,
    grid: np.ndarray,
    *,
    order: str = "row_major",
    max_evaluations: int = 2000,
) -> ShrinkResult:
    """Minimize a failing grid's entries at fixed side.

    Repeatedly tries the transposition that moves one more cell to its
    sorted-target value, keeping the move whenever the predicate still
    fails, until no single move preserves the failure (or the evaluation
    budget runs out).  Returns the final grid; ``fails(result.grid)`` is
    guaranteed True.
    """
    grid = np.asarray(grid)
    side = validate_grid(grid)
    if grid.ndim != 2:
        raise DimensionError("shrink_entries takes one unbatched grid")
    if not fails(grid):
        raise DimensionError("shrink_entries needs a failing grid to start from")
    budget = _Budget(max_evaluations)
    target = target_grid(grid, side, order)
    best = grid.copy()

    improved = True
    while improved and not budget.spent():
        improved = False
        flat = best.reshape(-1)
        flat_target = target.reshape(-1)
        for idx in range(flat.size):
            if flat[idx] == flat_target[idx]:
                continue
            # Swap the wrong value with a *misplaced* cell holding the value
            # this position wants — fixes both cells, so the distance to the
            # sorted target strictly decreases and the walk terminates.
            donors = np.nonzero((flat == flat_target[idx]) & (flat != flat_target))[0]
            if donors.size == 0:
                continue
            j = int(donors[0])
            candidate = flat.copy()
            candidate[idx], candidate[j] = candidate[j], candidate[idx]
            candidate = candidate.reshape(side, side)
            if budget.check(fails, candidate):
                best = candidate
                improved = True
                break
    distance = int(np.sum(best != target))
    return ShrinkResult(
        grid=best,
        side=side,
        evaluations=budget.used,
        side_shrunk=False,
        distance=distance,
    )


def shrink_case(
    fails: Predicate,
    grid: np.ndarray,
    *,
    order: str = "row_major",
    candidates_for_side: Callable[[int], Iterable[np.ndarray]] | None = None,
    sides: Iterable[int] = (),
    max_evaluations: int = 2000,
) -> ShrinkResult:
    """Full shrink: smaller sides first, then entry minimization.

    ``candidates_for_side(side)`` yields candidate grids at a smaller side
    (the caller controls parity and family — e.g. only even sides for the
    row-major algorithms); ``sides`` lists the sides to try, ascending.
    Without candidates the side phase is skipped and only entries shrink.
    """
    grid = np.asarray(grid)
    if not fails(grid):
        raise DimensionError("shrink_case needs a failing grid to start from")
    budget_left = int(max_evaluations)
    best = grid
    side_shrunk = False

    if candidates_for_side is not None:
        budget = _Budget(max_evaluations // 2)
        found = None
        for side in sorted(set(int(s) for s in sides)):
            if side >= int(np.asarray(grid).shape[-1]) or budget.spent():
                continue
            for candidate in candidates_for_side(side):
                if budget.check(fails, candidate):
                    found = np.asarray(candidate)
                    break
            if found is not None:
                break
        budget_left -= budget.used
        if found is not None:
            best = found
            side_shrunk = True

    result = shrink_entries(
        fails, best, order=order, max_evaluations=max(budget_left, 1)
    )
    result.side_shrunk = side_shrunk
    return result
