"""Differential execution: every backend must tell the same story.

The backend layer promises that all registered executors — strided NumPy
kernels, the pure-Python oracle, the processor-level mesh machine, the
rectangular kernels — agree *cell for cell* at every step, not just on the
final grid.  :func:`differential_run` checks that promise on one concrete
input: a reference backend's trajectory is recorded with
:func:`repro.backends.iter_run`, then every other backend is stepped over
the same input and compared per step, per cell, plus step-count and
completion agreement from :func:`repro.backends.run_sort`.

Any disagreement is reported as a :class:`Mismatch` with the first
diverging step and a cell-level summary — exactly the artifact the
shrinker (:mod:`repro.verify.shrink`) minimizes into a reproducer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backends import available_backends, get_backend, iter_run, run_sort
from repro.backends.base import resolve_step_cap
from repro.core.runner import resolve_algorithm
from repro.core.schedule import Schedule
from repro.errors import DimensionError
from repro.obs.context import no_observer

__all__ = ["Mismatch", "DifferentialReport", "differential_run"]


@dataclass(frozen=True)
class Mismatch:
    """One observed disagreement between two backends."""

    kind: str  # "trajectory" | "steps" | "completion" | "final"
    backend: str
    reference: str
    t: int | None = None
    detail: str = ""

    def describe(self) -> str:
        at = f" at step {self.t}" if self.t is not None else ""
        return f"{self.kind}{at}: {self.backend} vs {self.reference}: {self.detail}"


@dataclass
class DifferentialReport:
    """Outcome of one differential run across a set of backends."""

    algorithm: str
    side: int
    backends: tuple[str, ...]
    steps: dict[str, int] = field(default_factory=dict)
    mismatches: list[Mismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def describe(self) -> str:
        head = (
            f"differential {self.algorithm} side={self.side} "
            f"backends={','.join(self.backends)}"
        )
        if self.ok:
            return f"{head}: agree after {max(self.steps.values(), default=0)} steps"
        return head + "\n" + "\n".join(m.describe() for m in self.mismatches)


def _first_cell_diff(a: np.ndarray, b: np.ndarray) -> str:
    diff = np.argwhere(np.asarray(a) != np.asarray(b))
    if diff.size == 0:
        return "equal"
    r, c = (int(v) for v in diff[0])
    return (
        f"{diff.shape[0]} differing cell(s), first at ({r}, {c}): "
        f"{a[r, c]} vs {b[r, c]}"
    )


def differential_run(
    algorithm: str | Schedule,
    grid: np.ndarray,
    *,
    backends: tuple[str, ...] | list[str] | None = None,
    reference: str | None = None,
    max_steps: int | None = None,
    check_trajectory: bool = True,
) -> DifferentialReport:
    """Run ``grid`` through every backend and compare the runs.

    Parameters
    ----------
    backends:
        Backend names to cross-check; defaults to every registered backend
        (:func:`repro.backends.available_backends`).
    reference:
        The backend whose trajectory the others are compared against;
        defaults to ``"vectorized"`` when present, else the first backend.
    check_trajectory:
        Compare the full per-step grids, not just step counts and finals.
        Costs one extra pass per backend; leave on except for large sides.

    The input grid is never modified.  Observers are suppressed for the
    comparison runs so ambient tracing does not see duplicate events.

    Grids may be square (``side × side``) or linear (``1 × N`` — the
    registry's linear topology).  For linear grids the default backend set
    is filtered to the rect-capable backends, and the default reference is
    ``"rect"``.
    """
    grid = np.asarray(grid)
    if grid.ndim != 2 or (grid.shape[0] != grid.shape[1] and grid.shape[0] != 1):
        raise DimensionError(
            f"differential_run takes one square or 1xN grid, got shape {grid.shape}"
        )
    rows, cols = (int(v) for v in grid.shape)
    linear = rows == 1
    side = cols if linear else rows
    schedule = resolve_algorithm(algorithm, side)
    if backends is not None:
        names = tuple(backends)
    else:
        names = tuple(
            name
            for name in available_backends()
            if not linear or get_backend(name).supports_rect
        )
    if not names:
        raise DimensionError("no backends to cross-check")
    if reference is not None:
        ref = reference
    else:
        default_ref = "rect" if linear else "vectorized"
        ref = default_ref if default_ref in names else names[0]
    if ref not in names:
        names = (ref, *names)
    if max_steps is None:
        max_steps = resolve_step_cap(schedule, rows, cols)

    report = DifferentialReport(algorithm=schedule.name, side=side, backends=names)

    with no_observer():
        outcomes = {}
        for name in names:
            outcome = run_sort(name, schedule, grid, max_steps=max_steps)
            outcomes[name] = outcome
            report.steps[name] = int(np.asarray(outcome.steps).max())

        ref_outcome = outcomes[ref]
        for name in names:
            if name == ref:
                continue
            outcome = outcomes[name]
            if bool(np.all(outcome.completed)) != bool(np.all(ref_outcome.completed)):
                report.mismatches.append(
                    Mismatch(
                        "completion", name, ref,
                        detail=f"completed={bool(np.all(outcome.completed))} "
                        f"vs {bool(np.all(ref_outcome.completed))}",
                    )
                )
            if report.steps[name] != report.steps[ref]:
                report.mismatches.append(
                    Mismatch(
                        "steps", name, ref,
                        detail=f"{report.steps[name]} vs {report.steps[ref]} steps",
                    )
                )
            if not np.array_equal(outcome.final, ref_outcome.final):
                report.mismatches.append(
                    Mismatch(
                        "final", name, ref,
                        detail=_first_cell_diff(outcome.final, ref_outcome.final),
                    )
                )

        if check_trajectory:
            horizon = max(report.steps.values(), default=0)
            horizon = min(max(horizon, 1), max_steps)
            ref_traj = [
                snap for _, snap in iter_run(ref, schedule, grid, horizon)
            ]
            for name in names:
                if name == ref:
                    continue
                for (t, snap), ref_snap in zip(
                    iter_run(name, schedule, grid, horizon), ref_traj
                ):
                    if not np.array_equal(snap, ref_snap):
                        report.mismatches.append(
                            Mismatch(
                                "trajectory", name, ref, t=t,
                                detail=_first_cell_diff(snap, ref_snap),
                            )
                        )
                        break
    return report
