"""Processor-level mesh backend.

Wraps :class:`~repro.mesh.machine.MeshMachine` in the backend protocol.
The machine keeps its construction-time wire check (a schedule either fits
the topology or raises :class:`~repro.errors.MissingWireError` at
``prepare``) and its per-wire traffic accounting; the driver owns the event
stream, so the backend silences the machine's own manual-stepping
dispatch path by detaching its observer.

Step events from this backend carry ``grid=None`` (assembling an array
from the processor memories every step is the expensive part) plus the
step's comparison count; cycle events carry the materialized grid.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.backends.base import Backend, ExecutorRun, StepStats
from repro.core.orders import target_grid
from repro.core.schedule import Schedule
from repro.mesh.machine import MeshMachine

if TYPE_CHECKING:
    from repro.mesh.topology import MeshTopology

__all__ = ["MeshRun", "MeshBackend"]


class MeshRun(ExecutorRun):
    """One processor-level run; exposes ``machine`` for wire statistics."""

    def __init__(self, machine: MeshMachine, target: np.ndarray):
        self.machine = machine
        self.target = target
        self.rows = machine.side
        self.cols = machine.side
        self.batch_shape = ()
        self.cycle_len = len(machine.schedule.steps)

    def apply_step(self, t: int, *, want_swaps: bool = False) -> StepStats:
        self.machine.t = t - 1
        swaps = self.machine.step()
        return StepStats(swaps=swaps, comparisons=self.machine.comparisons_at(t))

    def done_mask(self) -> np.ndarray:
        return np.array(np.array_equal(self.machine.as_array(), self.target))

    def materialize(self) -> np.ndarray:
        return self.machine.as_array()

    def step_grid(self) -> np.ndarray | None:
        return None


class MeshBackend(Backend):
    """The explicit-wire, processor-per-cell executor.

    A private instance can carry a fixed :class:`MeshTopology` (as
    ``mesh_sort`` does); the registry's shared instance builds a topology
    matching each schedule.  ``last_machine`` keeps the machine of the most
    recent ``prepare`` so callers can read per-wire statistics afterwards.
    """

    name = "mesh"
    event_executor = "mesh"
    supports_batch = False
    supports_rect = False
    counts_swaps = True

    def __init__(self, topology: "MeshTopology | None" = None):
        self.topology = topology
        self.last_machine: MeshMachine | None = None

    def prepare(self, schedule: Schedule, grid: np.ndarray) -> MeshRun:
        machine = MeshMachine(schedule, grid, topology=self.topology)
        # The driver is the sole event emitter for driven runs; the machine's
        # own dispatch only serves manual ``machine.step()`` usage.
        machine.observer = None
        self.last_machine = machine
        target = target_grid(machine.as_array(), machine.side, schedule.order)
        return MeshRun(machine, target)
