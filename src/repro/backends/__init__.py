"""Unified executor backend layer.

One driver (:mod:`repro.backends.driver`) runs any registered backend —
``"vectorized"``, ``"reference"``, ``"mesh"``, ``"rect"`` — over one
schedule compiler with an LRU compilation cache, producing one
:class:`SortOutcome` type.  The historical per-executor entry points in
:mod:`repro.core.engine`, :mod:`repro.core.reference`,
:mod:`repro.mesh.machine`, and :mod:`repro.rect.engine` are thin shims over
this layer.
"""

from repro.backends.base import (
    Backend,
    ExecutorRun,
    SortOutcome,
    StepStats,
    step_cap,
    wants_swap_detail,
)
from repro.backends.compile import (
    CacheInfo,
    CompiledSchedule,
    compiled_schedule,
    schedule_cache_clear,
    schedule_cache_info,
)
from repro.backends.driver import iter_run, run_sort, run_steps
from repro.backends.registry import (
    available_backends,
    get_backend,
    register_backend,
)

__all__ = [
    "Backend",
    "ExecutorRun",
    "SortOutcome",
    "StepStats",
    "step_cap",
    "wants_swap_detail",
    "CacheInfo",
    "CompiledSchedule",
    "compiled_schedule",
    "schedule_cache_clear",
    "schedule_cache_info",
    "run_sort",
    "run_steps",
    "iter_run",
    "get_backend",
    "register_backend",
    "available_backends",
]
