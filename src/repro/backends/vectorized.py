"""Vectorized (batched) NumPy backend.

The run state is a working copy of the input batch plus a cached
:class:`~repro.backends.compile.CompiledSchedule`; each step is a handful
of strided-slice ``np.minimum``/``np.maximum`` kernels, so a whole batch of
independent grids shaped ``(..., side, side)`` advances in one call — how
the Monte-Carlo experiments simulate hundreds of permutations at once.

Per-step swap counts are not a by-product here: they require diffing the
grid against a pre-step copy, so :class:`ArrayRun` only does that when the
driver asks (``want_swaps=True``).
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import Backend, ExecutorRun, StepStats
from repro.backends.compile import CompiledSchedule, compiled_schedule
from repro.core.orders import target_grid, validate_grid
from repro.core.schedule import Schedule

__all__ = ["ArrayRun", "VectorizedBackend"]


class ArrayRun(ExecutorRun):
    """Run state shared by the array-kernel backends (square and rect)."""

    def __init__(self, compiled: CompiledSchedule, work: np.ndarray, target: np.ndarray):
        self.compiled = compiled
        self.work = work
        self.target = target
        self.rows = compiled.rows
        self.cols = compiled.cols
        self.batch_shape = tuple(work.shape[:-2])
        self.cycle_len = len(compiled)

    def apply_step(self, t: int, *, want_swaps: bool = False) -> StepStats:
        if not want_swaps:
            self.compiled.apply_step(self.work, t)
            return StepStats()
        before = self.work.copy()
        self.compiled.apply_step(self.work, t)
        swaps = int(np.count_nonzero(before != self.work)) // 2
        return StepStats(swaps=swaps)

    def done_mask(self) -> np.ndarray:
        return np.all(self.work == self.target, axis=(-2, -1))

    def materialize(self) -> np.ndarray:
        return self.work

    def iter_grid(self, copy: bool) -> np.ndarray:
        return self.work.copy() if copy else self.work


class VectorizedBackend(Backend):
    """The batched strided-slice executor (historical ``engine`` module)."""

    name = "vectorized"
    event_executor = "engine"
    supports_batch = True
    supports_rect = False
    counts_swaps = False

    def prepare(self, schedule: Schedule, grid: np.ndarray) -> ArrayRun:
        work = np.array(grid, copy=True)
        side = validate_grid(work)
        compiled = compiled_schedule(schedule, side)
        target = target_grid(work, side, schedule.order)
        return ArrayRun(compiled, work, target)
