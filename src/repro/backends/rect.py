"""Rectangular-mesh backend.

Same strided-slice kernels as the vectorized backend — the unified compiler
in :mod:`repro.backends.compile` treats the square case as ``rows == cols``
— but validated and targeted for ``rows x cols`` grids.  On square meshes it
agrees cell-for-cell with the vectorized backend (the backend test suite
asserts this through the unified API).
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import Backend
from repro.backends.compile import compiled_schedule
from repro.backends.vectorized import ArrayRun
from repro.core.schedule import Schedule
from repro.rect.orders import rect_target_grid, validate_rect

__all__ = ["RectBackend"]


class RectBackend(Backend):
    """Array-kernel executor for (batched) rectangular meshes."""

    name = "rect"
    event_executor = "rect"
    supports_batch = True
    supports_rect = True
    counts_swaps = False

    def prepare(self, schedule: Schedule, grid: np.ndarray) -> ArrayRun:
        work = np.array(grid, copy=True)
        rows, cols = validate_rect(work)
        compiled = compiled_schedule(schedule, rows, cols)
        target = rect_target_grid(work, rows, cols, schedule.order)
        return ArrayRun(compiled, work, target)
