"""One strided-slice kernel compiler for square and rectangular meshes.

Historically the package carried two near-identical compilers: the square
one in ``repro.core.engine`` and the rectangular one in
``repro.rect.engine``.  This module collapses them: every op is compiled
against a ``rows x cols`` mesh, and the square case is simply
``rows == cols`` (with the square-specific side validation preserved).

Because the Monte-Carlo samplers call the same ``(algorithm, side)`` pair
hundreds of times, compilation is memoized in a small LRU cache keyed by
``(schedule, rows, cols)`` — schedules are frozen, value-hashable
dataclasses, so two structurally identical schedules share an entry.  Use
:func:`compiled_schedule` to hit the cache; constructing
:class:`CompiledSchedule` directly always compiles fresh.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, NamedTuple

import numpy as np

from repro.analysis.schedule_check import ScheduleReport, check_schedule
from repro.analysis.semantics import peek_certificate
from repro.core.schedule import (
    FORWARD,
    LineOp,
    Op,
    PairOp,
    Schedule,
    WrapOp,
    lines_slice,
    pair_count,
)
from repro.errors import DimensionError

__all__ = [
    "CompiledSchedule",
    "compiled_schedule",
    "schedule_cache_info",
    "schedule_cache_clear",
    "CacheInfo",
]

Kernel = Callable[[np.ndarray], None]


def _compile_line_op(op: LineOp, rows: int, cols: int) -> Kernel:
    """Build an in-place kernel for one transposition op on grids shaped
    ``(..., rows, cols)``: a row op's pairing is governed by the column
    count, a column op's by the row count."""
    length = cols if op.axis == "row" else rows
    p = pair_count(op.offset, length)
    ls = lines_slice(op.lines)
    lo_slice = slice(op.offset, op.offset + 2 * p, 2)
    hi_slice = slice(op.offset + 1, op.offset + 2 * p, 2)
    forward = op.direction == FORWARD

    if p == 0:
        def kernel_noop(grid: np.ndarray) -> None:
            return
        return kernel_noop

    if op.axis == "row":
        def kernel(grid: np.ndarray) -> None:
            a = grid[..., ls, lo_slice]
            b = grid[..., ls, hi_slice]
            lo = np.minimum(a, b)
            hi = np.maximum(a, b)
            if forward:
                a[...] = lo
                b[...] = hi
            else:
                a[...] = hi
                b[...] = lo
    else:
        def kernel(grid: np.ndarray) -> None:
            a = grid[..., lo_slice, ls]
            b = grid[..., hi_slice, ls]
            lo = np.minimum(a, b)
            hi = np.maximum(a, b)
            if forward:
                a[...] = lo
                b[...] = hi
            else:
                a[...] = hi
                b[...] = lo

    return kernel


def _compile_wrap_op(rows: int, cols: int) -> Kernel:
    """Wrap-around comparisons: ``(h, last col)`` vs ``(h+1, first col)``."""
    def kernel(grid: np.ndarray) -> None:
        a = grid[..., : rows - 1, cols - 1]
        b = grid[..., 1:rows, 0]
        lo = np.minimum(a, b)
        hi = np.maximum(a, b)
        a[...] = lo
        b[...] = hi

    return kernel


def _compile_pair_op(op: PairOp) -> Kernel:
    """Single compare-exchange between two mesh cells (smaller at ``low``)."""
    (r1, c1), (r2, c2) = op.low, op.high

    def kernel(grid: np.ndarray) -> None:
        a = grid[..., r1, c1]
        b = grid[..., r2, c2]
        lo = np.minimum(a, b)
        hi = np.maximum(a, b)
        grid[..., r1, c1] = lo
        grid[..., r2, c2] = hi

    return kernel


def _compile_op(op: Op, rows: int, cols: int) -> Kernel:
    if isinstance(op, WrapOp):
        return _compile_wrap_op(rows, cols)
    if isinstance(op, PairOp):
        return _compile_pair_op(op)
    return _compile_line_op(op, rows, cols)


class CompiledSchedule:
    """A schedule specialized to a concrete ``rows x cols`` mesh.

    Compiling resolves every op into an in-place NumPy kernel and runs the
    static schedule verifier (:mod:`repro.analysis.schedule_check`) once as
    a pre-compile pass: *structural* violations — overlapping comparators,
    mesh bounds, the paper's even-column constraint for the wrap-around
    algorithms — refuse compilation with the historical exception types,
    while the full :class:`~repro.analysis.schedule_check.ScheduleReport`
    (policy findings included) is kept on :attr:`analysis` and cached with
    the kernels via :func:`compiled_schedule`.
    """

    def __init__(self, schedule: Schedule, rows: int, cols: int | None = None):
        if cols is None:
            cols = rows
        rows, cols = int(rows), int(cols)
        self.analysis: ScheduleReport = check_schedule(schedule, rows, cols)
        self.analysis.raise_for_structural()
        # Compile-time semantics hook: attach an already-known sortedness
        # certificate (in-memory cache only — peeking never runs the 0-1
        # interpreter, so compilation stays O(kernels)).  A REFUTED
        # schedule still compiles: executing a broken schedule is exactly
        # how the verify layer demonstrates the breakage dynamically.
        self.analysis.semantics = peek_certificate(schedule, rows, cols)
        self.schedule = schedule
        self.rows, self.cols = rows, cols
        self._steps: list[list[Kernel]] = [
            [_compile_op(op, rows, cols) for op in step] for step in schedule.steps
        ]

    @property
    def side(self) -> int:
        """Mesh side for square compilations (raises on rectangles)."""
        if self.rows != self.cols:
            raise DimensionError(
                f"side is undefined for a {self.rows}x{self.cols} compilation"
            )
        return self.rows

    def __len__(self) -> int:
        return len(self._steps)

    def apply_step(self, grid: np.ndarray, t: int) -> None:
        """Execute paper step ``t`` (1-based) in place on ``grid``."""
        if t < 1:
            raise DimensionError(f"step times are 1-based, got {t}")
        for kernel in self._steps[(t - 1) % len(self._steps)]:
            kernel(grid)

    def run(self, grid: np.ndarray, num_steps: int, *, start_t: int = 1) -> None:
        """Execute ``num_steps`` consecutive steps in place, starting at
        paper time ``start_t``."""
        for t in range(start_t, start_t + num_steps):
            self.apply_step(grid, t)


class CacheInfo(NamedTuple):
    """Snapshot of the compiled-schedule cache statistics."""

    hits: int
    misses: int
    maxsize: int
    currsize: int


_CACHE_MAXSIZE = 128
_cache: OrderedDict[tuple[Schedule, int, int], CompiledSchedule] = OrderedDict()
_cache_lock = threading.Lock()
_inflight: dict[tuple[Schedule, int, int], threading.Event] = {}
_hits = 0
_misses = 0


def compiled_schedule(schedule: Schedule, rows: int, cols: int | None = None) -> CompiledSchedule:
    """Compile ``schedule`` for a ``rows x cols`` mesh, reusing the LRU cache.

    Schedules hash by value (name, steps, order, parity requirement), so
    repeated Monte-Carlo calls with the same ``(algorithm, side)`` pair pay
    validation and kernel construction once.  Entries are evicted least
    recently used beyond {maxsize} cached compilations.

    Concurrent callers asking for the same uncached key share a single
    compilation: the first caller compiles while the rest wait on an
    in-flight marker, then take the cached result as a hit — each key is
    compiled (and counted as a miss) exactly once, no matter how many
    threads race for it.
    """
    global _hits, _misses
    key = (schedule, int(rows), int(rows) if cols is None else int(cols))
    while True:
        with _cache_lock:
            cached = _cache.get(key)
            if cached is not None:
                _cache.move_to_end(key)
                _hits += 1
                return cached
            waiter = _inflight.get(key)
            if waiter is None:
                _inflight[key] = threading.Event()
                break
        # Another thread is compiling this key; wait for it, then re-check
        # the cache (or take over the compile if that thread failed).
        waiter.wait()
    try:
        compiled = CompiledSchedule(schedule, rows, cols)
    except BaseException:
        with _cache_lock:
            event = _inflight.pop(key)
        event.set()
        raise
    with _cache_lock:
        _misses += 1
        _cache[key] = compiled
        _cache.move_to_end(key)
        while len(_cache) > _CACHE_MAXSIZE:
            _cache.popitem(last=False)
        event = _inflight.pop(key)
    event.set()
    return compiled


compiled_schedule.__doc__ = compiled_schedule.__doc__.format(maxsize=_CACHE_MAXSIZE)


def schedule_cache_info() -> CacheInfo:
    """Hit/miss/size statistics of the compiled-schedule cache."""
    with _cache_lock:
        return CacheInfo(_hits, _misses, _CACHE_MAXSIZE, len(_cache))


def schedule_cache_clear() -> None:
    """Drop every cached compilation and reset the statistics."""
    global _hits, _misses
    with _cache_lock:
        _cache.clear()
        _hits = 0
        _misses = 0
