"""Reference (oracle) backend over the cell-by-cell interpreter.

Wraps :class:`~repro.core.reference.ReferenceMachine` in the backend
protocol.  The oracle is deliberately slow and single-grid; its role is to
pin down the intended semantics so the other backends can be
property-tested against it.  Swap counts fall out of the interpretation for
free, so this backend always reports them.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import Backend, ExecutorRun, StepStats
from repro.core.orders import target_grid
from repro.core.reference import ReferenceMachine
from repro.core.schedule import Schedule
from repro.errors import DimensionError

__all__ = ["ReferenceRun", "ReferenceBackend"]


class ReferenceRun(ExecutorRun):
    """One reference-machine run (single grid, batch shape ``()``)."""

    def __init__(self, machine: ReferenceMachine, target: np.ndarray):
        self.machine = machine
        self.target = target
        self.rows = machine.rows
        self.cols = machine.cols
        self.batch_shape = ()
        self.cycle_len = len(machine.schedule.steps)

    def apply_step(self, t: int, *, want_swaps: bool = False) -> StepStats:
        # The machine advances its own clock; seeking keeps the driver free
        # to start at any paper time.
        self.machine.t = t - 1
        swaps = self.machine.step()
        return StepStats(swaps=swaps)

    def done_mask(self) -> np.ndarray:
        return np.array(np.array_equal(self.machine.as_array(), self.target))

    def materialize(self) -> np.ndarray:
        return self.machine.as_array()


class ReferenceBackend(Backend):
    """The pure-Python semantic oracle."""

    name = "reference"
    event_executor = "reference"
    supports_batch = False
    supports_rect = True
    counts_swaps = True

    def prepare(self, schedule: Schedule, grid: np.ndarray) -> ReferenceRun:
        arr = np.asarray(grid)
        if arr.ndim != 2:
            raise DimensionError(
                "reference backend accepts a single grid "
                f"(2-d array), got shape {arr.shape}"
            )
        machine = ReferenceMachine(schedule, arr)
        if machine.rows == machine.cols:
            target = target_grid(machine.as_array(), machine.side, schedule.order)
        else:
            from repro.rect.orders import rect_target_grid

            target = rect_target_grid(
                machine.as_array(), machine.rows, machine.cols, schedule.order
            )
        return ReferenceRun(machine, target)
