"""Backend registry: names in, :class:`~repro.backends.base.Backend` out.

The four built-in backends register lazily (imports happen on first
resolution, which keeps the layer import-light and cycle-free); downstream
code — and the test suite's cross-validation sweeps — discover them through
:func:`available_backends`.  Third-party backends plug in with
:func:`register_backend`.
"""

from __future__ import annotations

from typing import Callable

from repro.backends.base import Backend
from repro.errors import DimensionError

__all__ = ["register_backend", "get_backend", "available_backends"]


def _vectorized() -> Backend:
    from repro.backends.vectorized import VectorizedBackend

    return VectorizedBackend()


def _reference() -> Backend:
    from repro.backends.reference import ReferenceBackend

    return ReferenceBackend()


def _mesh() -> Backend:
    from repro.backends.mesh import MeshBackend

    return MeshBackend()


def _rect() -> Backend:
    from repro.backends.rect import RectBackend

    return RectBackend()


_FACTORIES: dict[str, Callable[[], Backend]] = {
    "vectorized": _vectorized,
    "reference": _reference,
    "mesh": _mesh,
    "rect": _rect,
}
_INSTANCES: dict[str, Backend] = {}


def register_backend(
    name: str, factory: Callable[[], Backend], *, replace: bool = False
) -> None:
    """Register a backend factory under ``name``.

    ``factory`` is called at most once, on first :func:`get_backend`
    resolution.  Re-registering an existing name raises unless ``replace``
    is given (the built-ins can be shadowed deliberately, e.g. by a test
    double).
    """
    if name in _FACTORIES and not replace:
        raise DimensionError(
            f"backend {name!r} is already registered; pass replace=True to shadow it"
        )
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def get_backend(name: str | Backend) -> Backend:
    """Resolve a backend by registry name (instances pass through)."""
    if isinstance(name, Backend):
        return name
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise DimensionError(
            f"unknown backend {name!r}; available: {', '.join(available_backends())}"
        ) from None
    if name not in _INSTANCES:
        _INSTANCES[name] = factory()
    return _INSTANCES[name]


def available_backends() -> tuple[str, ...]:
    """Registered backend names, in registration order."""
    return tuple(_FACTORIES)
