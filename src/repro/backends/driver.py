"""The shared instrumented run-loop driver.

One module owns what the four historical executors each reimplemented:
step caps, completion detection, wall timing, cap handling, and the
``RunStart``/``StepEvent``/``CycleEvent``/``RunEnd`` observer stream.  A
backend only knows how to apply one schedule step; the driver turns that
into sort-to-completion runs (:func:`run_sort`), fixed-step runs
(:func:`run_steps`), and step iterators (:func:`iter_run`).

This module is also the package's **single event-emission site**: every
``on_run_start``/``on_step``/``on_cycle``/``on_run_end`` dispatch in the
codebase goes through the ``emit_*`` helpers below (the diagnostics runner
and the processor-level machine's manual stepping mode call them too), so
observers see one schema regardless of executor.

Per-step swap counts on the vectorized backends require diffing the whole
(possibly batched) grid every step, so they are an opt-in trace detail:
the driver asks for them only when the resolved observer declares
``wants_swap_detail`` (see :func:`repro.backends.base.wants_swap_detail`).
Cell-level backends count swaps as a free by-product and always report
them.
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from repro.backends.base import (
    Backend,
    ExecutorRun,
    SortOutcome,
    resolve_step_cap,
    wants_swap_detail,
)
from repro.backends.registry import get_backend
from repro.core.schedule import Schedule
from repro.errors import StepLimitExceeded
from repro.obs.context import resolve_observer
from repro.obs.events import CycleEvent, Observer, RunEnd, RunStart, StepEvent
from repro.obs.prof import span
from repro.obs.timing import StopWatch

__all__ = [
    "run_sort",
    "run_steps",
    "iter_run",
    "emit_run_start",
    "emit_step",
    "emit_cycle",
    "emit_run_end",
]


# ---------------------------------------------------------------------------
# Event emission — the only place in the package that dispatches to observers.
# ---------------------------------------------------------------------------

def emit_run_start(observer: Observer, **fields: Any) -> None:
    """Dispatch a :class:`RunStart` built from ``fields``."""
    observer.on_run_start(RunStart(**fields))


def emit_step(observer: Observer, **fields: Any) -> None:
    """Dispatch a :class:`StepEvent` built from ``fields``."""
    observer.on_step(StepEvent(**fields))


def emit_cycle(observer: Observer, **fields: Any) -> None:
    """Dispatch a :class:`CycleEvent` built from ``fields``."""
    observer.on_cycle(CycleEvent(**fields))


def emit_run_end(observer: Observer, **fields: Any) -> None:
    """Dispatch a :class:`RunEnd` built from ``fields``."""
    observer.on_run_end(RunEnd(**fields))


# ---------------------------------------------------------------------------
# Driver internals.
# ---------------------------------------------------------------------------

def _start_run(
    backend: Backend,
    run: ExecutorRun,
    schedule: Schedule,
    obs: Observer | None,
    max_steps: int | None,
) -> None:
    if obs is None:
        return
    emit_run_start(
        obs,
        executor=backend.event_executor,
        algorithm=schedule.name,
        side=run.rows,
        rows=run.rows,
        cols=run.cols,
        batch_shape=run.batch_shape,
        max_steps=max_steps,
        order=schedule.order,
    )


def _step_and_emit(
    run: ExecutorRun, t: int, obs: Observer | None, want_swaps: bool
) -> None:
    """Apply step ``t`` and, with an observer attached, emit its events."""
    if obs is None:
        run.apply_step(t)
        return
    stats = run.apply_step(t, want_swaps=want_swaps)
    emit_step(
        obs, t=t, grid=run.step_grid(), swaps=stats.swaps,
        comparisons=stats.comparisons,
    )
    if t % run.cycle_len == 0:
        emit_cycle(obs, cycle=t // run.cycle_len, t=t, grid=run.cycle_grid())


def _scalarize(value: np.ndarray, batched: bool) -> Any:
    """Single-grid backends historically report plain ints/bools in
    ``RunEnd`` (observers match on ``is True``); batch-capable backends
    report arrays."""
    if batched:
        return np.asarray(value)
    arr = np.asarray(value)
    return bool(arr) if arr.dtype == bool else int(arr)


# ---------------------------------------------------------------------------
# Public driver entry points.
# ---------------------------------------------------------------------------

def run_sort(
    backend: str | Backend,
    schedule: Schedule,
    grid: np.ndarray,
    *,
    max_steps: int | None = None,
    raise_on_cap: bool = False,
    observer: Observer | None = None,
) -> SortOutcome:
    """Run ``schedule`` on ``grid`` until every grid in the batch reaches
    its target order (or the step cap is hit).

    Parameters
    ----------
    backend:
        Registry name or :class:`Backend` instance.
    schedule:
        Algorithm schedule (see :mod:`repro.core.algorithms`).
    grid:
        ``(rows, cols)`` array — or ``(..., rows, cols)`` on batch-capable
        backends; never modified.
    max_steps:
        Step cap; defaults to :func:`repro.backends.base.resolve_step_cap`
        (the paper-calibrated :func:`~repro.backends.base.step_cap`, loosened
        by a schedule's ``step_cap_hint`` metadata when present).
    raise_on_cap:
        If True, raise :class:`StepLimitExceeded` when the cap is hit with
        unsorted grids; otherwise report ``steps == -1`` for those entries.
    observer:
        Optional :class:`~repro.obs.events.Observer`; falls back to the
        ambient observer installed with :func:`repro.obs.use_observer`.
        With no observer resolved the loop is the uninstrumented fast path.

    Notes
    -----
    Sorted grids are fixed points of every schedule in this package (the
    test suite verifies this), so the first time a grid matches the target
    it stays matched and the recorded step count is exact — this mirrors
    the paper's t_f, the step at which "the sorting algorithm is complete".
    """
    be = get_backend(backend)
    # Spans cost one ContextVar read when no profiler is installed (see
    # repro.obs.prof) — per run, never per step, so the zero-overhead
    # guarantee holds at the driver level.
    with span("run", backend=be.name, algorithm=schedule.name):
        with span("compile"):
            run = be.prepare(schedule, grid)
        if max_steps is None:
            max_steps = resolve_step_cap(schedule, run.rows, run.cols)
        obs = resolve_observer(observer)
        want_swaps = be.counts_swaps or (obs is not None and wants_swap_detail(obs))

        steps = np.full(run.batch_shape, -1, dtype=np.int64)
        done = np.asarray(run.done_mask())
        steps = np.where(done, 0, steps)

        _start_run(be, run, schedule, obs, max_steps)
        watch = StopWatch().start()
        with span("kernel"):
            t = 0
            while t < max_steps and not np.all(done):
                t += 1
                _step_and_emit(run, t, obs, want_swaps)
                now = np.asarray(run.done_mask())
                newly = now & ~done
                if np.any(newly):
                    steps = np.where(newly, t, steps)
                    done = done | now
    if obs is not None:
        emit_run_end(
            obs,
            steps=_scalarize(np.where(done, steps, -1), be.supports_batch),
            completed=_scalarize(done, be.supports_batch),
            wall_time=watch.elapsed,
        )

    completed = np.asarray(done)
    if raise_on_cap and not np.all(completed):
        raise StepLimitExceeded(max_steps, int(np.sum(~completed)))
    return SortOutcome(
        steps=np.asarray(steps),
        completed=completed,
        final=run.final(),
        max_steps=max_steps,
        rows=run.rows,
        cols=run.cols,
        backend=be.name,
    )


def run_steps(
    backend: str | Backend,
    schedule: Schedule,
    grid: np.ndarray,
    num_steps: int,
    *,
    start_t: int = 1,
    observer: Observer | None = None,
) -> np.ndarray:
    """Return the grid state after exactly ``num_steps`` schedule steps."""
    be = get_backend(backend)
    with span("run", backend=be.name, algorithm=schedule.name):
        with span("compile"):
            run = be.prepare(schedule, grid)
        obs = resolve_observer(observer)
        want_swaps = be.counts_swaps or (obs is not None and wants_swap_detail(obs))
        _start_run(be, run, schedule, obs, num_steps)
        watch = StopWatch().start()
        with span("kernel"):
            for t in range(start_t, start_t + num_steps):
                _step_and_emit(run, t, obs, want_swaps)
    if obs is not None:
        emit_run_end(
            obs, steps=num_steps, completed=None,
            wall_time=watch.elapsed,
        )
    return run.final()


def iter_run(
    backend: str | Backend,
    schedule: Schedule,
    grid: np.ndarray,
    num_steps: int,
    *,
    start_t: int = 1,
    copy: bool = True,
    observer: Observer | None = None,
) -> Iterator[tuple[int, np.ndarray]]:
    """Yield ``(t, grid_after_step_t)`` for ``num_steps`` consecutive steps.

    With ``copy=True`` (default) each yielded grid is an independent
    snapshot; with ``copy=False`` backends that keep a live working buffer
    yield it directly (cheaper when the consumer only reads per-step
    statistics).  An observer receives the same event stream as
    :func:`run_steps`; ``on_run_end`` fires only if the iterator is
    exhausted.
    """
    be = get_backend(backend)
    # No kernel span here: a generator's frame is suspended at every yield,
    # so an open span would bill the consumer's code to the driver.
    with span("compile"):
        run = be.prepare(schedule, grid)
    obs = resolve_observer(observer)
    want_swaps = be.counts_swaps or (obs is not None and wants_swap_detail(obs))
    _start_run(be, run, schedule, obs, num_steps)
    watch = StopWatch().start()
    for t in range(start_t, start_t + num_steps):
        _step_and_emit(run, t, obs, want_swaps)
        yield t, run.iter_grid(copy)
    if obs is not None:
        emit_run_end(
            obs, steps=num_steps, completed=None,
            wall_time=watch.elapsed,
        )
