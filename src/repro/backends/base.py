"""Foundation of the unified executor backend layer.

Every way of running a comparator :class:`~repro.core.schedule.Schedule`
against a grid — the vectorized NumPy kernels, the pure-Python oracle, the
processor-level mesh machine, the rectangular-mesh kernels — is expressed as
a :class:`Backend`.  A backend's single obligation is :meth:`Backend.prepare`:
turn ``(schedule, grid)`` into an :class:`ExecutorRun`, a tiny state machine
the shared driver (:mod:`repro.backends.driver`) can step, probe for
completion, and snapshot.  The driver owns everything the four historical
run loops used to duplicate: step caps, completion detection, wall timing,
and the observer event stream.

This module holds the pieces the rest of the layer builds on:

* :class:`SortOutcome` — the one result type for sort-to-completion runs,
  carrying ``(rows, cols)`` so square and rectangular meshes share it;
* :func:`step_cap` — the one step-cap policy (square and rectangular);
* :class:`ExecutorRun` / :class:`Backend` — the backend protocol;
* :func:`wants_swap_detail` — the observer capability probe behind the
  opt-in per-step swap counting.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.core.schedule import Schedule
from repro.errors import DimensionError

__all__ = [
    "SortOutcome",
    "StepStats",
    "step_cap",
    "resolve_step_cap",
    "ExecutorRun",
    "Backend",
    "wants_swap_detail",
]


def step_cap(rows: int, cols: int | None = None) -> int:
    """A generous step cap for runs expected to finish in Theta(N) steps.

    The paper proves worst cases of Theta(N) with small constants (the
    row-major worst case is at least ``2N - 4*sqrt(N)`` and at most
    ``O(N)``); ``8*N + 8*(rows + cols) + 64`` leaves ample slack while still
    bounding runaway runs on buggy schedules.  On a square mesh this equals
    the historical ``default_step_cap``: ``8*N + 16*side + 64``.
    """
    if cols is None:
        cols = rows
    n_cells = rows * cols
    return 8 * n_cells + 8 * (rows + cols) + 64


def resolve_step_cap(schedule: Schedule, rows: int, cols: int | None = None) -> int:
    """The default step cap for one ``(schedule, mesh)`` pair.

    Generated schedule families whose sorting time is not Theta(N) — e.g.
    random adjacent-comparator networks, which fire one comparator per step —
    declare a provable bound in ``schedule.metadata["step_cap_hint"]``; the
    driver honours it (taking the larger of hint and :func:`step_cap`, so a
    hint can only loosen the default).  Schedules without a hint get the
    paper-calibrated :func:`step_cap`.
    """
    base = step_cap(rows, cols)
    hint = schedule.metadata.get("step_cap_hint")
    if hint is None:
        return base
    return max(base, int(hint))


@dataclass
class SortOutcome:
    """Result of a sort-to-completion run on any backend.

    Attributes
    ----------
    steps:
        Integer array (batch-shaped; 0-d for a single grid) with the first
        1-based step time after which the grid equals the target order, 0 if
        the input was already sorted, and -1 if the step cap was reached.
    completed:
        Boolean mask of batch elements that reached the target order.
    final:
        The grids after the run.
    max_steps:
        The cap that was in force.
    rows, cols:
        Mesh shape (equal on square meshes).  Inferred from ``final`` when
        not given, so historical ``SortOutcome(steps=..., completed=...,
        final=..., max_steps=...)`` constructions keep working.
    backend:
        Registry name of the backend that produced the outcome (empty for
        outcomes built outside the driver).
    """

    steps: np.ndarray
    completed: np.ndarray
    final: np.ndarray
    max_steps: int
    rows: int = -1
    cols: int = -1
    backend: str = ""

    def __post_init__(self) -> None:
        if self.rows < 0 or self.cols < 0:
            final = np.asarray(self.final)
            if final.ndim < 2:
                raise DimensionError(
                    f"cannot infer mesh shape from final grids of ndim {final.ndim}"
                )
            self.rows = int(final.shape[-2])
            self.cols = int(final.shape[-1])

    @property
    def side(self) -> int:
        """Mesh side for square outcomes (raises on rectangles)."""
        if self.rows != self.cols:
            raise DimensionError(
                f"side is undefined for a {self.rows}x{self.cols} outcome"
            )
        return self.rows

    @property
    def all_completed(self) -> bool:
        return bool(np.all(self.completed))

    def steps_scalar(self) -> int:
        """The step count for an unbatched run (raises if batched)."""
        if self.steps.ndim != 0:
            raise DimensionError(
                f"steps_scalar() on a batched outcome of shape {self.steps.shape}"
            )
        return int(self.steps)


@dataclass(frozen=True)
class StepStats:
    """Per-step tallies a run reports back to the driver.

    ``swaps``/``comparisons`` are ``None`` when the executor did not (or was
    not asked to) account them.
    """

    swaps: int | None = None
    comparisons: int | None = None


class ExecutorRun(ABC):
    """One in-flight run: mutable state plus the probes the driver needs.

    Concrete runs are created by :meth:`Backend.prepare` and stepped by the
    driver; they never emit observer events themselves.
    """

    rows: int
    cols: int
    batch_shape: tuple[int, ...]
    cycle_len: int

    @abstractmethod
    def apply_step(self, t: int, *, want_swaps: bool = False) -> StepStats:
        """Execute 1-based schedule step ``t`` and report its tallies.

        ``want_swaps`` asks for a per-step swap count even when accounting
        it costs extra work (the vectorized kernels must diff the grid);
        executors that count swaps for free may always report them.
        """

    @abstractmethod
    def done_mask(self) -> np.ndarray:
        """Boolean mask (batch-shaped; 0-d for one grid) of sorted grids."""

    @abstractmethod
    def materialize(self) -> np.ndarray:
        """The current grid state as an array the caller may keep."""

    def step_grid(self) -> np.ndarray | None:
        """Grid to attach to step events (``None`` if the run has no cheap
        representation; observers must treat it as read-only)."""
        return self.materialize()

    def cycle_grid(self) -> np.ndarray | None:
        """Grid to attach to cycle events."""
        return self.materialize()

    def final(self) -> np.ndarray:
        """Grid state handed to :class:`SortOutcome` when the run ends."""
        return self.materialize()

    def iter_grid(self, copy: bool) -> np.ndarray:
        """Grid yielded by the step iterator (an independent snapshot when
        ``copy`` is true; cell-level runs always materialize a fresh array)."""
        return self.materialize()


class Backend(ABC):
    """A pluggable execution substrate for comparator schedules.

    Subclasses declare their capabilities as class attributes and implement
    :meth:`prepare`.  All run-loop behaviour (caps, completion, timing,
    events) lives in :mod:`repro.backends.driver`, so a new backend is just
    a new way to apply one schedule step.
    """

    #: Registry name (``"vectorized"``, ``"reference"``, ``"mesh"``, ``"rect"``).
    name: ClassVar[str]
    #: Executor label used in ``RunStart`` events and JSONL traces.  The
    #: vectorized backend keeps the historical ``"engine"`` label so traces
    #: recorded before the backend layer remain comparable.
    event_executor: ClassVar[str]
    #: Whether ``prepare`` accepts ``(..., rows, cols)`` batches.
    supports_batch: ClassVar[bool] = False
    #: Whether non-square meshes are accepted.
    supports_rect: ClassVar[bool] = False
    #: Whether per-step swap counts are a free by-product (cell-level
    #: executors) rather than an extra grid diff (vectorized kernels).
    counts_swaps: ClassVar[bool] = False

    @abstractmethod
    def prepare(self, schedule: Schedule, grid: np.ndarray) -> ExecutorRun:
        """Validate inputs and build the run state for ``schedule`` on
        ``grid`` (the input array is never mutated)."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} name={self.name!r}>"


def wants_swap_detail(observer: object) -> bool:
    """Whether an observer opted into per-step swap counting.

    Swap counting on the vectorized backend requires copying and diffing
    the whole (possibly batched) grid every step, so it is off unless an
    attached observer sets ``wants_swap_detail = True``
    (:class:`~repro.obs.events.RecordingObserver` and
    :class:`~repro.obs.trace.JsonlTraceSink` do; the metrics observer
    does not by default).  Composite observers opt in if any child does.
    """
    return bool(getattr(observer, "wants_swap_detail", False))
