"""High-probability (tail) experiments: Theorems 3, 5, 8, 11, 12.

For each algorithm we estimate ``Pr[steps <= gamma * N]`` empirically over
random permutations and print it next to the corresponding Chebyshev bound
evaluated with *exact* moments — a valid finite-n bound, so the empirical
frequency must not exceed it (up to Monte-Carlo noise).
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.sampling import sample
from repro.experiments.tables import Table
from repro.theory.chebyshev import (
    theorem3_tail_bound,
    theorem5_tail_bound,
    theorem8_tail_bound,
    theorem11_tail_bound,
)
from repro.zeroone.smallest import theorem12_tail_bound

__all__ = ["exp_tails", "exp_theorem12_tail"]

_TAIL_CASES = (
    # (algorithm, theorem label, stable seed salt, bound fn, gammas)
    ("row_major_row_first", "T3", 3, theorem3_tail_bound,
     (Fraction(1, 10), Fraction(1, 4), Fraction(2, 5))),
    ("row_major_col_first", "T5", 5, theorem5_tail_bound,
     (Fraction(1, 10), Fraction(1, 5), Fraction(3, 10))),
    ("snake_1", "T8", 8, theorem8_tail_bound,
     (Fraction(1, 10), Fraction(1, 4), Fraction(2, 5))),
    ("snake_2", "T11", 11, theorem11_tail_bound,
     (Fraction(1, 10), Fraction(1, 4), Fraction(2, 5))),
)


def exp_tails(cfg: ExperimentConfig) -> Table:
    """E-T3/T5/T8/T11: empirical lower tails vs exact Chebyshev bounds."""
    table = Table(
        title="E-TAILS: Pr[steps <= gamma*N] — empirical vs Chebyshev (exact moments)",
        headers=["theorem", "algorithm", "side", "gamma", "empirical", "chebyshev bound", "consistent"],
    )
    table.add_note(
        "Theorems 3/5/8/11 assert the probability vanishes as N grows for any "
        "gamma below 1/2, 3/8, 1/2, 1/2 respectively; the Chebyshev bounds here "
        "use exact E/Var so they are valid at every finite n."
    )
    for algorithm, theorem, salt, bound_fn, gammas in _TAIL_CASES:
        for side in cfg.even_sides:
            steps = sample(
                algorithm, side=side, trials=cfg.trials,
                seed=(cfg.seed, side, salt), execution=cfg.execution,
            ).values
            n_cells = side * side
            for gamma in gammas:
                empirical = float(np.mean(steps <= float(gamma) * n_cells))
                bound = float(bound_fn(side, gamma))
                # Monte-Carlo slack: 3 binomial standard errors.
                slack = 3 * np.sqrt(max(empirical * (1 - empirical), 1e-4) / cfg.trials)
                table.add_row(
                    theorem, algorithm, side, float(gamma), empirical, bound,
                    empirical <= bound + slack,
                )
    return table


def exp_theorem12_tail(cfg: ExperimentConfig) -> Table:
    """E-T12: snake_3 — empirical Pr[steps < delta*N] vs delta/2 + delta/(2N)."""
    table = Table(
        title="E-T12: snake_3 tail vs Theorem 12 bound",
        headers=["side", "N", "delta", "empirical", "bound delta/2 + delta/(2N)", "consistent"],
    )
    for side in cfg.even_sides + cfg.odd_sides:
        steps = sample(
            "snake_3", side=side, trials=cfg.trials,
            seed=(cfg.seed, side, 12), execution=cfg.execution,
        ).values
        n_cells = side * side
        for delta in (0.25, 0.5, 1.0):
            empirical = float(np.mean(steps < delta * n_cells))
            bound = theorem12_tail_bound(delta, n_cells)
            slack = 3 * np.sqrt(max(empirical * (1 - empirical), 1e-4) / cfg.trials)
            table.add_row(
                side, n_cells, delta, empirical, bound, empirical <= bound + slack
            )
    return table
