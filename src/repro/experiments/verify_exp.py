"""E-VERIFY: the verification harness as a registered experiment.

Runs the differential + metamorphic sweep of :mod:`repro.verify` at the
budget matching the experiment scale (``quick`` -> smoke, ``full`` ->
deep) and tabulates checks/failures per property.  The experiment fails
loudly — a :class:`~repro.errors.DimensionError` naming the first broken
check — rather than returning a quietly failing table, so any pipeline
that can run experiments also gates on executor agreement.
"""

from __future__ import annotations

from repro.errors import DimensionError
from repro.experiments.config import ExperimentConfig
from repro.experiments.tables import Table
from repro.verify.runner import VerifyConfig, run_verify

__all__ = ["exp_verify"]


def exp_verify(cfg: ExperimentConfig) -> Table:
    """Differential/metamorphic verification sweep (smoke at quick scale)."""
    budget = "smoke" if cfg.scale == "quick" else "deep"
    report = run_verify(
        VerifyConfig(budget=budget, seed=cfg.seed, shrink=False)
    )
    if not report.ok:
        first = report.failures[0]
        raise DimensionError(
            f"verification failed ({len(report.failures)} checks): "
            + first.describe().splitlines()[0]
        )
    table = report.to_table()
    table.title = f"E-VERIFY: backend verification sweep ({budget})"
    table.add_note(
        f"{len(report.records)} checks passed in {report.elapsed_seconds:.2f}s; "
        "see docs/VERIFICATION.md for the property definitions."
    )
    return table
