"""``repro run``: paper experiments and direct samples from one command.

The successor to ``python -m repro.experiments`` (still available as a
deprecation shim) with the same flags, plus:

* ``--store DIR`` — thread a content-addressed result store through the
  Monte-Carlo sweeps, so repeated runs become cache lookups;
* ``--algorithm NAME --side N --trials N`` — sample one algorithm
  directly (no experiment table), with NAME validated against the
  schedule-family registry so generated families like
  ``random_network(length=64,seed=3)`` work exactly as in the library.

Examples::

    repro run --list
    repro run E-T2 E-SCALE
    repro run --all --scale full --csv results/
    repro run E-CAMP --workers 4 --store /tmp/store
    repro run --algorithm odd_even --side 16 --trials 64 --store /tmp/store
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import DimensionError, ReproError
from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import EXPERIMENTS, experiment_ids, run_experiment
from repro.experiments.report import write_summary
from repro.obs import (
    CompositeObserver,
    JsonlTraceSink,
    MetricsObserver,
    MetricsRegistry,
    PhaseTimer,
    ProgressPrinter,
    RunManifest,
    StopWatch,
    table_digest,
    use_observer,
    write_manifest,
)

__all__ = ["main"]


def _ensure_writable_dir(path: Path, flag: str) -> str | None:
    """Create ``path`` (and parents); return an error message if unusable."""
    try:
        path.mkdir(parents=True, exist_ok=True)
        probe = path / ".write-probe"
        probe.touch()
        probe.unlink()
    except OSError as exc:
        return f"error: {flag} directory {path} is not writable: {exc}"
    return None


def _algorithm_help() -> str:
    """Dynamic ``--algorithm`` help: the registered schedule families."""
    from repro.schedules import available_families

    return (
        "sample one algorithm directly instead of running experiment "
        "tables; any registered schedule family works, including "
        "parameterized specs like 'random_network(length=64,seed=3)' "
        f"(families: {', '.join(available_families())})"
    )


def _run_direct_sample(args: argparse.Namespace) -> int:
    """The ``--algorithm`` mode: one sample, printed as its stats + meta."""
    from repro.experiments.sampling import sample

    if args.side is None or args.trials is None:
        print(
            "error: --algorithm requires --side and --trials", file=sys.stderr
        )
        return 2
    from repro.campaign.execution import ExecutionOptions

    try:
        # Built directly (not via ExperimentConfig) so backend=None keeps
        # the schedule registry's topology-matched default — linear
        # families like odd_even need the rect backend, not 'vectorized'.
        execution = ExecutionOptions(
            backend=args.backend,
            workers=args.workers,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
            store=args.store,
        )
        result = sample(
            args.algorithm,
            side=args.side,
            trials=args.trials,
            seed=args.seed,
            execution=execution,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    stats = result.stats
    print(
        f"{args.algorithm}  side={args.side}  trials={stats.count}  "
        f"mean={stats.mean:.4f}  std={stats.std:.4f}  "
        f"digest={result.values_digest}"
    )
    store_meta = result.meta.get("store")
    if store_meta is not None:
        outcome = "hit" if store_meta["hit"] else (
            "miss (stored)" if store_meta.get("stored") else "miss"
        )
        print(f"  store: {outcome}  [{store_meta['store']}]")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro run",
        description="Run the experiments reproducing Savari (SPAA 1993), "
        "or sample one algorithm directly with --algorithm.",
    )
    parser.add_argument("ids", nargs="*", help="experiment ids (see --list)")
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--scale", choices=("quick", "full"), default="quick")
    parser.add_argument("--seed", type=int, default=20260706)
    parser.add_argument(
        "--backend", default=None,
        help="execution backend for the Monte-Carlo samplers "
             "(see repro.backends.available_backends(); default: vectorized "
             "for experiment tables, registry-matched for --algorithm mode)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for the Monte-Carlo sweeps; N != 1 switches "
             "the samplers to sharded campaign mode (default: 1, in-process)",
    )
    parser.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="checkpoint campaign shards under DIR so interrupted runs can "
             "be resumed with --resume (implies campaign mode)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="restore shards already recorded under --checkpoint-dir "
             "instead of recomputing them",
    )
    parser.add_argument(
        "--store", metavar="DIR",
        help="content-addressed result store: completed campaigns are "
             "cached by spec fingerprint and repeated sweeps become "
             "lookups (implies campaign mode; see docs/SERVICE.md)",
    )
    parser.add_argument("--algorithm", metavar="NAME", help=_algorithm_help())
    parser.add_argument(
        "--side", type=int, default=None,
        help="grid side for --algorithm mode",
    )
    parser.add_argument(
        "--trials", type=int, default=None,
        help="trial count for --algorithm mode",
    )
    parser.add_argument("--csv", metavar="DIR", help="also write each table as CSV")
    parser.add_argument(
        "--summary", metavar="FILE",
        help="run the selected experiments (default: all) and write a "
             "markdown summary report",
    )
    parser.add_argument(
        "--trace", metavar="DIR",
        help="write per-experiment JSONL event traces and run manifests "
             "under DIR",
    )
    parser.add_argument(
        "--metrics-out", metavar="FILE",
        help="write aggregated run metrics to FILE (JSON, or Prometheus "
             "text when FILE ends in .prom)",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="print per-run progress lines to stderr while experiments run",
    )
    args = parser.parse_args(argv)

    if args.list:
        for exp_id in experiment_ids():
            print(f"{exp_id:12s} {EXPERIMENTS[exp_id].paper_artifact}")
        return 0

    if args.algorithm:
        if args.ids or args.all or args.summary:
            print(
                "error: --algorithm (direct sample) cannot be combined with "
                "experiment ids, --all, or --summary",
                file=sys.stderr,
            )
            return 2
        return _run_direct_sample(args)

    csv_dir: Path | None = None
    if args.csv:
        csv_dir = Path(args.csv)
        error = _ensure_writable_dir(csv_dir, "--csv")
        if error:
            print(error, file=sys.stderr)
            return 2

    trace_dir: Path | None = None
    if args.trace:
        trace_dir = Path(args.trace)
        error = _ensure_writable_dir(trace_dir, "--trace")
        if error:
            print(error, file=sys.stderr)
            return 2

    checkpoint_dir: Path | None = None
    if args.checkpoint_dir:
        checkpoint_dir = Path(args.checkpoint_dir)
        error = _ensure_writable_dir(checkpoint_dir, "--checkpoint-dir")
        if error:
            print(error, file=sys.stderr)
            return 2

    if args.store:
        error = _ensure_writable_dir(Path(args.store), "--store")
        if error:
            print(error, file=sys.stderr)
            return 2

    if args.metrics_out:
        # Fail fast like --csv/--trace: an unwritable destination should
        # surface before hours of experiments, not after them.
        error = _ensure_writable_dir(Path(args.metrics_out).parent, "--metrics-out")
        if error:
            print(error, file=sys.stderr)
            return 2

    registry = MetricsRegistry()
    persistent_observers = []
    if args.metrics_out:
        persistent_observers.append(MetricsObserver(registry))
    if args.progress:
        persistent_observers.append(ProgressPrinter())
    timer = PhaseTimer(registry if args.metrics_out else None)

    def finish() -> None:
        if args.metrics_out:
            out = Path(args.metrics_out)
            out.parent.mkdir(parents=True, exist_ok=True)
            if out.suffix == ".prom":
                out.write_text(registry.to_prometheus_text())
            else:
                registry.to_json(out)
            print(f"wrote {out}")

    def build_config() -> ExperimentConfig:
        from dataclasses import replace

        cfg = ExperimentConfig(
            scale=args.scale,
            seed=args.seed,
            backend=args.backend or "vectorized",
            workers=args.workers,
            checkpoint_dir=str(checkpoint_dir) if checkpoint_dir else None,
            resume=args.resume,
        )
        if args.store:
            cfg.execution = replace(cfg.execution, store=args.store)
        return cfg

    if args.summary:
        try:
            cfg = build_config()
        except DimensionError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        try:
            if persistent_observers:
                with use_observer(CompositeObserver(persistent_observers)):
                    path = write_summary(
                        args.summary, cfg, ids=args.ids or None, timer=timer
                    )
            else:
                path = write_summary(
                    args.summary, cfg, ids=args.ids or None, timer=timer
                )
        except DimensionError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {path}")
        finish()
        return 0

    ids = experiment_ids() if args.all else args.ids
    if not ids:
        parser.print_usage()
        print("give experiment ids, --all, --list, or --algorithm", file=sys.stderr)
        return 2
    unknown = [exp_id for exp_id in ids if exp_id not in EXPERIMENTS]
    if unknown:
        print(
            f"error: unknown experiment id(s) {', '.join(unknown)}; "
            f"known: {', '.join(experiment_ids())}",
            file=sys.stderr,
        )
        return 2

    try:
        cfg = build_config()
    except DimensionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for exp_id in ids:
        sink: JsonlTraceSink | None = None
        observers = list(persistent_observers)
        if trace_dir is not None:
            sink = JsonlTraceSink(trace_dir / exp_id / "events.jsonl")
            observers.append(sink)
        if args.progress:
            print(f"  [{exp_id} starting at scale={cfg.scale}]", file=sys.stderr)
        try:
            with StopWatch() as watch:
                if observers:
                    with use_observer(CompositeObserver(observers)):
                        table = run_experiment(exp_id, cfg)
                else:
                    table = run_experiment(exp_id, cfg)
        finally:
            if sink is not None:
                sink.close()
        timer.record(exp_id, watch.elapsed)
        print(table.to_text())
        print(f"  [{exp_id} finished in {watch.elapsed:.1f}s at scale={cfg.scale}]")
        print()
        if sink is not None:
            manifest = RunManifest(
                kind="experiment",
                exp_id=exp_id,
                seed=cfg.seed,
                scale=cfg.scale,
                elapsed_seconds=watch.elapsed,
                result_digest=table_digest(table),
                argv=list(argv) if argv is not None else sys.argv[1:],
                extra={"events": str(sink.path)},
            )
            manifest_path = write_manifest(
                trace_dir / exp_id / "manifest.json", manifest
            )
            print(f"  wrote {sink.path} and {manifest_path}")
        if csv_dir is not None:
            path = csv_dir / f"{exp_id}.csv"
            try:
                table.to_csv(path)
            except OSError as exc:
                print(f"error: cannot write {path}: {exc}", file=sys.stderr)
                return 2
            print(f"  wrote {path}")
    finish()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
