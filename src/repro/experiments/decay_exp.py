"""E-DECAY: inversion decay curves — how the disorder drains over a run.

The paper's potentials certify that disorder drains *slowly* (at most one
potential unit per cycle).  This experiment records the complementary
global view: the number of inversions against the target order at
checkpoints ``t = q * N``, averaged over seeds, for every algorithm.  The
resulting series is the reproduction-era "figure 2": snake_1's curve dives
first (its constant is ~N/2), snake_3's stretches to ~2N, and all five hit
zero at Θ(N).
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithms import ALGORITHM_NAMES
from repro.core.engine import CompiledSchedule
from repro.core.orders import target_grid
from repro.core.runner import resolve_algorithm
from repro.experiments.config import ExperimentConfig
from repro.experiments.tables import Table
from repro.randomness import as_generator, random_permutation_grid
from repro.zeroone.diagnostics import inversions

__all__ = ["exp_decay"]

_CHECKPOINTS = (0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0)


def exp_decay(cfg: ExperimentConfig) -> Table:
    """Mean inversion fraction remaining at step checkpoints t = q*N."""
    table = Table(
        title="E-DECAY: fraction of inversions remaining at t = q*N",
        headers=["algorithm", "side"] + [f"q={q}" for q in _CHECKPOINTS],
    )
    table.add_note(
        "Inversions counted in the target-order traversal, normalized by the "
        "start value; mean over trials."
    )
    rng = as_generator((cfg.seed, 111))
    side = cfg.even_sides[min(1, len(cfg.even_sides) - 1)]
    n_cells = side * side
    trials = max(cfg.trials // 8, 4)
    for name in ALGORITHM_NAMES:
        schedule = resolve_algorithm(name)
        compiled = CompiledSchedule(schedule, side)
        fractions = np.zeros((trials, len(_CHECKPOINTS)))
        for trial in range(trials):
            grid = random_permutation_grid(side, rng=rng)
            target = target_grid(grid, side, schedule.order)
            work = grid.copy()
            start = inversions(work, schedule.order)
            t = 0
            for qi, q in enumerate(_CHECKPOINTS):
                t_goal = int(round(q * n_cells))
                while t < t_goal and not np.array_equal(work, target):
                    t += 1
                    compiled.apply_step(work, t)
                fractions[trial, qi] = inversions(work, schedule.order) / max(start, 1)
        means = fractions.mean(axis=0)
        table.add_row(name, side, *[float(v) for v in means])
    return table
