"""E-APP: odd-side (``sqrt(N) = 2n+1``) reproduction of the appendix.

Runs the three snakelike algorithms on odd meshes, checks the Corollary 4
average-case bound, and the per-trial Theorem 13 potential bound.
"""

from __future__ import annotations

from repro.core.engine import default_step_cap, iter_steps, run_until_sorted
from repro.core.runner import resolve_algorithm
from repro.experiments.config import ExperimentConfig
from repro.experiments.sampling import sample
from repro.experiments.tables import Table
from repro.randomness import as_generator, paper_zero_count, random_permutation_grid
from repro.theory.appendix import corollary4_average_lower
from repro.zeroone.threshold import threshold_matrix
from repro.zeroone.trackers import theorem13_additional_steps, z1_statistic

__all__ = ["exp_appendix_average", "exp_appendix_potential"]


def exp_appendix_average(cfg: ExperimentConfig) -> Table:
    """Average steps on odd meshes vs Corollary 4 (snake_1/snake_2)."""
    table = Table(
        title="E-APP: odd-side averages vs Corollary 4",
        headers=["algorithm", "side", "N", "trials", "mean steps", "corollary 4 bound",
                 "mean/N", "bound holds"],
    )
    table.add_note(
        "Appendix: the first two snakelike analyses carry over to odd side with "
        "Definitions 12-13; snake_3 is covered by Lemmas 15-16 (E-T12 handles its tail)."
    )
    for algorithm in ("snake_1", "snake_2", "snake_3"):
        for side in cfg.odd_sides:
            stats = sample(
                algorithm, side=side, trials=cfg.trials,
                seed=(cfg.seed, side, 13), execution=cfg.execution,
            ).stats
            n_cells = side * side
            if algorithm in ("snake_1", "snake_2"):
                bound = float(corollary4_average_lower(side))
            else:
                bound = float(n_cells - 2)  # Theorem 12's displacement average
            table.add_row(
                algorithm, side, n_cells, stats.count, stats.mean, bound,
                stats.mean / n_cells, stats.mean + 1.96 * stats.sem >= bound,
            )
    return table


def exp_appendix_potential(cfg: ExperimentConfig) -> Table:
    """Per-trial Theorem 13 bound vs realized steps on odd meshes."""
    table = Table(
        title="E-APP: Theorem 13 potential bound per trial (odd side)",
        headers=["algorithm", "side", "trials", "min slack", "violations"],
    )
    rng = as_generator((cfg.seed, 77))
    trials = max(cfg.trials // 2, 8)
    for algorithm in ("snake_1", "snake_2"):
        schedule = resolve_algorithm(algorithm)
        for side in cfg.odd_sides:
            grids = random_permutation_grid(side, batch=trials, rng=rng)
            zero_one = threshold_matrix(grids)
            outcome = run_until_sorted(
                schedule, grids, max_steps=default_step_cap(side), raise_on_cap=True
            )
            alpha = paper_zero_count(side)
            slacks = []
            viol = 0
            for i in range(trials):
                for _, snap in iter_steps(schedule, zero_one[i], 1):
                    pass
                bound = theorem13_additional_steps(
                    int(z1_statistic(snap)), alpha, side * side
                ) + 1
                realized = int(outcome.steps[i])
                slacks.append(realized - bound)
                if realized < bound:
                    viol += 1
            table.add_row(algorithm, side, trials, min(slacks), viol)
    return table
