"""Average-case step-count experiments (Theorems 2, 4, 7, 10, 12).

Each experiment sweeps even mesh sides, measures the mean number of steps to
sort random permutations, and prints it next to the paper's lower bound.
The reproduction criterion is *shape*: measured averages must dominate the
bound, scale linearly in N (``steps/N`` roughly constant), and sit far above
the diameter lower bound ``2 sqrt(N) - 2``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable

from repro.experiments.config import ExperimentConfig
from repro.experiments.sampling import sample
from repro.experiments.tables import Table
from repro.theory.bounds import (
    diameter_lower_bound,
    theorem2_average_lower,
    theorem4_average_lower,
    theorem7_average_lower_exact,
    theorem10_average_lower_exact,
    theorem12_average_lower,
)

__all__ = [
    "average_case_table",
    "exp_theorem2",
    "exp_theorem4",
    "exp_theorem7",
    "exp_theorem10",
    "exp_theorem12_average",
]


def average_case_table(
    cfg: ExperimentConfig,
    algorithm: str,
    bound_fn: Callable[[int], Fraction],
    *,
    exp_id: str,
    claim: str,
) -> Table:
    """Generic sweep: measured average vs a per-side lower bound."""
    table = Table(
        title=f"{exp_id}: average steps of {algorithm} vs paper bound",
        headers=[
            "side",
            "N",
            "trials",
            "mean steps",
            "ci95 half",
            "paper bound",
            "mean/N",
            "diameter bound",
            "bound holds",
        ],
    )
    table.add_note(claim)
    for side in cfg.even_sides:
        stats = sample(
            algorithm, side=side, trials=cfg.trials,
            seed=(cfg.seed, side), execution=cfg.execution,
        ).stats
        bound = bound_fn(side)
        n_cells = side * side
        table.add_row(
            side,
            n_cells,
            stats.count,
            stats.mean,
            1.96 * stats.sem,
            bound,
            stats.mean / n_cells,
            diameter_lower_bound(side),
            stats.mean + 1.96 * stats.sem >= float(bound),
        )
    return table


def exp_theorem2(cfg: ExperimentConfig) -> Table:
    """Theorem 2: row-first row-major average >= N/2 - 2 sqrt(N)."""
    return average_case_table(
        cfg,
        "row_major_row_first",
        theorem2_average_lower,
        exp_id="E-T2",
        claim="Theorem 2: E[steps] >= N/2 - 2*sqrt(N) for the row-first algorithm.",
    )


def exp_theorem4(cfg: ExperimentConfig) -> Table:
    """Theorem 4: column-first row-major average >= 3N/8 - 2 sqrt(N)."""
    return average_case_table(
        cfg,
        "row_major_col_first",
        theorem4_average_lower,
        exp_id="E-T4",
        claim="Theorem 4: E[steps] >= 3N/8 - 2*sqrt(N) for the column-first algorithm.",
    )


def exp_theorem7(cfg: ExperimentConfig) -> Table:
    """Theorem 7: first snakelike average >= 4 (E[Z1(0)] - f(N/2,N) - 1)."""
    return average_case_table(
        cfg,
        "snake_1",
        theorem7_average_lower_exact,
        exp_id="E-T7",
        claim=(
            "Theorem 7 via Corollary 3 evaluated exactly: "
            "E[steps] >= 4*(E[Z1(0)] - f(N/2,N) - 1) ~ N/2 - sqrt(N)/2 - 4."
        ),
    )


def exp_theorem10(cfg: ExperimentConfig) -> Table:
    """Theorem 10: second snakelike average >= N/2 - sqrt(N)/2 - 4."""
    return average_case_table(
        cfg,
        "snake_2",
        theorem10_average_lower_exact,
        exp_id="E-T10",
        claim=(
            "Theorem 10 via Theorem 9 evaluated exactly: "
            "E[steps] >= 4*(E[Y1(0)] - N/4 - 1) ~ N/2 - sqrt(N)/2 - 4."
        ),
    )


def exp_theorem12_average(cfg: ExperimentConfig) -> Table:
    """Theorem 12's displacement argument: third snakelike average >= ~N - 2."""
    return average_case_table(
        cfg,
        "snake_3",
        theorem12_average_lower,
        exp_id="E-T12-avg",
        claim=(
            "Theorem 12's walk argument: the minimum needs >= 2m-3 steps from the "
            "rank-m cell, so the average is >= E[max(2m-3, 0)] ~ N - 2."
        ),
    )
