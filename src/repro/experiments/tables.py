"""Result tables: fixed-width text rendering and CSV export.

Every experiment in :mod:`repro.experiments.registry` returns a
:class:`Table`; the benchmark harness prints them and EXPERIMENTS.md records
them.  Cells may be any value; formatting is centralized here.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from fractions import Fraction
from pathlib import Path
from typing import Any

from repro.errors import DimensionError

__all__ = ["Table", "format_cell"]


def format_cell(value: Any) -> str:
    """Render one table cell: Fractions and floats get fixed precision."""
    if isinstance(value, Fraction):
        return f"{float(value):.3f}"
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)


@dataclass
class Table:
    """A titled grid of results with free-form footnotes."""

    title: str
    headers: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise DimensionError(
                f"row has {len(cells)} cells but table has {len(self.headers)} headers"
            )
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def to_text(self) -> str:
        """Fixed-width rendering suitable for terminals and EXPERIMENTS.md."""
        rendered = [[format_cell(c) for c in row] for row in self.rows]
        widths = [len(h) for h in self.headers]
        for row in rendered:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * max(len(self.title), 1)]
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(sep)
        for row in rendered:
            lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def to_csv(self, path: str | Path) -> Path:
        """Write headers + rows as CSV; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(self.headers)
            for row in self.rows:
                writer.writerow([format_cell(c) for c in row])
        return path

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()
