"""E-FAULT: sorting under comparator failures (robustness extension).

Transient failures (each comparator firing no-ops with probability p) leave
the schedules convergent — the sorted grid stays a fixed point and every
useful exchange still happens infinitely often — so the sort completes with
a measurable slowdown.  Killing the wrap wires permanently reproduces the
Section 1 failure mode exactly.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.no_wrap import smallest_column_adversary
from repro.core.algorithms import ALGORITHM_NAMES, get_algorithm
from repro.core.engine import default_step_cap
from repro.core.faults import faulty_run_until_sorted
from repro.experiments.config import ExperimentConfig
from repro.experiments.tables import Table
from repro.randomness import as_generator, random_permutation_grid

__all__ = ["exp_faults"]


def exp_faults(cfg: ExperimentConfig) -> Table:
    """Mean slowdown vs transient failure rate + the dead-wrap-wire demo."""
    table = Table(
        title="E-FAULT: steps under transient comparator failures",
        headers=["algorithm", "side", "failure rate", "trials", "mean steps",
                 "slowdown vs p=0", "all sorted"],
    )
    table.add_note(
        "Transient failures: each comparator firing no-ops independently with "
        "probability p; a generous 1/(1-p) scaled cap is used."
    )
    rng = as_generator((cfg.seed, 101))
    side = cfg.even_sides[0]
    trials = max(cfg.trials // 4, 8)
    rates = (0.0, 0.1, 0.3, 0.5)
    for name in ALGORITHM_NAMES:
        schedule = get_algorithm(name)
        grids = random_permutation_grid(side, batch=trials, rng=rng)
        base_mean = None
        for rate in rates:
            cap = int(default_step_cap(side) / max(1.0 - rate, 0.1)) * 2
            out = faulty_run_until_sorted(
                schedule, grids, max_steps=cap, failure_rate=rate,
                rng=rng, raise_on_cap=False,
            )
            ok = bool(np.all(out.completed))
            mean = float(np.mean(out.steps[out.steps >= 0])) if ok else float("nan")
            if rate == 0.0:
                base_mean = mean
            table.add_row(
                name, side, rate, trials, mean,
                mean / base_mean if base_mean else float("nan"), ok,
            )

    # permanent fault: dead wrap wires on the adversary
    dead = [((h, side - 1), (h + 1, 0)) for h in range(side - 1)]
    out = faulty_run_until_sorted(
        get_algorithm("row_major_row_first"),
        smallest_column_adversary(side),
        max_steps=8 * side * side,
        dead_pairs=dead,
    )
    table.add_row(
        "row_major_row_first", side, "dead wrap wires", 1, float("nan"),
        float("nan"), bool(np.all(out.completed)),
    )
    table.add_note(
        "Last row: all wrap wires permanently dead on the smallest-column "
        "adversary -> never sorts (Section 1)."
    )
    return table
