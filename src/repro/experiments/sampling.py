"""The unified sampling facade: one keyword-only entry point for all draws.

:func:`sample` subsumes the historical ``sample_sort_steps`` /
``sample_statistic_after_steps`` pair (both still importable, both now
``DeprecationWarning`` shims) and fronts the :mod:`repro.campaign` engine:

* ``workers=1`` with no sharding knobs runs **in-process**, drawing the
  exact same stream as the historical samplers — existing seeds keep
  producing bit-identical values;
* any of ``workers != 1``, ``shard_size=...``, ``checkpoint_dir=...`` or
  ``store=...`` switches to **campaign mode**: the trial budget is cut into
  ``SeedSequence.spawn``-seeded shards, optionally fanned out over a
  process pool and checkpointed for resume.  Campaign samples are
  deterministic in the spec alone (worker count never changes values),
  but the sharded stream differs from the in-process one — pick a mode
  per experiment and keep it.

Both paths return the same :class:`~repro.campaign.result.SampleResult`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable

from repro.campaign.execution import ExecutionOptions
from repro.campaign.result import SampleResult
from repro.campaign.runner import run_campaign
from repro.campaign.spec import INPUT_KINDS, KINDS, CampaignSpec
from repro.core.runner import resolve_algorithm
from repro.core.schedule import Schedule
from repro.errors import DimensionError
from repro.experiments.montecarlo import _sort_steps_values, _statistic_values
from repro.obs.events import Observer
from repro.obs.timing import StopWatch
from repro.randomness import seed_provenance

__all__ = ["sample"]


def _validate_request(
    kind: str, statistic: Callable | None, trials: int, input_kind: str | None
) -> None:
    """Fail fast, and identically for both execution modes.

    Historically the in-process path deferred these checks to whatever blew
    up first deep in the samplers (``trials=0`` surfaced as a late
    ``ValueError: cannot summarize an empty sample``; a bogus ``input_kind``
    as a raw ``ValueError`` from the grid generator) while campaign mode
    failed fast with :class:`DimensionError` from ``CampaignSpec``.  The
    facade now owns one error contract: every invalid request raises
    :class:`DimensionError` before any work is done, in either mode.
    """
    if kind not in KINDS:
        raise DimensionError(f"kind must be one of {KINDS}, got {kind!r}")
    if kind == "statistic" and statistic is None:
        raise DimensionError("kind='statistic' requires a statistic callable")
    if kind == "sort_steps" and statistic is not None:
        raise DimensionError("kind='sort_steps' takes no statistic")
    if trials < 1:
        raise DimensionError(f"trials must be positive, got {trials}")
    if input_kind is not None and input_kind not in INPUT_KINDS:
        raise DimensionError(
            f"input_kind must be one of {INPUT_KINDS}, got {input_kind!r}"
        )


def sample(
    algorithm: str | Schedule,
    *,
    side: int,
    trials: int,
    kind: str = "sort_steps",
    statistic: Callable | None = None,
    num_steps: int = 1,
    seed: Any = 0,
    input_kind: str | None = None,
    max_steps: int | None = None,
    batch_size: int | None = None,
    observer: Observer | None = None,
    backend: str | None = None,
    workers: int = 1,
    shard_size: int | None = None,
    checkpoint_dir: str | Path | None = None,
    resume: bool = False,
    retries: int = 2,
    max_shards: int | None = None,
    store: Any = None,
    execution: ExecutionOptions | None = None,
) -> SampleResult:
    """Draw a Monte-Carlo sample for ``algorithm`` on a ``side``×``side`` grid.

    Parameters
    ----------
    kind:
        ``"sort_steps"`` (default) samples the number of steps to sort a
        random input to completion; ``"statistic"`` applies ``statistic``
        to each grid after ``num_steps`` steps and samples its value.
    statistic:
        Required for (and only allowed with) ``kind="statistic"``.  A
        callable ``grid_batch -> per-grid values``; must be a picklable
        module-level function when campaign mode uses worker processes.
    input_kind:
        ``"permutation"`` or ``"zero_one"``; defaults to ``"permutation"``
        for ``sort_steps`` and ``"zero_one"`` for ``statistic`` (the
        paper's conventions).
    backend:
        Backend-registry name; ``None`` (default) lets the schedule
        registry pick the topology-matched backend — ``"vectorized"`` for
        square families (the historical default), ``"rect"`` for linear
        families such as ``odd_even`` and ``random_network``.
    workers, shard_size, checkpoint_dir, resume, retries, max_shards:
        Campaign-mode knobs — see :func:`repro.campaign.run_campaign`.
        Any of ``workers != 1``, an explicit ``shard_size``, or a
        ``checkpoint_dir`` selects campaign mode (``shard_size`` defaults
        to 64 there).  ``observer`` receives campaign-level events in
        campaign mode and per-run events in-process.
    store:
        Result store for cache-hit short-circuiting (anything
        :func:`repro.store.resolve_store` accepts).  Forces campaign
        mode: the store is keyed by the campaign fingerprint, which
        describes the sharded draw plan, not the in-process stream.  A
        repeat call with the same spec returns the stored values
        bit-identically without running a single kernel step.
    execution:
        A frozen :class:`~repro.campaign.execution.ExecutionOptions`
        bundling ``backend``/``workers``/``shard_size``/
        ``checkpoint_dir``/``resume``/``store``/``retries``/
        ``max_shards``.  Mutually exclusive with passing those knobs
        loose.

    Returns
    -------
    SampleResult
        Per-trial values, :class:`TrialStats`, and provenance ``meta``
        (``meta["mode"]`` is ``"in-process"`` or ``"campaign"``).
    """
    if execution is not None:
        loose = (
            backend is not None
            or workers != 1
            or shard_size is not None
            or checkpoint_dir is not None
            or resume
            or retries != 2
            or max_shards is not None
            or store is not None
        )
        if loose:
            raise DimensionError(
                "pass execution knobs either inside ExecutionOptions or as "
                "loose keywords, not both"
            )
        backend = execution.backend
        workers = execution.workers
        shard_size = execution.shard_size
        checkpoint_dir = execution.checkpoint_dir
        resume = execution.resume
        retries = execution.retries
        max_shards = execution.max_shards
        store = execution.store
    _validate_request(kind, statistic, trials, input_kind)
    campaign_mode = (
        workers != 1
        or shard_size is not None
        or checkpoint_dir is not None
        or store is not None
        or max_shards is not None
    )
    if campaign_mode:
        spec = CampaignSpec(
            algorithm=algorithm,
            side=side,
            trials=trials,
            kind=kind,
            input_kind=input_kind,
            seed=seed,
            backend=backend,
            statistic=statistic,
            num_steps=num_steps,
            max_steps=max_steps,
            shard_size=64 if shard_size is None else shard_size,
            batch_size=batch_size,
        )
        return run_campaign(
            spec,
            workers=workers,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            observer=observer,
            retries=retries,
            max_shards=max_shards,
            store=store,
        )

    # In-process path: the historical single-stream draw, bit-identical to
    # the deprecated sample_* functions for the same arguments.
    watch = StopWatch().start()
    if kind == "sort_steps":
        values = _sort_steps_values(
            algorithm,
            side,
            trials,
            seed=seed,
            max_steps=max_steps,
            input_kind="permutation" if input_kind is None else input_kind,
            batch_size=batch_size,
            observer=observer,
            backend=backend,
        )
    else:
        values = _statistic_values(
            algorithm,
            side,
            trials,
            statistic,
            num_steps=num_steps,
            seed=seed,
            input_kind="zero_one" if input_kind is None else input_kind,
            batch_size=batch_size,
            observer=observer,
            backend=backend,
        )
    elapsed = watch.elapsed
    from repro.schedules import execution_backend

    schedule = resolve_algorithm(algorithm, side)
    meta: dict[str, Any] = {
        "mode": "in-process",
        "algorithm": schedule.name,
        "side": side,
        "trials": int(values.size),
        "kind": kind,
        "input_kind": input_kind
        or ("permutation" if kind == "sort_steps" else "zero_one"),
        "seed": seed_provenance(seed),
        "backend": backend if isinstance(backend, str) else execution_backend(schedule, backend),
        "workers": 1,
        "elapsed": elapsed,
    }
    return SampleResult.from_values(values, meta)
