"""Structural experiments: lemma invariants, potential bounds, min-home times.

* E-L123: Lemmas 1-3 checked cellwise on random 0-1 matrices around each
  step of the row-major algorithms.
* E-T1: Theorem 1 / Corollary 2 — the potential measured after the first
  row sort must under-estimate the realized sorting time on every trial.
* E-T6/T9: the snakelike potential bounds (Theorem 6 and 9) checked the
  same way, including the Z/Y monotonicity chains (Lemmas 5-8, 10).
* E-MINHOME: average steps for the smallest element to reach the top-left
  cell — Θ(sqrt(N)) for the first four algorithms, Θ(N) for snake_3
  (the paper's closing remark).
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import default_step_cap, iter_steps, run_until_sorted
from repro.core.runner import resolve_algorithm
from repro.experiments.config import ExperimentConfig
from repro.experiments.montecarlo import summarize
from repro.experiments.tables import Table
from repro.randomness import as_generator, random_permutation_grid, random_zero_one_grid
from repro.theory.bounds import corollary2_lower_bound
from repro.zeroone.invariants import (
    check_lemma1_column_sort,
    check_lemma2_odd_row_sort,
    check_lemma3_even_row_sort,
    check_lemma10,
    check_lemmas_5_to_8,
)
from repro.zeroone.smallest import steps_until_min_home
from repro.zeroone.threshold import threshold_matrix
from repro.zeroone.trackers import (
    theorem6_additional_steps,
    theorem9_additional_steps,
    y1_statistic,
    z1_statistic,
)
from repro.zeroone.weights import m_statistic

__all__ = ["exp_invariants", "exp_potential_bounds", "exp_min_home"]

_ROW_FIRST_CHECKERS = {
    # step index in the cycle (1-based) -> lemma checker
    1: check_lemma2_odd_row_sort,
    2: check_lemma1_column_sort,
    3: check_lemma3_even_row_sort,
    4: check_lemma1_column_sort,
}


def exp_invariants(cfg: ExperimentConfig) -> Table:
    """E-L123 + Lemmas 5-8, 10: violation counts over random traces."""
    table = Table(
        title="E-L123: lemma invariants on random 0-1 traces",
        headers=["lemma", "algorithm", "side", "matrices", "steps checked", "violations"],
    )
    rng = as_generator(cfg.seed)
    for side in cfg.even_sides:
        cycles = 2 * side
        checked = {1: 0, 2: 0, 3: 0, 4: 0}
        violations = {1: 0, 2: 0, 3: 0, 4: 0}
        for _ in range(cfg.invariant_trials):
            grid = random_zero_one_grid(side, rng=rng)
            prev = np.asarray(grid)
            for t, snap in iter_steps(
                resolve_algorithm("row_major_row_first"), grid, 4 * cycles
            ):
                phase = (t - 1) % 4 + 1
                checker = _ROW_FIRST_CHECKERS[phase]
                violations[phase] += len(checker(prev, snap))
                checked[phase] += 1
                prev = snap
        table.add_row("Lemma 2 (odd row sort)", "row_major_row_first", side,
                      cfg.invariant_trials, checked[1], violations[1])
        table.add_row("Lemma 1 (column sort)", "row_major_row_first", side,
                      cfg.invariant_trials, checked[2] + checked[4],
                      violations[2] + violations[4])
        table.add_row("Lemma 3 (even row sort)", "row_major_row_first", side,
                      cfg.invariant_trials, checked[3], violations[3])

        z_viol = 0
        y_viol = 0
        steps = 4 * cycles
        for _ in range(cfg.invariant_trials):
            grid = random_zero_one_grid(side, rng=rng)
            trace1 = [s for _, s in iter_steps(resolve_algorithm("snake_1"), grid, steps)]
            z_viol += len(check_lemmas_5_to_8(trace1))
            trace2 = [s for _, s in iter_steps(resolve_algorithm("snake_2"), grid, steps)]
            y_viol += len(check_lemma10(trace2))
        table.add_row("Lemmas 5-8 (Z chain)", "snake_1", side,
                      cfg.invariant_trials, steps, z_viol)
        table.add_row("Lemma 10 (Y chain)", "snake_2", side,
                      cfg.invariant_trials, steps, y_viol)
    return table


def exp_potential_bounds(cfg: ExperimentConfig) -> Table:
    """E-T1/T6/T9: potential-based lower bounds vs realized sorting times.

    For each random permutation, the potential after step 1 (or 2 for the
    column-first variant) yields a lower bound on total steps; the realized
    completion time must dominate it on *every* trial.
    """
    table = Table(
        title="E-T1/T6/T9: per-trial potential bound <= realized steps",
        headers=["bound", "algorithm", "side", "trials", "min slack", "violations"],
    )
    table.add_note(
        "slack = realized steps - potential lower bound; Theorem 1 via "
        "Corollary 2 (M statistic), Theorem 6 (Z1(0)), Theorem 9 (Y1(0))."
    )
    rng = as_generator((cfg.seed, 41))
    trials = max(cfg.trials // 2, 8)
    cases = (
        ("Corollary 2 (4nM)", "row_major_row_first", 1,
         lambda grid01, side: corollary2_lower_bound(int(m_statistic(grid01)), side)),
        ("Corollary 2 (4nM)", "row_major_col_first", 2,
         lambda grid01, side: corollary2_lower_bound(int(m_statistic(grid01)), side)),
        ("Theorem 6 (Z1)", "snake_1", 1,
         lambda grid01, side: theorem6_additional_steps(
             int(z1_statistic(grid01)), (side * side) // 2, side * side) + 1),
        ("Theorem 9 (Y1)", "snake_2", 1,
         lambda grid01, side: theorem9_additional_steps(
             int(y1_statistic(grid01)), (side * side) // 2) + 1),
    )
    for bound_name, algorithm, measure_step, bound_fn in cases:
        schedule = resolve_algorithm(algorithm)
        for side in cfg.even_sides:
            grids = random_permutation_grid(side, batch=trials, rng=rng)
            zero_one = threshold_matrix(grids)
            outcome = run_until_sorted(
                schedule, grids, max_steps=default_step_cap(side), raise_on_cap=True
            )
            slacks = []
            viol = 0
            for i in range(trials):
                work = zero_one[i].copy()
                for t, snap in iter_steps(schedule, work, measure_step):
                    pass
                bound = bound_fn(snap, side)
                realized = int(outcome.steps[i])
                slacks.append(realized - bound)
                if realized < bound:
                    viol += 1
            table.add_row(bound_name, algorithm, side, trials, min(slacks), viol)
    return table


def exp_min_home(cfg: ExperimentConfig) -> Table:
    """E-MINHOME: steps for the smallest value to reach the top-left cell."""
    table = Table(
        title="E-MINHOME: smallest element's travel time to cell (1,1)",
        headers=["algorithm", "side", "trials", "mean steps", "mean/sqrt(N)", "mean/N"],
    )
    table.add_note(
        "Paper, end of Section 3: the first four algorithms move the minimum "
        "home in Theta(sqrt(N)) average steps; snake_3 needs Theta(N) w.h.p."
    )
    rng = as_generator((cfg.seed, 99))
    trials = max(cfg.trials // 4, 8)
    for algorithm in (
        "row_major_row_first",
        "row_major_col_first",
        "snake_1",
        "snake_2",
        "snake_3",
    ):
        for side in cfg.even_sides:
            times = []
            for _ in range(trials):
                grid = random_permutation_grid(side, rng=rng)
                t = steps_until_min_home(
                    algorithm, grid, max_steps=default_step_cap(side)
                )
                times.append(t)
            stats = summarize(np.array(times))
            table.add_row(
                algorithm, side, trials, stats.mean,
                stats.mean / side, stats.mean / (side * side),
            )
    return table
