"""Moment experiments: Monte Carlo vs exact vs the paper's closed forms.

Covers Lemma 4 (E[z1], E[Z1], E[M] for the row-first algorithm), Theorem 4
(column-first E[z1]), Lemma 9 (snakelike E[Z1(0)]), Lemma 11 (E[Y1(0)]),
Lemma 14 (odd side), and the variance computations of Theorems 3, 5, 8.

Every statistic is measured on the matrix after step 1 of the relevant
algorithm applied to a random :math:`\\mathcal{A}^{01}`; exact values come
from :mod:`repro.theory`.  Where the paper's printed closed form disagrees
with the exact combinatorics (Theorem 8's variance), both are shown.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.sampling import sample
from repro.experiments.tables import Table
from repro.theory import appendix, moments
from repro.zeroone.trackers import y1_statistic, z1_statistic
from repro.zeroone.weights import first_column_zeros, m_statistic

__all__ = ["exp_moments_row_major", "exp_moments_snake", "exp_moments_variance"]


def exp_moments_row_major(cfg: ExperimentConfig) -> Table:
    """E-L4 / E-T4-moments: first moments for the two row-major algorithms."""
    table = Table(
        title="E-L4: row-major first moments after step 1 (random A01)",
        headers=["quantity", "side", "exact", "paper form", "MC mean", "ci95 half", "agree"],
    )
    table.add_note(
        "Lemma 4: E[Z1] = 2n*(3/4 + 1/(16n^2-4)); Theorem 4: E[Z1] = n*(11/8 + ...)."
    )
    for side in cfg.even_sides:
        n = side // 2
        stats = sample(
            "row_major_row_first", side=side, trials=cfg.moment_trials,
            kind="statistic", statistic=first_column_zeros,
            seed=(cfg.seed, side, 1), execution=cfg.execution,
        ).stats
        exact = float(moments.e_Z1_row_first(n))
        paper = float(2 * n * moments.e_z1_row_first_paper(n))
        table.add_row(
            "E[Z1] row-first", side, exact, paper,
            stats.mean, 1.96 * stats.sem,
            abs(stats.mean - exact) <= 4 * (stats.sem + 1e-12),
        )

        stats_m = sample(
            "row_major_row_first", side=side, trials=cfg.moment_trials,
            kind="statistic", statistic=m_statistic,
            seed=(cfg.seed, side, 2), execution=cfg.execution,
        ).stats
        lower = float(moments.e_M_lower_row_first_paper(n))
        table.add_row(
            "E[M] row-first (>= bound)", side, lower, lower,
            stats_m.mean, 1.96 * stats_m.sem,
            stats_m.mean + 4 * stats_m.sem >= lower,
        )

        # Column-first: Z1 counts the first-column zeroes after the first
        # *row* sort, which is step 2 of the column-first algorithm.
        stats_cf = sample(
            "row_major_col_first", side=side, trials=cfg.moment_trials,
            kind="statistic", statistic=first_column_zeros, num_steps=2,
            seed=(cfg.seed, side, 3), execution=cfg.execution,
        ).stats
        exact_cf = float(moments.e_Z1_col_first(n))
        paper_cf = float(n * moments.e_z1_col_first_paper(n))
        table.add_row(
            "E[Z1] col-first", side, exact_cf, paper_cf,
            stats_cf.mean, 1.96 * stats_cf.sem,
            abs(stats_cf.mean - exact_cf) <= 4 * (stats_cf.sem + 1e-12),
        )
    return table


def exp_moments_snake(cfg: ExperimentConfig) -> Table:
    """E-L9 / E-L11 / E-L14: snakelike potentials after step 1."""
    table = Table(
        title="E-L9/L11/L14: snakelike potential expectations after step 1",
        headers=["quantity", "side", "exact", "paper form", "MC mean", "ci95 half", "agree"],
    )
    for side in cfg.even_sides:
        stats = sample(
            "snake_1", side=side, trials=cfg.moment_trials,
            kind="statistic", statistic=z1_statistic,
            seed=(cfg.seed, side, 4), execution=cfg.execution,
        ).stats
        exact = float(moments.e_Z1_0_snake1(side))
        paper = float(moments.e_Z1_0_snake1_paper(side))
        table.add_row(
            "E[Z1(0)] snake_1", side, exact, paper,
            stats.mean, 1.96 * stats.sem,
            abs(stats.mean - exact) <= 4 * (stats.sem + 1e-12),
        )
        stats_y = sample(
            "snake_2", side=side, trials=cfg.moment_trials,
            kind="statistic", statistic=y1_statistic,
            seed=(cfg.seed, side, 5), execution=cfg.execution,
        ).stats
        exact_y = float(moments.e_Y1_0_snake2(side))
        paper_y = float(moments.e_Y1_0_snake2_paper(side))
        table.add_row(
            "E[Y1(0)] snake_2", side, exact_y, paper_y,
            stats_y.mean, 1.96 * stats_y.sem,
            abs(stats_y.mean - exact_y) <= 4 * (stats_y.sem + 1e-12),
        )
    for side in cfg.odd_sides:
        stats = sample(
            "snake_1", side=side, trials=cfg.moment_trials,
            kind="statistic", statistic=z1_statistic,
            seed=(cfg.seed, side, 6), execution=cfg.execution,
        ).stats
        exact = float(appendix.e_Z1_0_snake1_odd(side))
        paper = float(appendix.e_Z1_0_snake1_odd_paper(side))
        table.add_row(
            "E[Z1(0)] snake_1 (odd)", side, exact, paper,
            stats.mean, 1.96 * stats.sem,
            abs(stats.mean - exact) <= 4 * (stats.sem + 1e-12),
        )
    return table


def exp_moments_variance(cfg: ExperimentConfig) -> Table:
    """Variance checks for Theorems 3, 5, 8 (exact vs MC vs printed)."""
    table = Table(
        title="E-VAR: potential variances (Theorems 3, 5, 8)",
        headers=["quantity", "side", "exact", "paper asymptote", "MC variance", "agree"],
    )
    table.add_note(
        "Theorem 8's printed Var[Z1(0)] ~ (17/8) n^2 disagrees with both the exact "
        "computation and Monte Carlo (true value ~ n^2/8); the theorem's conclusion "
        "is unaffected (smaller variance strengthens the concentration)."
    )
    for side in cfg.even_sides:
        n = side // 2
        mc = sample(
            "row_major_row_first", side=side, trials=cfg.moment_trials,
            kind="statistic", statistic=first_column_zeros,
            seed=(cfg.seed, side, 7), execution=cfg.execution,
        ).values
        var_mc = float(np.var(mc, ddof=1))
        exact = float(moments.var_Z1_row_first(n))
        table.add_row(
            "Var(Z1) row-first", side, exact, f"3n/8 = {3 * n / 8:.3f}", var_mc,
            abs(var_mc - exact) <= 0.25 * exact + 0.05,
        )
        mc_s = sample(
            "snake_1", side=side, trials=cfg.moment_trials,
            kind="statistic", statistic=z1_statistic,
            seed=(cfg.seed, side, 8), execution=cfg.execution,
        ).values
        var_s = float(np.var(mc_s, ddof=1))
        exact_s = float(moments.var_Z1_0_snake1(side))
        paper_s = float(moments.var_Z1_0_snake1_paper(n))
        table.add_row(
            "Var[Z1(0)] snake_1", side, exact_s, f"paper {paper_s:.1f}", var_s,
            abs(var_s - exact_s) <= 0.25 * exact_s + 0.05,
        )
    return table
