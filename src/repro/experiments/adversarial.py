"""Adversarial-input experiments: Corollary 1 and the no-wrap failure mode.

* E-C1: with the smallest ``sqrt(N)`` values stacked in one column, both
  row-major algorithms need at least ``2N - 4 sqrt(N)`` steps (Corollary 1 —
  the worst case the paper identifies).
* E-NOWRAP: on the same input, the row-major schedule *without* wrap-around
  wires never sorts — the smallest column's values are trapped (Section 1's
  motivation for the extra wires).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.no_wrap import smallest_column_adversary
from repro.core.runner import sort_grid
from repro.experiments.config import ExperimentConfig
from repro.experiments.tables import Table
from repro.theory.bounds import corollary1_worst_case_lower
from repro.zeroone.threshold import threshold_matrix
from repro.zeroone.weights import column_zeros

__all__ = ["exp_corollary1", "exp_no_wrap"]


def exp_corollary1(cfg: ExperimentConfig) -> Table:
    """E-C1: adversary steps vs the 2N - 4 sqrt(N) worst-case lower bound."""
    table = Table(
        title="E-C1: smallest-column adversary vs Corollary 1 (>= 2N - 4*sqrt(N))",
        headers=["algorithm", "side", "N", "steps", "bound", "steps/N", "bound holds"],
    )
    table.add_note(
        "Corollary 1 is proved for the 0-1 matrix with one all-zero column; the "
        "permutation adversary stacks the smallest sqrt(N) values in column 1, "
        "whose threshold matrix is exactly that 0-1 matrix."
    )
    for algorithm in ("row_major_row_first", "row_major_col_first"):
        for side in cfg.even_sides:
            adversary = smallest_column_adversary(side)
            report = sort_grid(algorithm, adversary, raise_on_cap=True)
            steps = report.steps_scalar()
            bound = corollary1_worst_case_lower(side)
            table.add_row(
                algorithm, side, side * side, steps, bound,
                steps / (side * side), steps >= bound,
            )
    return table


def exp_no_wrap(cfg: ExperimentConfig) -> Table:
    """E-NOWRAP: without wrap wires the adversary is never sorted."""
    table = Table(
        title="E-NOWRAP: row-major schedule without wrap-around wires",
        headers=[
            "side",
            "cap (steps)",
            "sorted",
            "zeros stuck in column 1",
        ],
    )
    table.add_note(
        "Section 1: without wrap-around comparisons, the smallest sqrt(N) values "
        "can never leave their column, so the sort never completes and the "
        "column's zero count never changes."
    )
    # Resolved by registry name: the pathological family is addressable
    # even though sweeps exclude it by default.
    schedule = "row_major_no_wrap"
    for side in cfg.even_sides:
        adversary = smallest_column_adversary(side)
        cap = 8 * side * side
        report = sort_grid(schedule, adversary, max_steps=cap)
        zeros_col1 = int(column_zeros(threshold_matrix(report.final, side))[0])
        table.add_row(side, cap, bool(np.all(report.completed)), zeros_col1)
    return table
