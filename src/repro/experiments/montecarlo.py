"""Seeded Monte-Carlo runners for step-count and potential statistics.

All sampling is reproducible: a root seed is turned into independent child
streams with ``SeedSequence.spawn`` (see :mod:`repro.randomness`).  Runs are
batched — the vectorized engine advances every trial's grid simultaneously,
which is what makes Θ(N)-step experiments on hundreds of permutations cheap.

.. deprecated::
    The two historical entry points :func:`sample_sort_steps` and
    :func:`sample_statistic_after_steps` grew divergent signatures (one
    takes ``statistic``/``num_steps``, one takes ``max_steps``; different
    default ``input_kind`` and batch sizes).  They are kept as thin shims
    emitting :class:`DeprecationWarning` — new code should call the one
    keyword-only facade :func:`repro.experiments.sample`, which routes to
    the same internals and adds sharded parallel execution via
    :mod:`repro.campaign`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from math import sqrt

import numpy as np

from repro.backends import Backend, get_backend, run_sort, run_steps
from repro.backends.base import resolve_step_cap
from repro.core.runner import resolve_algorithm
from repro.core.schedule import Schedule
from repro.errors import DimensionError, StepLimitExceeded
from repro.obs.events import Observer
from repro.randomness import (
    SeedLike,
    as_generator,
    random_permutation_mesh,
    random_zero_one_mesh,
)

__all__ = [
    "SMALL_SAMPLE_COUNT",
    "TrialStats",
    "summarize",
    "sample_sort_steps",
    "sample_statistic_after_steps",
]

#: Below this trial count the normal-approximation CI is not trustworthy
#: (the CLT has not kicked in and the 1.96 z-quantile understates the
#: Student-t quantile by >5%); :meth:`TrialStats.describe` flags it.
SMALL_SAMPLE_COUNT = 30


@dataclass
class TrialStats:
    """Summary statistics of a sample of trial outcomes.

    The confidence interval is the classic normal approximation
    ``mean ± 1.96 * sem``: it treats the sample mean as Gaussian, which the
    CLT justifies only for moderately large samples of the bounded
    statistics measured here.  For ``count < SMALL_SAMPLE_COUNT`` the
    interval is still *computed* (callers may want it for plotting), but
    :attr:`ci95_reliable` is False and :meth:`describe` says so instead of
    silently printing a meaningless CI.
    """

    count: int
    mean: float
    std: float
    sem: float
    minimum: float
    maximum: float

    @property
    def ci95(self) -> tuple[float, float]:
        """Normal-approximation 95% confidence interval for the mean.

        Valid for ``count >= SMALL_SAMPLE_COUNT``; see the class docstring
        for what happens below that.
        """
        half = 1.96 * self.sem
        return (self.mean - half, self.mean + half)

    @property
    def ci95_reliable(self) -> bool:
        """Whether the normal approximation behind :attr:`ci95` is sound."""
        return self.count >= SMALL_SAMPLE_COUNT

    def describe(self) -> str:
        lo, hi = self.ci95
        ci = (
            f"95% CI [{lo:.2f}, {hi:.2f}]"
            if self.ci95_reliable
            else f"CI unreliable: n={self.count} < {SMALL_SAMPLE_COUNT}"
        )
        return (
            f"mean={self.mean:.2f} ± {1.96 * self.sem:.2f} ({ci}), "
            f"std={self.std:.2f}, range [{self.minimum:.0f}, {self.maximum:.0f}], "
            f"trials={self.count}"
        )


def summarize(values: np.ndarray) -> TrialStats:
    """Summarize a 1-D sample."""
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        raise DimensionError("cannot summarize an empty sample")
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    return TrialStats(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=std,
        sem=std / sqrt(arr.size) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


def _draw_grids(
    shape: tuple[int, int], batch: int, input_kind: str, rng
) -> np.ndarray:
    if input_kind == "permutation":
        return random_permutation_mesh(shape, batch=batch, rng=rng)
    if input_kind == "zero_one":
        return random_zero_one_mesh(shape, batch=batch, rng=rng)
    raise DimensionError(f"unknown input_kind {input_kind!r}")


def _resolve_run_plan(
    algorithm: str | Schedule,
    side: int,
    backend: str | Backend | None,
) -> tuple[Schedule, tuple[int, int], Backend]:
    """Resolve ``(schedule, mesh shape, backend)`` for one sampling run.

    The registry decides the mesh a ``side`` induces (square families run
    ``side × side``, linear families ``1 × side``) and, when the caller did
    not pick a backend, which backend executes it (vectorized for square,
    rect for linear).  An explicitly chosen backend that cannot run the
    schedule's mesh is rejected eagerly with a clear message instead of
    failing deep inside ``prepare``.
    """
    from repro.schedules import execution_backend, mesh_shape

    schedule = resolve_algorithm(algorithm, side)
    shape = mesh_shape(schedule, side)
    if backend is None or isinstance(backend, str):
        be = get_backend(execution_backend(schedule, backend))
    else:
        be = backend
    if shape[0] != shape[1] and not be.supports_rect:
        raise DimensionError(
            f"backend {be.name!r} only supports square meshes, but schedule "
            f"{schedule.name!r} runs on a {shape[0]}x{shape[1]} mesh; "
            f"use a rect-capable backend or leave backend unset"
        )
    return schedule, shape, be


def _sort_steps_values(
    algorithm: str | Schedule,
    side: int,
    trials: int,
    *,
    seed: SeedLike = 0,
    max_steps: int | None = None,
    input_kind: str = "permutation",
    batch_size: int | None = None,
    observer: Observer | None = None,
    backend: str | Backend | None = "vectorized",
) -> np.ndarray:
    """Warning-free core of the historical ``sample_sort_steps``.

    Shared by the deprecation shim, the :func:`repro.experiments.sample`
    facade, and every campaign shard worker — one draw order, so the same
    ``seed`` yields the same values through every entry point.

    ``backend=None`` lets the schedule registry pick the topology-matched
    backend (square → vectorized, linear → rect).
    """
    rng = as_generator(seed)
    schedule, shape, be = _resolve_run_plan(algorithm, side, backend)
    if max_steps is None:
        max_steps = resolve_step_cap(schedule, *shape)
    if batch_size is None:
        batch_size = min(trials, 256)
    out = np.empty(trials, dtype=np.int64)
    done = 0
    while done < trials:
        batch = min(batch_size, trials - done)
        grids = _draw_grids(shape, batch, input_kind, rng)
        if be.supports_batch:
            outcome = run_sort(
                be, schedule, grids, max_steps=max_steps, observer=observer
            )
            if not outcome.all_completed:
                raise StepLimitExceeded(max_steps, int(np.sum(~outcome.completed)))
            out[done : done + batch] = outcome.steps
        else:
            for i in range(batch):
                outcome = run_sort(
                    be, schedule, grids[i], max_steps=max_steps, observer=observer
                )
                if not outcome.all_completed:
                    raise StepLimitExceeded(max_steps, 1)
                out[done + i] = outcome.steps_scalar()
        done += batch
    return out


def _statistic_values(
    algorithm: str | Schedule,
    side: int,
    trials: int,
    statistic,
    *,
    num_steps: int = 1,
    seed: SeedLike = 0,
    input_kind: str = "zero_one",
    batch_size: int | None = None,
    observer: Observer | None = None,
    backend: str | Backend | None = "vectorized",
) -> np.ndarray:
    """Warning-free core of the historical ``sample_statistic_after_steps``."""
    rng = as_generator(seed)
    if batch_size is None:
        batch_size = min(trials, 512)
    schedule, shape, be = _resolve_run_plan(algorithm, side, backend)
    chunks = []
    done = 0
    while done < trials:
        batch = min(batch_size, trials - done)
        grids = _draw_grids(shape, batch, input_kind, rng)
        if be.supports_batch:
            after = run_steps(be, schedule, grids, num_steps, observer=observer)
        else:
            after = np.stack([
                run_steps(be, schedule, grids[i], num_steps, observer=observer)
                for i in range(batch)
            ])
        chunks.append(np.asarray(statistic(after)))
        done += batch
    return np.concatenate([np.atleast_1d(c) for c in chunks])


def _deprecated(old: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use repro.experiments.sample(...) instead "
        "(same values for the same seed, plus workers=/checkpoint_dir= for "
        "sharded parallel campaigns)",
        DeprecationWarning,
        stacklevel=3,
    )


def sample_sort_steps(
    algorithm: str | Schedule,
    side: int,
    trials: int,
    *,
    seed: SeedLike = 0,
    max_steps: int | None = None,
    input_kind: str = "permutation",
    batch_size: int | None = None,
    observer: Observer | None = None,
    backend: str | Backend = "vectorized",
) -> np.ndarray:
    """Step counts over ``trials`` random inputs.

    .. deprecated:: use :func:`repro.experiments.sample` with
       ``kind="sort_steps"`` — it returns the identical values for the
       same ``seed`` (wrapped in a :class:`~repro.campaign.SampleResult`).

    ``input_kind`` is ``"permutation"`` (random permutations of ``0..N-1``)
    or ``"zero_one"`` (the paper's random :math:`\\mathcal{A}^{01}`
    distribution).  Raises :class:`StepLimitExceeded` if any trial fails to
    finish — the algorithms have Θ(N) worst cases, so with the default cap
    this indicates a bug.

    Any registered backend works.  Batch-capable backends advance every
    trial's grid simultaneously; single-grid backends (the oracle, the mesh
    machine) run trial by trial.  Grids are drawn in identical batched RNG
    order either way, so the same ``seed`` yields the same inputs — and, as
    the backends agree step-for-step, the same step counts — on every
    backend.
    """
    _deprecated("sample_sort_steps")
    return _sort_steps_values(
        algorithm,
        side,
        trials,
        seed=seed,
        max_steps=max_steps,
        input_kind=input_kind,
        batch_size=batch_size,
        observer=observer,
        backend=backend,
    )


def sample_statistic_after_steps(
    algorithm: str | Schedule,
    side: int,
    trials: int,
    statistic,
    *,
    num_steps: int = 1,
    seed: SeedLike = 0,
    input_kind: str = "zero_one",
    batch_size: int | None = None,
    observer: Observer | None = None,
    backend: str | Backend = "vectorized",
) -> np.ndarray:
    """Sample ``statistic(grid_after_num_steps)`` over random inputs.

    .. deprecated:: use :func:`repro.experiments.sample` with
       ``kind="statistic"`` — it returns the identical values for the same
       ``seed`` (wrapped in a :class:`~repro.campaign.SampleResult`).

    ``statistic`` must accept a batched ``(..., side, side)`` array and
    return a batch of numbers (all the trackers in :mod:`repro.zeroone` do).
    Used for the moment experiments (E-L4, E-L9, E-L11, E-L14).  Single-grid
    backends run trial by trial over the same batched grid draws, then the
    statistic is applied to the re-stacked batch.
    """
    _deprecated("sample_statistic_after_steps")
    return _statistic_values(
        algorithm,
        side,
        trials,
        statistic,
        num_steps=num_steps,
        seed=seed,
        input_kind=input_kind,
        batch_size=batch_size,
        observer=observer,
        backend=backend,
    )
