"""Seeded Monte-Carlo runners for step-count and potential statistics.

All sampling is reproducible: a root seed is turned into independent child
streams with ``SeedSequence.spawn`` (see :mod:`repro.randomness`).  Runs are
batched — the vectorized engine advances every trial's grid simultaneously,
which is what makes Θ(N)-step experiments on hundreds of permutations cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt

import numpy as np

from repro.backends import Backend, get_backend, run_sort, run_steps, step_cap
from repro.core.runner import resolve_algorithm
from repro.core.schedule import Schedule
from repro.errors import StepLimitExceeded
from repro.obs.events import Observer
from repro.randomness import SeedLike, as_generator, random_permutation_grid, random_zero_one_grid

__all__ = ["TrialStats", "summarize", "sample_sort_steps", "sample_statistic_after_steps"]


@dataclass
class TrialStats:
    """Summary statistics of a sample of trial outcomes."""

    count: int
    mean: float
    std: float
    sem: float
    minimum: float
    maximum: float

    @property
    def ci95(self) -> tuple[float, float]:
        """Normal-approximation 95% confidence interval for the mean."""
        half = 1.96 * self.sem
        return (self.mean - half, self.mean + half)

    def describe(self) -> str:
        lo, hi = self.ci95
        return (
            f"mean={self.mean:.2f} ± {1.96 * self.sem:.2f} (95% CI [{lo:.2f}, {hi:.2f}]), "
            f"std={self.std:.2f}, range [{self.minimum:.0f}, {self.maximum:.0f}], "
            f"trials={self.count}"
        )


def summarize(values: np.ndarray) -> TrialStats:
    """Summarize a 1-D sample."""
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    return TrialStats(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=std,
        sem=std / sqrt(arr.size) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


def _draw_grids(side: int, batch: int, input_kind: str, rng) -> np.ndarray:
    if input_kind == "permutation":
        return random_permutation_grid(side, batch=batch, rng=rng)
    if input_kind == "zero_one":
        return random_zero_one_grid(side, batch=batch, rng=rng)
    raise ValueError(f"unknown input_kind {input_kind!r}")


def sample_sort_steps(
    algorithm: str | Schedule,
    side: int,
    trials: int,
    *,
    seed: SeedLike = 0,
    max_steps: int | None = None,
    input_kind: str = "permutation",
    batch_size: int | None = None,
    observer: Observer | None = None,
    backend: str | Backend = "vectorized",
) -> np.ndarray:
    """Step counts over ``trials`` random inputs.

    ``input_kind`` is ``"permutation"`` (random permutations of ``0..N-1``)
    or ``"zero_one"`` (the paper's random :math:`\\mathcal{A}^{01}`
    distribution).  Raises :class:`StepLimitExceeded` if any trial fails to
    finish — the algorithms have Θ(N) worst cases, so with the default cap
    this indicates a bug.

    Any registered backend works.  Batch-capable backends advance every
    trial's grid simultaneously; single-grid backends (the oracle, the mesh
    machine) run trial by trial.  Grids are drawn in identical batched RNG
    order either way, so the same ``seed`` yields the same inputs — and, as
    the backends agree step-for-step, the same step counts — on every
    backend.
    """
    rng = as_generator(seed)
    be = get_backend(backend)
    schedule = resolve_algorithm(algorithm)
    if max_steps is None:
        max_steps = step_cap(side)
    if batch_size is None:
        batch_size = min(trials, 256)
    out = np.empty(trials, dtype=np.int64)
    done = 0
    while done < trials:
        batch = min(batch_size, trials - done)
        grids = _draw_grids(side, batch, input_kind, rng)
        if be.supports_batch:
            outcome = run_sort(
                be, schedule, grids, max_steps=max_steps, observer=observer
            )
            if not outcome.all_completed:
                raise StepLimitExceeded(max_steps, int(np.sum(~outcome.completed)))
            out[done : done + batch] = outcome.steps
        else:
            for i in range(batch):
                outcome = run_sort(
                    be, schedule, grids[i], max_steps=max_steps, observer=observer
                )
                if not outcome.all_completed:
                    raise StepLimitExceeded(max_steps, 1)
                out[done + i] = outcome.steps_scalar()
        done += batch
    return out


def sample_statistic_after_steps(
    algorithm: str | Schedule,
    side: int,
    trials: int,
    statistic,
    *,
    num_steps: int = 1,
    seed: SeedLike = 0,
    input_kind: str = "zero_one",
    batch_size: int | None = None,
    observer: Observer | None = None,
    backend: str | Backend = "vectorized",
) -> np.ndarray:
    """Sample ``statistic(grid_after_num_steps)`` over random inputs.

    ``statistic`` must accept a batched ``(..., side, side)`` array and
    return a batch of numbers (all the trackers in :mod:`repro.zeroone` do).
    Used for the moment experiments (E-L4, E-L9, E-L11, E-L14).  Single-grid
    backends run trial by trial over the same batched grid draws, then the
    statistic is applied to the re-stacked batch.
    """
    rng = as_generator(seed)
    be = get_backend(backend)
    if batch_size is None:
        batch_size = min(trials, 512)
    schedule = resolve_algorithm(algorithm)
    chunks = []
    done = 0
    while done < trials:
        batch = min(batch_size, trials - done)
        grids = _draw_grids(side, batch, input_kind, rng)
        if be.supports_batch:
            after = run_steps(be, schedule, grids, num_steps, observer=observer)
        else:
            after = np.stack([
                run_steps(be, schedule, grids[i], num_steps, observer=observer)
                for i in range(batch)
            ])
        chunks.append(np.asarray(statistic(after)))
        done += batch
    return np.concatenate([np.atleast_1d(c) for c in chunks])
