"""Registry of every experiment reproducing the paper's results.

Experiment ids match the per-experiment index in DESIGN.md; each entry maps
to a callable ``(ExperimentConfig) -> Table``.  The benchmark harness runs
one experiment per bench target, and ``python -m repro.experiments`` exposes
them on the command line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import DimensionError
from repro.experiments.adversarial import exp_corollary1, exp_no_wrap
from repro.experiments.appendix_exp import exp_appendix_average, exp_appendix_potential
from repro.experiments.average_case import (
    exp_theorem2,
    exp_theorem4,
    exp_theorem7,
    exp_theorem10,
    exp_theorem12_average,
)
from repro.experiments.campaign_exp import exp_campaign
from repro.experiments.config import ExperimentConfig
from repro.experiments.decay_exp import exp_decay
from repro.experiments.exact_tails import exp_exact_tails
from repro.experiments.faults_exp import exp_faults
from repro.experiments.extensions import (
    exp_adaptivity,
    exp_constants,
    exp_distribution,
    exp_traffic,
    exp_worst_search,
)
from repro.experiments.linear_exp import exp_linear
from repro.experiments.rect_exp import exp_rectangles
from repro.experiments.moments_mc import (
    exp_moments_row_major,
    exp_moments_snake,
    exp_moments_variance,
)
from repro.experiments.scaling import exp_scaling
from repro.experiments.structure import (
    exp_invariants,
    exp_min_home,
    exp_potential_bounds,
)
from repro.experiments.tables import Table
from repro.experiments.tails import exp_tails, exp_theorem12_tail
from repro.experiments.verify_exp import exp_verify

__all__ = ["ExperimentSpec", "EXPERIMENTS", "run_experiment", "experiment_ids"]


@dataclass(frozen=True)
class ExperimentSpec:
    """One reproducible experiment: id, paper artifact, and runner."""

    exp_id: str
    paper_artifact: str
    run: Callable[[ExperimentConfig], Table]


_SPECS = (
    ExperimentSpec("E-1D", "Section 1 linear-array facts", exp_linear),
    ExperimentSpec("E-L123", "Lemmas 1-3, 5-8, 10 invariants", exp_invariants),
    ExperimentSpec("E-T1", "Theorem 1 / Corollary 2, Theorems 6, 9 potential bounds",
                   exp_potential_bounds),
    ExperimentSpec("E-C1", "Corollary 1 worst case", exp_corollary1),
    ExperimentSpec("E-NOWRAP", "Section 1 wrap-around necessity", exp_no_wrap),
    ExperimentSpec("E-L4", "Lemma 4 / Theorem 4 first moments", exp_moments_row_major),
    ExperimentSpec("E-L9", "Lemmas 9, 11, 14 snakelike moments", exp_moments_snake),
    ExperimentSpec("E-VAR", "Theorems 3, 5, 8 variances", exp_moments_variance),
    ExperimentSpec("E-T2", "Theorem 2 average case", exp_theorem2),
    ExperimentSpec("E-T4", "Theorem 4 average case", exp_theorem4),
    ExperimentSpec("E-T7", "Theorem 7 average case", exp_theorem7),
    ExperimentSpec("E-T10", "Theorem 10 average case", exp_theorem10),
    ExperimentSpec("E-T12-avg", "Theorem 12 average case", exp_theorem12_average),
    ExperimentSpec("E-TAILS", "Theorems 3, 5, 8, 11 tails", exp_tails),
    ExperimentSpec("E-T12", "Theorem 12 tail", exp_theorem12_tail),
    ExperimentSpec("E-MINHOME", "Closing remark on the smallest element", exp_min_home),
    ExperimentSpec("E-APP", "Appendix Corollary 4 averages", exp_appendix_average),
    ExperimentSpec("E-APP-T13", "Appendix Theorem 13 potentials", exp_appendix_potential),
    ExperimentSpec("E-SCALE", "Headline Theta(N) scaling figure", exp_scaling),
    ExperimentSpec("E-CONST", "Extension: fitted average-case constants", exp_constants),
    ExperimentSpec("E-DIST", "Extension: step-count concentration", exp_distribution),
    ExperimentSpec("E-TRAFFIC", "Extension: wire traffic accounting", exp_traffic),
    ExperimentSpec("E-ADAPT", "Extension: input-order sensitivity", exp_adaptivity),
    ExperimentSpec("E-WORST", "Extension: empirical worst-case search", exp_worst_search),
    ExperimentSpec("E-EXACT", "Extension: exact finite-n potential tails", exp_exact_tails),
    ExperimentSpec("E-RECT", "Extension: rectangular meshes", exp_rectangles),
    ExperimentSpec("E-FAULT", "Extension: comparator fault injection", exp_faults),
    ExperimentSpec("E-DECAY", "Extension: inversion decay curves", exp_decay),
    ExperimentSpec("E-CAMP", "Infrastructure: sharded parallel campaigns", exp_campaign),
    ExperimentSpec("E-VERIFY", "Infrastructure: differential/metamorphic verification",
                   exp_verify),
)

EXPERIMENTS: dict[str, ExperimentSpec] = {spec.exp_id: spec for spec in _SPECS}


def experiment_ids() -> list[str]:
    return [spec.exp_id for spec in _SPECS]


def run_experiment(exp_id: str, cfg: ExperimentConfig | None = None) -> Table:
    """Run one experiment by id and return its result table."""
    if exp_id not in EXPERIMENTS:
        raise DimensionError(
            f"unknown experiment {exp_id!r}; known: {', '.join(experiment_ids())}"
        )
    return EXPERIMENTS[exp_id].run(cfg or ExperimentConfig())
