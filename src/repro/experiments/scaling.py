"""E-SCALE: the headline Θ(N) scaling series for all five algorithms.

The paper's central message as a single table: average steps normalized by
``N`` stay flat for all five bubble-sort generalizations (Θ(N) average
case), while shearsort scales as ``sqrt(N) log sqrt(N)`` and the diameter
bound as ``2 sqrt(N) - 2``.  This doubles as the reproduction of the
"figure" a modern write-up of the paper would plot.
"""

from __future__ import annotations

import math

from repro.core.algorithms import ALGORITHM_NAMES
from repro.experiments.config import ExperimentConfig
from repro.experiments.sampling import sample
from repro.experiments.tables import Table
from repro.theory.bounds import diameter_lower_bound

__all__ = ["exp_scaling"]


def exp_scaling(cfg: ExperimentConfig) -> Table:
    """Mean steps and Θ(N) / Θ(sqrt(N) log N) normalizations per algorithm."""
    table = Table(
        title="E-SCALE: average steps across mesh sizes (random permutations)",
        headers=[
            "algorithm",
            "side",
            "N",
            "mean steps",
            "steps/N",
            "steps/(sqrt(N)*log2 sqrt(N))",
            "diameter bound",
        ],
    )
    table.add_note(
        "All five bubble-sort generalizations hold steps/N roughly constant "
        "(Theta(N) average case); shearsort tracks sqrt(N) log2 sqrt(N)."
    )
    for side in cfg.even_sides:
        n_cells = side * side
        norm_shear = side * max(math.log2(side), 1.0)
        for name in ALGORITHM_NAMES:
            stats = sample(name, side=side, trials=cfg.trials,
                           seed=(cfg.seed, side, 21),
                           execution=cfg.execution).stats
            table.add_row(
                name, side, n_cells, stats.mean,
                stats.mean / n_cells, stats.mean / norm_shear,
                diameter_lower_bound(side),
            )
        shear_stats = sample(
            "shearsort", side=side, trials=cfg.trials,
            seed=(cfg.seed, side, 22), execution=cfg.execution,
        ).stats
        table.add_row(
            "shearsort (baseline)", side, n_cells, shear_stats.mean,
            shear_stats.mean / n_cells, shear_stats.mean / norm_shear,
            diameter_lower_bound(side),
        )
    return table
