"""E-SCALE: the headline Θ(N) scaling series for all five algorithms.

The paper's central message as a single table: average steps normalized by
``N`` stay flat for all five bubble-sort generalizations (Θ(N) average
case), while shearsort scales as ``sqrt(N) log sqrt(N)`` and the diameter
bound as ``2 sqrt(N) - 2``.  This doubles as the reproduction of the
"figure" a modern write-up of the paper would plot.
"""

from __future__ import annotations

import math

from repro.baselines.shearsort import shearsort
from repro.core.algorithms import ALGORITHM_NAMES
from repro.experiments.config import ExperimentConfig
from repro.experiments.montecarlo import sample_sort_steps, summarize
from repro.experiments.tables import Table
from repro.theory.bounds import diameter_lower_bound

__all__ = ["exp_scaling"]


def exp_scaling(cfg: ExperimentConfig) -> Table:
    """Mean steps and Θ(N) / Θ(sqrt(N) log N) normalizations per algorithm."""
    table = Table(
        title="E-SCALE: average steps across mesh sizes (random permutations)",
        headers=[
            "algorithm",
            "side",
            "N",
            "mean steps",
            "steps/N",
            "steps/(sqrt(N)*log2 sqrt(N))",
            "diameter bound",
        ],
    )
    table.add_note(
        "All five bubble-sort generalizations hold steps/N roughly constant "
        "(Theta(N) average case); shearsort tracks sqrt(N) log2 sqrt(N)."
    )
    for side in cfg.even_sides:
        n_cells = side * side
        norm_shear = side * max(math.log2(side), 1.0)
        for name in ALGORITHM_NAMES:
            steps = sample_sort_steps(name, side, cfg.trials,
                                      seed=(cfg.seed, side, 21),
                                      backend=cfg.backend)
            stats = summarize(steps)
            table.add_row(
                name, side, n_cells, stats.mean,
                stats.mean / n_cells, stats.mean / norm_shear,
                diameter_lower_bound(side),
            )
        shear_steps = sample_sort_steps(
            shearsort(side), side, cfg.trials, seed=(cfg.seed, side, 22),
            backend=cfg.backend,
        )
        shear_stats = summarize(shear_steps)
        table.add_row(
            "shearsort (baseline)", side, n_cells, shear_stats.mean,
            shear_stats.mean / n_cells, shear_stats.mean / norm_shear,
            diameter_lower_bound(side),
        )
    return table
