"""E-EXACT: exact finite-n tails vs Chebyshev vs Monte Carlo.

The sharpest possible finite-n statement of Theorems 3, 5, 8, 11: the
potential statistics are disjoint-block sums, so their lower tails can be
computed *exactly* (:mod:`repro.theory.distributions`).  This experiment
prints, per (theorem, side, gamma):

* the empirical frequency of ``steps <= gamma N`` (always the smallest),
* the exact probability of the potential event that implies it, and
* the paper's Chebyshev bound on that same event (always the largest).

The ordering empirical <= exact <= chebyshev must hold up to Monte-Carlo
noise; its consistent truth is the strongest evidence that the potential
argument, the moments, and the simulator all describe the same system.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.sampling import sample
from repro.experiments.tables import Table
from repro.theory.chebyshev import (
    theorem3_tail_bound,
    theorem5_tail_bound,
    theorem8_tail_bound,
    theorem11_tail_bound,
)
from repro.theory.distributions import (
    theorem3_tail_exact,
    theorem5_tail_exact,
    theorem8_tail_exact,
    theorem11_tail_exact,
    theorem13_tail_exact,
)

__all__ = ["exp_exact_tails"]

_CASES = (
    ("T3", "row_major_row_first", theorem3_tail_exact, theorem3_tail_bound),
    ("T5", "row_major_col_first", theorem5_tail_exact, theorem5_tail_bound),
    ("T8", "snake_1", theorem8_tail_exact, theorem8_tail_bound),
    ("T11", "snake_2", theorem11_tail_exact, theorem11_tail_bound),
)


def exp_exact_tails(cfg: ExperimentConfig) -> Table:
    """Exact potential tails sandwiched between empirical and Chebyshev."""
    table = Table(
        title="E-EXACT: Pr[steps <= gamma*N] — empirical <= exact potential tail <= Chebyshev",
        headers=["theorem", "side", "gamma", "empirical", "exact tail", "chebyshev", "ordered"],
    )
    table.add_note(
        "The exact column is the full PMF of the potential statistic "
        "(disjoint-block DP), i.e. the best bound the paper's argument can "
        "ever give at this n; Chebyshev is what the paper uses."
    )
    # the exact DP is O(n^3) big-int work: cap the side sweep
    sides = [s for s in cfg.even_sides if s <= (16 if cfg.scale == "quick" else 32)]
    gamma = Fraction(1, 10)
    for theorem, algorithm, exact_fn, cheb_fn in _CASES:
        for side in sides:
            steps = sample(
                algorithm, side=side, trials=cfg.trials,
                seed=(cfg.seed, side, 91), execution=cfg.execution,
            ).values
            n_cells = side * side
            empirical = float(np.mean(steps <= float(gamma) * n_cells))
            exact = float(exact_fn(side, gamma))
            cheb = float(cheb_fn(side, gamma))
            slack = 3 * np.sqrt(max(empirical * (1 - empirical), 1e-4) / cfg.trials)
            table.add_row(
                theorem, side, float(gamma), empirical, exact, cheb,
                empirical <= exact + slack and exact <= cheb + 1e-12,
            )
    # Odd-side rows for the appendix (Theorem 13): no Chebyshev counterpart
    # is printed in the paper, so the exact tail stands alone against the
    # empirical frequency.
    odd_sides = [s for s in cfg.odd_sides if s <= (13 if cfg.scale == "quick" else 27)]
    for side in odd_sides:
        steps = sample(
            "snake_1", side=side, trials=cfg.trials,
            seed=(cfg.seed, side, 92), execution=cfg.execution,
        ).values
        n_cells = side * side
        empirical = float(np.mean(steps <= float(gamma) * n_cells))
        exact = float(theorem13_tail_exact(side, gamma))
        slack = 3 * np.sqrt(max(empirical * (1 - empirical), 1e-4) / cfg.trials)
        table.add_row(
            "T13 (odd)", side, float(gamma), empirical, exact, float("nan"),
            empirical <= exact + slack,
        )
    return table
