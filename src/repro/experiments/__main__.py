"""Deprecated entry point: ``python -m repro.experiments`` → ``repro run``.

The experiments CLI moved to :mod:`repro.experiments.cli`, dispatched as
``repro run`` (with ``repro experiments`` / ``repro exp`` as legacy
aliases).  This module stays importable so existing scripts and CI
recipes keep working; it forwards every flag unchanged and emits a
:class:`DeprecationWarning` so callers migrate on their own schedule.
"""

from __future__ import annotations

import warnings

from repro.experiments.cli import main as _main

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    warnings.warn(
        "python -m repro.experiments is deprecated; use the `repro run` "
        "console command (same flags)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _main(argv)


if __name__ == "__main__":
    raise SystemExit(main())
