"""Command-line entry point: ``python -m repro.experiments [ids...]``.

Examples::

    python -m repro.experiments --list
    python -m repro.experiments E-T2 E-SCALE
    python -m repro.experiments --all --scale full --csv results/
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import EXPERIMENTS, experiment_ids, run_experiment
from repro.experiments.report import write_summary


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run the experiments reproducing Savari (SPAA 1993).",
    )
    parser.add_argument("ids", nargs="*", help="experiment ids (see --list)")
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--scale", choices=("quick", "full"), default="quick")
    parser.add_argument("--seed", type=int, default=20260706)
    parser.add_argument("--csv", metavar="DIR", help="also write each table as CSV")
    parser.add_argument(
        "--summary", metavar="FILE",
        help="run the selected experiments (default: all) and write a "
             "markdown summary report",
    )
    args = parser.parse_args(argv)

    if args.list:
        for exp_id in experiment_ids():
            print(f"{exp_id:12s} {EXPERIMENTS[exp_id].paper_artifact}")
        return 0

    if args.summary:
        cfg = ExperimentConfig(scale=args.scale, seed=args.seed)
        path = write_summary(args.summary, cfg, ids=args.ids or None)
        print(f"wrote {path}")
        return 0

    ids = experiment_ids() if args.all else args.ids
    if not ids:
        parser.print_usage()
        print("give experiment ids, --all, or --list", file=sys.stderr)
        return 2

    cfg = ExperimentConfig(scale=args.scale, seed=args.seed)
    for exp_id in ids:
        start = time.perf_counter()
        table = run_experiment(exp_id, cfg)
        elapsed = time.perf_counter() - start
        print(table.to_text())
        print(f"  [{exp_id} finished in {elapsed:.1f}s at scale={cfg.scale}]")
        print()
        if args.csv:
            path = Path(args.csv) / f"{exp_id}.csv"
            table.to_csv(path)
            print(f"  wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
