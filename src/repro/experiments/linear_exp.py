"""E-1D: the linear-array facts of Section 1.

Checks the three claims the paper recalls for the 1-D odd-even transposition
sort: the N-step worst case, the ``(N-1)/2`` average lower bound from the
smallest element's displacement, and the sharper ``N - O(sqrt(N))``
behaviour of the true average.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.montecarlo import summarize
from repro.experiments.tables import Table
from repro.linear.analysis import (
    average_lower_order,
    average_lower_smallest_element,
    worst_case_upper,
)
from repro.linear.odd_even import _driver_sort_linear, worst_case_input
from repro.randomness import as_generator

__all__ = ["exp_linear"]


def exp_linear(cfg: ExperimentConfig) -> Table:
    """Measured 1-D averages vs the Section 1 bounds."""
    table = Table(
        title="E-1D: odd-even transposition sort on a linear array",
        headers=[
            "N",
            "trials",
            "mean steps",
            "(N-1)/2 bound",
            "N - 2*sqrt(N)",
            "worst-case input",
            "N upper bound",
        ],
    )
    table.add_note(
        "Section 1: worst case <= N; average >= (N-1)/2 and in fact N - O(sqrt(N))."
    )
    rng = as_generator((cfg.seed, 1))
    for n in cfg.linear_sizes:
        trials = cfg.trials
        batch = np.empty((trials, n), dtype=np.int64)
        base = np.arange(n, dtype=np.int64)
        for i in range(trials):
            batch[i] = rng.permutation(base)
        outcome = _driver_sort_linear(batch)
        stats = summarize(outcome.steps)
        worst = _driver_sort_linear(worst_case_input(n)).steps_scalar()
        table.add_row(
            n,
            trials,
            stats.mean,
            float(average_lower_smallest_element(n)),
            average_lower_order(n),
            worst,
            worst_case_upper(n),
        )
    return table
