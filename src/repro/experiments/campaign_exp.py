"""E-CAMP: the scaling figure rerun as sharded campaigns.

The same five-algorithm step-count averages as E-SCALE, but sampled
through :mod:`repro.campaign` with a pinned ``shard_size`` — so the table
is **bit-identical for every worker count** (``--workers 1``, ``2``,
``4``, ...) and across interrupt-then-resume when ``--checkpoint-dir`` is
given.  The last columns record the campaign plumbing itself (shards,
resumed shards, per-campaign wall-clock), making this the experiment CI
runs to smoke-test the parallel path end to end.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.algorithms import ALGORITHM_NAMES
from repro.experiments.config import ExperimentConfig
from repro.experiments.sampling import sample
from repro.experiments.tables import Table

__all__ = ["exp_campaign"]

#: Pinned so the shard plan — hence every sampled value — is independent of
#: scale/workers flags; only the trial budget varies with scale.
_SHARD_SIZE = 32


def exp_campaign(cfg: ExperimentConfig) -> Table:
    """Mean steps per algorithm via sharded campaigns (worker-count invariant)."""
    table = Table(
        title="E-CAMP: sharded-campaign averages (identical for any --workers)",
        headers=[
            "algorithm",
            "side",
            "trials",
            "mean steps",
            "mean/N",
            "shards",
            "resumed",
            "seconds",
        ],
    )
    table.add_note(
        "Sampled through repro.campaign with shard_size pinned to "
        f"{_SHARD_SIZE}: the values depend only on (algorithm, side, trials, "
        "seed), never on --workers or checkpoint/resume history."
    )
    side = cfg.even_sides[-1]
    n_cells = side * side
    for name in ALGORITHM_NAMES:
        result = sample(
            name,
            side=side,
            trials=cfg.trials,
            seed=(cfg.seed, side, 55),
            execution=replace(cfg.execution, shard_size=_SHARD_SIZE),
        )
        table.add_row(
            name,
            side,
            result.stats.count,
            result.stats.mean,
            result.stats.mean / n_cells,
            result.meta["num_shards"],
            result.meta["resumed_shards"],
            result.meta["elapsed"],
        )
    return table
