"""Experiment harness: Monte-Carlo runners and the per-theorem registry.

:func:`sample` is the unified sampling facade (in-process or sharded
campaign mode); ``sample_sort_steps`` / ``sample_statistic_after_steps``
remain importable as deprecated shims.
"""

from repro.campaign.result import SampleResult
from repro.experiments.config import ExperimentConfig
from repro.experiments.montecarlo import (
    TrialStats,
    sample_sort_steps,
    sample_statistic_after_steps,
    summarize,
)
from repro.experiments.registry import (
    EXPERIMENTS,
    ExperimentSpec,
    experiment_ids,
    run_experiment,
)
from repro.experiments.sampling import sample
from repro.experiments.tables import Table

__all__ = [
    "ExperimentConfig",
    "TrialStats",
    "SampleResult",
    "sample",
    "sample_sort_steps",
    "sample_statistic_after_steps",
    "summarize",
    "EXPERIMENTS",
    "ExperimentSpec",
    "experiment_ids",
    "run_experiment",
    "Table",
]
