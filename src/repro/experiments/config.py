"""Shared configuration for experiment runs.

Two scales are provided: ``quick`` (seconds per experiment; used by the
benchmark harness and CI) and ``full`` (minutes; used to produce the
numbers recorded in EXPERIMENTS.md).  All randomness derives from ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DimensionError

__all__ = ["ExperimentConfig"]


@dataclass
class ExperimentConfig:
    """Knobs shared by every experiment.

    ``backend`` selects the execution backend for the Monte-Carlo samplers
    (any name from :func:`repro.backends.available_backends`).  The
    single-grid backends are orders of magnitude slower than the vectorized
    default; they exist here for end-to-end cross-validation runs.
    """

    scale: str = "quick"
    seed: int = 20260706
    backend: str = "vectorized"
    workers: int = 1
    checkpoint_dir: str | None = None
    resume: bool = False

    def __post_init__(self) -> None:
        if self.scale not in ("quick", "full"):
            raise DimensionError(f"scale must be 'quick' or 'full', got {self.scale!r}")
        if self.workers < 1:
            raise DimensionError(f"workers must be >= 1, got {self.workers}")
        if self.resume and self.checkpoint_dir is None:
            raise DimensionError("resume=True requires checkpoint_dir")
        from repro.backends import available_backends

        if self.backend not in available_backends():
            raise DimensionError(
                f"unknown backend {self.backend!r}; "
                f"available: {', '.join(available_backends())}"
            )

    @property
    def sampler_kwargs(self) -> dict:
        """Keyword arguments experiments thread into :func:`repro.experiments.sample`.

        With the defaults (``workers=1``, no checkpoint dir) this selects the
        in-process path, so experiment tables stay bit-identical to historical
        runs; ``--workers N`` / ``--checkpoint-dir`` switch the sweeps to
        campaign mode.
        """
        kwargs: dict = {"backend": self.backend, "workers": self.workers}
        if self.checkpoint_dir is not None:
            kwargs["checkpoint_dir"] = self.checkpoint_dir
            kwargs["resume"] = self.resume
        return kwargs

    @property
    def even_sides(self) -> list[int]:
        """Even mesh sides for the sweep experiments."""
        return [8, 12, 16] if self.scale == "quick" else [8, 16, 24, 32]

    @property
    def odd_sides(self) -> list[int]:
        """Odd mesh sides for the appendix experiments."""
        return [7, 9, 13] if self.scale == "quick" else [9, 15, 21, 27]

    @property
    def trials(self) -> int:
        """Trials per cell for step-count averages."""
        return 64 if self.scale == "quick" else 256

    @property
    def moment_trials(self) -> int:
        """Trials per cell for one-step moment estimation (cheap per trial)."""
        return 4000 if self.scale == "quick" else 20000

    @property
    def invariant_trials(self) -> int:
        """Random matrices per lemma-checking cell."""
        return 10 if self.scale == "quick" else 40

    @property
    def linear_sizes(self) -> list[int]:
        """Array lengths for the 1-D experiment."""
        return [16, 64, 256] if self.scale == "quick" else [16, 64, 256, 1024]
