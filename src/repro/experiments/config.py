"""Shared configuration for experiment runs.

Two scales are provided: ``quick`` (seconds per experiment; used by the
benchmark harness and CI) and ``full`` (minutes; used to produce the
numbers recorded in EXPERIMENTS.md).  All randomness derives from ``seed``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.campaign.execution import ExecutionOptions
from repro.errors import DimensionError

__all__ = ["ExperimentConfig"]


@dataclass
class ExperimentConfig:
    """Knobs shared by every experiment.

    Execution is carried by one frozen
    :class:`~repro.campaign.execution.ExecutionOptions` (``execution``);
    the loose ``backend``/``workers``/``checkpoint_dir``/``resume`` fields
    remain as a legacy mirror — construct with either, and the other side
    is synchronized in ``__post_init__``.  ``backend`` selects the
    execution backend for the Monte-Carlo samplers (any name from
    :func:`repro.backends.available_backends`).  The single-grid backends
    are orders of magnitude slower than the vectorized default; they exist
    here for end-to-end cross-validation runs.
    """

    scale: str = "quick"
    seed: int = 20260706
    backend: str = "vectorized"
    workers: int = 1
    checkpoint_dir: str | None = None
    resume: bool = False
    execution: ExecutionOptions | None = field(default=None)

    def __post_init__(self) -> None:
        if self.scale not in ("quick", "full"):
            raise DimensionError(f"scale must be 'quick' or 'full', got {self.scale!r}")
        if self.execution is None:
            # Legacy construction path: lift the loose knobs into the
            # frozen options object (which owns their validation).
            self.execution = ExecutionOptions(
                backend=self.backend,
                workers=self.workers,
                checkpoint_dir=self.checkpoint_dir,
                resume=self.resume,
            )
        else:
            # Options-first construction: keep the legacy mirror fields
            # consistent for code that still reads them.
            if self.execution.backend is not None:
                self.backend = self.execution.backend
            self.workers = self.execution.workers
            self.checkpoint_dir = (
                None
                if self.execution.checkpoint_dir is None
                else str(self.execution.checkpoint_dir)
            )
            self.resume = self.execution.resume
        from repro.backends import available_backends

        if self.backend not in available_backends():
            raise DimensionError(
                f"unknown backend {self.backend!r}; "
                f"available: {', '.join(available_backends())}"
            )

    @property
    def sampler_kwargs(self) -> dict:
        """Deprecated: pass ``execution=cfg.execution`` to :func:`sample`.

        Historically this returned loose ``backend``/``workers``/
        ``checkpoint_dir`` keywords to splat into the facade; the frozen
        :class:`~repro.campaign.execution.ExecutionOptions` object carries
        the same information without the drift-prone splat.  The returned
        mapping is now ``{"execution": ...}`` so existing ``**`` call
        sites keep working unchanged during the deprecation window.
        """
        warnings.warn(
            "ExperimentConfig.sampler_kwargs is deprecated; pass "
            "execution=cfg.execution to sample() instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return {"execution": self.execution}

    @property
    def even_sides(self) -> list[int]:
        """Even mesh sides for the sweep experiments."""
        return [8, 12, 16] if self.scale == "quick" else [8, 16, 24, 32]

    @property
    def odd_sides(self) -> list[int]:
        """Odd mesh sides for the appendix experiments."""
        return [7, 9, 13] if self.scale == "quick" else [9, 15, 21, 27]

    @property
    def trials(self) -> int:
        """Trials per cell for step-count averages."""
        return 64 if self.scale == "quick" else 256

    @property
    def moment_trials(self) -> int:
        """Trials per cell for one-step moment estimation (cheap per trial)."""
        return 4000 if self.scale == "quick" else 20000

    @property
    def invariant_trials(self) -> int:
        """Random matrices per lemma-checking cell."""
        return 10 if self.scale == "quick" else 40

    @property
    def linear_sizes(self) -> list[int]:
        """Array lengths for the 1-D experiment."""
        return [16, 64, 256] if self.scale == "quick" else [16, 64, 256, 1024]
