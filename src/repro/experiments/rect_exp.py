"""E-RECT: the Θ(N) average persists on rectangular meshes.

Runs each algorithm across aspect ratios with N held (approximately)
constant, confirming that the average-case behaviour the paper proves for
squares is a property of the algorithms, not of the aspect ratio — and
measuring how the constant shifts with elongation.
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithms import ALGORITHM_NAMES, get_algorithm
from repro.experiments.config import ExperimentConfig
from repro.experiments.montecarlo import summarize
from repro.experiments.tables import Table
from repro.rect import rect_run_until_sorted
from repro.randomness import as_generator

__all__ = ["exp_rectangles"]


def _shapes(base: int) -> list[tuple[int, int]]:
    """Aspect ratios with comparable cell counts around ``base^2``."""
    return [
        (base, base),
        (base // 2, base * 2),
        (base * 2, base // 2),
        (base // 2 + 1, base * 2),  # odd rows
    ]


def exp_rectangles(cfg: ExperimentConfig) -> Table:
    """Average steps across aspect ratios (extension of the square model)."""
    table = Table(
        title="E-RECT: average steps on rectangular meshes (random permutations)",
        headers=["algorithm", "rows x cols", "N", "trials", "mean steps", "steps/N"],
    )
    table.add_note(
        "The row-major algorithms require an even column count (the wrap "
        "constraint); shapes violating it are skipped."
    )
    rng = as_generator((cfg.seed, 81))
    base = cfg.even_sides[min(1, len(cfg.even_sides) - 1)]
    trials = max(cfg.trials // 2, 16)
    for name in ALGORITHM_NAMES:
        schedule = get_algorithm(name)
        for rows, cols in _shapes(base):
            if schedule.requires_even_side and cols % 2 != 0:
                continue
            n_cells = rows * cols
            grids = np.stack(
                [rng.permutation(n_cells).reshape(rows, cols) for _ in range(trials)]
            )
            out = rect_run_until_sorted(schedule, grids, raise_on_cap=True)
            stats = summarize(out.steps)
            table.add_row(
                name, f"{rows}x{cols}", n_cells, trials, stats.mean,
                stats.mean / n_cells,
            )
    return table
