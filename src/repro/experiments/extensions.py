"""Extension experiments beyond the paper's statements.

The paper proves Θ(N) lower bounds; these experiments push further along
the directions its introduction motivates:

* **E-CONST** — estimate the actual average-case constants ``c`` in
  ``E[steps] ~ c N`` for each algorithm by least squares over a side sweep
  (the paper only pins ``c >= 1/2`` resp. ``3/8``; the true constants are
  part of what "average case analysis" would ultimately want).
* **E-DIST** — distribution shape: quantiles of ``steps/N`` per algorithm,
  showing the concentration that Theorems 3/5/8/11 assert asymptotically.
* **E-TRAFFIC** — hardware cost on the processor-level machine: comparator
  firings, swap fraction, and the share of work done by the wrap-around
  wires (the "extra wires" whose penalty Section 1 discusses).
* **E-ADAPT** — sensitivity to input order: already-sorted, nearly-sorted,
  reversed, and random inputs (bubble sorts are adaptive in 1-D; how much
  of that survives in 2-D?).
* **E-WORST** — empirical worst-case search over structured adversaries +
  random probing, against Corollary 1 and the O(N) worst-case claim.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.no_wrap import smallest_column_adversary
from repro.core.algorithms import ALGORITHM_NAMES, ROW_MAJOR_NAMES, get_algorithm
from repro.core.engine import default_step_cap, run_until_sorted
from repro.core.orders import target_grid
from repro.core.runner import resolve_algorithm, sort_grid
from repro.experiments.config import ExperimentConfig
from repro.experiments.sampling import sample
from repro.experiments.tables import Table
from repro.mesh.machine import mesh_sort
from repro.randomness import as_generator, random_permutation_grid

__all__ = [
    "exp_constants",
    "exp_distribution",
    "exp_traffic",
    "exp_adaptivity",
    "exp_worst_search",
]

_LOWER_CONSTANTS = {
    "row_major_row_first": 0.5,  # Theorem 2
    "row_major_col_first": 0.375,  # Theorem 4
    "snake_1": 0.5,  # Theorem 7
    "snake_2": 0.5,  # Theorem 10
    "snake_3": 1.0,  # Theorem 12's displacement average ~ N - 2
}


def exp_constants(cfg: ExperimentConfig) -> Table:
    """E-CONST: fitted average-case constants ``E[steps] ~ c*N + b*sqrt(N)``."""
    table = Table(
        title="E-CONST: fitted average-case constants (steps ~ c*N + b*sqrt(N))",
        headers=["algorithm", "fitted c", "fitted b", "paper lower bound on c",
                 "c above bound", "residual rel."],
    )
    table.add_note(
        "Least squares of mean steps on (N, sqrt(N)) across the side sweep; "
        "the paper's theorems only lower-bound c."
    )
    sides = cfg.even_sides
    for name in ALGORITHM_NAMES:
        n_vals, means = [], []
        for side in sides:
            res = sample(name, side=side, trials=cfg.trials,
                         seed=(cfg.seed, side, 31), execution=cfg.execution)
            n_vals.append(side * side)
            means.append(res.stats.mean)
        design = np.column_stack([n_vals, np.sqrt(n_vals)])
        coef, residual, *_ = np.linalg.lstsq(design, np.asarray(means), rcond=None)
        fitted = design @ coef
        rel = float(np.max(np.abs(fitted - means) / np.asarray(means)))
        lower = _LOWER_CONSTANTS[name]
        table.add_row(name, float(coef[0]), float(coef[1]), lower,
                      coef[0] >= lower - 0.05, rel)
    return table


def exp_distribution(cfg: ExperimentConfig) -> Table:
    """E-DIST: quantiles of steps/N — the concentration picture."""
    table = Table(
        title="E-DIST: distribution of steps/N (largest side of the sweep)",
        headers=["algorithm", "side", "q05", "q25", "median", "q75", "q95",
                 "(q95-q05)/median"],
    )
    table.add_note(
        "Theorems 3/5/8/11 say mass below ~N/2 vanishes; the whole "
        "distribution in fact concentrates around its Theta(N) mean."
    )
    side = cfg.even_sides[-1]
    n_cells = side * side
    for name in ALGORITHM_NAMES:
        steps = sample(name, side=side, trials=max(cfg.trials, 64),
                       seed=(cfg.seed, side, 32),
                       execution=cfg.execution).values / n_cells
        q05, q25, q50, q75, q95 = np.quantile(steps, [0.05, 0.25, 0.5, 0.75, 0.95])
        table.add_row(name, side, q05, q25, q50, q75, q95, (q95 - q05) / q50)
    return table


def exp_traffic(cfg: ExperimentConfig) -> Table:
    """E-TRAFFIC: comparator firings and wrap-wire share per sort."""
    table = Table(
        title="E-TRAFFIC: processor-level wire traffic per sorted permutation",
        headers=["algorithm", "side", "steps", "comparisons", "swaps",
                 "swap fraction", "wrap share"],
    )
    table.add_note(
        "Wrap share = fraction of comparator firings on the wrap-around "
        "wires (only the row-major algorithms have them)."
    )
    rng = as_generator((cfg.seed, 51))
    side = cfg.even_sides[0]
    for name in ALGORITHM_NAMES:
        grid = random_permutation_grid(side, rng=rng)
        t_f, machine = mesh_sort(
            get_algorithm(name), grid, max_steps=default_step_cap(side)
        )
        comparisons = machine.stats.total_comparisons()
        swaps = machine.stats.total_swaps()
        wrap = sum(
            count
            for (a, b), count in machine.stats.comparisons.items()
            if abs(a[1] - b[1]) > 1
        )
        table.add_row(
            name, side, t_f, comparisons, swaps,
            swaps / comparisons if comparisons else 0.0,
            wrap / comparisons if comparisons else 0.0,
        )
    return table


def _nearly_sorted(side: int, order: str, swaps: int, rng) -> np.ndarray:
    grid = target_grid(np.arange(side * side), side, order)
    flat = grid.ravel()
    for _ in range(swaps):
        i = int(rng.integers(0, flat.size - 1))
        flat[i], flat[i + 1] = flat[i + 1], flat[i]
    return flat.reshape(side, side)


def exp_adaptivity(cfg: ExperimentConfig) -> Table:
    """E-ADAPT: steps on sorted / nearly-sorted / random / reversed inputs."""
    table = Table(
        title="E-ADAPT: input-order sensitivity (steps / N)",
        headers=["algorithm", "side", "sorted", "nearly sorted", "random", "reversed"],
    )
    table.add_note(
        "nearly sorted = sqrt(N) random adjacent transpositions of the "
        "target; reversed = target order reversed."
    )
    rng = as_generator((cfg.seed, 61))
    side = cfg.even_sides[-1]
    n_cells = side * side
    for name in ALGORITHM_NAMES:
        schedule = resolve_algorithm(name)
        sorted_grid = target_grid(np.arange(n_cells), side, schedule.order)
        nearly = _nearly_sorted(side, schedule.order, side, rng)
        random_grid = random_permutation_grid(side, rng=rng)
        reversed_grid = target_grid(np.arange(n_cells), side, schedule.order)[::-1, ::-1].copy()
        row = [name, side]
        for grid in (sorted_grid, nearly, random_grid, reversed_grid):
            report = sort_grid(name, grid, raise_on_cap=True)
            row.append(report.steps_scalar() / n_cells)
        table.add_row(*row)
    return table


def exp_worst_search(cfg: ExperimentConfig) -> Table:
    """E-WORST: empirical worst cases vs Corollary 1 and the O(N) claim."""
    table = Table(
        title="E-WORST: worst observed steps over structured + random adversaries",
        headers=["algorithm", "side", "worst steps", "worst input", "corollary 1 bound",
                 "worst/N", "within engine cap"],
    )
    table.add_note(
        "Structured candidates: smallest-column (each column), reversed "
        "target, anti-diagonal; plus random probing.  Corollary 1 applies "
        "to the row-major algorithms only."
    )
    rng = as_generator((cfg.seed, 71))
    side = cfg.even_sides[0]
    n_cells = side * side
    probes = max(cfg.trials // 2, 16)
    for name in ALGORITHM_NAMES:
        schedule = resolve_algorithm(name)
        candidates: list[tuple[str, np.ndarray]] = []
        for col in range(side):
            candidates.append((f"column-{col}", smallest_column_adversary(side, column=col)))
        tgt = target_grid(np.arange(n_cells), side, schedule.order)
        candidates.append(("reversed", tgt[::-1, ::-1].copy()))
        candidates.append(("transposed", tgt.T.copy()))
        best_steps, best_label = -1, ""
        for label, grid in candidates:
            steps = sort_grid(name, grid, raise_on_cap=True).steps_scalar()
            if steps > best_steps:
                best_steps, best_label = steps, label
        random_steps = run_until_sorted(
            schedule, random_permutation_grid(side, batch=probes, rng=rng)
        ).steps
        if int(random_steps.max()) > best_steps:
            best_steps, best_label = int(random_steps.max()), "random probe"
        cor1 = 2 * n_cells - 4 * side if name in ROW_MAJOR_NAMES else "-"
        table.add_row(
            name, side, best_steps, best_label, cor1,
            best_steps / n_cells, best_steps <= default_step_cap(side),
        )
    return table
