"""repro — reproduction of Savari's five two-dimensional bubble sorting algorithms.

This package implements, end to end, the system studied in

    S. A. Savari, "Average Case Analysis of Five Two-Dimensional Bubble
    Sorting Algorithms", SPAA 1993.

Subpackages
-----------
``repro.core``
    The five mesh bubble-sort algorithms, their comparator-schedule IR, and
    vectorized/reference executors.
``repro.linear``
    The 1-D odd-even transposition sort substrate (forward and reverse).
``repro.mesh``
    Processor-level mesh-of-processors simulator with wrap-around wires.
``repro.zeroone``
    The 0-1 analysis machinery: threshold matrices, column weights, the
    Z/Y potential trackers, and programmatic lemma checks.
``repro.theory``
    Exact (Fraction-valued) moments, variances, and per-theorem bounds.
``repro.baselines``
    Shearsort and other comparison points on the same machine model.
``repro.experiments``
    Seeded Monte-Carlo harness reproducing every theorem of the paper.
``repro.viz``
    ASCII rendering of grids, traces, and series.
"""

from repro._version import __version__
from repro.core import ALGORITHM_NAMES, get_algorithm, sort_grid
from repro.errors import ReproError
from repro.randomness import random_permutation_grid, random_zero_one_grid

__all__ = [
    "__version__",
    "ALGORITHM_NAMES",
    "get_algorithm",
    "sort_grid",
    "ReproError",
    "random_permutation_grid",
    "random_zero_one_grid",
]
