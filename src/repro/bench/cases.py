"""The curated benchmark suite: what ``repro bench`` measures.

Each :class:`BenchCase` names one operation worth tracking over time:

* ``driver_steps_*`` — the hot step loop (``run_steps``) at small and
  medium sides;
* ``compile_cache_*`` — schedule compilation, cold (cache cleared every
  iteration) and warm (pure cache hit);
* ``campaign_workers*`` — the sharded Monte-Carlo engine, serial and with
  a 2-process pool, through the public :func:`repro.experiments.sample`
  facade;
* ``sort_<family>_side<S>`` — sort-to-completion for every registered
  schedule family (paper algorithms, shearsort, the linear odd-even sort,
  a pinned random network), each on its own topology's default backend
  (side 16 in the smoke suite; 16/32/64 in the full suite);
* ``service_cache_hit`` / ``service_cache_miss`` — the content-addressed
  result store through ``sample(..., store=...)``: a warm hit (pure
  lookup + decode, the zero-kernel-steps path) vs a cold miss (lookup +
  campaign + put, the store emptied before every timed iteration);
* ``certify_cold`` / ``certify_cached`` — the 0-1 sortedness certifier on
  a side-4 schedule: a cold exhaustive model check (65 536 0-1 matrices
  through the comparator-IR interpreter) vs a pure content-addressed
  cache hit, pinning the re-analysis-is-free contract to a number;
* ``span_overhead_disabled`` — the module-level :func:`repro.obs.prof.span`
  fast path with **no** profiler installed, pinning the package's
  zero-overhead-when-disabled guarantee to a number.

A case separates ``setup`` (untimed: build grids, warm caches) from
``body`` (timed: one iteration over the prepared state), so the reported
wall times measure the operation, not its scaffolding.  Inputs are drawn
from fixed seeds — every process benches identical work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import BenchmarkError

__all__ = ["BenchCase", "build_cases", "case_names"]

SUITES = ("smoke", "full")

_SEED = 20260808  # fixed: identical inputs on every bench run
_STEPS = 64  # driver-loop iterations per timed body
_TRIALS = 48  # campaign trials per timed body
_COMPILE_SIDE = 32  # mesh side for the compile-cache cases
_CERTIFY_SIDE = 4  # mesh side for the 0-1 certifier cases (exhaustive limit)
_NETWORK_STEPS = 128  # pinned random-network cycle length (side-independent)


@dataclass(frozen=True)
class BenchCase:
    """One benchmarked operation.

    ``setup()`` runs once per case, untimed, and returns the state the
    timed ``body(state)`` consumes.  ``repeats`` is the case's default
    timed-iteration count (the CLI can override it globally).
    """

    name: str
    group: str
    setup: Callable[[], Any]
    body: Callable[[Any], Any]
    repeats: int = 5
    meta: dict[str, Any] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Case bodies.  Module-level (not closures over heavy state) so the setup /
# body split stays explicit; each setup returns exactly what its body needs.
# ---------------------------------------------------------------------------


def _grid(side: int, *, seed: int = _SEED):
    from repro.randomness import random_permutation_grid

    return random_permutation_grid(side, rng=seed)


def _setup_driver(side: int) -> Callable[[], Any]:
    def setup():
        from repro.backends import get_backend
        from repro.backends.compile import compiled_schedule
        from repro.core.runner import resolve_algorithm

        schedule = resolve_algorithm("snake_1")
        compiled_schedule(schedule, side)  # warm the cache: time the loop
        return get_backend("vectorized"), schedule, _grid(side)

    return setup


def _body_driver(state) -> Any:
    from repro.backends import run_steps

    backend, schedule, grid = state
    return run_steps(backend, schedule, grid, _STEPS)


def _setup_compile() -> Any:
    from repro.schedules import mesh_shape

    schedules = [_family_schedule(name, _COMPILE_SIDE) for name in _algorithm_names()]
    return [(s, mesh_shape(s, _COMPILE_SIDE)) for s in schedules]


def _body_compile_miss(entries) -> Any:
    from repro.backends.compile import compiled_schedule, schedule_cache_clear

    schedule_cache_clear()
    for schedule, (rows, cols) in entries:
        compiled_schedule(schedule, rows, cols)


def _body_compile_hit(entries) -> Any:
    from repro.backends.compile import compiled_schedule

    for schedule, (rows, cols) in entries:
        compiled_schedule(schedule, rows, cols)


def _setup_campaign(workers: int) -> Callable[[], Any]:
    def setup():
        return {
            "algorithm": "snake_1",
            "side": 8,
            "trials": _TRIALS,
            "seed": _SEED,
            "shard_size": 12,
            "workers": workers,
        }

    return setup


def _body_campaign(kwargs) -> Any:
    from repro.experiments import sample

    kwargs = dict(kwargs)
    return sample(kwargs.pop("algorithm"), **kwargs)


def _setup_sort(algorithm: str, side: int) -> Callable[[], Any]:
    def setup():
        from repro.randomness import random_permutation_mesh
        from repro.schedules import execution_backend, mesh_shape

        schedule = _family_schedule(algorithm, side)
        grid = random_permutation_mesh(mesh_shape(schedule, side), rng=_SEED)
        return execution_backend(schedule), schedule, grid

    return setup


def _body_sort(state) -> Any:
    from repro.backends import run_sort

    backend, schedule, grid = state
    return run_sort(backend, schedule, grid)


def _setup_service_store(*, populate: bool) -> Callable[[], Any]:
    def setup():
        import tempfile

        from repro.experiments import sample
        from repro.store import LocalResultStore

        store = LocalResultStore(tempfile.mkdtemp(prefix="repro-bench-store-"))
        kwargs = {
            "side": 8,
            "trials": _TRIALS,
            "seed": _SEED,
            "shard_size": 12,
        }
        if populate:
            sample("snake_1", store=store, **kwargs)
        return store, kwargs

    return setup


def _body_service_hit(state) -> Any:
    from repro.experiments import sample

    store, kwargs = state
    return sample("snake_1", store=store, **kwargs)


def _body_service_miss(state) -> Any:
    from repro.experiments import sample

    store, kwargs = state
    # Empty the store first (like the compile-miss case clears its cache)
    # so every timed iteration pays lookup + campaign + put.
    for fingerprint in store.fingerprints():
        store.delete(fingerprint)
    return sample("snake_1", store=store, **kwargs)


def _setup_certify() -> Any:
    from repro.core.runner import resolve_algorithm

    return resolve_algorithm("snake_1")


def _body_certify_cold(schedule) -> Any:
    from repro.analysis.semantics import certify_sortedness, semantics_cache_clear

    # Clear the in-memory certificate cache (like compile_cache_miss) so
    # every timed iteration pays the full exhaustive 0-1 model check:
    # 2^16 matrices through the comparator-IR interpreter.
    semantics_cache_clear()
    return certify_sortedness(schedule, _CERTIFY_SIDE, _CERTIFY_SIDE)


def _body_certify_cached(schedule) -> Any:
    from repro.analysis.semantics import certify_sortedness

    return certify_sortedness(schedule, _CERTIFY_SIDE, _CERTIFY_SIDE)


def _setup_noop() -> Any:
    return None


def _body_span_disabled(_state) -> Any:
    from repro.obs.prof import span

    for _ in range(10_000):
        with span("bench_disabled"):
            pass


def _algorithm_names() -> tuple[str, ...]:
    from repro.schedules import available_families

    return available_families()


def _family_schedule(name: str, side: int):
    """Build the representative instance of ``name`` at ``side``.

    Seeded families get the fixed bench seed; the random network's cycle is
    pinned to :data:`_NETWORK_STEPS` draws so its compile and sort costs
    track the code, not the side-dependent default cycle length.
    """
    from repro.schedules import build_schedule

    params = {"steps": _NETWORK_STEPS} if name == "random_network" else None
    return build_schedule(name, side, seed=_SEED, params=params)


# ---------------------------------------------------------------------------
# Registry.
# ---------------------------------------------------------------------------


def build_cases(suite: str = "smoke") -> list[BenchCase]:
    """The case list for ``suite`` (``"smoke"`` or ``"full"``)."""
    if suite not in SUITES:
        raise BenchmarkError(f"suite must be one of {SUITES}, got {suite!r}")
    cases: list[BenchCase] = []
    for side in (16, 32):
        cases.append(
            BenchCase(
                name=f"driver_steps_side{side}",
                group="driver",
                setup=_setup_driver(side),
                body=_body_driver,
                meta={"side": side, "num_steps": _STEPS, "algorithm": "snake_1"},
            )
        )
    cases.append(
        BenchCase(
            name="compile_cache_miss",
            group="compile",
            setup=_setup_compile,
            body=_body_compile_miss,
            meta={"side": 32, "schedules": len(_algorithm_names())},
        )
    )
    cases.append(
        BenchCase(
            name="compile_cache_hit",
            group="compile",
            setup=_setup_compile,
            body=_body_compile_hit,
            repeats=10,
            meta={"side": 32, "schedules": len(_algorithm_names())},
        )
    )
    for workers in (1, 2):
        cases.append(
            BenchCase(
                name=f"campaign_workers{workers}",
                group="campaign",
                setup=_setup_campaign(workers),
                body=_body_campaign,
                repeats=3,
                meta={"workers": workers, "trials": _TRIALS, "side": 8},
            )
        )
    sides = (16,) if suite == "smoke" else (16, 32, 64)
    for algorithm in _algorithm_names():
        for side in sides:
            cases.append(
                BenchCase(
                    name=f"sort_{algorithm}_side{side}",
                    group="sort",
                    setup=_setup_sort(algorithm, side),
                    body=_body_sort,
                    repeats=3,
                    meta={"algorithm": algorithm, "side": side},
                )
            )
    cases.append(
        BenchCase(
            name="service_cache_hit",
            group="service",
            setup=_setup_service_store(populate=True),
            body=_body_service_hit,
            repeats=10,
            meta={"trials": _TRIALS, "side": 8, "store": "local"},
        )
    )
    cases.append(
        BenchCase(
            name="service_cache_miss",
            group="service",
            setup=_setup_service_store(populate=False),
            body=_body_service_miss,
            repeats=3,
            meta={"trials": _TRIALS, "side": 8, "store": "local"},
        )
    )
    cases.append(
        BenchCase(
            name="certify_cold",
            group="certify",
            setup=_setup_certify,
            body=_body_certify_cold,
            repeats=3,
            meta={"side": _CERTIFY_SIDE, "algorithm": "snake_1",
                  "inputs": 2 ** (_CERTIFY_SIDE * _CERTIFY_SIDE)},
        )
    )
    cases.append(
        BenchCase(
            name="certify_cached",
            group="certify",
            setup=_setup_certify,
            body=_body_certify_cached,
            repeats=10,
            meta={"side": _CERTIFY_SIDE, "algorithm": "snake_1"},
        )
    )
    cases.append(
        BenchCase(
            name="span_overhead_disabled",
            group="overhead",
            setup=_setup_noop,
            body=_body_span_disabled,
            repeats=10,
            meta={"spans_per_iteration": 10_000},
        )
    )
    return cases


def case_names(suite: str = "full") -> list[str]:
    """Every case name in ``suite`` (for ``repro bench --list``)."""
    return [case.name for case in build_cases(suite)]
