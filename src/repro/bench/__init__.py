"""repro.bench — the curated performance suite behind ``repro bench``.

Three layers:

* :mod:`repro.bench.cases` — the :class:`BenchCase` registry: driver step
  loop, compile cache (miss/hit), campaign scaling (1 vs 2 workers),
  sort-to-completion for every paper algorithm, and the span-disabled
  overhead probe;
* :mod:`repro.bench.runner` — executes cases (warmup + timed repeats + one
  profiled iteration for the span breakdown) and reads/writes the
  ``repro-bench`` JSON report with its environment fingerprint;
* :mod:`repro.bench.compare` — gates a report against a baseline with
  per-case thresholds (exit 1 on regression or missing case).

Reports are plain JSON so CI can commit a baseline
(``benchmarks/results/baseline-smoke.json``) and diff against it; see
docs/OBSERVABILITY.md ("Profiling & benchmarking").
"""

from repro.bench.cases import BenchCase, build_cases, case_names
from repro.bench.compare import (
    CaseComparison,
    ComparisonReport,
    compare_reports,
)
from repro.bench.runner import (
    BENCH_SCHEMA_VERSION,
    default_report_path,
    environment_fingerprint,
    load_report,
    run_case,
    run_cases,
    validate_report,
    write_report,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchCase",
    "build_cases",
    "case_names",
    "run_case",
    "run_cases",
    "environment_fingerprint",
    "validate_report",
    "load_report",
    "write_report",
    "default_report_path",
    "CaseComparison",
    "ComparisonReport",
    "compare_reports",
]
