"""Run the benchmark suite and write ``BENCH_<timestamp>.json`` reports.

A report is a plain-JSON document::

    {"format": "repro-bench", "schema_version": 1, "suite": "smoke",
     "created": "2026-08-08T12:00:00+00:00",
     "env": {"python": "3.11.9", "platform": ..., "numpy": ..., ...},
     "cases": {
       "driver_steps_side16": {
         "group": "driver", "repeats": 5,
         "wall": {"min": ..., "mean": ..., "max": ..., "std": ...},
         "spans": {"run": {"wall": ..., "cpu": ..., "count": ...}, ...},
         "meta": {"side": 16, ...}},
       ...}}

Per case the harness runs ``setup`` once (untimed), one warmup iteration,
``repeats`` timed iterations (:class:`~repro.obs.timing.StopWatch`), and a
final iteration under a :class:`~repro.obs.prof.SpanProfiler` whose
flattened tree becomes the case's ``spans`` breakdown.  The profiled
iteration is never part of the wall statistics, so profiling overhead
cannot contaminate the regression signal.

``env`` fingerprints the machine the numbers came from; comparisons across
differing fingerprints are still performed but flagged (see
:mod:`repro.bench.compare`).
"""

from __future__ import annotations

import json
import os
import platform
import statistics
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Callable

from repro._version import __version__
from repro.bench.cases import BenchCase
from repro.errors import BenchmarkError
from repro.obs.prof import SpanProfiler, aggregate_spans, use_profiler
from repro.obs.timing import StopWatch

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "environment_fingerprint",
    "run_case",
    "run_cases",
    "write_report",
    "validate_report",
    "load_report",
    "default_report_path",
]

BENCH_SCHEMA_VERSION = 1
_FORMAT = "repro-bench"


def environment_fingerprint() -> dict[str, Any]:
    """Where these numbers came from: interpreter, platform, key libs."""
    import numpy

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy.__version__,
        "repro": __version__,
    }


def _wall_stats(samples: list[float]) -> dict[str, float]:
    return {
        "min": min(samples),
        "mean": statistics.fmean(samples),
        "max": max(samples),
        "std": statistics.pstdev(samples) if len(samples) > 1 else 0.0,
    }


def run_case(case: BenchCase, *, repeats: int | None = None) -> dict[str, Any]:
    """Execute one case; returns its report entry (see module docstring)."""
    n = case.repeats if repeats is None else repeats
    if n < 1:
        raise BenchmarkError(f"repeats must be positive, got {n}")
    state = case.setup()
    case.body(state)  # warmup: JIT-free here, but first-touch caches are real
    samples: list[float] = []
    for _ in range(n):
        with StopWatch() as watch:
            case.body(state)
        samples.append(watch.elapsed)
    profiler = SpanProfiler()
    with use_profiler(profiler), profiler.span(case.name):
        case.body(state)
    spans = aggregate_spans(profiler.roots)
    spans.pop(case.name, None)  # the envelope span is just the iteration wall
    entry: dict[str, Any] = {
        "group": case.group,
        "repeats": n,
        "wall": _wall_stats(samples),
        "spans": spans,
    }
    if case.meta:
        entry["meta"] = dict(case.meta)
    return entry


def run_cases(
    cases: list[BenchCase],
    *,
    suite: str,
    repeats: int | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Run ``cases`` and assemble the full report document."""
    report: dict[str, Any] = {
        "format": _FORMAT,
        "schema_version": BENCH_SCHEMA_VERSION,
        "suite": suite,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "env": environment_fingerprint(),
        "cases": {},
    }
    for case in cases:
        entry = run_case(case, repeats=repeats)
        report["cases"][case.name] = entry
        if progress is not None:
            progress(
                f"{case.name:<28s} min {entry['wall']['min']:.4f}s "
                f"mean {entry['wall']['mean']:.4f}s  (x{entry['repeats']})"
            )
    return report


def validate_report(data: Any, *, source: str = "report") -> dict[str, Any]:
    """Check ``data`` is a usable bench report; return it typed as a dict.

    Raises :class:`BenchmarkError` naming the offending field — both the
    CLI (on ``--compare`` inputs) and tests lean on this as the schema
    contract.
    """
    if not isinstance(data, dict):
        raise BenchmarkError(f"{source}: not a JSON object")
    if data.get("format") != _FORMAT:
        raise BenchmarkError(
            f"{source}: format is {data.get('format')!r}, expected {_FORMAT!r}"
        )
    if data.get("schema_version") != BENCH_SCHEMA_VERSION:
        raise BenchmarkError(
            f"{source}: unsupported schema_version {data.get('schema_version')!r}"
        )
    for key in ("suite", "created", "env", "cases"):
        if key not in data:
            raise BenchmarkError(f"{source}: missing {key!r}")
    if not isinstance(data["cases"], dict):
        raise BenchmarkError(f"{source}: 'cases' must be an object")
    for name, entry in data["cases"].items():
        if not isinstance(entry, dict):
            raise BenchmarkError(f"{source}: case {name!r} must be an object")
        wall = entry.get("wall")
        if not isinstance(wall, dict) or not {"min", "mean", "max"} <= wall.keys():
            raise BenchmarkError(
                f"{source}: case {name!r} needs wall min/mean/max stats"
            )
    return data


def load_report(path: str | Path) -> dict[str, Any]:
    """Read and validate a report file."""
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise BenchmarkError(f"bench report not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise BenchmarkError(f"{path} is not valid JSON: {exc}") from exc
    return validate_report(data, source=str(path))


def default_report_path(out_dir: str | Path = ".") -> Path:
    """``BENCH_<UTC timestamp>.json`` under ``out_dir``."""
    stamp = datetime.now(timezone.utc).strftime("%Y%m%dT%H%M%SZ")
    return Path(out_dir) / f"BENCH_{stamp}.json"


def write_report(report: dict[str, Any], path: str | Path) -> Path:
    """Serialize ``report`` to ``path``, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path
