"""Regression gating: compare a bench report against a baseline.

The comparison walks the union of case names and classifies each:

* ``ok`` — current min wall time within the case's threshold;
* ``regression`` — current ``wall.min`` exceeds ``threshold x`` the
  baseline's (``min`` is the standard low-noise statistic: the fastest
  observed run is the least contaminated by scheduler jitter);
* ``improvement`` — at least 20 % faster than baseline (informational);
* ``missing`` — in the baseline but not the current report (a silently
  dropped case would otherwise hide a regression forever);
* ``new`` — in the current report only (informational).

Thresholds are *per case*: a baseline entry may carry ``"threshold": 2.0``
(committed CI baselines use generous ones, since shared runners are
noisy); cases without one use the comparison's default.  ``regression``
and ``missing`` gate — :func:`exit_code` maps them to 1 per the repro CLI
exit-code contract (0 ok / 1 findings / 2 usage).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import BenchmarkError

__all__ = ["CaseComparison", "ComparisonReport", "compare_reports"]

DEFAULT_THRESHOLD = 1.5
_IMPROVEMENT_RATIO = 0.8

_GATING = ("regression", "missing")


@dataclass(frozen=True)
class CaseComparison:
    """One case's verdict: status plus the numbers behind it."""

    name: str
    status: str
    current: float | None = None
    baseline: float | None = None
    threshold: float | None = None

    @property
    def ratio(self) -> float | None:
        if self.current is None or not self.baseline:
            return None
        return self.current / self.baseline


@dataclass(frozen=True)
class ComparisonReport:
    """Every case verdict plus the roll-up the CLI prints and gates on."""

    cases: list[CaseComparison]
    env_matches: bool

    @property
    def regressions(self) -> list[CaseComparison]:
        return [c for c in self.cases if c.status in _GATING]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def render(self) -> str:
        lines = []
        width = max((len(c.name) for c in self.cases), default=4)
        for comp in self.cases:
            ratio = comp.ratio
            detail = ""
            if comp.current is not None and comp.baseline is not None:
                detail = (
                    f"{comp.current:.4f}s vs {comp.baseline:.4f}s"
                    f" ({ratio:.2f}x, threshold {comp.threshold:.2f}x)"
                )
            lines.append(f"{comp.name:<{width}s}  {comp.status:<11s} {detail}".rstrip())
        verdict = (
            "OK: no regressions"
            if self.ok
            else f"REGRESSIONS: {len(self.regressions)} case(s) failed the gate"
        )
        if not self.env_matches:
            verdict += " [note: environment fingerprints differ]"
        lines.append(verdict)
        return "\n".join(lines)


def _case_minimum(entry: dict[str, Any], name: str, source: str) -> float:
    try:
        return float(entry["wall"]["min"])
    except (KeyError, TypeError, ValueError):
        raise BenchmarkError(
            f"{source}: case {name!r} has no usable wall.min"
        ) from None


def compare_reports(
    current: dict[str, Any],
    baseline: dict[str, Any],
    *,
    default_threshold: float = DEFAULT_THRESHOLD,
) -> ComparisonReport:
    """Classify every case of ``current`` against ``baseline``.

    Both documents must already be schema-valid
    (:func:`repro.bench.runner.validate_report`).  ``default_threshold``
    applies to baseline cases that do not carry their own ``"threshold"``.
    """
    if default_threshold <= 0:
        raise BenchmarkError(
            f"threshold must be positive, got {default_threshold}"
        )
    cur_cases: dict[str, Any] = current["cases"]
    base_cases: dict[str, Any] = baseline["cases"]
    comparisons: list[CaseComparison] = []
    for name in sorted(base_cases.keys() | cur_cases.keys()):
        base = base_cases.get(name)
        cur = cur_cases.get(name)
        if base is None:
            comparisons.append(
                CaseComparison(
                    name=name,
                    status="new",
                    current=_case_minimum(cur, name, "current"),
                )
            )
            continue
        base_min = _case_minimum(base, name, "baseline")
        threshold = float(base.get("threshold", default_threshold))
        if cur is None:
            comparisons.append(
                CaseComparison(
                    name=name,
                    status="missing",
                    baseline=base_min,
                    threshold=threshold,
                )
            )
            continue
        cur_min = _case_minimum(cur, name, "current")
        if base_min > 0 and cur_min > threshold * base_min:
            status = "regression"
        elif base_min > 0 and cur_min < _IMPROVEMENT_RATIO * base_min:
            status = "improvement"
        else:
            status = "ok"
        comparisons.append(
            CaseComparison(
                name=name,
                status=status,
                current=cur_min,
                baseline=base_min,
                threshold=threshold,
            )
        )
    env_matches = current.get("env") == baseline.get("env")
    return ComparisonReport(cases=comparisons, env_matches=env_matches)
