"""``repro bench`` / ``python -m repro.bench`` — the perf-regression CLI.

Typical invocations::

    repro bench --smoke --json-out bench.json
        Run the smoke suite, print per-case timings, write the report.

    repro bench --compare benchmarks/results/baseline-smoke.json
        Run the suite, then gate against a committed baseline
        (exit 1 on any regression or missing case).

    repro bench --compare BASELINE.json --against CURRENT.json
        Pure file-vs-file comparison — nothing is executed; this is the
        deterministic half CI uses after uploading the fresh report.

    repro bench --list
        Show every case in the full suite.

Exit codes follow the repro contract: 0 ok, 1 regressions/failures,
2 usage error.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.cases import build_cases, case_names
from repro.bench.compare import DEFAULT_THRESHOLD, compare_reports
from repro.bench.runner import (
    default_report_path,
    load_report,
    run_cases,
    validate_report,
    write_report,
)
from repro.errors import BenchmarkError

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="run the curated benchmark suite and gate regressions",
    )
    suite = parser.add_mutually_exclusive_group()
    suite.add_argument(
        "--smoke",
        action="store_true",
        help="small suite (default): sorts at side 16 only",
    )
    suite.add_argument(
        "--full",
        action="store_true",
        help="full suite: per-algorithm sorts at sides 16/32/64",
    )
    parser.add_argument(
        "--cases",
        metavar="NAME[,NAME...]",
        help="run only these cases (comma-separated; see --list)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list case names and exit"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        metavar="N",
        help="override every case's timed-iteration count",
    )
    parser.add_argument(
        "--json-out",
        metavar="PATH",
        help="write the report here (default: BENCH_<timestamp>.json)",
    )
    parser.add_argument(
        "--compare",
        metavar="BASELINE.json",
        help="gate against this baseline report (exit 1 on regression)",
    )
    parser.add_argument(
        "--against",
        metavar="CURRENT.json",
        help="with --compare: read the current report from a file "
        "instead of running the suite",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        metavar="X",
        help="default slowdown factor treated as a regression for baseline "
        f"cases without their own (default: {DEFAULT_THRESHOLD})",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-case progress lines"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _run(args)
    except BenchmarkError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _run(args: argparse.Namespace) -> int:
    suite = "full" if args.full else "smoke"
    if args.list:
        for name in case_names(suite if (args.full or args.smoke) else "full"):
            print(name)
        return 0
    if args.against and not args.compare:
        raise BenchmarkError("--against requires --compare BASELINE.json")
    if args.against:
        current = load_report(args.against)
    else:
        cases = build_cases(suite)
        if args.cases:
            wanted = [name.strip() for name in args.cases.split(",") if name.strip()]
            by_name = {case.name: case for case in cases}
            unknown = [name for name in wanted if name not in by_name]
            if unknown:
                raise BenchmarkError(
                    f"unknown case(s) {', '.join(map(repr, unknown))}; "
                    "see 'repro bench --list'"
                )
            cases = [by_name[name] for name in wanted]
        progress = None if args.quiet else lambda line: print(line)
        current = run_cases(
            cases, suite=suite, repeats=args.repeats, progress=progress
        )
        validate_report(current, source="fresh report")
        out_path = args.json_out or default_report_path()
        write_report(current, out_path)
        if not args.quiet:
            print(f"report written to {out_path}")
    if not args.compare:
        return 0
    baseline = load_report(args.compare)
    report = compare_reports(
        current, baseline, default_threshold=args.threshold
    )
    print(report.render())
    return report.exit_code()


if __name__ == "__main__":
    raise SystemExit(main())
