"""ASCII visualization of grids, traces, and series."""

from repro.viz.ascii import ascii_series, filmstrip, render_grid, render_zero_one

__all__ = ["ascii_series", "filmstrip", "render_grid", "render_zero_one"]
