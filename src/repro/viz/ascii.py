"""ASCII rendering of grids, 0-1 traces, and data series.

No plotting backend is assumed (the reproduction environment is offline);
these renderers target terminals and Markdown code blocks.  The filmstrip
view of a 0-1 trace makes the paper's travel lemmas *visible*: surpluses of
zeroes drift left one column per row-sorting step.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.orders import validate_grid
from repro.errors import DimensionError

__all__ = ["render_zero_one", "render_grid", "filmstrip", "ascii_series"]


def render_zero_one(grid01: np.ndarray, *, zero: str = "#", one: str = ".") -> str:
    """Render a 0-1 matrix; zeroes (the small values) as ``#`` by default."""
    arr = np.asarray(grid01)
    validate_grid(arr)
    if arr.ndim != 2:
        raise DimensionError("render_zero_one expects a single grid")
    return "\n".join(
        "".join(zero if cell == 0 else one for cell in row) for row in arr
    )


def render_grid(grid: np.ndarray, *, width: int | None = None) -> str:
    """Render an integer grid with aligned columns."""
    arr = np.asarray(grid)
    validate_grid(arr)
    if arr.ndim != 2:
        raise DimensionError("render_grid expects a single grid")
    if width is None:
        width = max(len(str(int(v))) for v in arr.ravel())
    return "\n".join(
        " ".join(str(int(v)).rjust(width) for v in row) for row in arr
    )


def filmstrip(
    frames: Sequence[np.ndarray],
    *,
    labels: Sequence[str] | None = None,
    gap: str = "   ",
    zero: str = "#",
    one: str = ".",
) -> str:
    """Render several 0-1 grids side by side (a trace over steps)."""
    if not frames:
        raise DimensionError("filmstrip needs at least one frame")
    rendered = [render_zero_one(f, zero=zero, one=one).splitlines() for f in frames]
    height = max(len(r) for r in rendered)
    widths = [max(len(line) for line in r) for r in rendered]
    lines = []
    if labels is not None:
        if len(labels) != len(frames):
            raise DimensionError("one label per frame required")
        lines.append(gap.join(str(l).ljust(w) for l, w in zip(labels, widths)))
    for i in range(height):
        lines.append(
            gap.join(
                (r[i] if i < len(r) else "").ljust(w)
                for r, w in zip(rendered, widths)
            )
        )
    return "\n".join(lines)


def ascii_series(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 60,
    height: int = 16,
) -> str:
    """A minimal multi-series scatter chart for terminals.

    Each series is drawn with its own marker (first letter of its name);
    axes are linear, annotated with min/max.  Intended for the example
    scripts, not for precise reading.
    """
    xs = np.asarray(x, dtype=float)
    if xs.size == 0 or not series:
        raise DimensionError("ascii_series needs data")
    all_y = np.concatenate([np.asarray(v, dtype=float) for v in series.values()])
    x_lo, x_hi = float(xs.min()), float(xs.max())
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    canvas = [[" "] * width for _ in range(height)]
    markers = {}
    used = set()
    for name in series:
        mark = next((ch for ch in name if ch.isalnum() and ch not in used), "*")
        used.add(mark)
        markers[name] = mark
    for name, ys in series.items():
        ys_arr = np.asarray(ys, dtype=float)
        if ys_arr.size != xs.size:
            raise DimensionError(f"series {name!r} length != x length")
        for xv, yv in zip(xs, ys_arr):
            col = int(round((xv - x_lo) / x_span * (width - 1)))
            row = height - 1 - int(round((yv - y_lo) / y_span * (height - 1)))
            canvas[row][col] = markers[name]
    lines = [f"y: [{y_lo:.3g}, {y_hi:.3g}]"]
    lines += ["|" + "".join(row) for row in canvas]
    lines.append("+" + "-" * width)
    lines.append(f" x: [{x_lo:.3g}, {x_hi:.3g}]")
    lines.append(
        " legend: " + ", ".join(f"{mark}={name}" for name, mark in markers.items())
    )
    return "\n".join(lines)
