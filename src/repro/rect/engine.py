"""Rectangular-mesh executor — compatibility shim over the backend layer.

The rectangular kernels are now the general case of the unified compiler in
:mod:`repro.backends.compile` (square meshes are ``rows == cols``), and the
run loop is the shared driver.  ``RectSortOutcome`` is the unified
:class:`~repro.backends.SortOutcome` — it always carried ``(rows, cols)``
implicitly through ``final``; now the fields are explicit.

New code should prefer the backend layer directly::

    from repro.backends import run_sort
    outcome = run_sort("rect", schedule, grid)
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import SortOutcome, step_cap
from repro.backends.compile import CompiledSchedule as _UnifiedCompiledSchedule
from repro.backends.driver import run_sort
from repro.core.schedule import Schedule
from repro.obs.events import Observer

__all__ = [
    "RectCompiledSchedule",
    "RectSortOutcome",
    "rect_run_until_sorted",
    "rect_step_cap",
]

#: The unified outcome type absorbs the historical rect-only outcome.
RectSortOutcome = SortOutcome


class RectCompiledSchedule(_UnifiedCompiledSchedule):
    """A schedule specialized to a ``rows x cols`` mesh.

    Kept for compatibility; prefer :func:`repro.backends.compiled_schedule`,
    which memoizes compilations.
    """

    def __init__(self, schedule: Schedule, rows: int, cols: int):
        super().__init__(schedule, rows, cols)


def rect_step_cap(rows: int, cols: int) -> int:
    """Generous cap scaled to N = rows*cols (alias of
    :func:`repro.backends.step_cap`)."""
    return step_cap(rows, cols)


def rect_run_until_sorted(
    schedule: Schedule,
    grid: np.ndarray,
    *,
    max_steps: int | None = None,
    raise_on_cap: bool = False,
    observer: Observer | None = None,
) -> SortOutcome:
    """Run a schedule to completion on (batched) rectangular grids.

    Alias for :func:`repro.backends.run_sort` on the ``"rect"`` backend;
    the historical signature gains an ``observer`` parameter now that the
    rect path runs through the shared instrumented driver.
    """
    return run_sort(
        "rect",
        schedule,
        grid,
        max_steps=max_steps,
        raise_on_cap=raise_on_cap,
        observer=observer,
    )
