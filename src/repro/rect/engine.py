"""Executor for the schedule IR on rectangular meshes.

Reuses :class:`~repro.core.schedule.LineOp` / :class:`WrapOp` semantics with
per-axis line lengths: a ``row`` op's pairing is governed by the number of
columns, a ``col`` op's by the number of rows, and the wrap comparisons run
down the last/first columns.  On square meshes this executor is verified to
agree cell-for-cell with :mod:`repro.core.engine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.schedule import (
    FORWARD,
    LineOp,
    Op,
    Schedule,
    WrapOp,
    lines_slice,
    pair_count,
)
from repro.errors import DimensionError, StepLimitExceeded, UnsupportedMeshError
from repro.rect.orders import rect_target_grid, validate_rect

__all__ = ["RectCompiledSchedule", "RectSortOutcome", "rect_run_until_sorted", "rect_step_cap"]


def _compile_line_op(op: LineOp, rows: int, cols: int) -> Callable[[np.ndarray], None]:
    length = cols if op.axis == "row" else rows
    p = pair_count(op.offset, length)
    ls = lines_slice(op.lines)
    lo_slice = slice(op.offset, op.offset + 2 * p, 2)
    hi_slice = slice(op.offset + 1, op.offset + 2 * p, 2)
    forward = op.direction == FORWARD

    if p == 0:
        def noop(grid: np.ndarray) -> None:
            return
        return noop

    if op.axis == "row":
        def kernel(grid: np.ndarray) -> None:
            a = grid[..., ls, lo_slice]
            b = grid[..., ls, hi_slice]
            lo = np.minimum(a, b)
            hi = np.maximum(a, b)
            if forward:
                a[...] = lo
                b[...] = hi
            else:
                a[...] = hi
                b[...] = lo
    else:
        def kernel(grid: np.ndarray) -> None:
            a = grid[..., lo_slice, ls]
            b = grid[..., hi_slice, ls]
            lo = np.minimum(a, b)
            hi = np.maximum(a, b)
            if forward:
                a[...] = lo
                b[...] = hi
            else:
                a[...] = hi
                b[...] = lo

    return kernel


def _compile_wrap(rows: int, cols: int) -> Callable[[np.ndarray], None]:
    def kernel(grid: np.ndarray) -> None:
        a = grid[..., : rows - 1, cols - 1]
        b = grid[..., 1:rows, 0]
        lo = np.minimum(a, b)
        hi = np.maximum(a, b)
        a[...] = lo
        b[...] = hi

    return kernel


def _compile_op(op: Op, rows: int, cols: int) -> Callable[[np.ndarray], None]:
    if isinstance(op, WrapOp):
        return _compile_wrap(rows, cols)
    return _compile_line_op(op, rows, cols)


class RectCompiledSchedule:
    """A schedule specialized to a ``rows x cols`` mesh."""

    def __init__(self, schedule: Schedule, rows: int, cols: int):
        if rows < 2 or cols < 2:
            raise UnsupportedMeshError(
                f"rectangular meshes need both dimensions >= 2, got {(rows, cols)}"
            )
        if schedule.requires_even_side and cols % 2 != 0:
            # the wrap comparisons collide with the even row step in the
            # last column exactly when the column count is odd (the same
            # structural constraint as the paper's sqrt(N) = 2n).
            raise UnsupportedMeshError(
                f"algorithm {schedule.name!r} requires an even number of "
                f"columns; got {cols}"
            )
        self.schedule = schedule
        self.rows, self.cols = int(rows), int(cols)
        self._steps = [
            [_compile_op(op, rows, cols) for op in step] for step in schedule.steps
        ]

    def apply_step(self, grid: np.ndarray, t: int) -> None:
        if t < 1:
            raise DimensionError(f"step times are 1-based, got {t}")
        for kernel in self._steps[(t - 1) % len(self._steps)]:
            kernel(grid)


@dataclass
class RectSortOutcome:
    """Result of :func:`rect_run_until_sorted` (mirrors ``SortOutcome``)."""

    steps: np.ndarray
    completed: np.ndarray
    final: np.ndarray
    max_steps: int

    def steps_scalar(self) -> int:
        if self.steps.ndim != 0:
            raise DimensionError("steps_scalar() on a batched outcome")
        return int(self.steps)


def rect_step_cap(rows: int, cols: int) -> int:
    """Generous cap scaled to N = rows*cols."""
    n_cells = rows * cols
    return 8 * n_cells + 16 * (rows + cols) + 64


def rect_run_until_sorted(
    schedule: Schedule,
    grid: np.ndarray,
    *,
    max_steps: int | None = None,
    raise_on_cap: bool = False,
) -> RectSortOutcome:
    """Run a schedule to completion on (batched) rectangular grids."""
    work = np.array(grid, copy=True)
    rows, cols = validate_rect(work)
    compiled = RectCompiledSchedule(schedule, rows, cols)
    if max_steps is None:
        max_steps = rect_step_cap(rows, cols)
    target = rect_target_grid(work, rows, cols, schedule.order)
    steps = np.full(work.shape[:-2], -1, dtype=np.int64)
    done = np.all(work == target, axis=(-2, -1))
    steps = np.where(done, 0, steps)
    t = 0
    while t < max_steps and not np.all(done):
        t += 1
        compiled.apply_step(work, t)
        now = np.all(work == target, axis=(-2, -1))
        newly = now & ~done
        if np.any(newly):
            steps = np.where(newly, t, steps)
            done = done | now
    completed = np.asarray(done)
    if raise_on_cap and not np.all(completed):
        raise StepLimitExceeded(max_steps, int(np.sum(~completed)))
    return RectSortOutcome(
        steps=np.asarray(steps), completed=completed, final=work, max_steps=max_steps
    )
