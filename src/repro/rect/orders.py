"""Target orders on rectangular ``rows x cols`` meshes.

The paper works on square meshes; the five algorithms are perfectly
well-defined on rectangles, and this extension package runs them there.
Snakelike order generalizes verbatim (paper-odd rows left-to-right,
paper-even rows right-to-left); row-major order likewise.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionError

__all__ = [
    "rect_rank_grid",
    "rect_target_grid",
    "rect_is_sorted",
    "validate_rect",
]


def validate_rect(grid: np.ndarray) -> tuple[int, int]:
    """Check a (batched) rectangular grid; return ``(rows, cols)``."""
    arr = np.asarray(grid)
    if arr.ndim < 2:
        raise DimensionError(f"grid must be at least 2-D, got ndim={arr.ndim}")
    rows, cols = int(arr.shape[-2]), int(arr.shape[-1])
    if rows < 1 or cols < 1:
        raise DimensionError(f"empty mesh shape {(rows, cols)}")
    return rows, cols


def rect_rank_grid(rows: int, cols: int, order: str) -> np.ndarray:
    """Rank grid (0-based) for a ``rows x cols`` mesh."""
    if rows < 1 or cols < 1:
        raise DimensionError(f"bad mesh shape {(rows, cols)}")
    grid = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    if order == "row_major":
        return grid
    if order == "snake":
        grid[1::2] = grid[1::2, ::-1]
        return grid
    raise DimensionError(f"unknown order {order!r}")


def rect_target_grid(values: np.ndarray, rows: int, cols: int, order: str) -> np.ndarray:
    """Sorted layout of ``values`` on the rectangle (batch-aware)."""
    values = np.asarray(values)
    n_cells = rows * cols
    flat = values.reshape(*values.shape[: max(values.ndim - 2, 0)], -1)
    if flat.shape[-1] != n_cells:
        raise DimensionError(
            f"values of size {values.size} cannot fill a {rows}x{cols} mesh"
        )
    ranks = rect_rank_grid(rows, cols, order)
    return np.sort(flat, axis=-1)[..., ranks]


def rect_is_sorted(grid: np.ndarray, order: str) -> np.ndarray | bool:
    """Whether each grid in a batch is in the rectangle's target order."""
    arr = np.asarray(grid)
    rows, cols = validate_rect(arr)
    if order == "row_major":
        seq = arr
    elif order == "snake":
        seq = arr.copy()
        seq[..., 1::2, :] = seq[..., 1::2, ::-1]
    else:
        raise DimensionError(f"unknown order {order!r}")
    seq = seq.reshape(*arr.shape[:-2], rows * cols)
    ok = (seq[..., 1:] >= seq[..., :-1]).all(axis=-1)
    return bool(ok) if ok.ndim == 0 else ok
