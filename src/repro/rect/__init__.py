"""Extension: the five algorithms on rectangular ``rows x cols`` meshes.

The paper fixes a square ``sqrt(N) x sqrt(N)`` mesh, but nothing in the
step definitions requires it: the snakelike algorithms run on any
rectangle, and the row-major algorithms on any rectangle with an even
number of columns (the wrap-around constraint transfers to the column
count).  The E-RECT experiment confirms the Θ(N) average-case behaviour
persists across aspect ratios.
"""

from repro.rect.engine import (
    RectCompiledSchedule,
    RectSortOutcome,
    rect_run_until_sorted,
    rect_step_cap,
)
from repro.rect.orders import (
    rect_is_sorted,
    rect_rank_grid,
    rect_target_grid,
    validate_rect,
)

__all__ = [
    "RectCompiledSchedule",
    "RectSortOutcome",
    "rect_run_until_sorted",
    "rect_step_cap",
    "rect_is_sorted",
    "rect_rank_grid",
    "rect_target_grid",
    "validate_rect",
]
