"""``repro.schedules`` — the schedule-family registry.

Importing this package registers the built-in families:

* the paper's five algorithms (``row_major_row_first``,
  ``row_major_col_first``, ``snake_1``, ``snake_2``, ``snake_3``);
* the baselines — ``shearsort`` (sided) and the deliberately broken
  ``row_major_no_wrap`` (pathological: excluded from sweeps by default);
* ``odd_even`` — the 1-D odd-even transposition sort on a linear topology;
* ``random_network`` — seeded uniform random adjacent-comparator networks.

See :mod:`repro.schedules.registry` for the resolution model and
``docs/EXTENDING.md`` for registering your own family.
"""

from __future__ import annotations

from repro.schedules.baselines import (
    BASELINE_FAMILIES,
    build_row_major_no_wrap,
    build_shearsort,
    shearsort_phases,
    shearsort_step_count,
)
from repro.schedules.linear import LINEAR_FAMILIES, build_odd_even
from repro.schedules.paper import PAPER_FAMILIES
from repro.schedules.random_networks import (
    RANDOM_NETWORK_FAMILIES,
    build_random_network,
)
from repro.schedules.registry import (
    TOPOLOGIES,
    ScheduleFamily,
    available_families,
    build_schedule,
    execution_backend,
    family_names,
    get_family,
    mesh_shape,
    parse_spec,
    register_family,
    resolve,
    spec_name,
    topology_of,
)

__all__ = [
    "TOPOLOGIES",
    "ScheduleFamily",
    "register_family",
    "get_family",
    "available_families",
    "family_names",
    "parse_spec",
    "spec_name",
    "build_schedule",
    "resolve",
    "topology_of",
    "mesh_shape",
    "execution_backend",
    "build_shearsort",
    "build_row_major_no_wrap",
    "build_odd_even",
    "build_random_network",
    "shearsort_phases",
    "shearsort_step_count",
]

for _family in (
    *PAPER_FAMILIES,
    *BASELINE_FAMILIES,
    *LINEAR_FAMILIES,
    *RANDOM_NETWORK_FAMILIES,
):
    register_family(_family)
del _family
