"""Uniform random adjacent-comparator sorting networks (seeded family).

Angel–Holroyd–Romik–Virág study the *random sorting network* model: a
sequence of comparators, each drawn uniformly from the ``n - 1`` adjacent
positions of a linear array.  This module packages that model as a
registry family — the first genuinely *generated* family in the repo:

* **sided and seedable** — an instance is identified by
  ``(side, steps, seed)`` and named in canonical spec syntax,
  ``random_network[seed=7,side=16,steps=64]``, so the seed and parameters
  flow into the compile cache key and every campaign fingerprint for free;
* **frozen and hashable** — the builder is a pure function of its
  parameters (own ``SeedSequence``, no global RNG), so rebuilding the same
  spec anywhere (coordinator, worker, another machine) yields an identical
  schedule;
* each schedule step fires exactly **one** :class:`~repro.core.schedule.PairOp`
  comparator, matching the model's one-comparator-per-time-unit clock.

A uniformly drawn prefix need not contain every adjacent position, and a
cyclic repetition of a network that never compares, say, positions (3, 4)
can obviously never sort.  The builder therefore *patches coverage*: any
adjacent position absent from the ``steps`` random draws is appended (in
ascending order) at the end of the cycle.  With every position covered, a
full cycle pass over an unsorted array always removes at least one
inversion — an adjacent pair out of order gets compared and swapped — so
cyclic repetition sorts within ``inversions_max + 1`` cycles.  That bound,
``cycle_len * (n * (n - 1) / 2 + 1)`` steps, is stored as the schedule's
``step_cap_hint`` metadata and honoured by
:func:`repro.backends.base.resolve_step_cap` (hints can only loosen the
paper-calibrated cap, never tighten it).
"""

from __future__ import annotations

import numpy as np

from repro.core.schedule import PairOp, Schedule, Step
from repro.errors import DimensionError
from repro.randomness import as_generator, as_seed_sequence
from repro.schedules.registry import ScheduleFamily, spec_name

__all__ = ["build_random_network", "RANDOM_NETWORK_FAMILIES"]


def build_random_network(
    *, side: int, seed: int, steps: int | None = None,
    coverage_patch: bool = True,
) -> Schedule:
    """Draw one random sorting network on a linear array of ``side`` cells.

    Parameters
    ----------
    side:
        Array length ``n`` (the ``1 × n`` mesh); must be >= 2.
    seed:
        Generator seed; part of the instance identity.
    steps:
        Number of uniform comparator draws; defaults to ``2 * n**2``
        (comfortably above the Θ(n²) comparators a fixed network needs).
        Coverage patching may append up to ``n - 2`` further comparators.
    coverage_patch:
        Test hook, deliberately *not* a registry parameter: ``False``
        skips the coverage patch, yielding the raw (possibly non-sorting)
        draw so the analysis suite can demonstrate what SCH008 and the
        sortedness certifier catch when the patch is missing.
    """
    n = int(side)
    if n < 2:
        raise DimensionError(f"random_network needs side >= 2, got {side}")
    length = 2 * n * n if steps is None else int(steps)
    if length < 1:
        raise DimensionError(f"random_network needs steps >= 1, got {steps}")

    rng = as_generator(as_seed_sequence((int(seed), n, length)))
    positions = [int(p) for p in rng.integers(0, n - 1, size=length)]
    if coverage_patch:
        # Coverage patch: append any adjacent position the draws missed, so
        # a full cycle always makes progress on an unsorted array (see
        # module docstring for the termination argument).
        positions.extend(sorted(set(range(n - 1)) - set(positions)))

    schedule_steps = tuple(
        Step(PairOp((0, p), (0, p + 1))) for p in positions
    )
    cycle_len = len(schedule_steps)
    step_cap_hint = cycle_len * (n * (n - 1) // 2 + 1)
    return Schedule(
        name=spec_name("random_network", side=n, steps=length, seed=int(seed)),
        steps=schedule_steps,
        order="row_major",
        metadata={
            "family": "random_network",
            "topology": "linear",
            "side": n,
            "seed": int(seed),
            "params": {"side": n, "steps": length, "seed": int(seed)},
            "step_cap_hint": step_cap_hint,
        },
    )


RANDOM_NETWORK_FAMILIES: tuple[ScheduleFamily, ...] = (
    ScheduleFamily(
        name="random_network",
        builder=build_random_network,
        topology="linear",
        sided=True,
        seedable=True,
        default_params={"steps": None},
        description=(
            "uniform random adjacent-comparator network on a linear array "
            "(Angel-Holroyd-Romik-Virag model; coverage-patched)"
        ),
    ),
)
