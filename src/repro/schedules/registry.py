"""The schedule-family registry: named, parameterized, seedable generators.

A **schedule family** is a recipe that produces concrete
:class:`~repro.core.schedule.Schedule` instances:

* the paper's five algorithms are *fixed* families — a four-step cycle that
  never depends on the mesh side;
* shearsort is a *sided* family — its Θ(√N log N) step list is built per
  side;
* the 1-D odd-even transposition sort is a fixed family on a **linear**
  topology (executed as a ``1 × side`` mesh through the rectangular
  backend);
* uniform random sorting networks are *sided and seedable* — a seeded
  generator draws the comparator sequence, so the instance is identified by
  ``(side, steps, seed)``.

Every subsystem that accepts an ``algorithm`` argument resolves it here via
:func:`resolve`, which understands three spellings:

* a bare family name — ``"snake_1"``, ``"odd_even"``;
* a **family spec** — ``"shearsort[side=8]"``,
  ``"random_network[side=16,steps=64,seed=7]"`` — whose bracketed
  ``key=value`` parameters instantiate the family;
* an explicit :class:`~repro.core.schedule.Schedule` (passed through).

Generated instances bake their parameters (including the seed) into the
schedule *name* in canonical spec syntax, so names round-trip through
:func:`parse_spec` and everything keyed on the name — the compile cache,
``CampaignSpec.fingerprint``, run events, manifests — automatically
distinguishes instances with different parameters or seeds.

Third parties register new families with :func:`register_family`; see
``docs/EXTENDING.md`` for a worked recipe.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.core.schedule import Schedule
from repro.errors import DimensionError, UnknownScheduleError

__all__ = [
    "TOPOLOGIES",
    "ScheduleFamily",
    "register_family",
    "get_family",
    "available_families",
    "family_names",
    "parse_spec",
    "spec_name",
    "build_schedule",
    "resolve",
    "topology_of",
    "mesh_shape",
    "execution_backend",
]

#: Mesh topologies a family can declare.  ``"square"`` runs on ``side × side``
#: grids, ``"linear"`` on ``1 × side`` arrays (the paper's Section 1
#: substrate); ``"rect"`` is reserved for families defined on general
#: ``rows × cols`` meshes.
TOPOLOGIES = ("square", "linear", "rect")


@dataclass(frozen=True)
class ScheduleFamily:
    """One registered schedule family.

    Attributes
    ----------
    name:
        Registry name; also the base of every instance's spec name.
    builder:
        Callable producing a :class:`Schedule`.  Called with ``side=`` when
        :attr:`sided`, ``seed=`` when :attr:`seedable`, plus any extra
        family parameters (see :attr:`default_params`).
    topology:
        One of :data:`TOPOLOGIES`; decides the mesh shape a ``side``
        induces (:func:`mesh_shape`) and the default execution backend.
    sided:
        The step list depends on the mesh side (e.g. shearsort).
    seedable:
        Instances are drawn by a seeded generator (e.g. random networks);
        ``seed`` becomes part of the instance identity.
    requires_even_side:
        The family is only defined for even sides (the paper's
        ``sqrt(N) = 2n`` constraint on the row-major algorithms).
    default_params:
        Extra generator parameters and their defaults (``None`` means
        "derived from the side at build time").
    description:
        One line for catalogs and ``--help`` output.
    pathological:
        True for deliberately broken families (``row_major_no_wrap``):
        resolvable by name, excluded from sweeps, benches, and the default
        :func:`available_families` listing.
    certified_sides:
        Sides on which the family's default instance is *statically
        certified* to sort — an exhaustive 0-1-principle proof by
        :func:`repro.analysis.semantics.certify_sortedness`, re-checked
        by ``repro analyze --certify`` (a declared side whose exhaustive
        check does not come back CERTIFIED is a gating finding).  Empty
        for seeded generators (instances vary per seed) and, of course,
        for pathological families.
    """

    name: str
    builder: Callable[..., Schedule]
    topology: str = "square"
    sided: bool = False
    seedable: bool = False
    requires_even_side: bool = False
    default_params: Mapping[str, Any] = field(default_factory=dict)
    description: str = ""
    pathological: bool = False
    certified_sides: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", self.name):
            raise DimensionError(
                f"family name must be a Python-identifier-like token, "
                f"got {self.name!r}"
            )
        if self.topology not in TOPOLOGIES:
            raise DimensionError(
                f"topology must be one of {TOPOLOGIES}, got {self.topology!r}"
            )
        for side in self.certified_sides:
            if not isinstance(side, int) or side < 2:
                raise DimensionError(
                    f"certified_sides must hold integer sides >= 2, "
                    f"got {side!r} for family {self.name!r}"
                )
            if self.requires_even_side and side % 2 != 0:
                raise DimensionError(
                    f"family {self.name!r} requires even sides but declares "
                    f"certified side {side}"
                )


_REGISTRY: dict[str, ScheduleFamily] = {}


def register_family(family: ScheduleFamily) -> ScheduleFamily:
    """Register ``family``; duplicate names are an error (re-registering a
    family would silently change what existing campaign fingerprints mean)."""
    if family.name in _REGISTRY:
        raise DimensionError(
            f"schedule family {family.name!r} is already registered; "
            f"unregister-and-replace is deliberately unsupported"
        )
    _REGISTRY[family.name] = family
    return family


def family_names(*, include_pathological: bool = True) -> tuple[str, ...]:
    """Registered family names in registration order."""
    return tuple(
        name
        for name, fam in _REGISTRY.items()
        if include_pathological or not fam.pathological
    )


def available_families(*, include_pathological: bool = False) -> tuple[str, ...]:
    """The sweepable families (pathological ones excluded by default)."""
    return family_names(include_pathological=include_pathological)


def get_family(name: str) -> ScheduleFamily:
    """Look a family up by bare name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownScheduleError(
            f"unknown algorithm {name!r}: no schedule family registered "
            f"under that name; registered families: {', '.join(family_names())}"
        ) from None


_SPEC_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)\s*(?:\[(.*)\])?$")


def parse_spec(spec: str) -> tuple[str, dict[str, int]]:
    """Split ``"family[k=v,...]"`` into ``(family, params)``.

    Bare names parse to ``(name, {})``.  Parameter values are integers —
    sides, lengths, and seeds are all the registry needs.
    """
    match = _SPEC_RE.match(str(spec).strip())
    if match is None:
        raise UnknownScheduleError(
            f"cannot parse schedule spec {spec!r}; expected "
            f"'family' or 'family[key=value,...]' "
            f"(registered families: {', '.join(family_names())})"
        )
    name, body = match.group(1), match.group(2)
    params: dict[str, int] = {}
    if body:
        for item in body.split(","):
            key, sep, value = item.partition("=")
            key = key.strip()
            parsed: int | None = None
            if sep and key:
                try:
                    parsed = int(value)
                except ValueError:
                    parsed = None
            if parsed is None:
                raise UnknownScheduleError(
                    f"bad parameter {item.strip()!r} in schedule spec {spec!r}; "
                    f"expected 'key=<int>'"
                )
            params[key] = parsed
    return name, params


def spec_name(family: str, **params: int) -> str:
    """The canonical instance name: ``family[k=v,...]`` with sorted keys.

    Inverse of :func:`parse_spec`; generated schedules use it as their
    :attr:`~repro.core.schedule.Schedule.name` so parameters and seeds are
    part of every name-keyed identity (compile cache, campaign
    fingerprints, events).
    """
    if not params:
        return family
    body = ",".join(f"{key}={int(value)}" for key, value in sorted(params.items()))
    return f"{family}[{body}]"


def build_schedule(
    name: str,
    side: int | None = None,
    *,
    seed: int | None = None,
    params: Mapping[str, int] | None = None,
) -> Schedule:
    """Build one concrete schedule from a family name or spec string.

    ``side`` and ``seed`` fill in whatever the spec string does not pin
    down; explicit spec parameters win.  Fixed families (the paper's five,
    ``odd_even``) ignore ``side`` — their cycle is side-independent.
    """
    base, spec_params = parse_spec(name)
    family = get_family(base)
    merged: dict[str, Any] = dict(family.default_params)
    merged.update(spec_params)
    if params:
        merged.update(params)

    unknown = set(merged) - set(family.default_params) - {"side", "seed"}
    if unknown:
        raise UnknownScheduleError(
            f"family {family.name!r} takes no parameter(s) {sorted(unknown)}; "
            f"known: {sorted({*family.default_params, 'side', 'seed'})}"
        )

    kwargs: dict[str, Any] = {
        key: value
        for key, value in merged.items()
        if key not in ("side", "seed") and value is not None
    }
    if family.sided:
        chosen = merged.get("side", side)
        if chosen is None:
            raise UnknownScheduleError(
                f"family {family.name!r} needs a mesh side; pass side= or "
                f"spell it {family.name}[side=...]"
            )
        kwargs["side"] = int(chosen)
    if family.seedable:
        chosen = merged.get("seed", seed)
        if chosen is None:
            raise UnknownScheduleError(
                f"family {family.name!r} is a seeded generator; pass seed= "
                f"or spell it {family.name}[...,seed=...]"
            )
        kwargs["seed"] = int(chosen)
    return family.builder(**kwargs)


def resolve(
    algorithm: str | Schedule,
    side: int | None = None,
    *,
    seed: int | None = None,
) -> Schedule:
    """Coerce an algorithm name, family spec, or schedule to a schedule.

    This is the one resolution point every layer shares (via
    :func:`repro.core.runner.resolve_algorithm`).  Strings are resolved
    through the registry; unknown names raise
    :class:`~repro.errors.UnknownScheduleError`, whose message lists the
    registered families.
    """
    if isinstance(algorithm, Schedule):
        return algorithm
    return build_schedule(algorithm, side=side, seed=seed)


def topology_of(schedule: Schedule) -> str:
    """A schedule's declared topology (``"square"`` when undeclared —
    every historical schedule predates the metadata key)."""
    return str(schedule.metadata.get("topology", "square"))


def mesh_shape(schedule: Schedule, side: int) -> tuple[int, int]:
    """The ``(rows, cols)`` mesh a ``side`` induces for ``schedule``.

    Square topology → ``side × side``; linear → ``1 × side`` (``side`` is
    the array length, so N = side, matching the paper's 1-D substrate).
    """
    if side < 2:
        raise DimensionError(f"mesh side must be >= 2, got {side}")
    if topology_of(schedule) == "linear":
        return (1, int(side))
    return (int(side), int(side))


def execution_backend(schedule: Schedule, backend: str | None = None) -> str:
    """The backend a schedule runs on when the caller does not pick one.

    Square schedules default to the batched ``"vectorized"`` kernels;
    non-square topologies to ``"rect"`` (the only batch-capable backend
    that accepts ``1 × N`` grids).  An explicit ``backend`` always wins.
    """
    if backend is not None:
        return backend
    return "vectorized" if topology_of(schedule) == "square" else "rect"
