"""Registry families for the paper's five bubble sorting algorithms.

These wrap the builders of :mod:`repro.core.algorithms` unchanged: the
schedules a family produces are identical — same name, same step cycle —
to what ``get_algorithm`` returned before the registry existed, so every
historical campaign fingerprint and compile-cache key still means the same
thing.
"""

from __future__ import annotations

from repro.core.algorithms import ALGORITHMS, ROW_MAJOR_NAMES
from repro.schedules.registry import ScheduleFamily

__all__ = ["PAPER_FAMILIES"]

_DESCRIPTIONS = {
    "row_major_row_first": "first row-major algorithm (row sort first, wrap-around wires)",
    "row_major_col_first": "second row-major algorithm (column sort first, wrap-around wires)",
    "snake_1": "first snakelike algorithm",
    "snake_2": "second snakelike algorithm (column steps split by parity)",
    "snake_3": "third snakelike algorithm (uniform row transposition parity)",
}

PAPER_FAMILIES: tuple[ScheduleFamily, ...] = tuple(
    ScheduleFamily(
        name=name,
        builder=builder,
        topology="square",
        requires_even_side=name in ROW_MAJOR_NAMES,
        description=_DESCRIPTIONS[name],
        # Exhaustive 0-1 certificates (repro analyze --certify re-proves
        # these): the even-side-only row-major pair on {2, 4}, the snakes
        # on every exhaustively checkable side.
        certified_sides=(2, 4) if name in ROW_MAJOR_NAMES else (2, 3, 4),
    )
    for name, builder in ALGORITHMS.items()
)
