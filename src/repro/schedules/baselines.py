"""Baseline families: shearsort and the broken wire-less row-major variant.

Shearsort construction lives here (``repro.baselines.shearsort`` is now a
deprecation shim over this module).  It is the registry's canonical *sided*
family: the step list depends on the mesh side, so instances are named in
spec syntax — ``shearsort[side=8]`` — and the side is part of every
name-keyed identity (compile cache, campaign fingerprints).
"""

from __future__ import annotations

import math

from repro.core.phases import (
    col_even_bubble,
    col_odd_bubble,
    row_even_bubble,
    row_odd_bubble,
)
from repro.core.schedule import FORWARD, REVERSE, LineOp, Schedule, Step
from repro.errors import DimensionError
from repro.schedules.registry import ScheduleFamily, spec_name

__all__ = [
    "shearsort_phases",
    "shearsort_step_count",
    "build_shearsort",
    "build_row_major_no_wrap",
    "BASELINE_FAMILIES",
]


def shearsort_phases(side: int) -> int:
    """Number of row phases: ``ceil(log2(side)) + 1``."""
    if side < 2:
        raise DimensionError(f"side must be >= 2, got {side}")
    return math.ceil(math.log2(side)) + 1


def shearsort_step_count(side: int) -> int:
    """Length of the shearsort schedule in mesh steps."""
    phases = shearsort_phases(side)
    return (2 * phases - 1) * side


def build_shearsort(*, side: int) -> Schedule:
    """Build the shearsort schedule for a concrete mesh side.

    Alternately sort all rows snake-wise and all columns,
    ``ceil(log2(side)) + 1`` row phases in total; by the classic 0-1
    argument the grid is then in snakelike order.  Each phase is expressed
    in the comparator IR as ``side`` odd-even transposition steps
    (alternating offsets), so one shearsort step costs exactly one mesh
    step and the cost model matches the paper's five algorithms.  The total
    length is ``(2 * ceil(log2(side)) + 1) * side`` — Θ(sqrt(N) log N).

    The schedule repeats cyclically, which is harmless: the snakelike
    sorted grid is a fixed point of every step.
    """
    if side < 2:
        raise DimensionError(f"side must be >= 2, got {side}")
    steps: list[Step] = []
    phases = shearsort_phases(side)
    for phase in range(phases):
        # Row phase: sort paper-odd rows ascending, paper-even rows
        # descending (snake direction), via `side` transposition steps.
        for j in range(side):
            steps.append(
                Step(
                    LineOp("row", j % 2, FORWARD, "odd"),
                    LineOp("row", j % 2, REVERSE, "even"),
                )
            )
        if phase < phases - 1:
            # Column phase: sort every column top-down.
            for j in range(side):
                steps.append(Step(LineOp("col", j % 2, FORWARD, "all")))
    return Schedule(
        name=spec_name("shearsort", side=side),
        steps=tuple(steps),
        order="snake",
        metadata={
            "family": "shearsort",
            "topology": "square",
            "side": side,
            "params": {"side": side},
        },
    )


def build_row_major_no_wrap() -> Schedule:
    """The first row-major algorithm with the wrap-around comparisons removed.

    Not a sorting algorithm — Section 1's motivating counterexample: column
    weights are invariant under all four of its steps except the row
    transpositions, which never move values past the column-1/column-2n
    boundary, so the smallest-column adversary is pinned forever.
    """
    return Schedule(
        name="row_major_no_wrap",
        steps=(
            Step(row_odd_bubble()),
            Step(col_odd_bubble()),
            Step(row_even_bubble()),
            Step(col_even_bubble()),
        ),
        order="row_major",
        requires_even_side=True,
        metadata={"family": "broken-baseline", "topology": "square"},
    )


BASELINE_FAMILIES: tuple[ScheduleFamily, ...] = (
    ScheduleFamily(
        name="shearsort",
        builder=build_shearsort,
        topology="square",
        sided=True,
        description="classic Θ(sqrt(N) log N) shearsort contrast baseline",
        certified_sides=(2, 3, 4),
    ),
    ScheduleFamily(
        name="row_major_no_wrap",
        builder=build_row_major_no_wrap,
        topology="square",
        requires_even_side=True,
        description="row-major algorithm without wrap-around wires (broken on purpose)",
        pathological=True,
    ),
)
