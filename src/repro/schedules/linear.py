"""The 1-D odd-even transposition sort as a linear-topology family.

The paper's Section 1 builds the 2-D algorithms out of the classic 1-D
odd-even transposition sort.  Expressed in the comparator IR it is a
two-step cycle of row transpositions executed on a ``1 × N`` mesh:

* step 1 — the *odd* step: compare-exchange pairs (1,2), (3,4), ...
  (1-based), i.e. ``LineOp("row", offset=0)``;
* step 2 — the *even* step: pairs (2,3), (4,5), ... — ``offset=1``.

This matches :func:`repro.linear.odd_even.transposition_step` exactly
(odd ``t`` → offset 0), so driving this family through the rectangular
backend reproduces the historical pure-NumPy sorter bit for bit — the shim
tests in ``tests/schedules`` assert it.
"""

from __future__ import annotations

from repro.core.schedule import FORWARD, LineOp, Schedule, Step
from repro.schedules.registry import ScheduleFamily

__all__ = ["build_odd_even", "LINEAR_FAMILIES"]


def build_odd_even() -> Schedule:
    """The odd-even transposition cycle on a linear array."""
    return Schedule(
        name="odd_even",
        steps=(
            Step(LineOp("row", 0, FORWARD, "all")),
            Step(LineOp("row", 1, FORWARD, "all")),
        ),
        order="row_major",
        metadata={"family": "odd_even", "topology": "linear"},
    )


LINEAR_FAMILIES: tuple[ScheduleFamily, ...] = (
    ScheduleFamily(
        name="odd_even",
        builder=build_odd_even,
        topology="linear",
        description="1-D odd-even transposition sort (runs as a 1 x N mesh)",
        # 1 x N arrays stay exhaustively checkable out to N = 16 cells.
        certified_sides=(2, 3, 4, 8, 16),
    ),
)
