"""Processor-level mesh substrate: topology, wires, comparator machine."""

from repro.mesh.machine import LinkStats, MeshMachine, mesh_sort
from repro.mesh.topology import Cell, MeshTopology

__all__ = ["LinkStats", "MeshMachine", "mesh_sort", "Cell", "MeshTopology"]
