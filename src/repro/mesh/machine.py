"""Processor-level executor: comparator exchanges over explicit wires.

:class:`MeshMachine` runs the same :class:`~repro.core.schedule.Schedule` IR
as the vectorized engine, but at the granularity the paper describes the
hardware: each cell is a processor holding one word; at each step the
scheduled comparator pairs exchange values over the wire that connects them.
The machine

* refuses comparators scheduled over missing wires (running a row-major
  schedule on a mesh built without wrap-around wires raises
  :class:`~repro.errors.MissingWireError`), and
* accounts traffic per wire (a comparison always costs one exchange on its
  wire; a *swap* is additionally counted), which the experiments use to
  report wire utilisation — including how much work the extra wrap wires do.

Being step-for-step identical to the other executors is asserted by the
cross-validation tests.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.algorithms import check_side
from repro.core.orders import is_sorted_grid
from repro.core.schedule import Schedule, comparator_pairs, validate_schedule
from repro.errors import DimensionError, MissingWireError
from repro.mesh.topology import Cell, MeshTopology
from repro.obs.context import resolve_observer
from repro.obs.events import Observer

__all__ = ["LinkStats", "MeshMachine", "mesh_sort"]


@dataclass
class LinkStats:
    """Per-wire traffic accounting."""

    comparisons: Counter = field(default_factory=Counter)
    swaps: Counter = field(default_factory=Counter)

    def total_comparisons(self) -> int:
        return sum(self.comparisons.values())

    def total_swaps(self) -> int:
        return sum(self.swaps.values())

    def busiest_links(self, k: int = 5) -> list[tuple[tuple[Cell, Cell], int]]:
        return self.comparisons.most_common(k)


class MeshMachine:
    """A mesh of single-word processors executing a comparator schedule."""

    def __init__(
        self,
        schedule: Schedule,
        grid: np.ndarray | Sequence[Sequence[int]],
        *,
        topology: MeshTopology | None = None,
        observer: Observer | None = None,
    ):
        values = np.array(grid, copy=True)
        if values.ndim != 2 or values.shape[0] != values.shape[1]:
            raise DimensionError(
                f"MeshMachine requires a single square grid, got shape {values.shape}"
            )
        self.side = int(values.shape[0])
        check_side(schedule, self.side)
        validate_schedule(schedule, self.side)
        self.schedule = schedule
        if topology is None:
            topology = MeshTopology(self.side, wraparound=schedule.uses_wraparound)
        if topology.side != self.side:
            raise DimensionError(
                f"topology side {topology.side} != grid side {self.side}"
            )
        self.topology = topology
        # Processor-local memories: one word per cell.
        self.memory: dict[Cell, int] = {
            (r, c): int(values[r, c]) for r in range(self.side) for c in range(self.side)
        }
        self.t = 0
        self.stats = LinkStats()
        # Resolved once at construction: explicit argument beats the ambient
        # context observer; None keeps step() on the uninstrumented path.
        self.observer = resolve_observer(observer)
        self._pairs_per_step = [
            [pair for op in step for pair in comparator_pairs(op, self.side)]
            for step in schedule.steps
        ]
        # Wire check is static: a schedule either fits the topology or not.
        for step_pairs in self._pairs_per_step:
            for low, high in step_pairs:
                if not self.topology.has_link(low, high):
                    raise MissingWireError(
                        f"schedule {schedule.name!r} compares {low} with {high}, "
                        f"but the mesh (wraparound={self.topology.wraparound}) has "
                        "no wire between them"
                    )

    def step(self) -> int:
        """Execute the next schedule step: every scheduled pair exchanges
        values over its wire and keeps the smaller at the designated end.

        Returns the number of swaps the step performed.  When the machine
        is stepped manually with an attached observer, step/cycle events are
        dispatched through the driver's emit helpers; when the machine runs
        under the unified driver (``mesh_sort`` or the ``"mesh"`` backend),
        the driver is the sole emitter and ``self.observer`` is ``None``.
        """
        from repro.backends.driver import emit_cycle, emit_step

        self.t += 1
        pairs = self._pairs_per_step[(self.t - 1) % len(self._pairs_per_step)]
        mem = self.memory
        swaps = 0
        for low, high in pairs:
            edge = (low, high) if low <= high else (high, low)
            self.stats.comparisons[edge] += 1
            a, b = mem[low], mem[high]
            if a > b:
                mem[low], mem[high] = b, a
                self.stats.swaps[edge] += 1
                swaps += 1
        obs = self.observer
        if obs is not None:
            # Dispatched only after every exchange of the step has landed,
            # so a raising observer cannot leave the memories half-stepped.
            emit_step(obs, t=self.t, grid=None, swaps=swaps, comparisons=len(pairs))
            cycle_len = len(self._pairs_per_step)
            if self.t % cycle_len == 0:
                emit_cycle(
                    obs, cycle=self.t // cycle_len, t=self.t, grid=self.as_array()
                )
        return swaps

    def comparisons_at(self, t: int) -> int:
        """Number of comparator firings in (1-based) schedule step ``t``."""
        return len(self._pairs_per_step[(t - 1) % len(self._pairs_per_step)])

    def run(self, num_steps: int) -> None:
        for _ in range(num_steps):
            self.step()

    def as_array(self) -> np.ndarray:
        out = np.empty((self.side, self.side), dtype=np.int64)
        for (r, c), v in self.memory.items():
            out[r, c] = v
        return out

    def is_sorted(self) -> bool:
        return bool(is_sorted_grid(self.as_array(), self.schedule.order))


def mesh_sort(
    schedule: Schedule,
    grid: np.ndarray,
    *,
    max_steps: int,
    topology: MeshTopology | None = None,
    observer: Observer | None = None,
) -> tuple[int, MeshMachine]:
    """Sort one grid to completion on the processor-level machine.

    Returns ``(t_f, machine)``; the machine exposes the final memories and
    the per-wire traffic statistics.  Raises
    :class:`~repro.errors.StepLimitExceeded` if the cap is hit.
    Compatibility shim over :func:`repro.backends.run_sort` on the
    ``"mesh"`` backend (a private backend instance carries ``topology``
    through and hands the machine back).
    """
    from repro.backends.driver import run_sort
    from repro.backends.mesh import MeshBackend

    backend = MeshBackend(topology=topology)
    outcome = run_sort(
        backend,
        schedule,
        grid,
        max_steps=max_steps,
        raise_on_cap=True,
        observer=observer,
    )
    assert backend.last_machine is not None
    return outcome.steps_scalar(), backend.last_machine
