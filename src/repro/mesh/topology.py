"""Mesh-of-processors topology (the paper's machine model).

A ``side x side`` mesh where each processor has up to four neighbours, plus
— when built with ``wraparound=True`` — the extra wires the row-major
algorithms require: a link from cell ``(h, side-1)`` to ``(h+1, 0)`` for
``h = 0 .. side-2``, continuing the row-major linear order across row
boundaries ("the penalty of having a wrap-around comparison is that extra
wires are required").

The topology is independent of any algorithm; the executor in
:mod:`repro.mesh.machine` checks every scheduled comparator against the
link set, so running a row-major schedule on a mesh without wrap wires
raises :class:`~repro.errors.MissingWireError` — reproducing the paper's
observation that without those wires a column of small values can never
disperse.

If :mod:`networkx` is available, :meth:`MeshTopology.graph` exposes the
topology as a graph for diameter/path computations; the core functionality
has no networkx dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DimensionError

__all__ = ["Cell", "MeshTopology"]

Cell = tuple[int, int]


def _norm_edge(a: Cell, b: Cell) -> tuple[Cell, Cell]:
    return (a, b) if a <= b else (b, a)


@dataclass
class MeshTopology:
    """The wiring of a ``side x side`` mesh of processors.

    Attributes
    ----------
    side:
        Mesh side (``sqrt(N)``).
    wraparound:
        Whether the extra wrap-around wires between the last and first
        columns are present.
    """

    side: int
    wraparound: bool = False
    _links: set[tuple[Cell, Cell]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.side < 1:
            raise DimensionError(f"side must be positive, got {self.side}")
        links: set[tuple[Cell, Cell]] = set()
        for r in range(self.side):
            for c in range(self.side):
                if c + 1 < self.side:
                    links.add(_norm_edge((r, c), (r, c + 1)))
                if r + 1 < self.side:
                    links.add(_norm_edge((r, c), (r + 1, c)))
        if self.wraparound:
            for h in range(self.side - 1):
                links.add(_norm_edge((h, self.side - 1), (h + 1, 0)))
        self._links = links

    @property
    def n_cells(self) -> int:
        return self.side * self.side

    def cells(self) -> list[Cell]:
        return [(r, c) for r in range(self.side) for c in range(self.side)]

    def has_link(self, a: Cell, b: Cell) -> bool:
        """Whether processors ``a`` and ``b`` share a wire."""
        return _norm_edge(a, b) in self._links

    def links(self) -> set[tuple[Cell, Cell]]:
        """All wires, as normalized (sorted) cell pairs."""
        return set(self._links)

    def num_links(self) -> int:
        return len(self._links)

    def num_wrap_links(self) -> int:
        """How many of the links are wrap-around wires."""
        if not self.wraparound:
            return 0
        return self.side - 1

    def neighbors(self, cell: Cell) -> list[Cell]:
        """Processors sharing a wire with ``cell``."""
        r, c = cell
        if not (0 <= r < self.side and 0 <= c < self.side):
            raise DimensionError(f"cell {cell} out of range for side {self.side}")
        out = []
        for cand in ((r - 1, c), (r + 1, c), (r, c - 1), (r, c + 1)):
            if self.has_link(cell, cand):
                out.append(cand)
        if self.wraparound:
            if c == self.side - 1 and r + 1 < self.side and self.has_link(cell, (r + 1, 0)):
                out.append((r + 1, 0))
            if c == 0 and r - 1 >= 0 and self.has_link(cell, (r - 1, self.side - 1)):
                out.append((r - 1, self.side - 1))
        return out

    def diameter(self) -> int:
        """Graph diameter.

        Without wrap wires this is the paper's ``2 sqrt(N) - 2``; with them
        it can only shrink, which the tests confirm via networkx.
        """
        if not self.wraparound:
            return 2 * (self.side - 1)
        graph = self.graph()
        import networkx as nx

        return nx.diameter(graph)

    def graph(self):
        """The topology as a :class:`networkx.Graph` (requires networkx)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self.cells())
        g.add_edges_from(self._links)
        return g
