"""Column weights and the M statistic (Definitions 2-3, Corollary 2).

For a 0-1 matrix, the *weight* ``w_k(t)`` of column ``k`` is its number of
ones and ``z_k(t)`` its number of zeroes (Definition 2/3).  Corollary 2's
statistic

.. math::

    M = \\max\\Bigl(\\max_j Z_{2j-1},\\; \\max_j W_{2j}\\Bigr) - n - 1

is measured immediately after the first *row sorting step* of a row-major
algorithm run on :math:`\\mathcal{A}^{01}`; the number of steps needed to
sort is then greater than ``4 n M``.

Columns are 0-based in code; the paper's odd-numbered columns are 0-based
indices 0, 2, 4, ....
"""

from __future__ import annotations

import numpy as np

from repro.core.orders import validate_grid
from repro.errors import DimensionError

__all__ = [
    "column_weights",
    "column_zeros",
    "odd_column_zeros",
    "even_column_weights",
    "m_statistic",
    "first_column_zeros",
]


def column_weights(grid01: np.ndarray) -> np.ndarray:
    """Number of ones per column, shape ``(..., side)``."""
    arr = np.asarray(grid01)
    validate_grid(arr)
    return (arr != 0).sum(axis=-2)


def column_zeros(grid01: np.ndarray) -> np.ndarray:
    """Number of zeroes per column, shape ``(..., side)``."""
    arr = np.asarray(grid01)
    validate_grid(arr)
    return (arr == 0).sum(axis=-2)


def odd_column_zeros(grid01: np.ndarray) -> np.ndarray:
    """Zeroes in the paper-odd columns (0-based 0, 2, ...), shape ``(..., ceil(side/2))``."""
    return column_zeros(grid01)[..., 0::2]


def even_column_weights(grid01: np.ndarray) -> np.ndarray:
    """Weights of the paper-even columns (0-based 1, 3, ...)."""
    return column_weights(grid01)[..., 1::2]


def m_statistic(grid01_after_first_row_sort: np.ndarray) -> np.ndarray | int:
    """Corollary 2's M for an even-side 0-1 mesh.

    The input must be the matrix *immediately after the first row sorting
    step* of the algorithm under study.  Returns an integer (0-d) or a batch
    of integers.  Only defined for even side (``2n``), matching the paper.
    """
    arr = np.asarray(grid01_after_first_row_sort)
    side = validate_grid(arr)
    if side % 2 != 0:
        raise DimensionError(f"the M statistic is defined for even side only, got {side}")
    n = side // 2
    z_odd = odd_column_zeros(arr).max(axis=-1)
    w_even = even_column_weights(arr).max(axis=-1)
    m = np.maximum(z_odd, w_even) - n - 1
    if m.ndim == 0:
        return int(m)
    return m.astype(np.int64)


def first_column_zeros(grid01: np.ndarray) -> np.ndarray | int:
    """The paper's :math:`Z_1`: number of zeroes in column 1 (0-based col 0)."""
    z = column_zeros(grid01)[..., 0]
    if z.ndim == 0:
        return int(z)
    return z.astype(np.int64)
