"""Threshold (0-1) matrices: the paper's :math:`\\mathcal{A}^{01}` reduction.

For a permutation grid :math:`\\mathcal{A}` of ``1..N`` (we use ``0..N-1``),
the matrix :math:`\\mathcal{A}^{01}` substitutes zeroes for the smallest half
of the entries and ones for the rest.  Because every algorithm here is an
oblivious comparison-exchange procedure, the number of steps needed to sort
:math:`\\mathcal{A}` is lower-bounded by the number needed to sort
:math:`\\mathcal{A}^{01}` — the standard 0-1 principle argument the paper
leans on throughout.

For even side ``2n`` the zero count is ``2n^2`` (exactly half); for odd side
``2n+1`` the appendix uses ``2n^2 + 2n + 1 = (N+1)/2``.
"""

from __future__ import annotations

import numpy as np

from repro.core.orders import validate_grid
from repro.errors import DimensionError
from repro.randomness import paper_zero_count

__all__ = ["threshold_matrix", "threshold_at", "is_zero_one"]


def threshold_matrix(grid: np.ndarray, zeros: int | None = None) -> np.ndarray:
    """The paper's :math:`\\mathcal{A}^{01}` for a (batched) permutation grid.

    ``zeros`` is the number of smallest entries replaced by 0; it defaults to
    :func:`repro.randomness.paper_zero_count` of the side.  Works for any
    grid of distinct values — the threshold is the ``zeros``-th order
    statistic of each batch element.
    """
    arr = np.asarray(grid)
    side = validate_grid(arr)
    if zeros is None:
        zeros = paper_zero_count(side)
    return threshold_at(arr, zeros)


def threshold_at(grid: np.ndarray, zeros: int) -> np.ndarray:
    """0-1 matrix with 0 at the positions of the ``zeros`` smallest entries."""
    arr = np.asarray(grid)
    side = validate_grid(arr)
    n_cells = side * side
    if not 0 <= zeros <= n_cells:
        raise DimensionError(f"zeros={zeros} out of range for {n_cells} cells")
    if zeros == 0:
        return np.ones_like(arr, dtype=np.int8)
    flat = arr.reshape(*arr.shape[:-2], n_cells)
    kth = np.sort(flat, axis=-1)[..., zeros - 1]
    return (arr > kth[..., None, None]).astype(np.int8)


def is_zero_one(grid: np.ndarray) -> bool:
    """Whether every entry of ``grid`` is 0 or 1."""
    arr = np.asarray(grid)
    return bool(np.isin(arr, (0, 1)).all())
