"""The snakelike potential statistics Z1..Z4 and Y1..Y3 (Definitions 4-10, 12-13).

For the first snakelike algorithm the paper tracks, along a run on a 0-1
matrix, four statistics measured after the four steps of each cycle
(Definitions 4-7 for even side ``2n``; Definitions 12-13 redefine the first
two for odd side ``2n+1``).  Lemmas 5-8 prove the chain

.. math:: Z_1(i) \\le Z_2(i) \\le Z_3(i) \\le Z_4(i) + 1 \\le Z_1(i+1) + 1,

i.e. the potential loses at most one unit per four-step cycle, which yields
Theorem 6's lower bound of ``4 (x - f(alpha, N) - 1)`` additional steps when
the potential is ``x`` after the first step.

For the second snakelike algorithm the analogous statistics are Y1..Y3
(Definitions 8-10, Lemma 10, Theorem 9).

All functions are 0-based and batch-aware.  "Paper-odd" rows/columns
(1-based 1, 3, 5, ...) are 0-based indices 0, 2, 4, ....
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.orders import validate_grid
from repro.errors import DimensionError

__all__ = [
    "z1_statistic",
    "z2_statistic",
    "z3_statistic",
    "z4_statistic",
    "y1_statistic",
    "y2_statistic",
    "y3_statistic",
    "f_threshold",
    "f_threshold_odd",
    "y_threshold",
    "theorem6_additional_steps",
    "theorem9_additional_steps",
    "theorem13_additional_steps",
]


def _as_int(value: np.ndarray) -> np.ndarray | int:
    if value.ndim == 0:
        return int(value)
    return value.astype(np.int64)


def _zeros(mask_src: np.ndarray) -> np.ndarray:
    return (np.asarray(mask_src) == 0).sum(axis=(-2, -1))


def _zeros_1d(mask_src: np.ndarray) -> np.ndarray:
    return (np.asarray(mask_src) == 0).sum(axis=-1)


def z1_statistic(grid01: np.ndarray) -> np.ndarray | int:
    """Definition 4 / 12: zeroes in the paper-odd columns before the last
    column, plus zeroes in the paper-even rows of the last column.

    For even side ``2n`` this is exactly Definition 4 (the odd columns
    1,3,...,2n-1 and even rows of column 2n); for odd side ``2n+1`` it is
    Definition 12 (columns 1,3,...,2n-1 and even rows of column 2n+1).
    Measured immediately after step ``4i+1``.
    """
    arr = np.asarray(grid01)
    side = validate_grid(arr)
    body = arr[..., :, 0 : side - 1 : 2]
    last_even_rows = arr[..., 1::2, side - 1]
    return _as_int(_zeros(body) + _zeros_1d(last_even_rows))


def z2_statistic(grid01: np.ndarray) -> np.ndarray | int:
    """Definition 5 / 13: as :func:`z1_statistic` but with the paper-*odd*
    rows of the last column.  Measured just after step ``4i+2``."""
    arr = np.asarray(grid01)
    side = validate_grid(arr)
    body = arr[..., :, 0 : side - 1 : 2]
    last_odd_rows = arr[..., 0::2, side - 1]
    return _as_int(_zeros(body) + _zeros_1d(last_odd_rows))


def z3_statistic(grid01: np.ndarray) -> np.ndarray | int:
    """Definition 6: zeroes in the paper-even columns plus zeroes in the
    paper-odd rows of column 1.  Measured right after step ``4i+3``."""
    arr = np.asarray(grid01)
    validate_grid(arr)
    body = arr[..., :, 1::2]
    first_odd_rows = arr[..., 0::2, 0]
    return _as_int(_zeros(body) + _zeros_1d(first_odd_rows))


def z4_statistic(grid01: np.ndarray) -> np.ndarray | int:
    """Definition 7: zeroes in the paper-even columns plus zeroes in the
    paper-even rows of column 1.  Measured after step ``4i+4``."""
    arr = np.asarray(grid01)
    validate_grid(arr)
    body = arr[..., :, 1::2]
    first_even_rows = arr[..., 1::2, 0]
    return _as_int(_zeros(body) + _zeros_1d(first_even_rows))


def y1_statistic(grid01: np.ndarray) -> np.ndarray | int:
    """Definition 8: zeroes in the paper-odd columns (after step ``4i+1``,
    equivalently after ``4i+2`` since column steps preserve column weights)."""
    arr = np.asarray(grid01)
    validate_grid(arr)
    return _as_int(_zeros(arr[..., :, 0::2]))


def y2_statistic(grid01: np.ndarray) -> np.ndarray | int:
    """Definition 9: zeroes in columns 2,4,...,2n-2, the paper-odd rows of
    column 1, and the paper-even rows of column 2n (after step ``4i+3``).

    Defined for even side only, matching the paper.
    """
    arr = np.asarray(grid01)
    side = validate_grid(arr)
    if side % 2 != 0:
        raise DimensionError(f"Y statistics require an even side, got {side}")
    mid = arr[..., :, 1 : side - 1 : 2]
    first_odd_rows = arr[..., 0::2, 0]
    last_even_rows = arr[..., 1::2, side - 1]
    return _as_int(_zeros(mid) + _zeros_1d(first_odd_rows) + _zeros_1d(last_even_rows))


def y3_statistic(grid01: np.ndarray) -> np.ndarray | int:
    """Definition 10: zeroes in columns 2,4,...,2n-2, the paper-even rows of
    column 1, and the paper-odd rows of column 2n (after step ``4i+4``)."""
    arr = np.asarray(grid01)
    side = validate_grid(arr)
    if side % 2 != 0:
        raise DimensionError(f"Y statistics require an even side, got {side}")
    mid = arr[..., :, 1 : side - 1 : 2]
    first_even_rows = arr[..., 1::2, 0]
    last_odd_rows = arr[..., 0::2, side - 1]
    return _as_int(_zeros(mid) + _zeros_1d(first_even_rows) + _zeros_1d(last_odd_rows))


def f_threshold(alpha: int, n_cells: int) -> int:
    """Theorem 6's :math:`f(\\alpha, N) = \\lceil \\alpha/2 + \\alpha/(2\\sqrt N)\\rceil`."""
    side = math.isqrt(n_cells)
    if side * side != n_cells:
        raise DimensionError(f"N={n_cells} is not a perfect square")
    # ceil(alpha/2 + alpha/(2*side)) with exact rational arithmetic:
    # alpha/2 + alpha/(2*side) = alpha*(side+1) / (2*side)
    return -((-alpha * (side + 1)) // (2 * side))


def f_threshold_odd(alpha: int, n_cells: int) -> int:
    """Theorem 13's odd-side threshold :math:`\\lceil \\alpha(N-1)/(2N) \\rceil`."""
    return -((-alpha * (n_cells - 1)) // (2 * n_cells))


def y_threshold(alpha: int) -> int:
    """Theorem 9's threshold :math:`\\lceil \\alpha/2 \\rceil`."""
    return -((-alpha) // 2)


def theorem6_additional_steps(x: int, alpha: int, n_cells: int) -> int:
    """Lower bound on remaining steps given potential ``x`` after step 1
    (Theorem 6), clipped at zero."""
    return max(4 * (x - f_threshold(alpha, n_cells) - 1), 0)


def theorem9_additional_steps(x: int, alpha: int) -> int:
    """Theorem 9's analogue for the second snakelike algorithm."""
    return max(4 * (x - y_threshold(alpha) - 1), 0)


def theorem13_additional_steps(x: int, alpha: int, n_cells: int) -> int:
    """Theorem 13's odd-side analogue of Theorem 6."""
    return max(4 * (x - f_threshold_odd(alpha, n_cells) - 1), 0)
