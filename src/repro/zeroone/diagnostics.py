"""Per-cycle convergence diagnostics for a sorting run.

A :class:`CycleRecord` snapshots, after each 4-step cycle of a run, the
quantities the paper's analysis watches: the number of inversions against
the target order (a global convergence measure), the relevant potential
(Z1 for the snakelike family, the M statistic's surplus for the row-major
family), the column zero-count spread of the threshold view, and the cell
holding the minimum.  :func:`run_diagnostics` produces the trace;
:func:`render_report` prints it — the `trace_report.py` example shows both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backends.compile import compiled_schedule
from repro.backends.driver import emit_cycle, emit_run_end, emit_run_start, emit_step
from repro.core.engine import default_step_cap
from repro.core.orders import linearize, target_grid, validate_grid
from repro.core.runner import resolve_algorithm
from repro.core.schedule import Schedule
from repro.errors import DimensionError
from repro.obs.context import resolve_observer
from repro.obs.events import Observer
from repro.obs.timing import StopWatch
from repro.zeroone.smallest import min_cell
from repro.zeroone.threshold import threshold_matrix
from repro.zeroone.trackers import y1_statistic, z1_statistic
from repro.zeroone.weights import column_zeros, m_statistic

__all__ = ["CycleRecord", "run_diagnostics", "render_report", "inversions"]


def inversions(grid: np.ndarray, order: str) -> int:
    """Number of inverted pairs in the target-order traversal.

    Zero exactly when the grid is sorted; decreases (not necessarily
    monotonically per step, but overall) as a run converges.  O(N log N)
    via merge counting on the linearized sequence.
    """
    seq = np.asarray(linearize(grid, order), dtype=np.int64)
    if seq.ndim != 1:
        raise DimensionError("inversions expects a single grid")

    def count(arr: np.ndarray) -> tuple[np.ndarray, int]:
        if len(arr) <= 1:
            return arr, 0
        mid = len(arr) // 2
        left, a = count(arr[:mid])
        right, b = count(arr[mid:])
        merged = np.empty(len(arr), dtype=arr.dtype)
        inv = a + b
        i = j = k = 0
        while i < len(left) and j < len(right):
            if left[i] <= right[j]:
                merged[k] = left[i]
                i += 1
            else:
                merged[k] = right[j]
                inv += len(left) - i
                j += 1
            k += 1
        merged[k:] = left[i:] if i < len(left) else right[j:]
        return merged, inv

    return count(seq)[1]


@dataclass(frozen=True)
class CycleRecord:
    """State snapshot after step ``t`` (the end of a cycle)."""

    t: int
    inversions: int
    potential: int
    column_spread: int
    min_cell: tuple[int, int]
    sorted: bool


def _potential_for(schedule: Schedule, grid01: np.ndarray) -> int:
    if schedule.order == "row_major":
        return int(m_statistic(grid01))
    if schedule.name == "snake_2":
        return int(y1_statistic(grid01))
    return int(z1_statistic(grid01))


def run_diagnostics(
    algorithm: str | Schedule,
    grid: np.ndarray,
    *,
    max_steps: int | None = None,
    observer: Observer | None = None,
) -> list[CycleRecord]:
    """Run to completion, recording a :class:`CycleRecord` per cycle.

    The final record is taken at the (cycle-aligned) step where the grid
    first matches the target; raises implicitly by returning a trace whose
    last record has ``sorted=False`` if the cap was hit.

    An observer (explicit or ambient) sees one ``on_step`` per executed
    step and one ``on_cycle`` per cycle whose ``info`` carries the full
    cycle record (inversions, potential, column spread, min cell) — the
    diagnostics runner is the reference producer of potential-trajectory
    traces.
    """
    schedule = resolve_algorithm(algorithm)
    work = np.array(grid, copy=True)
    side = validate_grid(work)
    if work.ndim != 2:
        raise DimensionError("run_diagnostics expects a single grid")
    if max_steps is None:
        max_steps = default_step_cap(side)
    compiled = compiled_schedule(schedule, side)
    target = target_grid(work, side, schedule.order)
    cycle = len(schedule.steps)
    records: list[CycleRecord] = []
    obs = resolve_observer(observer)

    def snapshot(t: int) -> CycleRecord:
        grid01 = threshold_matrix(work)
        zeros = column_zeros(grid01)
        return CycleRecord(
            t=t,
            inversions=inversions(work, schedule.order),
            potential=_potential_for(schedule, grid01),
            column_spread=int(zeros.max() - zeros.min()),
            min_cell=min_cell(work),
            sorted=bool(np.array_equal(work, target)),
        )

    if obs is not None:
        emit_run_start(
            obs,
            executor="diagnostics",
            algorithm=schedule.name,
            side=side,
            max_steps=max_steps,
            order=schedule.order,
        )
    watch = StopWatch().start()
    records.append(snapshot(0))
    t = 0
    while t < max_steps:
        for _ in range(cycle):
            t += 1
            compiled.apply_step(work, t)
            if obs is not None:
                emit_step(obs, t=t, grid=work)
        rec = snapshot(t)
        records.append(rec)
        if obs is not None:
            emit_cycle(
                obs,
                cycle=t // cycle,
                t=t,
                grid=work,
                info={
                    "inversions": rec.inversions,
                    "potential": rec.potential,
                    "column_spread": rec.column_spread,
                    "min_cell": list(rec.min_cell),
                    "sorted": rec.sorted,
                },
            )
        if rec.sorted:
            break
    if obs is not None:
        emit_run_end(
            obs,
            steps=records[-1].t if records[-1].sorted else -1,
            completed=records[-1].sorted,
            wall_time=watch.elapsed,
        )
    return records


def render_report(records: list[CycleRecord]) -> str:
    """Fixed-width text report of a diagnostics trace."""
    if not records:
        raise DimensionError("empty diagnostics trace")
    lines = [
        f"{'t':>6s} {'inversions':>11s} {'potential':>10s} "
        f"{'col spread':>11s} {'min cell':>10s} {'sorted':>7s}"
    ]
    for rec in records:
        lines.append(
            f"{rec.t:6d} {rec.inversions:11d} {rec.potential:10d} "
            f"{rec.column_spread:11d} {str(rec.min_cell):>10s} "
            f"{'yes' if rec.sorted else 'no':>7s}"
        )
    return "\n".join(lines)
