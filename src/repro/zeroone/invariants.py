"""Programmatic checks of the paper's lemmas on concrete 0-1 traces.

Each ``check_*`` function takes matrices observed around one step of a run
and returns a list of human-readable violation strings — empty when the
lemma holds.  The test suite applies them to randomized traces (and
hypothesis-generated 0-1 matrices), which pins the implementation of the
algorithms to the combinatorial structure the paper's analysis relies on:
if a schedule were transcribed wrongly, these lemmas would fail long before
any step-count statistic looked suspicious.

Conventions: 0-based indices; "paper-odd" columns are 0-based 0, 2, 4, ....
All functions expect *even* side unless stated otherwise, matching the
sections of the paper they come from.
"""

from __future__ import annotations

import numpy as np

from repro.core.orders import validate_grid
from repro.zeroone.trackers import (
    z1_statistic,
    z2_statistic,
    z3_statistic,
    z4_statistic,
    y1_statistic,
    y2_statistic,
    y3_statistic,
)
from repro.zeroone.weights import column_weights, column_zeros

__all__ = [
    "check_lemma1_column_sort",
    "check_lemma2_odd_row_sort",
    "check_lemma3_even_row_sort",
    "check_lemmas_5_to_8",
    "check_lemma10",
    "z_sequence",
    "y_sequence",
]


def check_lemma1_column_sort(before: np.ndarray, after: np.ndarray) -> list[str]:
    """Lemma 1: a column sort step changes no column's weight."""
    violations = []
    wb, wa = column_weights(before), column_weights(after)
    if wb.shape != wa.shape:
        return [f"shape mismatch {wb.shape} vs {wa.shape}"]
    bad = np.nonzero(wb != wa)[-1]
    for k in np.atleast_1d(bad):
        violations.append(
            f"column {int(k)}: weight changed {int(wb[..., k])} -> {int(wa[..., k])}"
        )
    return violations


def check_lemma2_odd_row_sort(before: np.ndarray, after: np.ndarray) -> list[str]:
    """Lemma 2: after an odd row sort, for each j (paper 1-based):

    * ``w_{2j}(t)   >= w_{2j-1}(t-1)`` — the ones of the odd columns travel
      to the even columns, and
    * ``z_{2j-1}(t) >= z_{2j}(t-1)`` — the zeroes of the even columns travel
      to the odd columns;

    plus the cellwise travel facts ``A_{2j}^h = 0  =>  B_{2j-1}^h = 0`` and
    ``A_{2j-1}^h = 1  =>  B_{2j}^h = 1``.
    """
    violations = []
    b, a = np.asarray(before), np.asarray(after)
    side = validate_grid(b)
    wb, zb = column_weights(b), column_zeros(b)
    wa, za = column_weights(a), column_zeros(a)
    for j in range(side // 2):
        odd_col, even_col = 2 * j, 2 * j + 1  # 0-based pair (paper 2j-1, 2j)
        if int(wa[even_col]) < int(wb[odd_col]):
            violations.append(
                f"w_{{{even_col + 1}}}(t)={int(wa[even_col])} < "
                f"w_{{{odd_col + 1}}}(t-1)={int(wb[odd_col])}"
            )
        if int(za[odd_col]) < int(zb[even_col]):
            violations.append(
                f"z_{{{odd_col + 1}}}(t)={int(za[odd_col])} < "
                f"z_{{{even_col + 1}}}(t-1)={int(zb[even_col])}"
            )
        # cellwise travel
        zero_travel = (b[:, even_col] == 0) & (a[:, odd_col] != 0)
        one_travel = (b[:, odd_col] == 1) & (a[:, even_col] != 1)
        for h in np.nonzero(zero_travel)[0]:
            violations.append(f"zero at ({int(h)}, {even_col}) did not travel left")
        for h in np.nonzero(one_travel)[0]:
            violations.append(f"one at ({int(h)}, {odd_col}) did not travel right")
    return violations


def check_lemma3_even_row_sort(before: np.ndarray, after: np.ndarray) -> list[str]:
    """Lemma 3: after an even row sort with wrap-around comparisons:

    * interior: ``w_{2j+1}(t) >= w_{2j}(t-1)`` and ``z_{2j}(t) >= z_{2j+1}(t-1)``
      for paper j in 1..n-1;
    * boundary: ``w_1(t) >= w_{2n}(t-1) - 1`` and ``z_{2n}(t) >= z_1(t-1) - 1``;
    * cellwise: ``D_1^{h+1} = 0 => E_{2n}^h = 0`` and ``D_{2n}^h = 1 => E_1^{h+1} = 1``.
    """
    violations = []
    b, a = np.asarray(before), np.asarray(after)
    side = validate_grid(b)
    wb, zb = column_weights(b), column_zeros(b)
    wa, za = column_weights(a), column_zeros(a)
    for j in range(1, side // 2):
        even_col, next_odd = 2 * j - 1, 2 * j  # 0-based (paper 2j, 2j+1)
        if int(wa[next_odd]) < int(wb[even_col]):
            violations.append(
                f"w_{{{next_odd + 1}}}(t)={int(wa[next_odd])} < "
                f"w_{{{even_col + 1}}}(t-1)={int(wb[even_col])}"
            )
        if int(za[even_col]) < int(zb[next_odd]):
            violations.append(
                f"z_{{{even_col + 1}}}(t)={int(za[even_col])} < "
                f"z_{{{next_odd + 1}}}(t-1)={int(zb[next_odd])}"
            )
    last = side - 1
    if int(wa[0]) < int(wb[last]) - 1:
        violations.append(f"w_1(t)={int(wa[0])} < w_last(t-1)-1={int(wb[last]) - 1}")
    if int(za[last]) < int(zb[0]) - 1:
        violations.append(f"z_last(t)={int(za[last])} < z_1(t-1)-1={int(zb[0]) - 1}")
    zero_travel = (b[1:, 0] == 0) & (a[:-1, last] != 0)
    one_travel = (b[:-1, last] == 1) & (a[1:, 0] != 1)
    for h in np.nonzero(zero_travel)[0]:
        violations.append(f"zero at ({int(h) + 1}, 0) did not wrap to ({int(h)}, {last})")
    for h in np.nonzero(one_travel)[0]:
        violations.append(f"one at ({int(h)}, {last}) did not wrap to ({int(h) + 1}, 0)")
    return violations


def z_sequence(trace: list[np.ndarray]) -> list[int]:
    """Z statistics along an S1-style trace.

    ``trace`` lists the grid *after* steps 1, 2, 3, ... (as produced by
    :func:`repro.core.engine.iter_steps`); entry ``4i`` of the result is
    ``Z1(i)``, entry ``4i+1`` is ``Z2(i)``, etc.
    """
    stats = (z1_statistic, z2_statistic, z3_statistic, z4_statistic)
    return [int(stats[idx % 4](g)) for idx, g in enumerate(trace)]


def y_sequence(trace: list[np.ndarray]) -> list[int]:
    """Y statistics along an S2-style trace (Y1 after steps 1 and 2)."""
    stats = (y1_statistic, y1_statistic, y2_statistic, y3_statistic)
    return [int(stats[idx % 4](g)) for idx, g in enumerate(trace)]


def check_lemmas_5_to_8(trace: list[np.ndarray]) -> list[str]:
    """Lemmas 5-8 on an S1 trace: Z2 >= Z1, Z3 >= Z2, Z4 >= Z3 - 1,
    and Z1(i+1) >= Z4(i)."""
    seq = z_sequence(trace)
    names = ("Z1", "Z2", "Z3", "Z4")
    violations = []
    for idx in range(1, len(seq)):
        next_stat = idx % 4
        allowed = 1 if next_stat == 3 else 0  # only Z3 -> Z4 may lose one
        if seq[idx] < seq[idx - 1] - allowed:
            violations.append(
                f"step {idx + 1}: {names[next_stat]}={seq[idx]} < "
                f"{names[(idx - 1) % 4]}={seq[idx - 1]}"
                + (f" - {allowed}" if allowed else "")
            )
    return violations


def check_lemma10(trace: list[np.ndarray]) -> list[str]:
    """Lemma 10 on an S2 trace: Y2 >= Y1, Y3 >= Y2 - 1, Y1(i+1) >= Y3(i).

    ``trace`` lists grids after steps 1, 2, 3, ...; Y1 is read after step
    4i+1 (and is unchanged by step 4i+2), Y2 after 4i+3, Y3 after 4i+4.
    """
    violations = []
    # Build the Y-checkpoint sequence: Y1(0), Y2(0), Y3(0), Y1(1), ...
    checkpoints: list[tuple[str, int]] = []
    for idx, grid in enumerate(trace):
        phase = idx % 4  # grid after step idx+1
        if phase == 0:
            checkpoints.append(("Y1", int(y1_statistic(grid))))
        elif phase == 2:
            checkpoints.append(("Y2", int(y2_statistic(grid))))
        elif phase == 3:
            checkpoints.append(("Y3", int(y3_statistic(grid))))
    for k in range(1, len(checkpoints)):
        name_prev, v_prev = checkpoints[k - 1]
        name_cur, v_cur = checkpoints[k]
        allowed = 1 if name_cur == "Y3" else 0
        if v_cur < v_prev - allowed:
            violations.append(
                f"checkpoint {k}: {name_cur}={v_cur} < {name_prev}={v_prev}"
                + (f" - {allowed}" if allowed else "")
            )
    return violations
