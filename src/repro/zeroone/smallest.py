"""Smallest-element trajectory analysis for the third snakelike algorithm.

Lemmas 12-13 (and 15-16 for odd side) show that under ``snake_3`` the cell
holding the smallest entry of the mesh performs a *deterministic* walk
backwards along the snake path: writing ``m`` for the snake rank (1-based) of
the cell the minimum currently occupies,

* an *odd* pair of steps (``4i+1``, ``4i+2``) leaves ``m`` unchanged or
  decreases it by one, and
* an *even* pair (``4i+3``, ``4i+4``) decreases ``m`` by exactly one
  (until the minimum reaches the top-left cell).

Hence at least ``2m - 3`` steps are needed when the minimum starts on the
rank-``m`` cell, and since the start cell is uniform, the probability that
``snake_3`` finishes in fewer than ``delta*N`` steps is at most
``delta/2 + delta/(2N)`` (Theorem 12).

This module implements the predicted walk, trackers for the *actual* walk
(any algorithm), and the Theorem 12 bound.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import CompiledSchedule
from repro.core.orders import rank_of_position, validate_grid
from repro.core.runner import resolve_algorithm as _resolve
from repro.core.schedule import Schedule
from repro.errors import DimensionError

__all__ = [
    "min_cell",
    "snake_rank_of_min",
    "predicted_cell_after_pair",
    "predicted_walk",
    "min_trajectory",
    "predicted_min_home_steps",
    "expected_min_home_steps",
    "steps_lower_bound_from_rank",
    "theorem12_tail_bound",
    "steps_until_min_home",
]


def min_cell(grid: np.ndarray) -> tuple[int, int]:
    """0-based cell of the minimum of a single grid."""
    arr = np.asarray(grid)
    if arr.ndim != 2:
        raise DimensionError("min_cell expects a single 2-D grid")
    r, c = np.unravel_index(int(np.argmin(arr)), arr.shape)
    return int(r), int(c)


def snake_rank_of_min(grid: np.ndarray) -> int:
    """0-based snake rank of the cell currently holding the minimum."""
    arr = np.asarray(grid)
    side = validate_grid(arr)
    r, c = min_cell(arr)
    return rank_of_position(r, c, side, "snake")


def predicted_cell_after_pair(
    cell: tuple[int, int], side: int, pair_parity: int
) -> tuple[int, int]:
    """Lemma 12/13 (and 15/16) walk: where the minimum sits after the next
    pair of ``snake_3`` steps.

    Parameters
    ----------
    cell:
        0-based (row, col) of the minimum after an even number of steps.
    pair_parity:
        0 for an odd pair (paper steps ``4i+1``, ``4i+2``), 1 for an even
        pair (steps ``4i+3``, ``4i+4``).

    The case analysis is the paper's, translated to 0-based coordinates
    (paper row ``j`` odd ⇔ 0-based row even).
    """
    r, c = cell
    if not (0 <= r < side and 0 <= c < side):
        raise DimensionError(f"cell {cell} out of range for side {side}")
    paper_j_odd = r % 2 == 0
    paper_k_odd = c % 2 == 0
    if pair_parity == 0:
        # Lemma 12 / 15: steps 4i+1 (row transpositions) then 4i+2 (columns).
        if paper_j_odd == paper_k_odd:
            return (r, c)  # case 1: untouched
        if not paper_j_odd and paper_k_odd:
            # case 2: paper j even, k odd -> (j, k+1); at odd side with
            # k = sqrt(N) (last, paper-odd) Lemma 15 subcase 2b moves it up
            # via the column step instead.
            if c == side - 1:
                return (r - 1, c)
            return (r, c + 1)
        # case 3: paper j odd, k even -> (j, k-1)
        return (r, c - 1)
    if pair_parity == 1:
        # Lemma 13 / 16: steps 4i+3 then 4i+4; position has j ≡ k (mod 2).
        if paper_j_odd != paper_k_odd:
            raise DimensionError(
                f"cell {cell}: an even pair must start from j ≡ k (mod 2)"
            )
        if not paper_j_odd:  # paper j, k both even
            if c != side - 1:
                return (r, c + 1)  # subcase 1a
            return (r - 1, c)  # subcase 1b: wrap up the snake at the right edge
        # paper j, k both odd
        if c != 0:
            return (r, c - 1)  # subcase 2a
        if r == 0:
            return (0, 0)  # minimum is home; the lemma assumes m > 1
        return (r - 1, c)  # subcase 2b: wrap up the snake at the left edge
    raise DimensionError(f"pair_parity must be 0 or 1, got {pair_parity}")


def predicted_walk(cell: tuple[int, int], side: int, num_pairs: int) -> list[tuple[int, int]]:
    """The predicted minimum positions after each of ``num_pairs`` step pairs."""
    out = []
    cur = cell
    for i in range(num_pairs):
        cur = predicted_cell_after_pair(cur, side, i % 2)
        out.append(cur)
    return out


def min_trajectory(
    algorithm: str | Schedule,
    grid: np.ndarray,
    num_pairs: int,
) -> list[tuple[int, int]]:
    """Actual minimum positions after each pair of steps of any algorithm."""
    schedule = _resolve(algorithm)
    arr = np.array(grid, copy=True)
    side = validate_grid(arr)
    if arr.ndim != 2:
        raise DimensionError("min_trajectory expects a single grid")
    compiled = CompiledSchedule(schedule, side)
    out = []
    t = 0
    for _ in range(num_pairs):
        t += 1
        compiled.apply_step(arr, t)
        t += 1
        compiled.apply_step(arr, t)
        out.append(min_cell(arr))
    return out


def predicted_min_home_steps(cell: tuple[int, int], side: int) -> int:
    """Exact number of steps for the minimum to reach (0, 0) under snake_3.

    The Lemma 12/13 walk is deterministic, so the travel time is a function
    of the start cell alone: simulate the predicted walk to the pair that
    lands on (0, 0).  The final hop is always (0, 1) -> (0, 0), executed by
    the *first* step of an odd pair (Lemma 12 case 3), so the arrival time
    is ``2 * pairs - 1`` (and 0 when already home).  Verified against live
    runs by the tests — making Theorem 12's ">= 2m - 3" an exact formula.
    """
    if cell == (0, 0):
        return 0
    cur = cell
    pairs = 0
    limit = 2 * side * side + 8
    while pairs < limit:
        cur = predicted_cell_after_pair(cur, side, pairs % 2)
        pairs += 1
        if cur == (0, 0):
            return 2 * pairs - 1
    raise DimensionError(f"walk from {cell} did not reach home within {limit} pairs")


def expected_min_home_steps(side: int) -> float:
    """Exact expectation of snake_3's min-home time over a uniform start.

    The start cell of the minimum is uniform over the mesh, and
    :func:`predicted_min_home_steps` is exact, so the average is a finite
    sum — the exact version of the Θ(N) behaviour E-MINHOME measures.
    """
    total = 0
    for r in range(side):
        for c in range(side):
            total += predicted_min_home_steps((r, c), side)
    return total / (side * side)


def steps_lower_bound_from_rank(m: int) -> int:
    """Theorem 12's ``2m - 3`` lower bound when the minimum starts on the
    cell that finally holds the ``m``-th smallest entry (1-based ``m``)."""
    if m < 1:
        raise DimensionError(f"m is a 1-based rank, got {m}")
    return max(2 * m - 3, 0)


def theorem12_tail_bound(delta: float, n_cells: int) -> float:
    """Theorem 12: ``Pr[steps < delta*N] <= delta/2 + delta/(2N)``."""
    if delta < 0:
        raise DimensionError(f"delta must be non-negative, got {delta}")
    return delta / 2 + delta / (2 * n_cells)


def steps_until_min_home(
    algorithm: str | Schedule,
    grid: np.ndarray,
    *,
    max_steps: int,
) -> int:
    """Number of steps until the minimum first occupies the top-left cell.

    Used to reproduce the paper's closing remark that the first four
    algorithms move the smallest element home in Θ(sqrt(N)) average steps,
    whereas ``snake_3`` needs Θ(N) with high probability.
    """
    schedule = _resolve(algorithm)
    arr = np.array(grid, copy=True)
    side = validate_grid(arr)
    if arr.ndim != 2:
        raise DimensionError("steps_until_min_home expects a single grid")
    if min_cell(arr) == (0, 0):
        return 0
    compiled = CompiledSchedule(schedule, side)
    for t in range(1, max_steps + 1):
        compiled.apply_step(arr, t)
        if min_cell(arr) == (0, 0):
            return t
    return -1
