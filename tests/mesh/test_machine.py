"""Tests for the processor-level mesh machine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.no_wrap import smallest_column_adversary
from repro.core.algorithms import get_algorithm
from repro.core.engine import default_step_cap, run_until_sorted
from repro.errors import DimensionError, MissingWireError, StepLimitExceeded
from repro.mesh.machine import MeshMachine, mesh_sort
from repro.mesh.topology import MeshTopology
from repro.randomness import random_permutation_grid


class TestConstruction:
    def test_rejects_batched_grid(self, rng):
        with pytest.raises(DimensionError):
            MeshMachine(get_algorithm("snake_1"), random_permutation_grid(4, batch=2, rng=rng))

    def test_topology_side_mismatch(self, rng):
        with pytest.raises(DimensionError):
            MeshMachine(
                get_algorithm("snake_1"),
                random_permutation_grid(4, rng=rng),
                topology=MeshTopology(6),
            )

    def test_wrap_schedule_needs_wrap_wires(self, rng):
        grid = random_permutation_grid(4, rng=rng)
        with pytest.raises(MissingWireError):
            MeshMachine(
                get_algorithm("row_major_row_first"),
                grid,
                topology=MeshTopology(4, wraparound=False),
            )

    def test_default_topology_matches_schedule(self, rng):
        grid = random_permutation_grid(4, rng=rng)
        machine = MeshMachine(get_algorithm("row_major_row_first"), grid)
        assert machine.topology.wraparound
        machine2 = MeshMachine(get_algorithm("snake_1"), grid)
        assert not machine2.topology.wraparound


class TestExecution:
    def test_sorts_and_matches_engine(self, rng):
        grid = random_permutation_grid(6, rng=rng)
        for name in ("snake_1", "row_major_col_first"):
            t, machine = mesh_sort(
                get_algorithm(name), grid, max_steps=default_step_cap(6)
            )
            vec = run_until_sorted(get_algorithm(name), grid)
            assert t == vec.steps_scalar()
            np.testing.assert_array_equal(machine.as_array(), vec.final)
            assert machine.is_sorted()

    def test_step_cap(self, rng):
        grid = random_permutation_grid(6, rng=rng)
        with pytest.raises(StepLimitExceeded):
            mesh_sort(get_algorithm("snake_3"), grid, max_steps=1)

    def test_already_sorted(self):
        grid = np.arange(16).reshape(4, 4)
        t, _ = mesh_sort(get_algorithm("row_major_row_first"), grid, max_steps=10)
        assert t == 0


class TestTrafficAccounting:
    def test_comparison_counts(self, rng):
        grid = random_permutation_grid(4, rng=rng)
        machine = MeshMachine(get_algorithm("snake_1"), grid)
        machine.step()  # step 1: odd rows 2 pairs each (2 rows) + even rows 1 pair each (2 rows)
        assert machine.stats.total_comparisons() == 2 * 2 + 1 * 2
        assert machine.stats.total_swaps() <= machine.stats.total_comparisons()

    def test_wrap_wires_carry_traffic(self):
        adversary = smallest_column_adversary(6)
        t, machine = mesh_sort(
            get_algorithm("row_major_row_first"), adversary, max_steps=default_step_cap(6)
        )
        wrap_traffic = sum(
            count
            for (a, b), count in machine.stats.comparisons.items()
            if abs(a[1] - b[1]) > 1
        )
        assert wrap_traffic > 0

    def test_busiest_links(self, rng):
        grid = random_permutation_grid(4, rng=rng)
        t, machine = mesh_sort(get_algorithm("snake_2"), grid, max_steps=1000)
        busiest = machine.stats.busiest_links(3)
        assert len(busiest) <= 3
        assert all(count >= 1 for _, count in busiest)
