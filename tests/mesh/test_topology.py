"""Tests for the mesh topology substrate."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import DimensionError
from repro.mesh.topology import MeshTopology


class TestLinks:
    @pytest.mark.parametrize("side", [2, 4, 7])
    def test_grid_link_count(self, side):
        topo = MeshTopology(side)
        assert topo.num_links() == 2 * side * (side - 1)

    @pytest.mark.parametrize("side", [2, 4, 7])
    def test_wrap_adds_side_minus_one_links(self, side):
        plain = MeshTopology(side)
        wrapped = MeshTopology(side, wraparound=True)
        assert wrapped.num_links() == plain.num_links() + side - 1
        assert wrapped.num_wrap_links() == side - 1

    def test_has_link_neighbors(self):
        topo = MeshTopology(4)
        assert topo.has_link((0, 0), (0, 1))
        assert topo.has_link((2, 1), (1, 1))
        assert not topo.has_link((0, 0), (1, 1))
        assert not topo.has_link((0, 3), (1, 0))

    def test_wrap_link_present_only_with_flag(self):
        assert MeshTopology(4, wraparound=True).has_link((0, 3), (1, 0))
        assert not MeshTopology(4).has_link((0, 3), (1, 0))

    def test_neighbors_interior(self):
        topo = MeshTopology(4)
        assert set(topo.neighbors((1, 1))) == {(0, 1), (2, 1), (1, 0), (1, 2)}

    def test_neighbors_corner_with_wrap(self):
        topo = MeshTopology(4, wraparound=True)
        assert (1, 0) in topo.neighbors((0, 3))
        assert (0, 3) in topo.neighbors((1, 0))

    def test_bad_cell(self):
        with pytest.raises(DimensionError):
            MeshTopology(4).neighbors((4, 0))

    def test_bad_side(self):
        with pytest.raises(DimensionError):
            MeshTopology(0)


class TestDiameter:
    @pytest.mark.parametrize("side", [2, 3, 5])
    def test_plain_diameter_is_paper_bound(self, side):
        assert MeshTopology(side).diameter() == 2 * (side - 1)

    def test_plain_diameter_matches_networkx(self):
        topo = MeshTopology(5)
        assert topo.diameter() == nx.diameter(topo.graph())

    def test_wrap_cannot_increase_diameter(self):
        side = 6
        assert MeshTopology(side, wraparound=True).diameter() <= 2 * (side - 1)

    def test_graph_nodes(self):
        graph = MeshTopology(3).graph()
        assert graph.number_of_nodes() == 9
        assert graph.number_of_edges() == MeshTopology(3).num_links()
