"""Durable job queue + the ``repro jobs`` / ``repro serve`` CLIs."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as repro_main
from repro.errors import ServiceError
from repro.experiments.sampling import sample
from repro.service import JobQueue, spec_from_request
from repro.service.cli import jobs_main, serve_main


def _request(**overrides) -> dict:
    base = {
        "algorithm": "snake_1",
        "side": 6,
        "trials": 40,
        "kind": "sort_steps",
        "seed": 99,
        "shard_size": 8,
    }
    base.update(overrides)
    return base


class TestSpecFromRequest:
    def test_round_trip_matches_spec(self):
        spec = spec_from_request(_request())
        assert spec.algorithm_name == "snake_1"
        assert spec.side == 6
        assert spec.shard_size == 8

    def test_shard_size_defaults_to_facade_value(self, tmp_path):
        """Queued jobs share fingerprints — and store entries — with
        sample(..., store=...) calls for the same campaign."""
        spec = spec_from_request(_request(shard_size=None))
        facade = sample(
            "snake_1", side=6, trials=40, seed=99, store=tmp_path
        )
        assert spec.fingerprint == facade.meta["store"]["fingerprint"]

    def test_unknown_field_rejected(self):
        with pytest.raises(ServiceError, match="unknown job request field"):
            spec_from_request(_request(statistic="mean"))

    def test_non_sort_steps_rejected(self):
        with pytest.raises(ServiceError, match="sort_steps"):
            spec_from_request(_request(kind="statistic"))

    def test_missing_field_named(self):
        request = _request()
        del request["trials"]
        with pytest.raises(ServiceError, match="missing field 'trials'"):
            spec_from_request(request)


class TestJobQueue:
    def test_submit_load_update_round_trip(self, tmp_path):
        queue = JobQueue(tmp_path)
        doc = queue.submit(_request())
        assert doc["id"] == "j000001"
        assert doc["state"] == "pending"
        assert queue.load("j000001")["fingerprint"] == doc["fingerprint"]
        queue.update("j000001", state="done", cache_hit=True)
        reloaded = queue.load("j000001")
        assert reloaded["state"] == "done"
        assert reloaded["cache_hit"] is True

    def test_ids_monotonic_and_listing_ordered(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(_request())
        queue.submit(_request(seed=1))
        assert [d["id"] for d in queue.list_jobs()] == ["j000001", "j000002"]
        queue.update("j000001", state="done")
        assert [d["id"] for d in queue.pending()] == ["j000002"]

    def test_bad_request_never_touches_disk(self, tmp_path):
        queue = JobQueue(tmp_path)
        with pytest.raises(ServiceError):
            queue.submit(_request(kind="statistic"))
        assert not queue.jobs_dir.exists()

    def test_unknown_job_id(self, tmp_path):
        queue = JobQueue(tmp_path)
        with pytest.raises(ServiceError, match="no job"):
            queue.load("j999999")


class TestCli:
    def _submit(self, store, **kw) -> int:
        argv = [
            "submit", kw.pop("algorithm", "snake_1"),
            "--side", str(kw.pop("side", 6)),
            "--trials", str(kw.pop("trials", 40)),
            "--seed", str(kw.pop("seed", 99)),
            "--shard-size", str(kw.pop("shard_size", 8)),
            "--store", str(store),
        ]
        assert not kw
        return jobs_main(argv)

    def test_smoke_sequence_with_cache_hit(self, tmp_path, capsys):
        """The CI smoke pattern: serve a campaign, then serve one identical
        and one distinct job — the identical one must be a cache hit."""
        store = tmp_path / "store"
        assert self._submit(store) == 0
        assert serve_main(["--store", str(store), "--once"]) == 0
        out = capsys.readouterr().out
        assert "j000001  done" in out
        assert "[cache hit]" not in out

        assert self._submit(store) == 0  # identical -> store hit
        assert self._submit(store, seed=7) == 0  # distinct -> fresh run
        assert serve_main(
            ["--store", str(store), "--once", "--service-workers", "2"]
        ) == 0
        out = capsys.readouterr().out
        lines = {line.split()[0]: line for line in out.splitlines() if line}
        assert "[cache hit]" in lines["j000002"]
        assert "[cache hit]" not in lines["j000003"]

    def test_coalescing_across_identical_pending_jobs(self, tmp_path, capsys):
        store = tmp_path / "store"
        self._submit(store)
        self._submit(store)
        metrics_path = tmp_path / "metrics.json"
        assert serve_main([
            "--store", str(store), "--once",
            "--service-workers", "2",
            "--metrics-out", str(metrics_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "[coalesced]" in out
        metrics = json.loads(metrics_path.read_text())
        assert metrics["repro_campaigns_total"]["value"] == 1
        assert metrics["repro_service_jobs_coalesced_total"]["value"] == 1
        assert metrics["repro_service_store_puts_total"]["value"] == 1

    def test_result_prints_summary_json(self, tmp_path, capsys):
        store = tmp_path / "store"
        self._submit(store)
        serve_main(["--store", str(store), "--once"])
        capsys.readouterr()
        assert jobs_main(["result", "j000001", "--store", str(store)]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["count"] == 40
        assert summary["store"]["hit"] is False

    def test_result_of_pending_job_fails(self, tmp_path, capsys):
        store = tmp_path / "store"
        self._submit(store)
        capsys.readouterr()
        assert jobs_main(["result", "j000001", "--store", str(store)]) == 1
        assert "is pending, not done" in capsys.readouterr().err

    def test_status_and_list(self, tmp_path, capsys):
        store = tmp_path / "store"
        self._submit(store)
        self._submit(store, seed=3)
        capsys.readouterr()
        assert jobs_main(["status", "j000002", "--store", str(store)]) == 0
        assert "j000002  pending" in capsys.readouterr().out
        assert jobs_main(["list", "--store", str(store)]) == 0
        assert len(capsys.readouterr().out.splitlines()) == 2

    def test_serve_failed_job_exits_one(self, tmp_path, capsys):
        store = tmp_path / "store"
        jobs_main([
            "submit", "snake_1", "--side", "6", "--trials", "8",
            "--max-steps", "1", "--store", str(store),
        ])
        assert serve_main(["--store", str(store), "--once"]) == 1
        doc = JobQueue(store).load("j000001")
        assert doc["state"] == "failed"
        assert "StepLimitExceeded" in doc["error"]

    def test_serve_empty_queue(self, tmp_path, capsys):
        assert serve_main(["--store", str(tmp_path), "--once"]) == 0
        assert "no pending jobs" in capsys.readouterr().out

    def test_serve_max_jobs(self, tmp_path, capsys):
        store = tmp_path / "store"
        self._submit(store)
        self._submit(store, seed=3)
        assert serve_main(
            ["--store", str(store), "--once", "--max-jobs", "1"]
        ) == 0
        queue = JobQueue(store)
        assert queue.load("j000001")["state"] == "done"
        assert queue.load("j000002")["state"] == "pending"

    def test_front_door_dispatch(self, tmp_path, capsys):
        """``repro jobs``/``repro serve`` ride the console front door."""
        store = tmp_path / "store"
        assert repro_main([
            "jobs", "submit", "snake_1", "--side", "6", "--trials", "40",
            "--seed", "99", "--shard-size", "8", "--store", str(store),
        ]) == 0
        assert repro_main(["serve", "--store", str(store), "--once"]) == 0
        out = capsys.readouterr().out
        assert "j000001  done" in out
