"""Lease protocol, concurrent-writer safety, and cross-process single-flight."""

from __future__ import annotations

import json
import multiprocessing
import os
import threading

import pytest

from repro.campaign.spec import CampaignSpec
from repro.errors import LeaseError, ServiceError
from repro.experiments.sampling import sample
from repro.obs.metrics import MetricsObserver, MetricsRegistry
from repro.service import CampaignService, JobQueue
from repro.service.jobs import _Flight
from repro.store import LOCK_FORMAT, LocalResultStore


def _request(**overrides) -> dict:
    base = {
        "algorithm": "snake_1",
        "side": 6,
        "trials": 40,
        "kind": "sort_steps",
        "seed": 99,
        "shard_size": 8,
    }
    base.update(overrides)
    return base


def _dead_pid() -> int:
    pid = 2 ** 22 + os.getpid() % 1000
    while True:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return pid
        except OSError:
            pass
        pid += 1


def _counter(registry: MetricsRegistry, name: str) -> float:
    return registry.as_dict()[name]["value"]


# ---------------------------------------------------------------------------
# Satellite: id-allocation race (two concurrent submitters).
# ---------------------------------------------------------------------------


def _submit_batch(root: str, count: int, seed0: int) -> list[str]:
    queue = JobQueue(root)
    return [
        queue.submit(_request(seed=seed0 + i))["id"] for i in range(count)
    ]


class TestConcurrentSubmission:
    def test_two_processes_never_clobber_each_other(self, tmp_path):
        """Regression: two `repro jobs submit` processes computing the same
        highest id used to silently clobber one document via os.replace."""
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(2) as pool:
            results = pool.starmap(
                _submit_batch,
                [(str(tmp_path), 8, 100), (str(tmp_path), 8, 200)],
            )
        all_ids = [job_id for batch in results for job_id in batch]
        assert len(set(all_ids)) == 16  # no id was handed out twice
        queue = JobQueue(tmp_path)
        docs = queue.list_jobs()
        assert len(docs) == 16  # and no document was overwritten
        assert sorted(d["id"] for d in docs) == sorted(all_ids)
        seeds = sorted(d["request"]["seed"] for d in docs)
        assert seeds == sorted(list(range(100, 108)) + list(range(200, 208)))

    def test_threaded_submitters_allocate_distinct_ids(self, tmp_path):
        queue_per_thread = [JobQueue(tmp_path) for _ in range(4)]
        ids: list[str] = []
        lock = threading.Lock()

        def submit(queue, seed0):
            for i in range(5):
                doc = queue.submit(_request(seed=seed0 + i))
                with lock:
                    ids.append(doc["id"])

        threads = [
            threading.Thread(target=submit, args=(q, 100 * n))
            for n, q in enumerate(queue_per_thread)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(ids)) == 20

    def test_submission_leaves_no_tmp_litter(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(_request())
        leftovers = [
            p for p in queue.jobs_dir.iterdir() if not p.name.endswith(".json")
        ]
        assert leftovers == []


# ---------------------------------------------------------------------------
# Satellite: update atomicity under concurrent writers.
# ---------------------------------------------------------------------------


class TestUpdateAtomicity:
    def test_concurrent_writers_never_lose_fields(self, tmp_path):
        queue = JobQueue(tmp_path)
        doc = queue.submit(_request())
        job_id = doc["id"]
        rounds = 30

        def writer(field_name):
            q = JobQueue(tmp_path)
            for i in range(rounds):
                q.update(job_id, **{field_name: i})

        threads = [
            threading.Thread(target=writer, args=(name,))
            for name in ("alpha", "beta")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        final = queue.load(job_id)
        # Without the per-document lock one writer's read-modify-write
        # routinely erased the other's field; with it, both survive.
        assert final["alpha"] == rounds - 1
        assert final["beta"] == rounds - 1
        assert final["state"] == "pending"  # untouched fields intact


# ---------------------------------------------------------------------------
# Lease lifecycle.
# ---------------------------------------------------------------------------


class TestLeases:
    def test_claim_is_exclusive_across_queue_instances(self, tmp_path):
        a, b = JobQueue(tmp_path), JobQueue(tmp_path)
        doc = a.submit(_request())
        lease = a.claim(doc["id"])
        assert lease is not None and lease.active
        assert b.claim(doc["id"]) is None
        lease.release()
        retaken = b.claim(doc["id"])
        assert retaken is not None
        retaken.release()

    def test_double_claim_by_same_queue_raises(self, tmp_path):
        queue = JobQueue(tmp_path)
        doc = queue.submit(_request())
        lease = queue.claim(doc["id"])
        with pytest.raises(LeaseError, match="already held"):
            queue.claim(doc["id"])
        lease.release()

    def test_heartbeat_advances_lease_clock(self, tmp_path):
        queue = JobQueue(tmp_path)
        doc = queue.submit(_request())
        lease = queue.claim(doc["id"])
        assert lease.heartbeat() == 1
        assert lease.heartbeat() == 2
        body = json.loads(queue.lease_path(doc["id"]).read_text())
        assert body["heartbeat"] == 2
        lease.release()

    def test_dead_owner_lease_reclaimed(self, tmp_path):
        import socket

        queue = JobQueue(tmp_path)
        doc = queue.submit(_request())
        queue.leases_dir.mkdir(parents=True, exist_ok=True)
        queue.lease_path(doc["id"]).write_text(
            json.dumps({
                "format": LOCK_FORMAT,
                "owner": "crashed-serve",
                "host": socket.gethostname(),
                "pid": _dead_pid(),
                "heartbeat": 3,
            }),
            encoding="utf-8",
        )
        lease = queue.claim(doc["id"])
        assert lease is not None
        assert lease.reclaimed
        lease.release()

    def test_claim_pending_partitions_between_queues(self, tmp_path):
        a, b = JobQueue(tmp_path), JobQueue(tmp_path)
        for i in range(6):
            a.submit(_request(seed=i))
        got_a = a.claim_pending(limit=3)
        got_b = b.claim_pending()
        ids_a = {doc["id"] for doc, _ in got_a}
        ids_b = {doc["id"] for doc, _ in got_b}
        assert len(ids_a) == 3 and len(ids_b) == 3
        assert not (ids_a & ids_b)  # disjoint partition
        assert ids_a | ids_b == {f"j{n:06d}" for n in range(1, 7)}
        for _, lease in got_a + got_b:
            lease.release()

    def test_claim_pending_rechecks_state_under_lease(self, tmp_path):
        """A job completed between listing and claiming is not re-run."""
        queue = JobQueue(tmp_path)
        doc = queue.submit(_request())
        other = JobQueue(tmp_path)

        original_claim = queue.claim

        def racing_claim(job_id, **kwargs):
            # Another serve finishes the job just before our claim lands.
            other.update(job_id, state="done")
            return original_claim(job_id, **kwargs)

        queue.claim = racing_claim  # type: ignore[method-assign]
        assert queue.claim_pending() == []
        # The released lease is claimable again.
        assert not queue.lease_path(doc["id"]).exists()


# ---------------------------------------------------------------------------
# Satellite: corrupt job documents are quarantined, not fatal.
# ---------------------------------------------------------------------------


class TestCorruptDocQuarantine:
    def test_listing_survives_a_torn_document(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(_request(seed=1))
        queue.submit(_request(seed=2))
        (queue.jobs_dir / "j000500.json").write_text("{torn", encoding="utf-8")
        docs = queue.list_jobs()
        states = {d["id"]: d["state"] for d in docs}
        assert states["j000001"] == "pending"
        assert states["j000002"] == "pending"
        assert states["j000500"] == "quarantined"
        assert "quarantined" in docs[-1]["error"]
        # The torn file moved aside; a second listing no longer sees it.
        assert not (queue.jobs_dir / "j000500.json").exists()
        assert (queue.quarantine_dir / "j000500-1.json").exists()
        assert {d["id"] for d in queue.list_jobs()} == {"j000001", "j000002"}

    def test_pending_skips_quarantined_documents(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(_request())
        (queue.jobs_dir / "j000099.json").write_text("", encoding="utf-8")
        assert [d["id"] for d in queue.pending()] == ["j000001"]

    def test_wrong_format_document_quarantined(self, tmp_path):
        queue = JobQueue(tmp_path)
        (queue.jobs_dir).mkdir(parents=True)
        (queue.jobs_dir / "j000001.json").write_text(
            json.dumps({"format": "something-else"}), encoding="utf-8"
        )
        docs = queue.list_jobs()
        assert [d["state"] for d in docs] == ["quarantined"]

    def test_direct_load_stays_strict(self, tmp_path):
        queue = JobQueue(tmp_path)
        (queue.jobs_dir).mkdir(parents=True)
        (queue.jobs_dir / "j000001.json").write_text("{torn", encoding="utf-8")
        with pytest.raises(ServiceError, match="unreadable"):
            queue.load("j000001")


# ---------------------------------------------------------------------------
# Satellite: coalesce-after-completion window.
# ---------------------------------------------------------------------------


class TestCoalesceAfterCompletion:
    def test_late_attacher_replays_terminal_transition(self, tmp_path):
        """A submission that catches a flight between its terminal
        transition and its removal from the live table must observe the
        terminal state, not stay pending forever."""
        spec = CampaignSpec(
            "snake_1", side=6, trials=24, seed=5, shard_size=8
        )
        seeded = sample(
            "snake_1", side=6, trials=24, seed=5, store=tmp_path / "seed-store"
        )
        registry = MetricsRegistry()
        with CampaignService(observer=MetricsObserver(registry)) as service:
            # Reconstruct the race deterministically: a flight that has
            # transitioned terminally but is still in the live table.
            flight = _Flight(fingerprint=spec.fingerprint)
            flight.result = seeded
            flight.final_state = "done"
            flight.cache_hit = True
            flight.done.set()
            with service._lock:
                service._flights[spec.fingerprint] = flight
            handle = service.submit(spec)
            status = service.status(handle)
            assert status.state == "done"
            assert status.coalesced
            assert status.cache_hit
            result = service.result(handle, timeout=1.0)
            assert result is seeded
            with service._lock:
                service._flights.pop(spec.fingerprint, None)
        # The terminal replay reached the metrics stream too.
        assert _counter(registry, "repro_service_jobs_completed_total") == 1

    def test_failed_flight_replays_failure_to_late_attacher(self, tmp_path):
        spec = CampaignSpec("snake_1", side=6, trials=24, seed=6, shard_size=8)
        with CampaignService() as service:
            flight = _Flight(fingerprint=spec.fingerprint)
            flight.error = "CampaignError([1])"
            flight.error_type = "CampaignError"
            flight.final_state = "failed"
            flight.done.set()
            with service._lock:
                service._flights[spec.fingerprint] = flight
            handle = service.submit(spec)
            status = service.status(handle)
            assert status.state == "failed"
            assert status.error_type == "CampaignError"
            with pytest.raises(ServiceError, match="CampaignError"):
                service.result(handle, timeout=1.0)
            with service._lock:
                service._flights.pop(spec.fingerprint, None)


# ---------------------------------------------------------------------------
# Tentpole: cross-process single-flight on the store fingerprint.
# ---------------------------------------------------------------------------


class TestCrossProcessSingleFlight:
    def test_loser_waits_then_serves_the_store_hit(self, tmp_path):
        """While another process holds the fingerprint lock, a service
        flight blocks; once released it must serve the winner's stored
        result with ZERO kernel work (proven from its metrics)."""
        store_dir = tmp_path / "shared-store"
        spec = CampaignSpec("snake_1", side=6, trials=40, seed=3, shard_size=8)

        # "Winner in another process": hold the fingerprint lock while
        # computing + storing the result out-of-band.
        winner_lock = LocalResultStore(store_dir).fingerprint_lock(
            spec.fingerprint
        )
        assert winner_lock.try_acquire()

        registry = MetricsRegistry()
        observer = MetricsObserver(registry)
        with CampaignService(store=store_dir, observer=observer) as service:
            handle = service.submit(spec)
            # The flight is blocked on the lock: give it a moment, then
            # confirm it has not executed anything.
            with pytest.raises(ServiceError):
                service.result(handle, timeout=0.3)
            assert _counter(registry, "repro_runs_total") == 0
            assert _counter(registry, "repro_serve_lock_waits_total") == 1

            winner_result = sample(
                "snake_1", side=6, trials=40, seed=3, shard_size=8,
                store=store_dir,
            )
            winner_lock.release()

            result = service.result(handle, timeout=30.0)
            status = service.status(handle)

        assert status.state == "done"
        assert status.cache_hit
        assert result.values_digest == winner_result.values_digest
        # Zero kernel work in the losing service: no runs, no steps, no
        # campaign — just one store hit.
        assert _counter(registry, "repro_runs_total") == 0
        assert _counter(registry, "repro_steps_total") == 0
        assert _counter(registry, "repro_campaigns_total") == 0
        assert _counter(registry, "repro_service_store_hits_total") == 1
        assert _counter(registry, "repro_service_cache_hits_total") == 1

    def test_uncontended_lock_leaves_no_residue(self, tmp_path):
        store_dir = tmp_path / "store"
        spec = CampaignSpec("snake_1", side=6, trials=24, seed=9, shard_size=8)
        with CampaignService(store=store_dir) as service:
            service.result(service.submit(spec), timeout=60.0)
        lock_path = LocalResultStore(store_dir).lock_path(spec.fingerprint)
        assert not lock_path.exists()

    def test_memory_store_skips_fingerprint_locking(self):
        with CampaignService(store="memory:lease-test") as service:
            assert service._fingerprint_lock("abcd") is None
