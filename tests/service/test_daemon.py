"""`repro serve` daemon mode: polling, retries, reclaim, drain, multi-serve."""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.campaign import runner as campaign_runner
from repro.errors import CampaignError
from repro.service import JobQueue
from repro.service.cli import serve_main
from repro.store import LOCK_FORMAT

SRC = Path(__file__).resolve().parents[2] / "src"


def _submit(store, *, seed=0, side=6, trials=40, shard_size=8) -> str:
    queue = JobQueue(store)
    doc = queue.submit({
        "algorithm": "snake_1",
        "side": side,
        "trials": trials,
        "kind": "sort_steps",
        "seed": seed,
        "shard_size": shard_size,
    })
    return doc["id"]


def _metric(path, name) -> float:
    return json.loads(Path(path).read_text())[name]["value"]


def _dead_pid() -> int:
    pid = 2 ** 22 + os.getpid() % 1000
    while True:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return pid
        except OSError:
            pass
        pid += 1


def _no_leases(store) -> bool:
    leases = Path(store) / "jobs" / "leases"
    return not leases.exists() or not any(leases.glob("*.lease"))


class TestDaemonLoop:
    def test_daemon_drains_jobs_submitted_while_running(self, tmp_path, capsys):
        store = tmp_path / "store"
        metrics = tmp_path / "metrics.json"
        _submit(store, seed=1)
        # A second job lands while the daemon is already polling.
        late = threading.Timer(0.2, _submit, args=(store,), kwargs={"seed": 2})
        late.start()
        rc = serve_main([
            "--store", str(store),
            "--poll-interval", "0.05",
            "--idle-exit", "1.0",
            "--heartbeat-interval", "0.2",
            "--metrics-out", str(metrics),
        ])
        late.join()
        assert rc == 0
        docs = JobQueue(store).list_jobs()
        assert [d["state"] for d in docs] == ["done", "done"]
        assert _no_leases(store)
        assert _metric(metrics, "repro_serve_leases_total") == 2
        assert _metric(metrics, "repro_campaigns_total") == 2
        out = capsys.readouterr().out
        assert "j000001  done" in out and "j000002  done" in out

    def test_daemon_respects_max_jobs_budget(self, tmp_path):
        store = tmp_path / "store"
        for seed in (1, 2, 3):
            _submit(store, seed=seed)
        rc = serve_main([
            "--store", str(store),
            "--poll-interval", "0.05",
            "--idle-exit", "5.0",
            "--max-jobs", "2",
        ])
        assert rc == 0
        states = sorted(d["state"] for d in JobQueue(store).list_jobs())
        assert states == ["done", "done", "pending"]
        assert _no_leases(store)  # the unserved job is claimable by others

    def test_once_reports_jobs_leased_elsewhere(self, tmp_path, capsys):
        store = tmp_path / "store"
        job_id = _submit(store)
        queue = JobQueue(store)
        lease = queue.claim(job_id)  # "another serve process" holds it
        assert lease is not None
        rc = serve_main(["--store", str(store), "--once"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "no claimable pending jobs (1 leased by other serve" in out
        lease.release()


class TestRetryAndReclaim:
    def test_transient_campaign_error_is_retried(self, tmp_path, monkeypatch, capsys):
        store = tmp_path / "store"
        job_id = _submit(store)
        calls = {"n": 0}
        real = campaign_runner.run_campaign

        def flaky(spec, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise CampaignError([0], "worker pool lost (simulated)")
            return real(spec, **kwargs)

        monkeypatch.setattr("repro.service.jobs.run_campaign", flaky)
        rc = serve_main([
            "--store", str(store), "--once",
            "--job-retries", "1",
            "--retry-backoff", "0.01",
        ])
        assert rc == 0
        doc = JobQueue(store).load(job_id)
        assert doc["state"] == "done"
        assert doc["attempts"] == 2
        assert calls["n"] == 2
        assert _no_leases(store)
        assert "done" in capsys.readouterr().out

    def test_retry_budget_exhausted_fails_the_job(self, tmp_path, monkeypatch):
        store = tmp_path / "store"
        job_id = _submit(store)

        def always_fails(spec, **kwargs):
            raise CampaignError([0], "permanently lost")

        monkeypatch.setattr("repro.service.jobs.run_campaign", always_fails)
        rc = serve_main([
            "--store", str(store), "--once",
            "--job-retries", "1",
            "--retry-backoff", "0.01",
        ])
        assert rc == 1
        doc = JobQueue(store).load(job_id)
        assert doc["state"] == "failed"
        assert "CampaignError" in doc["error"]
        assert _no_leases(store)  # failure still releases the lease

    def test_dead_owner_lease_is_reclaimed_and_served(self, tmp_path):
        store = tmp_path / "store"
        metrics = tmp_path / "metrics.json"
        job_id = _submit(store)
        queue = JobQueue(store)
        queue.leases_dir.mkdir(parents=True, exist_ok=True)
        queue.lease_path(job_id).write_text(
            json.dumps({
                "format": LOCK_FORMAT,
                "owner": "crashed-serve",
                "host": socket.gethostname(),
                "pid": _dead_pid(),
                "heartbeat": 7,
            }),
            encoding="utf-8",
        )
        rc = serve_main([
            "--store", str(store), "--once",
            "--metrics-out", str(metrics),
        ])
        assert rc == 0
        assert JobQueue(store).load(job_id)["state"] == "done"
        assert _metric(metrics, "repro_serve_reclaimed_total") == 1
        assert _metric(metrics, "repro_serve_leases_total") == 1


_SERVE_SCRIPT = """\
import sys
from repro.service.cli import serve_main
sys.exit(serve_main(sys.argv[1:]))
"""


def _spawn_serve(store, *extra) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-c", _SERVE_SCRIPT, "--store", str(store), *extra],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


class TestSignalsAndMultiServe:
    def test_sigterm_drains_gracefully(self, tmp_path):
        store = tmp_path / "store"
        # Big enough (~1.5s) that SIGTERM lands while the job is in flight.
        job_id = _submit(store, side=24, trials=1024, shard_size=128)
        proc = _spawn_serve(
            store, "--poll-interval", "0.05", "--heartbeat-interval", "0.1"
        )
        try:
            queue = JobQueue(store)
            deadline = time.time() + 30.0
            while time.time() < deadline:
                if queue.load(job_id)["state"] in ("running", "done"):
                    break
                time.sleep(0.02)
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=30.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        # Graceful drain: the in-flight job finished, its lease was
        # released, and the daemon exited cleanly.
        assert proc.returncode == 0, (out, err)
        doc = JobQueue(store).load(job_id)
        assert doc["state"] == "done", (doc, out, err)
        assert _no_leases(store)

    def test_two_daemons_partition_and_execute_each_fingerprint_once(
        self, tmp_path
    ):
        store = tmp_path / "store"
        # Three distinct fingerprints, each submitted twice.
        for seed in (1, 1, 2, 2, 3, 3):
            _submit(store, seed=seed)
        metrics = [tmp_path / "m1.json", tmp_path / "m2.json"]
        procs = [
            _spawn_serve(
                store,
                "--poll-interval", "0.05",
                "--idle-exit", "1.0",
                "--heartbeat-interval", "0.2",
                "--metrics-out", str(path),
            )
            for path in metrics
        ]
        outputs = [p.communicate(timeout=120.0) for p in procs]
        assert [p.returncode for p in procs] == [0, 0], outputs

        docs = JobQueue(store).list_jobs()
        assert len(docs) == 6
        assert all(d["state"] == "done" for d in docs), outputs
        assert _no_leases(store)

        # Exactly-once execution: across BOTH daemons, each distinct
        # fingerprint ran exactly one fresh campaign; every duplicate was
        # a coalesce, a store hit, or a fingerprint-lock wait.
        campaigns = sum(_metric(m, "repro_campaigns_total") for m in metrics)
        assert campaigns == 3
        leases = sum(_metric(m, "repro_serve_leases_total") for m in metrics)
        assert leases == 6

        # Bit-identical merged results: duplicates agree on the digest.
        by_fp: dict[str, set] = {}
        for doc in docs:
            by_fp.setdefault(doc["fingerprint"], set()).add(
                doc["result"]["values_digest"]
            )
        assert len(by_fp) == 3
        assert all(len(digests) == 1 for digests in by_fp.values())

        # The shared store holds one entry per distinct fingerprint.
        index = json.loads((store / "index.json").read_text())
        assert len(index["entries"]) == 3
