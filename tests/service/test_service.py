"""Campaign service: lifecycle, cache-hit short-circuit, single-flight."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.campaign import CampaignSpec, ExecutionOptions, run_campaign
from repro.errors import ServiceError
from repro.obs import (
    MetricsObserver,
    MetricsRegistry,
    RecordingObserver,
    SpanProfiler,
    use_observer,
    use_profiler,
)
from repro.service import JOB_STATES, CampaignService, JobHandle
from repro.store import LocalResultStore

SPEC = CampaignSpec("snake_1", side=6, trials=40, seed=99, shard_size=8)
OTHER = CampaignSpec("snake_2", side=6, trials=40, seed=99, shard_size=8)


def _counter(registry: MetricsRegistry, name: str) -> float:
    return registry.as_dict()[name]["value"]


class TestLifecycle:
    def test_submit_status_result(self, tmp_path):
        with CampaignService(store=tmp_path) as service:
            handle = service.submit(SPEC)
            assert isinstance(handle, JobHandle)
            assert handle.fingerprint == SPEC.fingerprint
            result = service.result(handle, timeout=60)
            status = service.status(handle)
        assert status.state == "done"
        assert status.terminal
        assert not status.cache_hit
        np.testing.assert_array_equal(
            result.values, run_campaign(SPEC, workers=1).values
        )

    def test_states_vocabulary(self):
        assert JOB_STATES == ("pending", "running", "done", "failed")

    def test_jobs_listing(self, tmp_path):
        with CampaignService(store=tmp_path) as service:
            h1 = service.submit(SPEC)
            h2 = service.submit(OTHER)
            service.result(h1, timeout=60)
            service.result(h2, timeout=60)
            listed = service.jobs()
        assert [s.job_id for s in listed] == [h1.job_id, h2.job_id]
        assert all(s.state == "done" for s in listed)

    def test_unknown_handle_rejected(self, tmp_path):
        with CampaignService(store=tmp_path) as service:
            bogus = JobHandle(job_id="job-999999", fingerprint="ff")
            with pytest.raises(ServiceError, match="unknown job"):
                service.status(bogus)

    def test_failure_surfaces_as_service_error(self, tmp_path):
        bad = CampaignSpec(
            "snake_1", side=6, trials=40, seed=99, shard_size=8,
            max_steps=1,  # 40 trials cannot all sort within one step
        )
        with CampaignService(store=tmp_path) as service:
            handle = service.submit(bad)
            with pytest.raises(ServiceError, match="failed") as excinfo:
                service.result(handle, timeout=60)
            status = service.status(handle)
        assert status.state == "failed"
        assert status.error
        assert excinfo.value.job_id == handle.job_id
        assert excinfo.value.fingerprint == bad.fingerprint

    def test_closed_service_refuses_submissions(self, tmp_path):
        service = CampaignService(store=tmp_path)
        service.close()
        with pytest.raises(ServiceError, match="closed"):
            service.submit(SPEC)

    def test_result_timeout(self, tmp_path):
        slow = CampaignSpec("snake_1", side=8, trials=200, seed=1, shard_size=8)
        with CampaignService(store=tmp_path) as service:
            handle = service.submit(slow)
            with pytest.raises(ServiceError, match="after"):
                service.result(handle, timeout=0.0)
            service.result(handle, timeout=60)  # then let it finish


class TestCacheHit:
    def test_repeat_submission_is_store_hit_and_bit_identical(self, tmp_path):
        with CampaignService(store=tmp_path) as service:
            first = service.result(service.submit(SPEC), timeout=60)
            second_handle = service.submit(SPEC)
            second = service.result(second_handle, timeout=60)
            status = service.status(second_handle)
        assert status.cache_hit
        assert second.meta["store"]["hit"] is True
        np.testing.assert_array_equal(second.values, first.values)
        assert second.values_digest == first.values_digest

    def test_cache_hit_runs_zero_kernel_steps(self, tmp_path):
        """The acceptance criterion: a warm repeat performs no kernel work —
        proven by the metrics stream (no runs, no steps) and the span tree
        (a store lookup, no shard execution)."""
        with CampaignService(store=tmp_path) as service:
            service.result(service.submit(SPEC), timeout=60)

        registry = MetricsRegistry()
        profiler = SpanProfiler()
        with use_observer(MetricsObserver(registry)), use_profiler(profiler):
            with CampaignService(store=tmp_path) as service:
                warm = service.result(service.submit(SPEC), timeout=60)
        assert warm.meta["store"]["hit"] is True
        # Metrics: the hit is visible, and zero campaign/kernel activity.
        assert _counter(registry, "repro_service_store_hits_total") == 1
        assert _counter(registry, "repro_service_cache_hits_total") == 1
        assert _counter(registry, "repro_runs_total") == 0
        assert _counter(registry, "repro_steps_total") == 0
        assert _counter(registry, "repro_campaigns_total") == 0
        # Span tree: a store lookup span exists; no campaign/shard spans.
        names = _span_names(profiler.tree())
        assert "store_lookup" in names
        assert not any("campaign" in name or "shard" in name for name in names)

    def test_cold_vs_warm_identical_across_worker_counts(self, tmp_path):
        """Store hits serve the fingerprint's values for ANY worker count —
        the fingerprint excludes execution knobs by design."""
        cold = run_campaign(SPEC, workers=1, store=tmp_path)
        assert cold.meta["store"] == {
            "hit": False,
            "stored": True,
            "store": f"local:{tmp_path}",
            "fingerprint": SPEC.fingerprint,
        }
        warm = run_campaign(SPEC, workers=3, store=tmp_path)
        assert warm.meta["store"]["hit"] is True
        np.testing.assert_array_equal(warm.values, cold.values)
        assert warm.values_digest == cold.values_digest

    def test_store_disabled_service_always_runs(self):
        registry = MetricsRegistry()
        with use_observer(MetricsObserver(registry)):
            with CampaignService() as service:
                service.result(service.submit(SPEC), timeout=60)
                handle = service.submit(SPEC)
                service.result(handle, timeout=60)
                assert not service.status(handle).cache_hit
        assert _counter(registry, "repro_campaigns_total") == 2


def _span_names(nodes: list[dict]) -> list[str]:
    names: list[str] = []
    for node in nodes:
        names.append(node["name"])
        names.extend(_span_names(node.get("children", [])))
    return names


class TestSingleFlight:
    def test_concurrent_identical_submissions_coalesce(self, tmp_path):
        """Exactly one campaign executes no matter how many identical specs
        arrive while it is in flight."""
        registry = MetricsRegistry()
        with use_observer(MetricsObserver(registry)):
            with CampaignService(store=tmp_path, max_workers=4) as service:
                handles = [service.submit(SPEC) for _ in range(5)]
                results = [service.result(h, timeout=60) for h in handles]
                statuses = [service.status(h) for h in handles]
        digests = {r.values_digest for r in results}
        assert len(digests) == 1
        assert [s.coalesced for s in statuses] == [False, True, True, True, True]
        # One campaign ran; one store miss+put; no hits needed.
        assert _counter(registry, "repro_campaigns_total") == 1
        assert _counter(registry, "repro_service_jobs_total") == 5
        assert _counter(registry, "repro_service_jobs_coalesced_total") == 4
        assert _counter(registry, "repro_service_store_puts_total") == 1

    def test_concurrent_submitters_from_threads(self, tmp_path):
        """The coalescing lock holds up under genuinely concurrent callers."""
        registry = MetricsRegistry()
        observer = MetricsObserver(registry)
        barrier = threading.Barrier(4)
        handles: list[JobHandle] = []
        lock = threading.Lock()

        with CampaignService(
            store=tmp_path, observer=observer, max_workers=4
        ) as service:

            def submitter() -> None:
                barrier.wait()
                handle = service.submit(SPEC)
                with lock:
                    handles.append(handle)

            threads = [threading.Thread(target=submitter) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            results = [service.result(h, timeout=60) for h in handles]

        assert len({r.values_digest for r in results}) == 1
        executed = _counter(registry, "repro_campaigns_total")
        hits = _counter(registry, "repro_service_store_hits_total")
        # Every submission raced into the single-flight window or hit the
        # store afterwards; either way the campaign itself ran exactly once.
        assert executed == 1
        assert executed + hits + _counter(
            registry, "repro_service_jobs_coalesced_total"
        ) == 4

    def test_distinct_specs_do_not_coalesce(self, tmp_path):
        with CampaignService(store=tmp_path, max_workers=2) as service:
            h1 = service.submit(SPEC)
            h2 = service.submit(OTHER)
            service.result(h1, timeout=60)
            service.result(h2, timeout=60)
            assert not service.status(h2).coalesced


class TestObservability:
    def test_job_updates_reported_in_lifecycle_order(self, tmp_path):
        rec = RecordingObserver()
        with use_observer(rec):
            with CampaignService(store=tmp_path) as service:
                handle = service.submit(SPEC)
                service.result(handle, timeout=60)
        states = [u.state for u in rec.job_updates if u.job_id == handle.job_id]
        assert states == ["pending", "running", "done"]
        done = rec.job_updates[-1]
        assert done.fingerprint == SPEC.fingerprint
        assert done.error == ""

    def test_ambient_observer_crosses_into_flight_threads(self, tmp_path):
        """ContextVars do not propagate into pool threads; the service must
        reinstall the submitter's observer so campaign events still flow."""
        rec = RecordingObserver()
        with use_observer(rec):
            with CampaignService(store=tmp_path) as service:
                service.result(service.submit(SPEC), timeout=60)
        assert len(rec.campaign_starts) == 1
        assert [e.op for e in rec.store_events] == ["miss", "put"]

    def test_execution_template_applies_to_flights(self, tmp_path):
        service = CampaignService(
            store=tmp_path, execution=ExecutionOptions(workers=2)
        )
        with service:
            result = service.result(service.submit(SPEC), timeout=120)
        assert result.meta["workers"] == 2
        np.testing.assert_array_equal(
            result.values, run_campaign(SPEC, workers=1).values
        )

    def test_store_instance_shared_across_flights(self, tmp_path):
        store = LocalResultStore(tmp_path)
        service = CampaignService(store=store)
        assert service.execution.store is store
        service.close()

    def test_bad_max_workers(self, tmp_path):
        with pytest.raises(ServiceError, match="max_workers"):
            CampaignService(store=tmp_path, max_workers=0)
