"""Tests for the 1-D odd-even transposition sort substrate.

``sort_linear`` / ``odd_even_sort_steps`` are deprecated shims over the
``odd_even`` schedule family, but their historical semantics are exactly
what the shim contract preserves — so this module keeps testing them
(warnings expected and ignored; the warning itself is pinned in
``tests/schedules/test_shims.py``).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DimensionError
from repro.linear.odd_even import (
    odd_even_sort_steps,
    sort_linear,
    transposition_step,
    worst_case_input,
)

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


class TestTranspositionStep:
    def test_odd_step_pairs(self):
        arr = np.array([2, 1, 4, 3, 6, 5])
        transposition_step(arr, 1)
        np.testing.assert_array_equal(arr, [1, 2, 3, 4, 5, 6])

    def test_even_step_pairs(self):
        arr = np.array([1, 3, 2, 5, 4, 6])
        transposition_step(arr, 2)
        np.testing.assert_array_equal(arr, [1, 2, 3, 4, 5, 6])

    def test_reverse_direction(self):
        arr = np.array([1, 2, 3, 4])
        transposition_step(arr, 1, direction=-1)
        np.testing.assert_array_equal(arr, [2, 1, 4, 3])

    def test_batched(self):
        arr = np.array([[2, 1], [1, 2]])
        transposition_step(arr, 1)
        np.testing.assert_array_equal(arr, [[1, 2], [1, 2]])

    def test_zero_time_rejected(self):
        with pytest.raises(DimensionError):
            transposition_step(np.array([1, 2]), 0)

    def test_bad_direction(self):
        with pytest.raises(DimensionError):
            transposition_step(np.array([1, 2]), 1, direction=2)


class TestSortLinear:
    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=60))
    def test_sorts_any_list(self, values):
        arr = np.array(values)
        out = sort_linear(arr)
        np.testing.assert_array_equal(out.final, np.sort(arr))
        assert out.steps_scalar() <= len(values)

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=60))
    def test_reverse_sorts_descending(self, values):
        arr = np.array(values)
        out = sort_linear(arr, direction=-1)
        np.testing.assert_array_equal(out.final, np.sort(arr)[::-1])
        assert out.steps_scalar() <= len(values)

    def test_already_sorted_zero_steps(self):
        out = sort_linear(np.arange(10))
        assert out.steps_scalar() == 0

    def test_batched_matches_individual(self, rng):
        batch = np.stack([rng.permutation(12) for _ in range(6)])
        out = sort_linear(batch)
        for i in range(6):
            assert int(out.steps[i]) == sort_linear(batch[i]).steps_scalar()

    def test_empty_rejected(self):
        with pytest.raises(DimensionError):
            sort_linear(np.array([]))

    def test_duplicates(self):
        out = sort_linear(np.array([2, 2, 1, 1, 0, 0]))
        np.testing.assert_array_equal(out.final, [0, 0, 1, 1, 2, 2])


class TestWorstCase:
    @pytest.mark.parametrize("n", [2, 5, 16, 33])
    def test_worst_case_needs_n_minus_one(self, n):
        steps = odd_even_sort_steps(worst_case_input(n))
        assert steps >= n - 1
        assert steps <= n

    def test_average_below_worst(self, rng):
        n = 64
        avg = np.mean(
            [odd_even_sort_steps(rng.permutation(n)) for _ in range(30)]
        )
        assert (n - 1) / 2 <= avg <= n

    def test_invalid_n(self):
        with pytest.raises(DimensionError):
            worst_case_input(0)
