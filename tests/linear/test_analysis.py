"""Tests for the 1-D analytic facts of Section 1."""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.errors import DimensionError
from repro.linear.analysis import (
    average_lower_order,
    average_lower_smallest_element,
    expected_min_displacement,
    worst_case_upper,
)
from repro.backends import run_sort
from repro.schedules import build_odd_even


class TestBounds:
    def test_smallest_element_bound_value(self):
        assert average_lower_smallest_element(11) == Fraction(5)
        assert average_lower_smallest_element(2) == Fraction(1, 2)

    def test_expected_min_displacement_alias(self):
        assert expected_min_displacement(9) == average_lower_smallest_element(9)

    def test_worst_case_upper(self):
        assert worst_case_upper(10) == 10

    def test_order_bound_below_n(self):
        for n in (4, 16, 100):
            assert average_lower_order(n) < n
            assert average_lower_order(n) >= n - 2 * n**0.5 - 1e-9

    @pytest.mark.parametrize("fn", [average_lower_smallest_element, worst_case_upper, average_lower_order])
    def test_reject_nonpositive(self, fn):
        with pytest.raises(DimensionError):
            fn(0)


class TestBoundsAgainstMeasurement:
    def test_average_dominates_both_lower_bounds(self, rng):
        n = 128
        schedule = build_odd_even()
        steps = []
        base = np.arange(n)
        for _ in range(40):
            out = run_sort("rect", schedule, rng.permutation(base).reshape(1, n))
            steps.append(int(out.steps[()]))
        mean = float(np.mean(steps))
        assert mean >= float(average_lower_smallest_element(n))
        assert mean >= average_lower_order(n)
        assert mean <= worst_case_upper(n)

    def test_min_displacement_expectation(self, rng):
        """The displacement of the minimum is uniform: mean ~ (N-1)/2."""
        n = 64
        disp = [int(np.argmin(rng.permutation(n))) for _ in range(4000)]
        assert abs(np.mean(disp) - (n - 1) / 2) < 1.5
