"""Tests for the Table result container."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.experiments.tables import Table, format_cell


class TestFormatCell:
    def test_fraction(self):
        assert format_cell(Fraction(1, 2)) == "0.500"

    def test_float(self):
        assert format_cell(3.14159) == "3.142"

    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_int_and_str(self):
        assert format_cell(7) == "7"
        assert format_cell("abc") == "abc"


class TestTable:
    def test_add_row_and_render(self):
        t = Table(title="demo", headers=["a", "b"])
        t.add_row(1, 2.5)
        t.add_note("a note")
        text = t.to_text()
        assert "demo" in text
        assert "2.500" in text
        assert "note: a note" in text

    def test_row_length_checked(self):
        t = Table(title="demo", headers=["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_csv_roundtrip(self, tmp_path):
        t = Table(title="demo", headers=["x", "y"])
        t.add_row(1, "hello")
        path = t.to_csv(tmp_path / "out.csv")
        content = path.read_text().strip().splitlines()
        assert content[0] == "x,y"
        assert content[1] == "1,hello"

    def test_alignment_widths(self):
        t = Table(title="demo", headers=["long_header", "b"])
        t.add_row("x", "yyyyyyyyyy")
        lines = t.to_text().splitlines()
        header_line = lines[2]
        row_line = lines[4]
        assert len(header_line) == len(row_line)
