"""Smoke tests: every registered experiment runs and reproduces its claim.

These use a reduced configuration (the smallest even/odd sides, few trials)
so the whole registry executes in seconds; the benchmark harness runs the
real quick/full scales.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import DimensionError
from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import EXPERIMENTS, experiment_ids, run_experiment
from repro.experiments.tables import Table


@dataclasses.dataclass
class TinyConfig(ExperimentConfig):
    """A stripped-down config for test runs."""

    @property
    def even_sides(self):
        return [6]

    @property
    def odd_sides(self):
        return [5]

    @property
    def trials(self):
        return 16

    @property
    def moment_trials(self):
        return 400

    @property
    def invariant_trials(self):
        return 3

    @property
    def linear_sizes(self):
        return [32]


@pytest.fixture(scope="module")
def tiny_cfg():
    return TinyConfig()


class TestRegistry:
    def test_ids_unique_and_nonempty(self):
        ids = experiment_ids()
        assert len(ids) == len(set(ids))
        assert len(ids) >= 15

    def test_unknown_id(self):
        with pytest.raises(DimensionError):
            run_experiment("E-NOPE")

    def test_default_config_used(self):
        # only checks dispatch; cheap experiment
        table = run_experiment("E-C1", TinyConfig())
        assert isinstance(table, Table)


@pytest.mark.parametrize("exp_id", experiment_ids())
def test_experiment_runs_and_has_rows(exp_id, tiny_cfg):
    table = EXPERIMENTS[exp_id].run(tiny_cfg)
    assert isinstance(table, Table)
    assert table.rows, f"{exp_id} produced no rows"
    assert table.to_text()


class TestClaimsHold:
    """The boolean 'claim holds' columns must be all-yes at tiny scale too."""

    @pytest.mark.parametrize("exp_id", ["E-T2", "E-T4", "E-T7", "E-T10", "E-T12-avg"])
    def test_average_case_bounds_hold(self, exp_id, tiny_cfg):
        table = EXPERIMENTS[exp_id].run(tiny_cfg)
        holds = [row[-1] for row in table.rows]
        assert all(holds)

    def test_corollary1_holds(self, tiny_cfg):
        table = EXPERIMENTS["E-C1"].run(tiny_cfg)
        assert all(row[-1] for row in table.rows)

    def test_invariants_zero_violations(self, tiny_cfg):
        table = EXPERIMENTS["E-L123"].run(tiny_cfg)
        assert all(row[-1] == 0 for row in table.rows)

    def test_potential_bounds_zero_violations(self, tiny_cfg):
        table = EXPERIMENTS["E-T1"].run(tiny_cfg)
        assert all(row[-1] == 0 for row in table.rows)

    def test_tails_consistent(self, tiny_cfg):
        table = EXPERIMENTS["E-TAILS"].run(tiny_cfg)
        assert all(row[-1] for row in table.rows)

    def test_no_wrap_never_sorts(self, tiny_cfg):
        table = EXPERIMENTS["E-NOWRAP"].run(tiny_cfg)
        assert all(row[2] is False or row[2] == False for row in table.rows)  # noqa: E712


class TestDeterminism:
    """Same config -> byte-identical tables (seeded Monte Carlo)."""

    @pytest.mark.parametrize("exp_id", ["E-T2", "E-C1", "E-DECAY"])
    def test_repeat_runs_identical(self, exp_id, tiny_cfg):
        a = EXPERIMENTS[exp_id].run(tiny_cfg).to_text()
        b = EXPERIMENTS[exp_id].run(tiny_cfg).to_text()
        assert a == b


def test_tails_cross_process_deterministic(tmp_path):
    """E-TAILS must not depend on Python's per-process hash salt."""
    import subprocess
    import sys

    script = (
        "from repro.experiments import ExperimentConfig\n"
        "from repro.experiments.registry import run_experiment\n"
        "print(run_experiment('E-TAILS', ExperimentConfig()).rows[0])\n"
    )
    outputs = set()
    for _ in range(2):
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, timeout=300,
        )
        assert result.returncode == 0, result.stderr[-500:]
        outputs.add(result.stdout)
    assert len(outputs) == 1
