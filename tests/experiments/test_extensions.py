"""Unit tests for the extension experiments' helpers and semantics."""

from __future__ import annotations

import numpy as np

from repro.core.orders import is_sorted_grid, target_grid
from repro.experiments.extensions import _LOWER_CONSTANTS, _nearly_sorted
from repro.randomness import as_generator


class TestNearlySorted:
    def test_is_permutation(self):
        rng = as_generator(0)
        grid = _nearly_sorted(6, "snake", 6, rng)
        assert sorted(grid.ravel().tolist()) == list(range(36))

    def test_zero_swaps_is_target(self):
        rng = as_generator(0)
        grid = _nearly_sorted(6, "snake", 0, rng)
        np.testing.assert_array_equal(grid, target_grid(np.arange(36), 6, "snake"))

    def test_few_swaps_close_to_sorted(self):
        rng = as_generator(1)
        grid = _nearly_sorted(8, "row_major", 4, rng)
        # at most 8 cells differ from the target (each swap touches 2)
        tgt = target_grid(np.arange(64), 8, "row_major")
        assert int((grid != tgt).sum()) <= 8

    def test_not_sorted_after_many_swaps(self):
        rng = as_generator(2)
        grid = _nearly_sorted(8, "snake", 200, rng)
        assert not is_sorted_grid(grid, "snake")


class TestLowerConstants:
    def test_covers_all_algorithms(self):
        from repro.core.algorithms import ALGORITHM_NAMES

        assert set(_LOWER_CONSTANTS) == set(ALGORITHM_NAMES)

    def test_values_match_theorems(self):
        assert _LOWER_CONSTANTS["row_major_row_first"] == 0.5  # repro: allow=RPR106
        assert _LOWER_CONSTANTS["row_major_col_first"] == 0.375  # repro: allow=RPR106
        assert _LOWER_CONSTANTS["snake_3"] == 1.0  # repro: allow=RPR106
