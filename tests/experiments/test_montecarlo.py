"""Tests for the Monte-Carlo harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import StepLimitExceeded
from repro.experiments.montecarlo import (
    _sort_steps_values as sample_sort_steps,
    _statistic_values as sample_statistic_after_steps,
    summarize,
)
from repro.zeroone.trackers import z1_statistic


class TestSummarize:
    def test_basic(self):
        stats = summarize(np.array([1.0, 2.0, 3.0]))
        assert stats.mean == 2.0  # repro: allow=RPR106
        assert stats.count == 3
        assert stats.minimum == 1.0 and stats.maximum == 3.0  # repro: allow=RPR106
        lo, hi = stats.ci95
        assert lo < 2.0 < hi

    def test_single_value(self):
        stats = summarize(np.array([5.0]))
        assert stats.std == 0.0 and stats.sem == 0.0  # repro: allow=RPR106

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize(np.array([]))

    def test_describe(self):
        assert "mean=" in summarize(np.array([1.0, 2.0])).describe()


class TestSampleSortSteps:
    def test_reproducible(self):
        a = sample_sort_steps("snake_1", 6, 10, seed=7)
        b = sample_sort_steps("snake_1", 6, 10, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = sample_sort_steps("snake_1", 8, 10, seed=7)
        b = sample_sort_steps("snake_1", 8, 10, seed=8)
        assert not np.array_equal(a, b)

    def test_batching_does_not_change_distribution(self):
        a = sample_sort_steps("snake_1", 6, 12, seed=3, batch_size=4)
        b = sample_sort_steps("snake_1", 6, 12, seed=3, batch_size=12)
        np.testing.assert_array_equal(a, b)

    def test_zero_one_inputs(self):
        steps = sample_sort_steps("snake_1", 6, 8, seed=1, input_kind="zero_one")
        assert (steps >= 0).all()

    def test_unknown_input_kind(self):
        with pytest.raises(ValueError):
            sample_sort_steps("snake_1", 6, 4, input_kind="gaussians")

    def test_cap_raises(self):
        with pytest.raises(StepLimitExceeded):
            sample_sort_steps("snake_3", 8, 4, max_steps=2)

    def test_all_positive_for_random_perms(self):
        steps = sample_sort_steps("row_major_row_first", 6, 16, seed=5)
        assert (steps > 0).all()


class TestSampleStatistic:
    def test_matches_direct_computation(self):
        from repro.core.engine import run_fixed_steps
        from repro.core.algorithms import get_algorithm
        from repro.randomness import as_generator, random_zero_one_grid

        sample = sample_statistic_after_steps(
            "snake_1", 6, 5,
            lambda g: np.atleast_1d(np.asarray(z1_statistic(g))),
            seed=11, batch_size=5,
        )
        rng = as_generator(11)
        grids = random_zero_one_grid(6, batch=5, rng=rng)
        after = run_fixed_steps(get_algorithm("snake_1"), grids, 1)
        np.testing.assert_array_equal(sample, np.asarray(z1_statistic(after)))

    def test_count(self):
        sample = sample_statistic_after_steps(
            "snake_1", 4, 23,
            lambda g: np.atleast_1d(np.asarray(z1_statistic(g))),
            seed=0, batch_size=7,
        )
        assert sample.shape == (23,)
