"""CLI coverage for ``python -m repro.experiments``.

Runs :func:`repro.experiments.cli.main` in-process so exit codes,
stdout/stderr, and emitted artifacts (CSV, traces, manifests, metrics)
can all be asserted cheaply.  E-C1 is the workhorse experiment here: it is
deterministic and finishes in tens of milliseconds at quick scale.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.cli import main
from repro.obs import load_manifest, read_trace, replay_command


class TestListAndUsage:
    def test_list_exits_zero_and_names_experiments(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "E-T2" in out
        assert "Theorem 2" in out

    def test_no_ids_is_usage_error(self, capsys):
        assert main([]) == 2
        assert "give experiment ids" in capsys.readouterr().err

    def test_unknown_id_is_clear_error(self, capsys):
        assert main(["E-NOPE"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment id(s) E-NOPE" in err
        assert "E-T2" in err  # suggests the known ids


class TestRunAndCsv:
    def test_run_prints_table(self, capsys):
        assert main(["E-C1"]) == 0
        out = capsys.readouterr().out
        assert "E-C1" in out
        assert "finished in" in out

    def test_csv_creates_missing_directory(self, tmp_path, capsys):
        target = tmp_path / "does" / "not" / "exist"
        assert main(["E-C1", "--csv", str(target)]) == 0
        assert (target / "E-C1.csv").exists()
        header = (target / "E-C1.csv").read_text().splitlines()[0]
        assert "," in header

    def test_csv_unwritable_path_is_clear_error(self, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file, not a directory")
        assert main(["E-C1", "--csv", str(blocker / "sub")]) == 2
        assert "not writable" in capsys.readouterr().err

    def test_trace_unwritable_path_is_clear_error(self, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file, not a directory")
        assert main(["E-C1", "--trace", str(blocker / "sub")]) == 2
        assert "not writable" in capsys.readouterr().err


class TestTrace:
    def test_trace_emits_events_and_manifest(self, tmp_path, capsys):
        trace_dir = tmp_path / "traces"
        assert main(["E-C1", "--trace", str(trace_dir)]) == 0
        events = read_trace(trace_dir / "E-C1" / "events.jsonl")  # validates
        assert any(ev["event"] == "run_start" for ev in events)
        assert any(ev["event"] == "step" for ev in events)
        manifest = load_manifest(trace_dir / "E-C1" / "manifest.json")
        assert manifest.exp_id == "E-C1"
        assert manifest.seed == 20260706
        assert manifest.result_digest
        assert replay_command(manifest).startswith(
            "python -m repro.experiments E-C1"
        )

    def test_trace_replay_reproduces_events(self, tmp_path, capsys):
        dirs = [tmp_path / "a", tmp_path / "b"]
        for d in dirs:
            assert main(["E-C1", "--seed", "77", "--trace", str(d)]) == 0
        first = read_trace(dirs[0] / "E-C1" / "events.jsonl")
        second = read_trace(dirs[1] / "E-C1" / "events.jsonl")
        # Wall times differ between runs; everything else is identical.
        def strip(events):
            return [
                {k: v for k, v in ev.items() if k != "wall_time"}
                for ev in events
            ]
        assert strip(first) == strip(second)


class TestMetricsOut:
    def test_metrics_out_creates_missing_parent_dirs(self, tmp_path, capsys):
        out = tmp_path / "does" / "not" / "exist" / "metrics.json"
        assert main(["E-C1", "--metrics-out", str(out)]) == 0
        assert json.loads(out.read_text())["repro_runs_total"]["value"] >= 1

    def test_metrics_out_unwritable_path_fails_fast(self, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file, not a directory")
        assert main(["E-C1", "--metrics-out", str(blocker / "m.json")]) == 2
        assert "not writable" in capsys.readouterr().err

    def test_trace_creates_missing_parent_dirs(self, tmp_path, capsys):
        trace_dir = tmp_path / "nested" / "deeper" / "traces"
        assert main(["E-C1", "--trace", str(trace_dir)]) == 0
        read_trace(trace_dir / "E-C1" / "events.jsonl")  # exists + validates

    def test_json_metrics(self, tmp_path, capsys):
        out = tmp_path / "metrics.json"
        assert main(["E-C1", "--metrics-out", str(out)]) == 0
        data = json.loads(out.read_text())
        assert data["repro_runs_total"]["value"] >= 1
        assert data["repro_steps_total"]["value"] > 0
        assert data["repro_phase_seconds"]["count"] == 1

    def test_prometheus_metrics(self, tmp_path, capsys):
        out = tmp_path / "metrics.prom"
        assert main(["E-C1", "--metrics-out", str(out)]) == 0
        text = out.read_text()
        assert "# TYPE repro_runs_total counter" in text
        assert "repro_run_seconds_count" in text


class TestProgress:
    def test_progress_lines_on_stderr(self, capsys):
        assert main(["E-C1", "--progress"]) == 0
        err = capsys.readouterr().err
        assert "[E-C1 starting" in err
        assert "run 1" in err


class TestSummary:
    def test_summary_has_sections_and_timing(self, tmp_path, capsys):
        out = tmp_path / "summary.md"
        assert main(["E-C1", "--summary", str(out)]) == 0
        text = out.read_text()
        assert "## E-C1" in text
        assert "## Timing" in text
        assert "E-C1" in text.split("## Timing")[1]

    def test_summary_unknown_id_is_clear_error(self, tmp_path, capsys):
        out = tmp_path / "summary.md"
        assert main(["E-NOPE", "--summary", str(out)]) == 2
        assert "unknown experiment" in capsys.readouterr().err
        assert not out.exists()

    def test_summary_with_metrics(self, tmp_path, capsys):
        out = tmp_path / "summary.md"
        metrics = tmp_path / "m.json"
        code = main(
            ["E-C1", "--summary", str(out), "--metrics-out", str(metrics)]
        )
        assert code == 0
        data = json.loads(metrics.read_text())
        assert data["repro_runs_total"]["value"] >= 1


@pytest.mark.parametrize("flag", ["--trace", "--csv"])
def test_artifact_dirs_shared_across_experiments(tmp_path, capsys, flag):
    """Two ids in one invocation land side by side under one directory."""
    target = tmp_path / "artifacts"
    assert main(["E-C1", "E-NOWRAP", flag, str(target)]) == 0
    if flag == "--trace":
        assert (target / "E-C1" / "events.jsonl").exists()
        assert (target / "E-NOWRAP" / "events.jsonl").exists()
    else:
        assert (target / "E-C1.csv").exists()
        assert (target / "E-NOWRAP.csv").exists()
