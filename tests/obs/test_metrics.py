"""Metrics registry: instrument semantics, exporters, and event bridges."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.algorithms import get_algorithm
from repro.core.engine import default_step_cap, run_until_sorted
from repro.errors import DimensionError
from repro.mesh.machine import mesh_sort
from repro.obs import (
    MetricsObserver,
    MetricsRegistry,
    PotentialObserver,
    record_link_stats,
    use_observer,
)
from repro.zeroone.diagnostics import run_diagnostics


def perm_grid(side: int, seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.permutation(side * side).reshape(side, side)


class TestInstruments:
    def test_counter(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_x_total", "help text")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5  # repro: allow=RPR106
        with pytest.raises(DimensionError):
            c.inc(-1)

    def test_gauge(self):
        g = MetricsRegistry().gauge("repro_g")
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value == 3

    def test_histogram_buckets_and_stats(self):
        h = MetricsRegistry().histogram("repro_h", buckets=(1, 10, 100))
        for v in (0.5, 5, 50, 500):
            h.observe(v)
        assert h.count == 4
        assert h.sum == 555.5  # repro: allow=RPR106
        assert h.min == 0.5 and h.max == 500  # repro: allow=RPR106
        assert h.cumulative_counts() == [1, 2, 3]
        assert h.overflow == 1

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(DimensionError):
            MetricsRegistry().histogram("repro_bad", buckets=(10, 1))

    def test_timer_context(self):
        t = MetricsRegistry().timer("repro_t_seconds")
        with t.time() as ctx:
            pass
        assert t.count == 1
        assert t.total == ctx.elapsed >= 0

    def test_registration_idempotent_but_kind_checked(self):
        reg = MetricsRegistry()
        assert reg.counter("repro_c") is reg.counter("repro_c")
        with pytest.raises(DimensionError):
            reg.gauge("repro_c")

    def test_bad_metric_name_rejected(self):
        with pytest.raises(DimensionError):
            MetricsRegistry().counter("bad name!")


class TestExporters:
    def make_registry(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("repro_runs_total", "runs").inc(3)
        reg.gauge("repro_depth").set(1.5)
        h = reg.histogram("repro_steps", buckets=(10, 100))
        h.observe(5)
        h.observe(50)
        return reg

    def test_json_roundtrip(self, tmp_path):
        reg = self.make_registry()
        path = tmp_path / "metrics.json"
        text = reg.to_json(path)
        on_disk = json.loads(path.read_text())
        assert on_disk == json.loads(text)
        assert on_disk["repro_runs_total"]["value"] == 3
        assert on_disk["repro_steps"]["buckets"] == {"10.0": 1, "100.0": 2}

    def test_prometheus_text(self):
        text = self.make_registry().to_prometheus_text()
        assert "# TYPE repro_runs_total counter" in text
        assert "repro_runs_total 3" in text
        assert "# TYPE repro_depth gauge" in text
        assert 'repro_steps_bucket{le="10"} 1' in text
        assert 'repro_steps_bucket{le="+Inf"} 2' in text
        assert "repro_steps_count 2" in text
        assert text.endswith("\n")


class TestMetricsObserver:
    def test_engine_run_tallies(self):
        obs = MetricsObserver(swap_detail=True)
        outcome = run_until_sorted(
            get_algorithm("snake_1"), perm_grid(6), observer=obs
        )
        reg = obs.registry
        t_f = outcome.steps_scalar()
        assert reg["repro_runs_total"].value == 1
        assert reg["repro_steps_total"].value == t_f
        assert reg["repro_run_steps"].count == 1
        assert reg["repro_run_seconds"].count == 1
        assert reg["repro_swaps_total"].value > 0

    def test_engine_swap_detail_is_opt_in(self):
        # Without swap_detail the vectorized backend skips the per-step grid
        # diff, so swap counters stay untouched while the cheap tallies run.
        obs = MetricsObserver()
        outcome = run_until_sorted(
            get_algorithm("snake_1"), perm_grid(6), observer=obs
        )
        reg = obs.registry
        assert reg["repro_steps_total"].value == outcome.steps_scalar()
        assert reg["repro_swaps_total"].value == 0
        assert reg["repro_step_swaps"].count == 0

    def test_batched_run_records_every_trial(self):
        obs = MetricsObserver()
        grids = np.stack([perm_grid(4, seed=s) for s in range(5)])
        run_until_sorted(get_algorithm("snake_1"), grids, observer=obs)
        assert obs.registry["repro_run_steps"].count == 5

    def test_mesh_comparisons_counted(self):
        obs = MetricsObserver()
        t_f, machine = mesh_sort(
            get_algorithm("snake_1"), perm_grid(6),
            max_steps=default_step_cap(6), observer=obs,
        )
        assert obs.registry["repro_comparisons_total"].value == (
            machine.stats.total_comparisons()
        )
        assert obs.registry["repro_swaps_total"].value == (
            machine.stats.total_swaps()
        )


class TestPotentialObserver:
    def test_trajectory_matches_diagnostics(self):
        grid = perm_grid(6, seed=9)
        obs = PotentialObserver()
        with use_observer(obs):
            records = run_diagnostics("snake_1", grid)
        # One trajectory point per cycle event, ending sorted (minimal Z1).
        assert len(obs.trajectory) == len(records) - 1
        assert [v for _, v in obs.trajectory] == [
            rec.potential for rec in records[1:]
        ]

    def test_registry_gauge_tracks_last_value(self):
        reg = MetricsRegistry()
        obs = PotentialObserver(registry=reg)
        with use_observer(obs):
            run_diagnostics("row_major_row_first", perm_grid(6, seed=2))
        assert reg["repro_potential"].value == obs.trajectory[-1][1]
        assert reg["repro_cycle_potential"].count == len(obs.trajectory)

    def test_engine_cycle_events_feed_potentials(self):
        # Without diagnostics: the engine's cycle grids are enough.
        obs = PotentialObserver()
        outcome = run_until_sorted(
            get_algorithm("snake_1"), perm_grid(6), observer=obs
        )
        cycle = len(get_algorithm("snake_1").steps)
        assert len(obs.trajectory) == outcome.steps_scalar() // cycle
        assert all(
            isinstance(v, int) and v >= 0 for _, v in obs.trajectory
        )


class TestLinkStats:
    def test_record_link_stats(self):
        _, machine = mesh_sort(
            get_algorithm("row_major_row_first"), perm_grid(6),
            max_steps=default_step_cap(6),
        )
        reg = MetricsRegistry()
        record_link_stats(reg, machine.stats)
        assert reg["repro_wire_comparisons_total"].value == (
            machine.stats.total_comparisons()
        )
        assert reg["repro_wire_swaps_total"].value == machine.stats.total_swaps()
        assert reg["repro_wire_traffic"].count == len(machine.stats.comparisons)
        busiest = machine.stats.busiest_links(1)[0][1]
        assert reg["repro_busiest_wire_comparisons"].value == busiest


class TestRegistryMerge:
    """Cross-process aggregation: the campaign coordinator's primitive."""

    def test_counters_add(self):
        mine, theirs = MetricsRegistry(), MetricsRegistry()
        mine.counter("repro_runs_total").inc(2)
        theirs.counter("repro_runs_total").inc(3)
        mine.merge(theirs)
        assert mine["repro_runs_total"].value == 5

    def test_gauge_last_write_wins(self):
        mine, theirs = MetricsRegistry(), MetricsRegistry()
        mine.gauge("repro_g").set(1.0)
        theirs.gauge("repro_g").set(7.0)
        mine.merge(theirs.as_dict())
        assert mine["repro_g"].value == 7.0  # repro: allow=RPR106

    def test_unknown_instruments_created_from_snapshot(self):
        mine, theirs = MetricsRegistry(), MetricsRegistry()
        theirs.counter("repro_new_total", "worker-side only").inc(4)
        mine.merge(theirs)
        assert mine["repro_new_total"].value == 4
        assert mine["repro_new_total"].help == "worker-side only"

    def test_histogram_counts_sum_minmax_combine(self):
        mine, theirs = MetricsRegistry(), MetricsRegistry()
        buckets = (1.0, 10.0, 100.0)
        h1 = mine.histogram("repro_h", buckets=buckets)
        h2 = theirs.histogram("repro_h", buckets=buckets)
        for v in (0.5, 5.0):
            h1.observe(v)
        for v in (50.0, 500.0):  # 500 overflows the last bound
            h2.observe(v)
        mine.merge(theirs)
        merged = mine["repro_h"]
        assert merged.count == 4
        assert merged.sum == pytest.approx(555.5)
        assert merged.min == 0.5  # repro: allow=RPR106
        assert merged.max == 500.0  # repro: allow=RPR106
        assert merged.overflow == 1
        assert merged.cumulative_counts() == [1, 2, 3]

    def test_histogram_merge_is_associative_with_observes(self):
        # Merging snapshots must equal observing everything in one registry.
        direct = MetricsRegistry()
        h = direct.histogram("repro_h")
        parts = [MetricsRegistry() for _ in range(3)]
        values = [0.001, 0.1, 3.0, 42.0, 1e6]
        for i, v in enumerate(values):
            h.observe(v)
            parts[i % 3].histogram("repro_h").observe(v)
        merged = MetricsRegistry()
        for part in parts:
            merged.merge(part.as_dict())
        assert merged["repro_h"].as_dict() == direct["repro_h"].as_dict()

    def test_timer_merge(self):
        mine, theirs = MetricsRegistry(), MetricsRegistry()
        mine.timer("repro_t_seconds").observe(0.1)
        theirs.timer("repro_t_seconds").observe(0.3)
        mine.merge(theirs)
        assert mine["repro_t_seconds"].count == 2
        assert mine["repro_t_seconds"].total == pytest.approx(0.4)

    def test_bucket_layout_mismatch_rejected(self):
        mine, theirs = MetricsRegistry(), MetricsRegistry()
        mine.histogram("repro_h", buckets=(1.0, 2.0))
        theirs.histogram("repro_h", buckets=(1.0, 2.0, 3.0))
        with pytest.raises(DimensionError, match="bucket layout"):
            mine.merge(theirs)

    def test_unknown_kind_rejected(self):
        with pytest.raises(DimensionError, match="unknown kind"):
            MetricsRegistry().merge({"repro_x": {"kind": "mystery"}})
