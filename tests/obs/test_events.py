"""Observer semantics across all three executors (plus diagnostics).

The contract under test: a recording observer attached to a
sort-to-completion run sees exactly ``t_f`` step events, one cycle event
per completed cycle, and a single run_start/run_end envelope — identically
on the vectorized engine, the pure-Python reference oracle, and the
processor-level mesh machine.  A raising observer must never leave an
executor in a half-stepped state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithms import get_algorithm
from repro.core.engine import default_step_cap, run_fixed_steps, run_until_sorted
from repro.core.reference import reference_sort
from repro.mesh.machine import MeshMachine, mesh_sort
from repro.obs import (
    CompositeObserver,
    Observer,
    RecordingObserver,
    get_active_observer,
    use_observer,
)
from repro.zeroone.diagnostics import run_diagnostics

ALGOS = ["row_major_row_first", "snake_1"]


def perm_grid(side: int, seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.permutation(side * side).reshape(side, side)


class TestStepCounts:
    @pytest.mark.parametrize("name", ALGOS)
    def test_engine_step_events_match_steps(self, name):
        grid = perm_grid(6)
        rec = RecordingObserver()
        outcome = run_until_sorted(get_algorithm(name), grid, observer=rec)
        t_f = outcome.steps_scalar()
        assert rec.step_times == list(range(1, t_f + 1))
        assert len(rec.run_starts) == len(rec.run_ends) == 1
        assert rec.run_starts[0].executor == "engine"
        assert rec.run_starts[0].algorithm == name
        assert int(np.asarray(rec.run_ends[0].steps)) == t_f
        cycle = len(get_algorithm(name).steps)
        assert len(rec.cycles) == t_f // cycle

    @pytest.mark.parametrize("name", ALGOS)
    def test_reference_step_events_match_steps(self, name):
        grid = perm_grid(6)
        rec = RecordingObserver()
        t_f, _ = reference_sort(
            get_algorithm(name), grid, max_steps=default_step_cap(6), observer=rec
        )
        assert rec.step_times == list(range(1, t_f + 1))
        assert rec.run_starts[0].executor == "reference"
        assert rec.run_ends[0].completed is True

    @pytest.mark.parametrize("name", ALGOS)
    def test_mesh_step_events_match_steps(self, name):
        grid = perm_grid(6)
        rec = RecordingObserver()
        t_f, _ = mesh_sort(
            get_algorithm(name), grid, max_steps=default_step_cap(6), observer=rec
        )
        assert rec.step_times == list(range(1, t_f + 1))
        assert rec.run_starts[0].executor == "mesh"

    def test_all_executors_agree_on_event_stream(self):
        grid = perm_grid(6, seed=3)
        schedule = get_algorithm("snake_1")
        recs = [RecordingObserver() for _ in range(3)]
        run_until_sorted(schedule, grid, observer=recs[0])
        reference_sort(schedule, grid, max_steps=default_step_cap(6), observer=recs[1])
        mesh_sort(schedule, grid, max_steps=default_step_cap(6), observer=recs[2])
        times = {tuple(rec.step_times) for rec in recs}
        assert len(times) == 1
        # Per-step swap counts agree wherever both executors report them.
        swaps = [[ev.swaps for ev in rec.steps] for rec in recs]
        assert swaps[0] == swaps[1] == swaps[2]

    def test_diagnostics_step_events_match_trace(self):
        grid = perm_grid(6, seed=5)
        rec = RecordingObserver()
        records = run_diagnostics("snake_1", grid, observer=rec)
        assert rec.step_times == list(range(1, records[-1].t + 1))
        assert rec.run_starts[0].executor == "diagnostics"
        # Cycle events mirror the CycleRecords (skipping the t=0 snapshot).
        assert len(rec.cycles) == len(records) - 1
        for ev, record in zip(rec.cycles, records[1:]):
            assert ev.t == record.t
            assert ev.info["potential"] == record.potential
            assert ev.info["inversions"] == record.inversions

    def test_fixed_steps_events(self):
        grid = perm_grid(6)
        rec = RecordingObserver()
        run_fixed_steps(get_algorithm("snake_1"), grid, 10, observer=rec)
        assert rec.step_times == list(range(1, 11))
        assert rec.run_ends[0].steps == 10

    def test_engine_swaps_match_mesh_totals(self):
        grid = perm_grid(6, seed=11)
        schedule = get_algorithm("row_major_row_first")
        rec = RecordingObserver()
        run_until_sorted(schedule, grid, observer=rec)
        _, machine = mesh_sort(schedule, grid, max_steps=default_step_cap(6))
        assert sum(ev.swaps for ev in rec.steps) == machine.stats.total_swaps()


class _Boom(Exception):
    pass


class RaisingObserver(Observer):
    """Raises on the k-th step event."""

    def __init__(self, explode_at: int):
        self.explode_at = explode_at

    def on_step(self, event):
        if event.t == self.explode_at:
            raise _Boom(f"step {event.t}")


class TestRaisingObserver:
    def test_engine_input_grid_untouched(self):
        grid = perm_grid(6)
        original = grid.copy()
        with pytest.raises(_Boom):
            run_until_sorted(
                get_algorithm("snake_1"), grid, observer=RaisingObserver(3)
            )
        np.testing.assert_array_equal(grid, original)

    def test_mesh_state_consistent_after_raise(self):
        grid = perm_grid(6)
        schedule = get_algorithm("snake_1")
        machine = MeshMachine(schedule, grid, observer=RaisingObserver(4))
        with pytest.raises(_Boom):
            for _ in range(10):
                machine.step()
        # The hook fires after the step's exchanges complete, so the
        # memories hold the exact permutation a clean 4-step run produces.
        clean = MeshMachine(schedule, grid)
        clean.run(4)
        np.testing.assert_array_equal(machine.as_array(), clean.as_array())
        assert machine.t == 4

    def test_mesh_values_never_lost(self):
        grid = perm_grid(5)
        machine = MeshMachine(
            get_algorithm("snake_1"), grid, observer=RaisingObserver(2)
        )
        with pytest.raises(_Boom):
            machine.run(5)
        assert sorted(machine.memory.values()) == list(range(25))


class TestAmbientContext:
    def test_no_observer_by_default(self):
        assert get_active_observer() is None

    def test_use_observer_scopes(self):
        rec = RecordingObserver()
        with use_observer(rec):
            assert get_active_observer() is rec
            run_until_sorted(get_algorithm("snake_1"), perm_grid(4))
        assert get_active_observer() is None
        assert rec.steps and rec.run_ends

    def test_explicit_beats_ambient(self):
        ambient, explicit = RecordingObserver(), RecordingObserver()
        with use_observer(ambient):
            run_until_sorted(
                get_algorithm("snake_1"), perm_grid(4), observer=explicit
            )
        assert not ambient.steps
        assert explicit.steps

    def test_nested_innermost_wins(self):
        outer, inner = RecordingObserver(), RecordingObserver()
        with use_observer(outer):
            with use_observer(inner):
                assert get_active_observer() is inner
            assert get_active_observer() is outer


class TestComposite:
    def test_fan_out(self):
        a, b = RecordingObserver(), RecordingObserver()
        run_until_sorted(
            get_algorithm("snake_1"),
            perm_grid(4),
            observer=CompositeObserver([a, b]),
        )
        assert a.step_times == b.step_times
        assert len(a.run_starts) == len(b.run_starts) == 1


class TestRecordingObserver:
    def test_copy_grids_snapshots(self):
        rec = RecordingObserver(copy_grids=True)
        run_until_sorted(get_algorithm("snake_1"), perm_grid(4), observer=rec)
        # Without copying, every event would alias the final buffer.
        first, last = rec.steps[0].grid, rec.steps[-1].grid
        assert not np.array_equal(first, last)
