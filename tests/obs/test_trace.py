"""JSONL trace sinks, schema validation, and replayable run manifests."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.algorithms import get_algorithm
from repro.core.engine import run_until_sorted
from repro.errors import DimensionError
from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import run_experiment
from repro.obs import (
    JsonlTraceSink,
    RunManifest,
    grid_digest,
    load_manifest,
    read_trace,
    replay_command,
    table_digest,
    validate_trace_events,
    write_manifest,
)


def perm_grid(side: int, seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.permutation(side * side).reshape(side, side)


class TestGridDigest:
    def test_deterministic_and_dtype_independent(self):
        grid = perm_grid(5)
        assert grid_digest(grid) == grid_digest(grid.astype(np.int32))

    def test_sensitive_to_contents_and_shape(self):
        grid = perm_grid(5)
        other = grid.copy()
        other[0, 0], other[0, 1] = other[0, 1], other[0, 0]
        assert grid_digest(grid) != grid_digest(other)
        assert grid_digest(grid) != grid_digest(grid.reshape(1, 25))


class TestJsonlSink:
    def run_traced(self, path, seed=7):
        with JsonlTraceSink(path) as sink:
            run_until_sorted(
                get_algorithm("snake_1"), perm_grid(6, seed=seed), observer=sink
            )
        return read_trace(path)

    def test_events_schema_valid(self, tmp_path):
        events = self.run_traced(tmp_path / "events.jsonl")
        kinds = [ev["event"] for ev in events]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        steps = [ev for ev in events if ev["event"] == "step"]
        assert steps
        assert all("grid_digest" in ev and "swaps" in ev for ev in steps)
        assert events[0]["algorithm"] == "snake_1"
        assert events[-1]["completed"] is True

    def test_replay_same_seed_identical_digests(self, tmp_path):
        a = self.run_traced(tmp_path / "a.jsonl", seed=13)
        b = self.run_traced(tmp_path / "b.jsonl", seed=13)

        def strip_wall_time(events):
            return [
                {k: v for k, v in ev.items() if k != "wall_time"}
                for ev in events
            ]

        # Identical modulo wall time: same states, same digests, same steps.
        assert strip_wall_time(a) == strip_wall_time(b)

    def test_different_seed_diverges(self, tmp_path):
        a = self.run_traced(tmp_path / "a.jsonl", seed=13)
        b = self.run_traced(tmp_path / "b.jsonl", seed=14)
        assert [ev.get("grid_digest") for ev in a] != [
            ev.get("grid_digest") for ev in b
        ]

    def test_closed_sink_raises(self, tmp_path):
        from repro.obs import RunEnd

        sink = JsonlTraceSink(tmp_path / "events.jsonl")
        sink.close()
        with pytest.raises(DimensionError):
            sink.on_run_end(RunEnd(wall_time=0.0))

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "events.jsonl"
        self.run_traced(path)
        assert path.exists()


class TestGzipTrace:
    def run_traced(self, path, seed=7):
        with JsonlTraceSink(path) as sink:
            run_until_sorted(
                get_algorithm("snake_1"), perm_grid(6, seed=seed), observer=sink
            )
        return read_trace(path)

    def test_gz_path_writes_gzip(self, tmp_path):
        path = tmp_path / "events.jsonl.gz"
        self.run_traced(path)
        # gzip magic bytes: the file really is compressed, not just renamed.
        assert path.read_bytes()[:2] == b"\x1f\x8b"

    def test_gz_trace_replays_identically_to_plain(self, tmp_path):
        plain = self.run_traced(tmp_path / "events.jsonl")
        gz = self.run_traced(tmp_path / "events.jsonl.gz")

        def stable(events):
            # wall_time is the one field that legitimately differs between
            # two executions; everything else (digests included) must not.
            return [
                {k: v for k, v in ev.items() if k != "wall_time"}
                for ev in events
            ]

        assert stable(gz) == stable(plain)

    def test_gz_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "events.jsonl.gz"
        events = self.run_traced(path)
        assert path.exists() and events


class TestSchemaValidation:
    def good(self):
        return [
            {"v": 1, "seq": 0, "event": "run_start",
             "executor": "engine", "algorithm": "snake_1", "side": 4},
            {"v": 1, "seq": 1, "event": "step", "t": 1},
            {"v": 1, "seq": 2, "event": "run_end", "wall_time": 0.1},
        ]

    def test_good_passes(self):
        validate_trace_events(self.good())

    @pytest.mark.parametrize("mutate,msg", [
        (lambda evs: evs[0].update(v=99), "schema version"),
        (lambda evs: evs[1].update(seq=5), "sequence"),
        (lambda evs: evs[1].update(event="explode"), "unknown event"),
        (lambda evs: evs[1].update(bogus=1), "unknown fields"),
        (lambda evs: evs[1].pop("t"), "missing fields"),
    ])
    def test_bad_rejected(self, mutate, msg):
        events = self.good()
        mutate(events)
        with pytest.raises(DimensionError, match=msg):
            validate_trace_events(events)


class TestManifest:
    def test_roundtrip(self, tmp_path):
        manifest = RunManifest(
            kind="experiment", exp_id="E-C1", seed=1, scale="quick",
            result_digest="abc", argv=["E-C1"],
        )
        path = write_manifest(tmp_path / "m" / "manifest.json", manifest)
        loaded = load_manifest(path)
        assert loaded == manifest
        # File is plain JSON for outside tooling.
        assert json.loads(path.read_text())["exp_id"] == "E-C1"

    def test_bad_kind_rejected(self):
        with pytest.raises(DimensionError):
            RunManifest(kind="banana")

    def test_bad_schema_version_rejected(self, tmp_path):
        path = tmp_path / "manifest.json"
        data = RunManifest(kind="run").as_dict()
        data["schema_version"] = 42
        path.write_text(json.dumps(data))
        with pytest.raises(DimensionError):
            load_manifest(path)

    def test_replay_command(self):
        manifest = RunManifest(
            kind="experiment", exp_id="E-T2", seed=99, scale="full"
        )
        assert replay_command(manifest) == (
            "python -m repro.experiments E-T2 --scale full --seed 99"
        )
        with pytest.raises(DimensionError):
            replay_command(RunManifest(kind="run"))

    def test_manifest_replays_to_same_digest(self):
        """The reproducibility contract: (seed, scale) pins the table."""
        cfg = ExperimentConfig(scale="quick", seed=424242)
        digest = table_digest(run_experiment("E-C1", cfg))
        manifest = RunManifest(
            kind="experiment", exp_id="E-C1",
            seed=cfg.seed, scale=cfg.scale, result_digest=digest,
        )
        replayed = run_experiment(
            manifest.exp_id,
            ExperimentConfig(scale=manifest.scale, seed=manifest.seed),
        )
        assert table_digest(replayed) == manifest.result_digest
