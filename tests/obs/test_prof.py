"""Span profiler: folding, ambient install, grafting, serialization."""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.backends import run_sort
from repro.core.runner import resolve_algorithm
from repro.errors import DimensionError
from repro.obs import (
    Span,
    SpanProfiler,
    aggregate_spans,
    current_profiler,
    render_spans,
    span,
    span_from_dict,
    use_profiler,
)
from repro.obs.prof import _NULL_SPAN


def perm_grid(side: int, seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.permutation(side * side).reshape(side, side)


class TestSpanRecording:
    def test_nested_tree(self):
        prof = SpanProfiler()
        with prof.span("outer"):
            with prof.span("inner"):
                pass
        assert [root.name for root in prof.roots] == ["outer"]
        (outer,) = prof.roots
        assert [child.name for child in outer.children] == ["inner"]
        assert outer.count == 1
        assert outer.wall >= outer.children[0].wall >= 0

    def test_repeated_siblings_fold(self):
        prof = SpanProfiler()
        with prof.span("loop"):
            for _ in range(100):
                with prof.span("body"):
                    pass
        (loop,) = prof.roots
        assert len(loop.children) == 1
        assert loop.children[0].count == 100

    def test_meta_kept_from_first_invocation(self):
        prof = SpanProfiler()
        with prof.span("run", algorithm="snake_1"):
            pass
        with prof.span("run", algorithm="other"):
            pass
        (run,) = prof.roots
        assert run.count == 2
        assert run.meta["algorithm"] == "snake_1"

    def test_empty_name_rejected(self):
        with pytest.raises(DimensionError):
            SpanProfiler().span("")

    def test_self_wall(self):
        node = Span(name="a", wall=2.0, children=[Span(name="b", wall=0.5)])
        assert node.self_wall() == pytest.approx(1.5)


class TestAmbientInstall:
    def test_module_span_records_on_installed_profiler(self):
        prof = SpanProfiler()
        with use_profiler(prof):
            assert current_profiler() is prof
            with span("phase"):
                pass
        assert current_profiler() is None
        assert [root.name for root in prof.roots] == ["phase"]

    def test_no_profiler_returns_shared_null_singleton(self):
        assert current_profiler() is None
        ctx_a = span("anything")
        ctx_b = span("other")
        assert ctx_a is _NULL_SPAN
        assert ctx_b is _NULL_SPAN
        with ctx_a:
            pass  # harmless no-op

    def test_driver_emits_compile_and_kernel_spans(self):
        prof = SpanProfiler()
        schedule = resolve_algorithm("snake_1")
        with use_profiler(prof):
            run_sort("vectorized", schedule, perm_grid(6))
        totals = aggregate_spans(prof.roots)
        assert {"run", "compile", "kernel"} <= totals.keys()
        assert totals["run"]["count"] == 1
        assert totals["run"]["wall"] >= totals["kernel"]["wall"]

    def test_uninstrumented_run_untouched_without_profiler(self):
        schedule = resolve_algorithm("snake_1")
        outcome = run_sort("vectorized", schedule, perm_grid(6))
        assert outcome.completed


class TestSerialization:
    def make_tree(self) -> Span:
        prof = SpanProfiler()
        with prof.span("shard", index=3):
            with prof.span("run"):
                with prof.span("kernel"):
                    pass
        return prof.roots[0]

    def test_dict_roundtrip(self):
        tree = self.make_tree()
        rebuilt = span_from_dict(tree.as_dict())
        assert rebuilt.as_dict() == tree.as_dict()

    def test_bad_dict_rejected(self):
        with pytest.raises(DimensionError):
            span_from_dict({"wall": 1.0})

    def test_merge_requires_same_name(self):
        with pytest.raises(DimensionError):
            Span(name="a").merge(Span(name="b"))

    def test_graft_folds_same_named_trees(self):
        prof = SpanProfiler()
        for index in range(3):
            prof.graft(self.make_tree().as_dict())
        (shard,) = prof.roots
        assert shard.count == 3
        assert shard.child("run").child("kernel").count == 3
        # First-seen meta wins, mirroring span() folding.
        assert shard.meta["index"] == 3

    def test_graft_under_open_span(self):
        prof = SpanProfiler()
        with prof.span("campaign"):
            prof.graft(self.make_tree())
        (campaign,) = prof.roots
        assert [child.name for child in campaign.children] == ["shard"]


class TestAllocTracing:
    def test_opt_in_records_peak(self):
        was_tracing = tracemalloc.is_tracing()
        prof = SpanProfiler(trace_alloc=True)
        try:
            with use_profiler(prof), prof.span("alloc"):
                buf = np.zeros(64 * 1024, dtype=np.int64)
                del buf
        finally:
            prof.close()
        assert prof.roots[0].alloc_peak is not None
        assert prof.roots[0].alloc_peak > 0
        # close() must restore the prior tracemalloc state.
        assert tracemalloc.is_tracing() == was_tracing

    def test_default_records_no_alloc(self):
        prof = SpanProfiler()
        with prof.span("alloc"):
            pass
        assert prof.roots[0].alloc_peak is None


class TestReporting:
    def test_aggregate_sums_same_name_across_depths(self):
        prof = SpanProfiler()
        with prof.span("a"):
            with prof.span("b"):
                pass
        with prof.span("b"):
            pass
        totals = aggregate_spans(prof.tree())  # dict form accepted too
        assert totals["b"]["count"] == 2

    def test_render_includes_counts(self):
        prof = SpanProfiler()
        with prof.span("outer"):
            for _ in range(2):
                with prof.span("inner"):
                    pass
        text = render_spans(prof.roots)
        assert "outer" in text
        assert "x2" in text
        assert render_spans([]) == "(no spans recorded)"
