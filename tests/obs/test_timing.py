"""Stopwatch / phase-timer helpers shared by the CLI and report writer."""

from __future__ import annotations

from repro.obs import MetricsRegistry, PhaseTimer, StopWatch, format_seconds


class TestFormatSeconds:
    def test_ranges(self):
        assert format_seconds(0.034) == "0.034s"
        assert format_seconds(12.34) == "12.3s"
        assert format_seconds(221.0) == "3m41s"


class TestStopWatch:
    def test_elapsed_nonnegative_and_frozen_after_exit(self):
        with StopWatch() as watch:
            running = watch.elapsed
            assert running >= 0
        frozen = watch.elapsed
        assert frozen >= running
        assert watch.elapsed == frozen  # no longer ticking

    def test_str_is_formatted(self):
        with StopWatch() as watch:
            pass
        assert str(watch).endswith("s")


class TestPhaseTimer:
    def test_phases_recorded_in_order(self):
        timer = PhaseTimer()
        with timer.phase("alpha"):
            pass
        with timer.phase("beta"):
            pass
        assert [name for name, _ in timer.phases] == ["alpha", "beta"]
        assert timer.total == sum(elapsed for _, elapsed in timer.phases)

    def test_render_table(self):
        timer = PhaseTimer()
        timer.record("E-T2", 1.5)
        text = timer.render_table()
        assert "E-T2" in text
        assert "total" in text
        assert PhaseTimer().render_table() == "(no phases recorded)"

    def test_registry_mirror(self):
        reg = MetricsRegistry()
        timer = PhaseTimer(reg)
        timer.record("E-T2", 0.5)
        timer.record("E-C1", 0.25)
        assert reg["repro_phase_seconds"].count == 2
        assert reg["repro_phase_seconds"].total == 0.75  # repro: allow=RPR106
